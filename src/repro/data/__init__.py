"""Synthetic workload generators replacing the paper's generated and
recorded datasets (see the substitution table in DESIGN.md)."""

from .generators import (
    PageViewWorkload,
    ValueBarrierWorkload,
    pageview_workload,
    uniform_stream,
    value_barrier_workload,
)

__all__ = [
    "PageViewWorkload",
    "ValueBarrierWorkload",
    "pageview_workload",
    "uniform_stream",
    "value_barrier_workload",
]
