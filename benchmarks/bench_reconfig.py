"""Elastic reconfiguration cost: the pause of a live plan migration and
the throughput before/after scaling, on the real substrates.

Not a paper artifact — the paper's plans are fixed for a run; this
table quantifies what the fork/join snapshot mechanism buys beyond
checkpointing: scaling a running stream out (and back in) without
stopping it.  The elastic run's outputs are multiset-verified against
the clean run's, so neither a small pause nor a throughput gain can be
bought by dropping work.

Two measurements:

* ``test_reconfig_pause_by_backend`` — a narrow->wide planned scale-out
  on the plain (cheap-update) program: bounds the migration pause and
  the end-to-end overhead ratio;
* ``test_scale_out_throughput`` — the same scale-out on the
  CPU-burning program via the process backend: on a multi-core host
  the post-scale-out phase must process events at least as fast as the
  pre-scale phase (the whole point of scaling out).
"""

from conftest import quick

from repro.apps import value_barrier as vb
from repro.bench import (
    BenchConfig,
    available_cores,
    bench_record,
    measure_reconfig_pause,
    publish,
    publish_json,
    render_table,
)
from repro.plans import repartition_plan
from repro.runtime import ReconfigPoint, ReconfigSchedule


def _case(n_value_streams, values_per_barrier, n_barriers, spin=0):
    prog = vb.make_cpu_program(spin) if spin else vb.make_program()
    wl = vb.make_workload(
        n_value_streams=n_value_streams,
        values_per_barrier=values_per_barrier,
        n_barriers=n_barriers,
    )
    streams = vb.make_streams(wl)
    wide = vb.make_plan(prog, wl)
    narrow = repartition_plan(prog, wide, 2)
    return prog, streams, narrow, n_value_streams


def test_reconfig_pause_by_backend(benchmark):
    QUICK = quick()
    prog, streams, narrow, width = _case(
        n_value_streams=4,
        values_per_barrier=40 if QUICK else 200,
        n_barriers=3 if QUICK else 6,
    )

    # Scale 2 -> width leaves at the second barrier: half the input is
    # processed narrow, half wide — both phases big enough to time.
    schedule = ReconfigSchedule(ReconfigPoint(after_joins=2, to_leaves=width))

    def run():
        # .detail: the ReconfigPausePoint (pause, phases); the common
        # BenchResult shape carries the raw wall points.
        return {
            backend: measure_reconfig_pause(
                prog,
                narrow,
                streams,
                backend=backend,
                schedule=schedule,
                config=BenchConfig(repeats=1 if QUICK else 2),
            ).detail
            for backend in ("threaded", "process")
        }

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    backends = list(points)
    text = render_table(
        "Elastic reconfiguration (quiesce + migrate + replay)",
        "backend",
        backends,
        {
            "clean s": [points[b].clean_wall_s for b in backends],
            "elastic s": [points[b].elastic_wall_s for b in backends],
            "overhead x": [points[b].overhead_ratio for b in backends],
            "migration ms": [points[b].migration_pause_s * 1e3 for b in backends],
            "phases": [
                "->".join(map(str, points[b].phase_widths)) for b in backends
            ],
        },
        note=(
            f"scale-out 2->{width} leaves at barrier 2; outputs verified "
            f"equal: {all(points[b].outputs_equal for b in backends)}"
        ),
    )
    publish("reconfig_pause", text)
    publish_json(
        "reconfig_pause",
        bench_record(
            "reconfig_pause",
            config={"quick": QUICK, "scale_out_to": width},
            metrics={
                b: {
                    "clean_wall_s": round(points[b].clean_wall_s, 4),
                    "elastic_wall_s": round(points[b].elastic_wall_s, 4),
                    "overhead_ratio": round(points[b].overhead_ratio, 3),
                    "migration_pause_ms": round(points[b].migration_pause_s * 1e3, 3),
                }
                for b in backends
            },
        ),
    )

    for b in backends:
        assert points[b].outputs_equal, f"{b}: elastic run diverged from clean run"
        assert points[b].reconfigs == 1
        assert points[b].attempts == 2
        # The driver-side stop-the-world slice is plan construction +
        # validity checking on toy-sized plans: bound it hard so a
        # regression (e.g. accidental stream copying) shows up.
        assert points[b].migration_pause_s < 0.5


def test_scale_out_throughput(benchmark):
    """Post-scale-out throughput >= pre-scale throughput on multi-core
    hosts (measured on CPU-bound updates via the process backend)."""
    QUICK = quick()
    prog, streams, narrow, width = _case(
        n_value_streams=4,
        values_per_barrier=30 if QUICK else 120,
        n_barriers=4 if QUICK else 6,
        spin=60 if QUICK else 250,
    )

    schedule = ReconfigSchedule(ReconfigPoint(after_joins=1, to_leaves=width))

    def run():
        return measure_reconfig_pause(
            prog,
            narrow,
            streams,
            backend="process",
            schedule=schedule,
            config=BenchConfig(repeats=1 if QUICK else 2),
        ).detail

    point = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "Scale-out throughput (CPU-bound updates, process backend)",
        "phase",
        [f"{w} leaves" for w in point.phase_widths],
        {"events/s": list(point.phase_throughputs_eps)},
        note=(
            f"cores={available_cores()}; scale-out at barrier 1; "
            f"outputs verified equal: {point.outputs_equal}"
        ),
    )
    publish("reconfig_scaleout", text)

    assert point.outputs_equal
    assert point.reconfigs == 1
    if available_cores() > 1 and not QUICK:
        pre = point.pre_scale_throughput_eps
        post = point.post_scale_throughput_eps
        assert post >= pre, (
            f"scaling 2->{width} leaves did not help on "
            f"{available_cores()} cores: {pre:.0f} -> {post:.0f} events/s"
        )
