"""Microbenchmarks of the core machinery (wall-clock, pytest-benchmark):
simulation kernel, mailbox selective reordering, plan generation and
validation, and the sequential spec executor.

These are not paper artifacts; they track the hot paths of every
simulated experiment in this repository.
"""

import random

from repro.core import DependenceRelation, Event, ImplTag
from repro.plans import is_p_valid, random_valid_plan, sequential_plan
from repro.runtime import Mailbox
from repro.sim import Simulator
from repro.apps import keycounter as kc


def test_sim_kernel_schedule_run(benchmark):
    def run():
        sim = Simulator()
        for i in range(2000):
            sim.schedule_at(float(i % 97), lambda: None)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 2000


def test_mailbox_insert_release(benchmark):
    uni = ["v", "b"]
    dep = DependenceRelation(uni, {"b": ["b", "v"]})
    v0, v1, b = ImplTag("v", 0), ImplTag("v", 1), ImplTag("b", "s")

    def run():
        mb = Mailbox([v0, v1, b], dep)
        released = 0
        for t in range(1, 500):
            released += len(mb.insert(v0, Event("v", 0, float(t)).order_key, t))
            released += len(mb.insert(v1, Event("v", 1, t + 0.5).order_key, t))
            if t % 50 == 0:
                released += len(mb.insert(b, Event("b", "s", t + 0.25).order_key, t))
            if t % 10 == 0:
                released += len(mb.advance(b, Event("b", "s", t + 0.26).order_key))
        return released

    assert benchmark(run) > 0


def test_sequential_spec_throughput(benchmark):
    prog = kc.make_program(4)
    rng = random.Random(0)
    tags = sorted(prog.tags, key=repr)
    events = [
        Event(tags[rng.randrange(len(tags))], 0, float(t)) for t in range(5000)
    ]

    def run():
        return len(prog.spec(events))

    assert benchmark(run) >= 0


def test_random_plan_generation_and_validation(benchmark):
    prog = kc.make_program(4)
    itags = [ImplTag(t, s) for t in sorted(prog.tags, key=repr) for s in range(3)]

    def run():
        plan = random_valid_plan(prog, itags, random.Random(42))
        return is_p_valid(plan, prog)

    assert benchmark(run)


def test_consistency_check_speed(benchmark):
    from repro.core import check_consistency

    prog = kc.make_program(2)
    rng = random.Random(1)
    tags = sorted(prog.tags, key=repr)
    events = [Event(tags[rng.randrange(len(tags))], 0, float(t)) for t in range(20)]

    def run():
        return check_consistency(
            prog, events, state_eq=kc.state_eq, rng=random.Random(5)
        ).ok

    assert benchmark(run)
