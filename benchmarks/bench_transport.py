"""Transport-layer benchmark: queue vs pipe vs TCP vs shared-memory
data planes x batch policies on the process runtime.

Not a paper artifact — the paper's speedup claims assume IPC is not
the bottleneck; this table measures exactly the transport choices that
make that true (framed raw pipes, TCP stream sockets, and fixed-slot
shared-memory rings vs ``multiprocessing.Queue``, fixed vs adaptive
batching, including the degenerate per-message batch=1 baseline that
shows what batching buys in the first place).  Outputs are
multiset-verified across every configuration, so no configuration can
look fast by dropping or corrupting messages.

Writes two records:

* ``BENCH_transport_matrix.json`` — the full policy matrix (ungated,
  trajectory only);
* ``BENCH_transport_modes.json`` — the queue/pipe/tcp/shm comparison
  the CI perf gate thresholds (``tcp_events_per_s`` and
  ``shm_events_per_s``, direction higher); the same-host sanity
  floors assert TCP and shm each stay within 2x of the pipe
  transport, so neither the distributed data plane nor the
  shared-memory fast path can silently rot.

``test_shm_slot_exhaustion_backpressure`` is a correctness rider, not
a measurement: a deliberately tiny ring must backpressure like the
pipe sender's non-blocking path (senders park batches and retry via
``on_block``) instead of deadlocking.
"""

from conftest import quick

from repro import RunOptions
from repro.apps import value_barrier as vb
from repro.bench import (
    BenchConfig,
    available_cores,
    bench_record,
    compare_transports,
    publish,
    publish_json,
    render_table,
)


def _workload(QUICK: bool):
    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=2 if QUICK else 4,
        values_per_barrier=250 if QUICK else 2500,
        n_barriers=2 if QUICK else 4,
    )
    return prog, vb.make_streams(wl), vb.make_plan(prog, wl)


def _desc(opts: RunOptions) -> str:
    return (
        f"transport={opts.transport} batch={opts.batch_size} "
        f"flush_ms={opts.flush_ms}"
    )


def test_transport_batching_matrix(benchmark):
    QUICK = quick()
    prog, streams, plan = _workload(QUICK)
    configs = {
        "queue fixed(1)": RunOptions(transport="queue", batch_size=1),
        "queue fixed(64)": RunOptions(transport="queue", batch_size=64),
        "pipe fixed(1)": RunOptions(transport="pipe", batch_size=1),
        "pipe fixed(64)": RunOptions(transport="pipe", batch_size=64),
        "pipe adaptive": RunOptions(transport="pipe"),
        "pipe adaptive 5ms": RunOptions(transport="pipe", flush_ms=5.0),
        "tcp fixed(64)": RunOptions(transport="tcp", batch_size=64),
        "tcp adaptive": RunOptions(transport="tcp"),
        "shm fixed(64)": RunOptions(transport="shm", batch_size=64),
        "shm adaptive": RunOptions(transport="shm"),
    }
    res = benchmark.pedantic(
        lambda: compare_transports(
            prog, plan, streams, configs=configs,
            config=BenchConfig(repeats=1 if QUICK else 2),
        ),
        rounds=1,
        iterations=1,
    )
    points = res.points
    labels = list(points)
    base = points["queue fixed(64)"].events_per_s
    text = render_table(
        "Transport x batch policy: wall-clock throughput (events/s)",
        "config",
        labels,
        {
            "events/s": [points[lb].events_per_s for lb in labels],
            "vs queue64": [
                points[lb].events_per_s / base if base > 0 else 0.0
                for lb in labels
            ],
        },
        note=(
            f"cores={available_cores()}, value-barrier, trivial updates; "
            "outputs multiset-verified across all configs"
        ),
    )
    publish("transport_batching_matrix", text)
    publish_json(
        "transport_matrix",
        bench_record(
            "transport_matrix",
            config={
                "quick": QUICK,
                "events": points["pipe adaptive"].events,
                "configs": {k: _desc(v) for k, v in configs.items()},
            },
            metrics={
                lb.replace(" ", "_"): round(points[lb].events_per_s)
                for lb in labels
            },
        ),
    )

    # Batching must matter: per-message IPC can never beat batched IPC
    # by more than noise.  This is a sanity floor, not a perf gate.
    assert points["pipe fixed(64)"].events_per_s >= 0.5 * max(
        p.events_per_s for p in points.values()
    ), "batch=64 pipe transport fell implausibly far behind; transport regression"


def test_transport_modes(benchmark):
    """The queue/pipe/tcp/shm comparison behind the deployment story:
    all four data planes on one communication-bound workload, fixed
    16-event batches, best-of-repeats.  Fixed small batches on purpose:
    adaptive batching grows frames until transport cost vanishes into
    protocol work and every data plane ties — a transport record must
    actually exercise the transport.

    Three guarantees ride on this record: the CI perf gate thresholds
    ``tcp_events_per_s`` and ``shm_events_per_s`` against the
    committed baseline (neither the TCP frame path nor the
    shared-memory ring may rot while nobody benchmarks them), and the
    same-host assertions that TCP and shm each stay within 2x of the
    pipe transport — loopback TCP pays a protocol tax over a raw pipe
    but with NODELAY and batched frames must remain the same order of
    magnitude, and the shm ring skips the kernel entirely so falling
    behind the pipe means its spin/backoff policy has regressed."""
    QUICK = quick()
    prog, streams, plan = _workload(QUICK)
    configs = {
        "queue": RunOptions(transport="queue", batch_size=16),
        "pipe": RunOptions(transport="pipe", batch_size=16),
        "tcp": RunOptions(transport="tcp", batch_size=16),
        "shm": RunOptions(transport="shm", batch_size=16),
    }
    res = benchmark.pedantic(
        # Best-of-2 even under --smoke: tcp_events_per_s is a gated
        # metric, so one unlucky scheduler slice must not become the
        # recorded capability.  metrics=True rides on every config so
        # the record carries p99 end-to-end latency per data plane.
        lambda: compare_transports(
            prog, plan, streams, configs=configs,
            config=BenchConfig(
                options=RunOptions(metrics=True),
                repeats=2 if QUICK else 3,
            ),
        ),
        rounds=1,
        iterations=1,
    )
    points = res.points
    labels = list(points)
    pipe_eps = points["pipe"].events_per_s
    tcp_eps = points["tcp"].events_per_s
    shm_eps = points["shm"].events_per_s
    ratio = tcp_eps / pipe_eps if pipe_eps > 0 else float("nan")
    shm_ratio = shm_eps / pipe_eps if pipe_eps > 0 else float("nan")
    text = render_table(
        "Data planes (fixed batch 16): wall-clock throughput (events/s)",
        "transport",
        labels,
        {
            "events/s": [points[lb].events_per_s for lb in labels],
            "vs pipe": [
                points[lb].events_per_s / pipe_eps if pipe_eps > 0 else 0.0
                for lb in labels
            ],
        },
        note=(
            f"cores={available_cores()}, value-barrier, trivial updates "
            "(communication-bound); outputs multiset-verified"
        ),
    )
    publish("transport_modes", text)
    publish_json(
        "transport_modes",
        bench_record(
            "transport_modes",
            config={
                "quick": QUICK,
                "events": points["tcp"].events,
                "configs": {k: _desc(v) for k, v in configs.items()},
            },
            metrics={
                "queue_events_per_s": round(points["queue"].events_per_s),
                "pipe_events_per_s": round(pipe_eps),
                "tcp_events_per_s": round(tcp_eps),
                "shm_events_per_s": round(shm_eps),
                "tcp_vs_pipe": round(ratio, 3),
                "shm_vs_pipe": round(shm_ratio, 3),
                # Closed-loop p99: committed-output time relative to the
                # source timeline — a drift detector for the data plane's
                # queueing behavior, not an offered-rate latency claim
                # (that's BENCH_latency_openloop.json).
                "pipe_p99_latency_s": round(res.metrics["pipe"]["p99_latency_s"], 4),
                "tcp_p99_latency_s": round(res.metrics["tcp"]["p99_latency_s"], 4),
                "shm_p99_latency_s": round(res.metrics["shm"]["p99_latency_s"], 4),
            },
            gate={
                "tcp_events_per_s": "higher",
                "shm_events_per_s": "higher",
                "pipe_p99_latency_s": "lower",
            },
        ),
    )

    assert tcp_eps >= 0.5 * pipe_eps, (
        f"tcp transport reached only {ratio:.2f}x the pipe transport's "
        "throughput on the same host (floor: 0.5x); the framed-socket "
        "hot path has regressed"
    )
    assert shm_eps >= 0.5 * pipe_eps, (
        f"shm transport reached only {shm_ratio:.2f}x the pipe "
        "transport's throughput (floor: 0.5x); the shared-memory ring "
        "skips the kernel entirely, so its spin/backoff policy has "
        "regressed"
    )


def test_shm_slot_exhaustion_backpressure():
    """Slot exhaustion must backpressure like the pipe sender's
    non-blocking path, not deadlock.

    An 8-slot x 128-byte ring is far smaller than one adaptive batch's
    frame, so every sender exhausts the ring constantly and parks
    batches via ``on_block`` exactly as the pipe transport does when
    the kernel buffer fills.  The run must still complete with the
    sequential spec's exact output multiset — throughput is allowed to
    be terrible; hanging or dropping events is not."""
    from repro.core.semantics import output_multiset
    from repro.runtime import run_on_backend
    from repro.runtime.runtime import run_sequential_reference

    prog = vb.make_program()
    wl = vb.make_workload(n_value_streams=2, values_per_barrier=60, n_barriers=3)
    streams, plan = vb.make_streams(wl), vb.make_plan(prog, wl)
    run = run_on_backend(
        "process", prog, plan, streams,
        options=RunOptions(
            transport="shm",
            extra={"transport_options": {"slots": 8, "slot_bytes": 128}},
        ),
    )
    assert output_multiset(run.outputs) == output_multiset(
        run_sequential_reference(prog, streams)
    )
