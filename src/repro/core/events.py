"""Event, heartbeat, and implementation-tag definitions (paper §3.1).

The paper models every input record as a quadruple ``(tg, id, ts, v)``:

* ``tg``  -- the *tag*, the only part visible to predicates and to the
  dependence relation.  Tags must be hashable and the tag universe must
  be finite (the implementation requirement stated in §3.1).
* ``id``  -- the input-stream identifier.  The pair ``(tg, id)`` is the
  *implementation tag* used for parallelization at the plan level.
* ``ts``  -- a timestamp, totally ordering events across streams (the
  order relation ``O``).
* ``v``   -- an opaque payload, used only by ``update`` functions.

Heartbeats (§3.4) carry a tag, stream id and timestamp but no payload;
they promise the absence of events with that implementation tag up to
the given timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator, NamedTuple

Tag = Hashable
StreamId = Hashable
Timestamp = int


class ImplTag(NamedTuple):
    """Implementation tag: the (tag, stream id) pair of §3.1."""

    tag: Tag
    stream: StreamId

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ImplTag({self.tag!r}@{self.stream!r})"


@dataclass(frozen=True, slots=True)
class Event:
    """A timestamped input event.

    ``order_key`` implements the total order ``O``: timestamps first,
    with (tag, stream) as a deterministic tie-break so that sorting the
    union of streams is reproducible.
    """

    tag: Tag
    stream: StreamId
    ts: Timestamp
    payload: Any = None

    @property
    def itag(self) -> ImplTag:
        return ImplTag(self.tag, self.stream)

    @property
    def order_key(self) -> tuple:
        return (self.ts, _stable_key(self.tag), _stable_key(self.stream))

    def is_heartbeat(self) -> bool:
        return False

    def __reduce__(self) -> tuple:
        # Explicit constructor-based pickling: frozen slots dataclasses
        # have no working default reduce on Python 3.10, and the plain
        # argument tuple is the compact wire form the process runtime
        # ships across OS-process boundaries.
        return (Event, (self.tag, self.stream, self.ts, self.payload))


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """A system event promising no more events of ``itag`` up to ``ts``."""

    tag: Tag
    stream: StreamId
    ts: Timestamp

    @property
    def itag(self) -> ImplTag:
        return ImplTag(self.tag, self.stream)

    @property
    def order_key(self) -> tuple:
        return (self.ts, _stable_key(self.tag), _stable_key(self.stream))

    def is_heartbeat(self) -> bool:
        return True

    def __reduce__(self) -> tuple:
        return (Heartbeat, (self.tag, self.stream, self.ts))


Record = Event | Heartbeat


def _stable_key(value: Hashable) -> tuple:
    """Map an arbitrary hashable onto a totally ordered key.

    Python cannot compare e.g. ``int`` and ``str`` directly; we prefix
    every value with its type name so heterogeneous tags still sort
    deterministically.
    """
    if isinstance(value, tuple):
        return ("tuple", tuple(_stable_key(v) for v in value))
    return (type(value).__name__, value)


def sort_streams(streams: Iterable[Iterable[Record]]) -> list[Event]:
    """The paper's ``sortO``: merge sorted streams, drop heartbeats.

    Streams need not be pre-sorted here; the result is the total order
    ``O`` over all non-heartbeat events.
    """
    merged: list[Event] = [
        rec  # type: ignore[misc]
        for stream in streams
        for rec in stream
        if not rec.is_heartbeat()
    ]
    merged.sort(key=lambda e: e.order_key)
    return merged


def stream_is_monotone(stream: Iterable[Record]) -> bool:
    """Check the Monotonicity property of Definition 3.3 for one stream."""
    prev: tuple | None = None
    for rec in stream:
        key = rec.order_key
        if prev is not None and key <= prev:
            return False
        prev = key
    return True


def check_valid_input_instance(streams: list[list[Record]]) -> list[str]:
    """Validate Definition 3.3; return a list of violation descriptions.

    (1) Monotonicity: each stream strictly increases in the order ``O``.
    (2) Progress: for every event ``x`` in stream ``i`` and every other
        stream ``j``, some record ``y`` of ``j`` satisfies ``x <O y``.
    """
    problems: list[str] = []
    for i, stream in enumerate(streams):
        if not stream_is_monotone(stream):
            problems.append(f"stream {i} is not strictly increasing under O")
    maxima = [
        max((rec.order_key for rec in stream), default=None) for stream in streams
    ]
    for i, stream in enumerate(streams):
        events = [rec for rec in stream if not rec.is_heartbeat()]
        if not events:
            continue
        last = max(rec.order_key for rec in events)
        for j, mx in enumerate(maxima):
            if j == i:
                continue
            if mx is None or mx <= last:
                problems.append(
                    f"progress violated: stream {j} never passes the last "
                    f"event of stream {i}"
                )
    return problems


def iter_stream_tags(streams: Iterable[Iterable[Record]]) -> Iterator[ImplTag]:
    seen: set[ImplTag] = set()
    for stream in streams:
        for rec in stream:
            if rec.itag not in seen:
                seen.add(rec.itag)
                yield rec.itag
