"""A real-thread execution of synchronization plans.

The simulated runtime measures performance; this module executes the
*same protocol* (selective-reordering mailboxes, join/fork worker state
machine, heartbeat relay) on actual ``threading`` threads with FIFO
queues — demonstrating that the design runs on a genuinely concurrent
substrate, and giving the test suite a second, independent
implementation to check against the sequential specification.

Python's GIL means this is about concurrency correctness, not speedup;
for multi-core parallelism see :mod:`repro.runtime.process`, which runs
the same :class:`~repro.runtime.protocol.WorkerCore` state machine on
OS processes.

Termination: producers enqueue all events plus closing heartbeats; a
global in-flight message counter reaches zero only when every queue has
drained and no handler is running, at which point stop sentinels are
delivered.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.errors import RuntimeFault
from ..core.program import DGSProgram
from ..plans.plan import SyncPlan
from ..plans.validity import assert_p_valid
from .checkpoint import Checkpoint, CheckpointPredicate
from .faults import CrashRecord, FaultPlan, WorkerCrash
from .metrics import MetricsConfig, RunMetrics, WorkerMetrics
from .quiesce import QuiesceRecord, QuiesceSignal
from .protocol import (
    INIT_STATE,
    OutputSink,
    RunStatsMixin,
    WorkerCore,
    end_timestamp,
    initial_leaf_states,
    paced_producer_schedule,
    paced_schedule_anchor,
    producer_messages,
)
from .runtime import InputStream

_STOP = object()


@dataclass
class ThreadedResult(RunStatsMixin):
    outputs: List[Any] = field(default_factory=list)
    joins: int = 0
    events_processed: int = 0
    events_in: int = 0
    wall_s: float = 0.0
    #: (order_key, value) log, populated only when record_keys is set.
    keyed_outputs: List[Any] = field(default_factory=list)
    checkpoints: List[Checkpoint] = field(default_factory=list)
    crashes: List[CrashRecord] = field(default_factory=list)
    #: Set when the root quiesced for elastic reconfiguration.
    quiesce: Optional[QuiesceRecord] = None
    #: Merged per-worker metrics when the metrics plane was enabled.
    metrics: Optional[RunMetrics] = None


class _Router:
    """Message fabric: per-worker FIFO queues + in-flight accounting."""

    def __init__(self) -> None:
        self.queues: Dict[str, "queue.Queue[Any]"] = {}
        self._inflight = 0
        self._lock = threading.Lock()
        self.idle = threading.Event()
        self.idle.set()  # vacuously idle until the first post
        self.crashed = threading.Event()
        self.crashes: List[CrashRecord] = []
        self.quiesced = threading.Event()
        self.quiesce: Optional[QuiesceRecord] = None

    def register(self, name: str) -> "queue.Queue[Any]":
        q: "queue.Queue[Any]" = queue.Queue()
        self.queues[name] = q
        return q

    def post(self, dst: str, msg: Any) -> None:
        with self._lock:
            self._inflight += 1
            self.idle.clear()
        self.queues[dst].put(msg)

    def done(self) -> None:
        with self._lock:
            self._inflight -= 1
            if self._inflight == 0:
                self.idle.set()

    def record_crash(self, record: CrashRecord) -> None:
        with self._lock:
            self.crashes.append(record)
        self.crashed.set()

    def record_quiesce(self, record: QuiesceRecord) -> None:
        with self._lock:
            self.quiesce = record
        self.quiesced.set()

    def stop_all(self) -> None:
        for q in self.queues.values():
            q.put(_STOP)


class _SharedSink(OutputSink):
    """Sink multiplexing every worker's outputs into one ThreadedResult."""

    __slots__ = ("result", "lock")

    def __init__(
        self, result: ThreadedResult, lock: threading.Lock, record_keys: bool = False
    ) -> None:
        self.result = result
        self.lock = lock
        self.record_keys = record_keys

    def emit(self, outs: Sequence[Any], key: Any = None) -> None:
        if outs:
            with self.lock:
                self.result.outputs.extend(outs)
                if self.record_keys:
                    self.result.keyed_outputs.extend((key, o) for o in outs)

    def checkpoint(self, ckpt: Checkpoint) -> None:
        with self.lock:
            self.result.checkpoints.append(ckpt)

    def count_event(self) -> None:
        with self.lock:
            self.result.events_processed += 1

    def count_events(self, n: int) -> None:
        with self.lock:
            self.result.events_processed += n

    def count_join(self) -> None:
        with self.lock:
            self.result.joins += 1


class _ThreadedWorker(threading.Thread):
    """One plan worker on its own thread — the WorkerCore state machine
    plus a blocking inbox loop.

    An injected :class:`WorkerCrash` turns the worker fail-stop: the
    crash is reported to the router and every subsequent message is
    silently absorbed (messages to a dead node are lost) until the stop
    sentinel arrives.
    """

    def __init__(
        self,
        core: WorkerCore,
        router: _Router,
    ) -> None:
        super().__init__(name=f"worker:{core.node.id}", daemon=True)
        self.core = core
        self.router = router
        self.inbox = router.register(core.node.id)
        self.crashed = False

    def run(self) -> None:
        while True:
            msg = self.inbox.get()
            if msg is _STOP:
                return
            try:
                if not self.crashed:
                    self.core.handle(msg)
            except WorkerCrash as crash:
                self.crashed = True
                self.router.record_crash(crash.record)
            except QuiesceSignal as sig:
                # Planned stop at a consistent snapshot (elastic
                # reconfiguration): go silent like a fail-stop; the
                # driver migrates the captured state to a new plan.
                self.crashed = True
                self.router.record_quiesce(sig.record)
            finally:
                self.router.done()


class ThreadedRuntime:
    """Run a DGS program on real threads (one per plan worker)."""

    def __init__(self, program: DGSProgram, plan: SyncPlan, *, validate: bool = True):
        self.program = program
        if validate:
            assert_p_valid(plan, program)
        self.plan = plan

    def run(
        self,
        streams: Sequence[InputStream],
        *,
        timeout_s: float = 60.0,
        initial_state: Any = INIT_STATE,
        checkpoint_predicate: Optional[CheckpointPredicate] = None,
        faults: Optional[FaultPlan] = None,
        record_keys: bool = False,
        reconfig: Any = None,
        metrics: Optional[MetricsConfig] = None,
        pace: Optional[float] = None,
    ) -> ThreadedResult:
        """Execute one attempt.

        The fault-injection parameters (``initial_state``,
        ``checkpoint_predicate``, ``faults``, ``record_keys``) default
        to the plain fail-free execution; the recovery driver
        (:mod:`repro.runtime.recovery`) sets them when replaying from a
        checkpoint, and the reconfiguration driver
        (:mod:`repro.runtime.reconfigure`) additionally arms
        ``reconfig=`` (a per-attempt
        :class:`~repro.runtime.quiesce.RootReconfigView`) on the root.
        A crashed or quiesced attempt *returns* (with ``crashes``
        non-empty / ``quiesce`` set and the output log truncated at
        whatever had been processed) rather than raising — deciding
        whether to recover or migrate is the driver's job, not the
        substrate's.
        """
        router = _Router()
        result = ThreadedResult()
        lock = threading.Lock()
        sink = _SharedSink(result, lock, record_keys=record_keys)
        if metrics is not None and metrics.epoch is None:
            # Latency origin: producers are released (just) below.
            metrics = metrics.with_epoch(time.time())
        workers = {
            n.id: _ThreadedWorker(
                WorkerCore(
                    n,
                    self.plan,
                    self.program,
                    router.post,
                    sink,
                    checkpoint_predicate=checkpoint_predicate,
                    faults=faults.view_for(n.id) if faults is not None else None,
                    reconfig=reconfig if n.id == self.plan.root.id else None,
                    metrics=WorkerMetrics(n.id, metrics) if metrics is not None else None,
                ),
                router,
            )
            for n in self.plan.workers()
        }
        leaf_states = initial_leaf_states(self.plan, self.program, initial_state)
        for leaf_id, state in leaf_states.items():
            workers[leaf_id].core.state = state
            workers[leaf_id].core.has_state = True
        for w in workers.values():
            w.start()

        # Producers: enqueue events and heartbeats in timestamp order
        # per stream (one virtual producer thread each is unnecessary —
        # per-itag FIFO into the owner's queue is what matters).
        t0 = time.perf_counter()
        end_ts = end_timestamp(streams)
        if pace is not None:
            # Open-loop pump: replay the merged schedule against the
            # wall clock at `pace` timestamp-units per second.
            sched = paced_producer_schedule(
                streams, lambda s: self.plan.owner_of(s.itag).id, end_ts
            )
            start = time.monotonic()
            # Anchor at the first event timestamp: workloads whose
            # timestamps start at T >> 0 would otherwise stall T/pace
            # seconds (heartbeating dead time) before the first event.
            ts0 = paced_schedule_anchor(sched)
            for ts, owner, msg in sched:
                due = start + (ts - ts0) / pace
                delay = due - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                router.post(owner, msg)
            result.events_in += sum(len(s.events) for s in streams)
        else:
            for stream in streams:
                owner = self.plan.owner_of(stream.itag).id
                for msg in producer_messages(stream, end_ts):
                    router.post(owner, msg)
                result.events_in += len(stream.events)

        deadline = time.monotonic() + timeout_s
        while True:
            if router.crashed.is_set() or router.quiesced.is_set():
                break
            if router.idle.wait(timeout=0.05):
                break
            if time.monotonic() > deadline:
                router.stop_all()
                raise RuntimeFault("threaded runtime did not drain in time")
        result.wall_s = time.perf_counter() - t0
        router.stop_all()
        for w in workers.values():
            w.join(timeout=5.0)
        result.crashes = list(router.crashes)
        result.quiesce = router.quiesce
        if metrics is not None:
            rm = RunMetrics(latency_buckets=metrics.latency_buckets)
            for w in workers.values():
                for snap in w.core.metrics.all_snapshots():
                    rm.absorb(snap)
            result.metrics = rm
        if not result.crashes and result.quiesce is None:
            for w in workers.values():
                if w.core.unprocessed():
                    raise RuntimeFault(
                        f"worker {w.core.node.id} ended with unprocessed items"
                    )
        return result
