"""The multi-node cluster runtime (repro.runtime.cluster): placement,
the registry handshake, and the full protocol — fault injection,
checkpoint recovery, and elastic reconfiguration — running unchanged
across node agents over TCP.

The differential shape mirrors tests/test_differential.py: every app,
outputs multiset-equal to the sequential specification; here the
execution is placed across two local node agents so every channel is a
real TCP connection established by the address-exchange handshake."""

import random

import pytest

from repro.apps import keycounter as kc
from repro.apps import value_barrier as vb
from repro.chaos import run_chaos_suite
from repro.core import Event, ImplTag
from repro.core.errors import RuntimeFault
from repro.core.semantics import output_multiset
from repro.plans import plan_width
from repro.runtime import (
    ClusterLauncher,
    CrashFault,
    FaultPlan,
    InputStream,
    NodeSpec,
    ReconfigPoint,
    ReconfigSchedule,
    RunOptions,
    every_root_join,
    local_nodes,
    resolve_placement,
    run_on_backend,
    run_sequential_reference,
)

from test_differential import ALL_APPS, _app_case, _elastic_app_case


def vb_case(n_value_streams=3, values_per_barrier=25, n_barriers=3):
    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=n_value_streams,
        values_per_barrier=values_per_barrier,
        n_barriers=n_barriers,
    )
    return prog, vb.make_streams(wl), vb.make_plan(prog, wl)


# ---------------------------------------------------------------------------
# Node specs and placement
# ---------------------------------------------------------------------------

class TestPlacement:
    def test_local_nodes_names_and_host(self):
        nodes = local_nodes(3)
        assert [n.name for n in nodes] == ["node0", "node1", "node2"]
        assert all(n.host == "127.0.0.1" for n in nodes)
        with pytest.raises(RuntimeFault):
            local_nodes(0)

    def test_round_robin_covers_every_worker(self):
        prog, _, plan = vb_case(n_value_streams=4)
        nodes = local_nodes(3)
        placement = resolve_placement(plan, nodes)
        assert set(placement) == {n.id for n in plan.workers()}
        counts = {}
        for node in placement.values():
            counts[node] = counts.get(node, 0) + 1
        # Round-robin over sorted ids: node loads differ by at most 1.
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_explicit_pins_honoured_and_rest_spread(self):
        prog, _, plan = vb_case(n_value_streams=3)
        nodes = local_nodes(2)
        root = plan.root.id
        placement = resolve_placement(plan, nodes, {root: "node1"})
        assert placement[root] == "node1"
        assert set(placement) == {n.id for n in plan.workers()}

    def test_unknown_node_rejected(self):
        prog, _, plan = vb_case()
        with pytest.raises(RuntimeFault, match="unknown node"):
            resolve_placement(plan, local_nodes(2), {plan.root.id: "node9"})

    def test_stale_worker_ids_ignored(self):
        # Elastic reconfiguration reshapes the worker set; pins on
        # retired workers must not wedge the new plan.
        prog, _, plan = vb_case()
        placement = resolve_placement(
            plan, local_nodes(2), {"retired-worker": "node0"}
        )
        assert "retired-worker" not in placement
        assert set(placement) == {n.id for n in plan.workers()}

    def test_duplicate_node_names_rejected(self):
        prog, _, plan = vb_case()
        with pytest.raises(RuntimeFault, match="duplicate"):
            resolve_placement(plan, [NodeSpec("a"), NodeSpec("a")], None)

    def test_nodes_require_tcp_data_plane(self):
        prog, streams, plan = vb_case(n_value_streams=2)
        with pytest.raises(RuntimeFault, match="TCP"):
            run_on_backend(
                "process", prog, plan, streams,
                options=RunOptions(nodes=2, transport="queue"),
            )

    def test_placement_without_nodes_rejected(self):
        # A pin with no nodes to place on would be silently ignored;
        # the backend must refuse it loudly instead.
        prog, streams, plan = vb_case(n_value_streams=2)
        with pytest.raises(RuntimeFault, match="needs\\s+nodes="):
            run_on_backend(
                "process", prog, plan, streams,
                options=RunOptions(placement={"w1": "node0"}),
            )

    def test_nodes_reject_unknown_extra_kwargs(self):
        # The single-host path forwards (or TypeErrors on) loose
        # kwargs; the cluster path must refuse them loudly rather
        # than silently change meaning between deployments.
        prog, streams, plan = vb_case(n_value_streams=2)
        with pytest.raises(RuntimeFault, match="extra substrate kwargs"):
            run_on_backend(
                "process", prog, plan, streams,
                options=RunOptions(nodes=2, extra={"bacth_size": 8}),
            )


class TestHandshakeHellos:
    """The cookie-authenticated hello layer: JSON only (never pickle),
    strays and mis-cookied peers rejected as None, well-formed hellos
    round-tripped."""

    def _pair(self):
        import socket as socket_mod

        return socket_mod.socketpair()

    def test_valid_hello_round_trips(self):
        from repro.runtime.cluster import _recv_hello, _send_blob

        a, b = self._pair()
        _send_blob(a, ["secret", "node0", ["127.0.0.1", 4242]])
        assert _recv_hello(b, "secret") == ["node0", ["127.0.0.1", 4242]]
        a.close(), b.close()

    def test_wrong_cookie_rejected(self):
        from repro.runtime.cluster import _recv_hello, _send_blob

        a, b = self._pair()
        _send_blob(a, ["wrong", "w1", "w2"])
        assert _recv_hello(b, "secret") is None
        a.close(), b.close()

    @pytest.mark.parametrize(
        "raw",
        [
            b"",  # peer closes immediately
            b"\x03\x00\x00\x00abc",  # not JSON
            b"\xff\xff\xff\x7fx",  # implausible length prefix
            b'\x0e\x00\x00\x00"just-a-string"',  # JSON, wrong shape
        ],
    )
    def test_garbage_hellos_rejected_not_crashed(self, raw):
        from repro.runtime.cluster import _recv_hello

        a, b = self._pair()
        a.sendall(raw)
        a.close()
        assert _recv_hello(b, "secret") is None
        b.close()

    def test_hellos_are_json_not_pickle(self):
        # A pickle payload must be rejected at the decode layer — the
        # handshake accepts bytes from unauthenticated peers, and
        # unpickling those would be code execution.
        import pickle
        import struct as struct_mod

        from repro.runtime.cluster import _recv_hello

        a, b = self._pair()
        blob = pickle.dumps(["secret", "w1", "w2"])
        a.sendall(struct_mod.pack("<I", len(blob)) + blob)
        a.close()
        assert _recv_hello(b, "secret") is None
        b.close()


# ---------------------------------------------------------------------------
# Plain cluster runs
# ---------------------------------------------------------------------------

class TestClusterRuns:
    def test_value_barrier_on_two_nodes_matches_spec(self):
        prog, streams, plan = vb_case()
        run = ClusterLauncher(prog, plan, nodes=2).run(streams)
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )
        assert run.transport == "tcp"
        assert run.nodes == 2
        assert run.n_workers == plan.size()

    def test_single_node_cluster_degenerates_cleanly(self):
        prog, streams, plan = vb_case(n_value_streams=2)
        run = ClusterLauncher(prog, plan, nodes=1).run(streams)
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )
        assert run.nodes == 1

    def test_everything_pinned_to_one_of_two_nodes(self):
        prog, streams, plan = vb_case(n_value_streams=2)
        pins = {n.id: "node0" for n in plan.workers()}
        run = ClusterLauncher(prog, plan, nodes=2, placement=pins).run(streams)
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )

    def test_options_round_trip_through_registry(self):
        prog, streams, plan = vb_case(n_value_streams=2)
        opts = RunOptions(nodes=2, batch_size=4)
        run = run_on_backend("process", prog, plan, streams, options=opts)
        assert run.raw.transport == "tcp"
        assert run.raw.nodes == 2
        assert run.raw.batch == "fixed(4)"

    @pytest.mark.parametrize("app", ALL_APPS)
    def test_all_apps_on_two_nodes_match_spec(self, app):
        """The six-app differential suite, unchanged, over the cluster
        data plane — Theorem 2.4's determinism up to reordering must
        not care that channels cross (logical) machine boundaries."""
        prog, streams, plan = _app_case(app)
        run = run_on_backend(
            "process", prog, plan, streams, options=RunOptions(nodes=2)
        )
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        ), f"{app}: cluster outputs diverged from the sequential spec"


# ---------------------------------------------------------------------------
# Faults, recovery, reconfiguration over the cluster
# ---------------------------------------------------------------------------

class TestClusterFaultTolerance:
    def test_crash_mid_frame_recovers_exactly_once(self):
        prog, streams, plan = vb_case(
            n_value_streams=3, values_per_barrier=30, n_barriers=4
        )
        leaf = plan.leaves()[0].id
        run = run_on_backend(
            "process", prog, plan, streams,
            options=RunOptions(
                nodes=2,
                batch_size=8,
                fault_plan=FaultPlan(CrashFault(leaf, after_events=37)),
                checkpoint_predicate=every_root_join(),
            ),
        )
        assert run.recovery is not None
        assert len(run.recovery.crashes) == 1
        assert run.recovery.attempts == 2
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        ), "crash over the cluster data plane broke exactly-once delivery"

    def test_root_crash_recovers_on_cluster(self):
        prog, streams, plan = vb_case(values_per_barrier=20, n_barriers=4)
        run = run_on_backend(
            "process", prog, plan, streams,
            options=RunOptions(
                nodes=2,
                fault_plan=FaultPlan(CrashFault(plan.root.id, after_events=2)),
                checkpoint_predicate=every_root_join(),
            ),
        )
        assert len(run.recovery.crashes) == 1
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )

    def test_reconfigure_mid_stream_on_cluster(self):
        prog, streams, plan = _elastic_app_case("value_barrier")
        w = plan_width(plan)
        mid = max(1, w // 2)
        points = [ReconfigPoint(after_joins=1, to_leaves=mid)]
        if mid >= 2:
            points.append(ReconfigPoint(after_joins=1, to_leaves=w))
        run = run_on_backend(
            "process", prog, plan, streams,
            options=RunOptions(
                nodes=2,
                reconfig_schedule=ReconfigSchedule(*points),
                timeout_s=60.0,
            ),
        )
        assert run.reconfig.reconfigured
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )

    def test_chaos_slice_over_tcp_cluster(self):
        """A small seeded chaos slice on the cluster data plane — the
        CI distributed-smoke lane runs the full smoke-sized version of
        exactly this sweep (python -m repro.chaos --smoke --transport
        tcp --nodes 2)."""
        summary = run_chaos_suite(
            n_cases=4, backends=("process",), transport="tcp", nodes=2
        )
        assert summary.ok, summary.describe()
        assert "tcp" in summary.describe()


class TestClusterLogs:
    def test_agents_write_lifecycle_logs_when_enabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_LOG_DIR", str(tmp_path))
        prog, streams, plan = vb_case(n_value_streams=2)
        ClusterLauncher(prog, plan, nodes=2).run(streams)
        names = {p.name for p in tmp_path.iterdir()}
        assert {"coordinator.log", "node0.log", "node1.log"} <= names
        node_log = (tmp_path / "node0.log").read_text()
        assert "registered" in node_log
        assert "all workers done" in node_log


# ---------------------------------------------------------------------------
# TCP single-host transport: keycounter differential (random plan)
# ---------------------------------------------------------------------------

class TestTcpTransportDifferential:
    def test_keycounter_random_plan_over_tcp(self):
        from repro.plans import random_valid_plan

        rng = random.Random(11)
        prog = kc.make_program(2)
        itags = []
        for k in range(2):
            itags.append(ImplTag(kc.inc_tag(k), f"i{k}"))
            itags.append(ImplTag(kc.reset_tag(k), f"r{k}"))
        events = {it: [] for it in itags}
        for t in range(1, 100):
            it = itags[rng.randrange(len(itags))]
            events[it].append(Event(it.tag, it.stream, float(t)))
        streams = [
            InputStream(it, tuple(events[it]), heartbeat_interval=5.0)
            for it in itags
        ]
        plan = random_valid_plan(prog, itags, random.Random(4))
        run = run_on_backend(
            "process", prog, plan, streams, options=RunOptions(transport="tcp")
        )
        assert run.raw.transport == "tcp"
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )
