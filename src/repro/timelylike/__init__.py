"""Mini Timely-Dataflow-style epoch-batched engine + the paper's
applications, including the feedback-loop fraud detector and the manual
page-view partitioning (§4.2, Appendix F)."""

from .apps import build_event_window_job, build_fraud_job, build_pageview_job, strip_ts
from .engine import StageDef, TimelyJob, TimelyResult, TimelyWorker

__all__ = [
    "StageDef",
    "TimelyJob",
    "TimelyResult",
    "TimelyWorker",
    "build_event_window_job",
    "build_fraud_job",
    "build_pageview_job",
    "strip_ts",
]
