"""Hypothesis property-based tests on the core invariants:

* mailbox: released dependent items are globally ordered by key; every
  item is released at most once; after full frontier advance nothing
  stays buffered;
* Theorem 2.4: for hypothesis-generated inputs, every random legal wire
  diagram's output multiset equals the sequential spec's;
* plans: generated plans are always P-valid and cover each itag once;
* end-to-end (Theorem 3.5): hypothesis-generated workloads through the
  simulated runtime match the spec;
* the same randomized differential sweep on the *real* substrates —
  threaded and process — with fixed seeds so failures reproduce
  exactly (the process runtime forks per case, so its sweep is seeded
  rather than hypothesis-driven to keep the case count bounded);
* adversarial traffic (zipf/flash/straggler/late) and the sessionize
  app under hypothesis-chosen parameters: the chaos derivation stays
  collision-free and the simulated runtime stays spec-identical.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import keycounter as kc
from repro.apps import sessionize as sz
from repro.chaos import ChaosCase, build_workload
from repro.core import (
    DependenceRelation,
    Event,
    ImplTag,
    evaluate,
    output_multiset,
    random_diagram,
)
from repro.plans import is_p_valid, plan_width, random_valid_plan, root_and_leaves_plan
from repro.runtime import (
    FluminaRuntime,
    InputStream,
    Mailbox,
    ReconfigPoint,
    ReconfigSchedule,
    RunOptions,
    run_on_backend,
    run_sequential_reference,
)

# -- strategies ---------------------------------------------------------------

UNI = ["v", "b"]
DEP = DependenceRelation(UNI, {"b": ["b", "v"]})
V0, V1, B = ImplTag("v", 0), ImplTag("v", 1), ImplTag("b", "s")

# A mailbox action: (itag index, is_heartbeat); timestamps are assigned
# monotonically per itag afterwards.
actions = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2), st.booleans()),
    min_size=1,
    max_size=60,
)


@st.composite
def keycounter_workload(draw):
    nkeys = draw(st.integers(min_value=1, max_value=3))
    n_events = draw(st.integers(min_value=5, max_value=60))
    choices = []
    for k in range(nkeys):
        choices += [kc.inc_tag(k), kc.reset_tag(k)]
    tags = draw(
        st.lists(
            st.sampled_from(choices), min_size=n_events, max_size=n_events
        )
    )
    events = [Event(tag, f"s{tag}", float(i + 1)) for i, tag in enumerate(tags)]
    return nkeys, events


# -- mailbox properties --------------------------------------------------------


@given(actions)
@settings(max_examples=60, deadline=None)
def test_mailbox_release_order_and_uniqueness(acts):
    itags = [V0, V1, B]
    mb = Mailbox(itags, DEP)
    clock = {t: 0.0 for t in itags}
    released = []
    inserted = 0
    for idx, is_hb in acts:
        itag = itags[idx]
        clock[itag] += 1.0
        key = Event(itag.tag, itag.stream, clock[itag]).order_key
        if is_hb:
            released += mb.advance(itag, key)
        else:
            released += mb.insert(itag, key, ("item", itag, clock[itag]))
            inserted += 1
    # Flush everything.
    for itag in itags:
        clock[itag] += 1000.0
        released += mb.advance(
            itag, Event(itag.tag, itag.stream, clock[itag]).order_key
        )
    # (1) everything inserted is released exactly once
    assert len(released) == inserted
    assert len({id(b.item) for b in released}) == inserted
    assert mb.buffered_count() == 0
    # (2) dependent items appear in key order
    for i, a in enumerate(released):
        for b in released[i + 1 :]:
            if DEP.itag_depends(a.itag, b.itag):
                assert a.key < b.key


# -- Theorem 2.4 ---------------------------------------------------------------


@given(keycounter_workload(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_theorem_2_4_random_diagrams(workload, seed):
    nkeys, events = workload
    prog = kc.make_program(nkeys)
    diagram = random_diagram(prog, events, random.Random(seed))
    result = evaluate(prog, diagram)
    assert output_multiset(result.outputs) == output_multiset(
        prog.spec(diagram.events())
    )


# -- plan generation -------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_random_plans_always_valid(nkeys, n_streams, seed):
    prog = kc.make_program(nkeys)
    itags = []
    for k in range(nkeys):
        for s in range(n_streams):
            itags.append(ImplTag(kc.inc_tag(k), f"i{k}.{s}"))
        itags.append(ImplTag(kc.reset_tag(k), f"r{k}"))
    plan = random_valid_plan(prog, itags, random.Random(seed))
    assert is_p_valid(plan, prog)
    assigned = sorted((t for n in plan.workers() for t in n.itags), key=repr)
    assert assigned == sorted(itags, key=repr)


# -- Theorem 3.5 (end to end) -----------------------------------------------------


@given(keycounter_workload(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_theorem_3_5_runtime_matches_spec(workload, seed):
    nkeys, events = workload
    prog = kc.make_program(nkeys)
    by_itag = {}
    for e in events:
        by_itag.setdefault(e.itag, []).append(e)
    streams = [
        InputStream(itag, tuple(evs), heartbeat_interval=7.0)
        for itag, evs in by_itag.items()
    ]
    itags = list(by_itag)
    plan = random_valid_plan(prog, itags, random.Random(seed))
    res = FluminaRuntime(prog, plan).run(streams)
    assert output_multiset(res.output_values()) == output_multiset(
        run_sequential_reference(prog, streams)
    )


# -- Theorem 3.5 on the real substrates -------------------------------------
#
# The same randomized workload/plan derivation as above, but executed on
# the threaded and process backends.  Seeds are fixed module constants:
# a failure names (backend, seed) and reruns with exactly the same
# workload, plan, and input interleaving.

def _seeded_keycounter_case(seed: int):
    rng = random.Random(seed)
    nkeys = rng.randint(1, 3)
    n_events = rng.randint(20, 60)
    prog = kc.make_program(nkeys)
    choices = []
    for k in range(nkeys):
        choices += [kc.inc_tag(k), kc.reset_tag(k)]
    by_itag = {}
    for i in range(n_events):
        tag = rng.choice(choices)
        itag = ImplTag(tag, f"s{tag}")
        by_itag.setdefault(itag, []).append(
            Event(tag, itag.stream, float(i + 1))
        )
    streams = [
        InputStream(itag, tuple(evs), heartbeat_interval=rng.choice((3.0, 7.0)))
        for itag, evs in by_itag.items()
    ]
    plan = random_valid_plan(prog, list(by_itag), random.Random(seed + 1))
    return prog, streams, plan


@pytest.mark.parametrize("backend", ["threaded", "process"])
@pytest.mark.parametrize("seed", [2, 71, 1009, 20260728])
def test_randomized_sweep_on_real_backends(backend, seed):
    prog, streams, plan = _seeded_keycounter_case(seed)
    run = run_on_backend(
        backend, prog, plan, streams, options=RunOptions(timeout_s=60.0)
    )
    assert output_multiset(run.outputs) == output_multiset(
        run_sequential_reference(prog, streams)
    ), f"{backend} diverged from spec for seed {seed}"


# -- elastic reconfiguration under random schedules ---------------------------
#
# Mirrors the fault-schedule sweep above: a strategy generates random
# reconfiguration schedules (trigger kind, firing point, target width,
# target shape) over a rooted single-key keycounter workload, checked
# against the sequential spec.  Hypothesis drives the cheap backend
# (sim); the process backend — which forks a cluster per phase — runs
# the same derivation from fixed seeds so the case count stays bounded
# and failures name their (backend, seed) exactly.


def _rooted_keycounter_case(seed: int):
    """A 1-key workload whose resets synchronize globally, on a plan
    with resets at the root — the sound shape for live re-planning."""
    rng = random.Random(seed)
    n_streams = rng.randint(2, 4)
    prog = kc.make_program(1)
    inc_itags = [ImplTag(kc.inc_tag(0), f"i{s}") for s in range(n_streams)]
    reset_itag = ImplTag(kc.reset_tag(0), "r")
    streams = []
    t = 0.0
    events_by_stream = {it: [] for it in inc_itags}
    for _ in range(rng.randint(15, 45)):
        t += rng.uniform(0.3, 1.2)
        it = rng.choice(inc_itags)
        events_by_stream[it].append(Event(it.tag, it.stream, round(t, 3)))
    for it in inc_itags:
        streams.append(
            InputStream(
                it, tuple(events_by_stream[it]),
                heartbeat_interval=rng.choice((2.0, 5.0)),
            )
        )
    n_resets = rng.randint(3, 5)
    span = max(t, 1.0)
    resets = tuple(
        Event(reset_itag.tag, "r", round(span * (i + 1) / (n_resets + 1) + 0.01, 3))
        for i in range(n_resets)
    )
    streams.append(InputStream(reset_itag, resets, heartbeat_interval=2.0))
    plan = root_and_leaves_plan(prog, [reset_itag], [[it] for it in inc_itags])
    return prog, streams, plan, n_resets


#: One schedule as plain data: ((trigger_kind, value), to_leaves, shape)
#: per point.  ReconfigPoint/ReconfigSchedule instances are built fresh
#: per execution — schedules record which points fired.
reconfig_schedule_specs = st.lists(
    st.tuples(
        st.one_of(
            st.tuples(st.just("after_joins"), st.integers(min_value=1, max_value=3)),
            st.tuples(
                st.just("at_ts"),
                st.floats(min_value=0.1, max_value=60.0, allow_nan=False),
            ),
        ),
        st.integers(min_value=1, max_value=6),
        st.sampled_from(("balanced", "chain")),
    ),
    min_size=1,
    max_size=2,
)


def _build_schedule(spec) -> ReconfigSchedule:
    points = []
    joins_floor = 0
    for (kind, value), to_leaves, shape in spec:
        if kind == "after_joins":
            # Strictly increasing so two points never collide on the
            # same root join within one attempt.
            joins_floor += value
            points.append(
                ReconfigPoint(after_joins=joins_floor, to_leaves=to_leaves, shape=shape)
            )
        else:
            points.append(
                ReconfigPoint(at_ts=value, to_leaves=to_leaves, shape=shape)
            )
    return ReconfigSchedule(*points)


@given(reconfig_schedule_specs, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_random_reconfig_schedules_match_spec(spec, seed):
    prog, streams, plan, _ = _rooted_keycounter_case(seed)
    run = run_on_backend(
        "sim", prog, plan, streams,
        options=RunOptions(reconfig_schedule=_build_schedule(spec)),
    )
    assert output_multiset(run.outputs) == output_multiset(
        run_sequential_reference(prog, streams)
    ), f"sim diverged under reconfiguration {spec} for seed {seed}"


@pytest.mark.parametrize("seed", [5, 97, 20260728])
def test_seeded_reconfig_sweep_on_process_backend(seed):
    """The process backend forks one cluster per plan phase, so its
    sweep runs from fixed seeds (failures reproduce exactly); the
    schedule is drawn from the same derivation rng as the workload."""
    prog, streams, plan, n_resets = _rooted_keycounter_case(seed)
    rng = random.Random(seed + 1)
    spec = []
    for _ in range(rng.randint(1, 2)):
        trigger = (
            ("after_joins", rng.randint(1, 2))
            if rng.random() < 0.5
            else ("at_ts", round(rng.uniform(1.0, 30.0), 3))
        )
        spec.append(
            (trigger, rng.randint(1, 5), rng.choice(("balanced", "chain")))
        )
    run = run_on_backend(
        "process",
        prog,
        plan,
        streams,
        options=RunOptions(
            reconfig_schedule=_build_schedule(spec), timeout_s=60.0
        ),
    )
    assert output_multiset(run.outputs) == output_multiset(
        run_sequential_reference(prog, streams)
    ), f"process diverged under reconfiguration {spec} for seed {seed}"
    # Each phase ran on a plan no wider than the program allows.
    assert all(
        1 <= plan_width(p) <= len(streams) - 1
        for p in run.reconfig.plan_history
    )


# -- adversarial workloads (Theorem 3.5 under hostile traffic) ----------------
#
# Hypothesis picks the traffic family, the app, and the derivation
# seed; the chaos harness turns that into streams + a rooted plan.  The
# invariants: the derivation never produces a timestamp collision (the
# total order O survives skew, bursts, stragglers, and bounded
# disorder), and the simulated runtime's outputs stay multiset-equal to
# the sequential spec.

ADVERSARIAL_FAMILIES = ("zipf", "flash", "straggler", "late")


@given(
    st.sampled_from(("value-barrier", "keycounter", "value-barrier-echo")),
    st.sampled_from(ADVERSARIAL_FAMILIES),
    st.integers(min_value=0, max_value=100_000),
)
@settings(max_examples=25, deadline=None)
def test_adversarial_derivations_match_spec_on_sim(app, family, seed):
    prog, streams, plan, _ = build_workload(
        ChaosCase(app, "sim", seed, workload=family)
    )
    ts = [e.ts for s in streams for e in s.events]
    assert len(ts) == len(set(ts)), (
        f"{family} derivation broke the total order for seed {seed}"
    )
    res = FluminaRuntime(prog, plan).run(streams)
    assert output_multiset(res.output_values()) == output_multiset(
        run_sequential_reference(prog, streams)
    ), f"sim diverged from spec under {family} traffic for seed {seed}"


@pytest.mark.parametrize("backend", ["threaded", "process"])
@pytest.mark.parametrize("family", ADVERSARIAL_FAMILIES)
def test_adversarial_sweep_on_real_backends(backend, family):
    """Fixed-seed slice of the same derivation on the real substrates
    (the chaos suite covers the fault/reconfig modes; this is the
    no-fault baseline)."""
    prog, streams, plan, _ = build_workload(
        ChaosCase("value-barrier", backend, 20260807, workload=family)
    )
    run = run_on_backend(
        backend, prog, plan, streams, options=RunOptions(timeout_s=60.0)
    )
    assert output_multiset(run.outputs) == output_multiset(
        run_sequential_reference(prog, streams)
    ), f"{backend} diverged from spec under {family} traffic"


# -- sessionize under hypothesis-chosen parameters ----------------------------


@st.composite
def sessionize_params(draw):
    n_keys = draw(st.integers(min_value=1, max_value=4))
    return (
        n_keys,
        draw(st.integers(min_value=2, max_value=30)),  # events_per_key
        draw(st.integers(min_value=2, max_value=6)),  # timeout_units
        draw(st.integers(min_value=0, max_value=10_000)),  # seed
        draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            )
        ),  # skew_alpha
    )


@given(sessionize_params(), st.integers(min_value=1, max_value=9))
@settings(max_examples=20, deadline=None)
def test_sessionize_runtime_matches_spec(params, n_shards):
    n_keys, events_per_key, timeout_units, seed, skew = params
    wl = sz.make_workload(
        n_keys=n_keys,
        events_per_key=events_per_key,
        timeout_units=timeout_units,
        seed=seed,
        skew_alpha=skew,
    )
    prog = sz.make_program(n_keys, timeout_ms=wl.timeout_ms)
    plan = sz.make_plan(prog, wl, n_shards=min(n_shards, n_keys))
    streams = sz.make_streams(wl)
    ref = run_sequential_reference(prog, streams)
    res = FluminaRuntime(prog, plan).run(streams)
    assert output_multiset(res.output_values()) == output_multiset(ref)
    # Exactly-once, completely drained: each activity is counted in
    # precisely one emitted session.
    n_acts = sum(len(v) for v in wl.act_streams.values())
    assert sum(o[4] for o in ref) == n_acts
