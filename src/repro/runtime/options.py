"""Uniform execution options for the runtime-backend registry.

The backend registry grew one keyword at a time — ``fault_plan=``,
``checkpoint_predicate=``, then ``reconfig_schedule=`` — each threaded
separately through every adapter and substrate.  :class:`RunOptions`
collapses that plumbing into one picklable value constructed once (at
:meth:`~repro.runtime.RuntimeBackend.run`) and passed through all
three substrates, so adding the next lifecycle feature means adding a
field here instead of widening five signatures.

Per-*attempt* values (``initial_state``, the root's
:class:`~repro.runtime.quiesce.RootReconfigView`) are deliberately not
fields: they change between recovery/reconfiguration attempts while a
``RunOptions`` describes the whole execution.

Fields typed ``Any`` to keep this module a leaf of the import graph
(the registry and the substrates both import it):

* ``fault_plan`` — a :class:`~repro.runtime.faults.FaultPlan`;
* ``checkpoint_predicate`` — a callable ``(event, count) -> bool``
  (see :mod:`repro.runtime.checkpoint`);
* ``reconfig_schedule`` — a
  :class:`~repro.runtime.reconfigure.ReconfigSchedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional


@dataclass
class RunOptions:
    """One execution's cross-substrate configuration.

    ``timeout_s`` of ``None`` means "substrate default" (60 s
    threaded, 120 s process).  The process substrate's transport knobs:

    * ``transport`` — ``"pipe"`` (framed raw pipes, the default),
      ``"queue"`` (the original ``multiprocessing.Queue`` fabric, kept
      as a measurable baseline), or ``"tcp"`` (the same frames over
      TCP stream sockets — the single-host form of the distributed
      data plane);
    * ``batch_size`` — ``None`` (default) selects *adaptive* batching
      (flush on size or latency deadline, per-channel targets driven
      by observed backlog); an explicit integer pins the old
      fixed-size policy;
    * ``flush_ms`` — the adaptive policy's latency deadline;
    * ``nodes`` — deploy across node agents instead of one process
      per worker (see :mod:`repro.runtime.cluster`): an int (that
      many loopback nodes) or a sequence of
      :class:`~repro.runtime.cluster.NodeSpec`; implies the TCP data
      plane;
    * ``placement`` — worker-id -> node-name pins for ``nodes=``
      deployments (unpinned workers are spread round-robin).

    The metrics plane (:mod:`repro.runtime.metrics`):

    * ``metrics`` — enable per-worker counters and latency histograms;
      the run result's ``metrics`` field carries the merged
      :class:`~repro.runtime.metrics.RunMetrics`;
    * ``latency_buckets`` — histogram upper bounds in seconds
      (``None`` selects the default geometric buckets);
    * ``metrics_port`` — in cluster (``nodes=``) mode, serve live
      Prometheus text on ``http://127.0.0.1:<port>/metrics`` from the
      coordinator (``0`` picks a free port);
    * ``pace`` — open-loop producer pacing: timestamp units replayed
      per wall-clock second (timestamps are milliseconds, so
      ``pace=1000.0`` replays in real time; ``None`` keeps the
      closed-loop as-fast-as-possible pump).

    ``extra`` holds substrate-specific passthrough kwargs (e.g. the
    sim's ``track_event_latency=``)."""

    fault_plan: Any = None
    checkpoint_predicate: Any = None
    reconfig_schedule: Any = None
    timeout_s: Optional[float] = None
    batch_size: Optional[int] = None
    transport: Optional[str] = None
    flush_ms: Optional[float] = None
    nodes: Any = None
    placement: Any = None
    record_keys: bool = False
    metrics: bool = False
    latency_buckets: Any = None
    metrics_port: Any = None
    pace: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def collect(cls, options: Optional["RunOptions"] = None, **kwargs: Any) -> "RunOptions":
        """Normalize an ``options=`` object plus loose keyword
        arguments into one ``RunOptions``.

        Non-``None`` keywords override the object's fields (so call
        sites can tweak a shared options value); a ``None`` keyword
        means *inherit* — it cannot clear a field the base object set
        (build a fresh ``RunOptions`` for that).  Unknown keywords land
        in ``extra`` and are forwarded verbatim to the substrate."""
        base = options if options is not None else cls()
        known = {f.name for f in fields(cls)} - {"extra"}
        overrides = {k: v for k, v in kwargs.items() if k in known and v is not None}
        extra = {**base.extra, **{k: v for k, v in kwargs.items() if k not in known}}
        out = replace(base, **overrides)
        out.extra = extra
        return out

    def with_timeout_default(self, default_s: float) -> float:
        return self.timeout_s if self.timeout_s is not None else default_s

    def metrics_config(self) -> Any:
        """The run's :class:`~repro.runtime.metrics.MetricsConfig`, or
        ``None`` when the metrics plane is off.  The substrate stamps
        the epoch just before releasing producers."""
        if not self.metrics:
            return None
        from .metrics import DEFAULT_LATENCY_BUCKETS, MetricsConfig

        buckets = (
            tuple(self.latency_buckets) if self.latency_buckets else DEFAULT_LATENCY_BUCKETS
        )
        return MetricsConfig(latency_buckets=buckets)

    def transport_kwargs(self) -> Dict[str, Any]:
        """The process substrate's transport configuration (compact
        form for ``ProcessRuntime(**...)``)."""
        out: Dict[str, Any] = {"batch_size": self.batch_size}
        if self.transport is not None:
            out["transport"] = self.transport
        if self.flush_ms is not None:
            out["flush_ms"] = self.flush_ms
        return out
