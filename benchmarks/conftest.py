"""Shared benchmark configuration.

Two equivalent ways to run the benchmarks on reduced axes:

* ``pytest benchmarks/bench_*.py --smoke`` — the CI fast path: shrinks
  every workload knob, marks all items with the ``smoke`` marker, and
  disables pytest-benchmark calibration so each file finishes in
  seconds;
* ``REPRO_BENCH_QUICK=1 pytest ...`` — the same reduction via the
  environment (kept for shells and older scripts).

The default (neither) runs the paper's full axes, e.g. the 1-20 node
parallelism sweep of Figures 4 and 8.

Benchmark modules read the reduction *lazily* — ``quick()`` /
``parallelism_levels()`` at module import time, which happens after
pytest has parsed ``--smoke`` — so a module-level ``QUICK = quick()``
in a ``bench_*.py`` file sees the flag.
"""

import glob
import os


def quick() -> bool:
    """True when benchmarks should run their reduced fast path."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def parallelism_levels() -> tuple:
    """The Figure 4/8 parallelism axis (reduced under quick/smoke)."""
    return (1, 4, 12) if quick() else (1, 4, 8, 12, 16, 20)


# NB: don't add module-level `QUICK = quick()`-style constants here —
# this conftest is imported before pytest parses --smoke, so they
# would silently ignore the flag.  Benchmark modules evaluate the
# functions at *their* import time (collection, after configure).
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_addoption(parser):
    # Only effective when a benchmarks/ path is given on the command
    # line (pytest loads this conftest early in that case); the tier-1
    # `pytest tests/` run never parses benchmark options.
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run every benchmark on its reduced fast path (CI smoke)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "smoke: benchmark smoke path, safe to run on every CI push"
    )
    if config.getoption("--smoke", default=False):
        os.environ["REPRO_BENCH_QUICK"] = "1"
        # Run each benchmarked callable once, skip calibration rounds.
        config.option.benchmark_disable = True


def pytest_collection_modifyitems(config, items):
    """Every benchmark supports the reduced path, so all items in this
    directory carry the ``smoke`` marker (enables ``-m smoke``
    selection in CI).  The hook sees the whole session's items, so
    match on this directory, not on file-name substrings."""
    import pytest

    bench_dir = os.path.dirname(os.path.abspath(__file__))
    for item in items:
        path = str(getattr(item, "fspath", ""))
        if os.path.dirname(os.path.abspath(path)) == bench_dir:
            item.add_marker(pytest.mark.smoke)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Dump every regenerated paper artifact into the terminal report
    (stdout of passing tests is captured by pytest, so without this the
    tables would only exist as files under benchmarks/results/)."""
    paths = sorted(glob.glob(os.path.join(_RESULTS_DIR, "*.txt")))
    if not paths:
        return
    tr = terminalreporter
    tr.section("reproduced paper artifacts (also in benchmarks/results/)")
    for path in paths:
        with open(path) as f:
            tr.write_line("")
            for line in f.read().rstrip().splitlines():
                tr.write_line(line)
