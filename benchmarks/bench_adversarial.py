"""Adversarial-workload benchmark: Zipf key skew vs uniform traffic on
the process runtime.

Not a paper figure — the paper's evaluation drives every app with
uniform arrival processes.  This bench measures the question the
adversarial layer (:mod:`repro.data.adversarial`) exists to ask: what
does realistic skew cost?  A Zipf(alpha) draw concentrates the shared
arrival process onto few streams, so one worker's mailbox carries most
of the traffic while the plan still pays full fork/join coordination
width.  Throughput should degrade gracefully — skew shifts load, it
must not collapse the runtime or corrupt outputs.

Every configuration replays the same aggregate arrival lattice (same
total events, same rate, same barrier schedule); only the stream
assignment changes, so the sweep isolates skew.  Outputs are
multiset-verified against the sequential spec on every point — a
configuration cannot look fast by dropping events.

Writes ``BENCH_adversarial.json``; the CI perf gate thresholds
``zipf_events_per_s`` (direction *higher*, the heaviest-skew point)
against the committed baseline, so a regression that only bites under
imbalance — a hot-stream backlog pile-up, a starved-join stall —
fails CI even though the uniform benches never see it.
"""

import time

from conftest import quick

from repro import RunOptions, run_on_backend
from repro.apps import value_barrier as vb
from repro.bench import (
    available_cores,
    bench_record,
    publish,
    publish_json,
    render_table,
)
from repro.core.events import Event, ImplTag
from repro.data.adversarial import assert_collision_free, zipf_streams
from repro.data.generators import ValueBarrierWorkload
from repro.runtime.runtime import run_sequential_reference
from repro.testing import compare_outputs

RATE_PER_MS = 10.0  # aggregate offered lattice; period = 0.1 ms
SEED = 20260807


def _skewed_workload(alpha: float, n_streams: int, n_events: int, n_barriers: int):
    """A value-barrier workload whose value events come from one shared
    Zipf(``alpha``) arrival process (``alpha=0`` is exactly uniform).

    Barriers sit on half-period phases of the same lattice — collision
    free against every value slot by construction — and the last one
    lands past the final value, so all ``n_events`` values are barriered
    and every configuration does identical logical work."""
    itags = tuple(ImplTag(vb.VALUE_TAG, f"v{s}") for s in range(n_streams))
    values = zipf_streams(
        itags,
        n_events=n_events,
        alpha=alpha,
        rate_per_ms=RATE_PER_MS,
        seed=SEED,
        payload_fn=lambda i: 1 + (i % 7),
    )
    period = 1.0 / RATE_PER_MS
    slots = sorted({(k + 1) * n_events // n_barriers for k in range(n_barriers)})
    barriers = tuple(
        Event(vb.BARRIER_TAG, "b", 1.0 + j * period + period / 2, k)
        for k, j in enumerate(slots)
    )
    family = dict(values)
    family[ImplTag(vb.BARRIER_TAG, "b")] = barriers
    assert_collision_free(family)
    wl = ValueBarrierWorkload(values, barriers, ImplTag(vb.BARRIER_TAG, "b"))
    prog = vb.make_program()
    return prog, vb.make_plan(prog, wl), vb.make_streams(wl)


def _measure(prog, plan, streams, *, repeats: int, timeout_s: float):
    """Best-of-``repeats`` wall-clock throughput; p50/p99 come from the
    winning run's metrics plane.  Outputs are spec-checked once."""
    spec = run_sequential_reference(prog, streams)
    best = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        run = run_on_backend(
            "process",
            prog,
            plan,
            streams,
            options=RunOptions(metrics=True, transport="pipe", timeout_s=timeout_s),
        )
        wall_s = time.perf_counter() - t0
        mismatch = compare_outputs(spec, run.outputs)
        assert mismatch is None, f"skewed run diverged from spec: {mismatch}"
        m = run.metrics
        assert m is not None
        cand = {
            "events_per_s": run.events_in / wall_s if wall_s > 0 else 0.0,
            "p50_latency_s": m.latency_percentile(50),
            "p99_latency_s": m.latency_percentile(99),
            "outputs": len(run.outputs),
        }
        if best is None or cand["events_per_s"] > best["events_per_s"]:
            best = cand
    return best


def test_zipf_skew_sweep(benchmark):
    QUICK = quick()
    n_streams = 2 if QUICK else 4
    n_events = 1200 if QUICK else 12000
    n_barriers = 3 if QUICK else 6
    # alpha=0 is the uniform control; 1.4 puts ~2/3 of all traffic on
    # the head stream of a 4-stream family (the gated worst case).
    alphas = (0.0, 0.8, 1.4)

    workloads = {a: _skewed_workload(a, n_streams, n_events, n_barriers) for a in alphas}

    def run():
        repeats = 2 if QUICK else 3
        return {a: _measure(*workloads[a], repeats=repeats, timeout_s=60.0) for a in alphas}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = [("uniform" if a == 0.0 else f"zipf({a})") for a in alphas]
    base = data[0.0]["events_per_s"]
    text = render_table(
        "Zipf key skew: wall-clock throughput and latency (process backend)",
        "workload",
        labels,
        {
            "events/s": [data[a]["events_per_s"] for a in alphas],
            "vs uniform": [data[a]["events_per_s"] / base if base > 0 else 0.0 for a in alphas],
            "p99 ms": [data[a]["p99_latency_s"] * 1e3 for a in alphas],
        },
        note=(
            f"cores={available_cores()}, value-barrier, {n_streams} streams, "
            f"{n_events} events on one shared lattice; outputs spec-verified"
        ),
    )
    publish("adversarial", text)
    worst = max(alphas)
    publish_json(
        "adversarial",
        bench_record(
            "adversarial",
            config={
                "quick": QUICK,
                "streams": n_streams,
                "events": n_events,
                "barriers": n_barriers,
                "alphas": list(alphas),
                "rate_per_ms": RATE_PER_MS,
                "seed": SEED,
            },
            metrics={
                "uniform_events_per_s": round(base),
                "zipf_events_per_s": round(data[worst]["events_per_s"]),
                "skew_throughput_ratio": round(
                    data[worst]["events_per_s"] / base if base > 0 else 0.0, 3
                ),
                "uniform_p99_latency_s": round(data[0.0]["p99_latency_s"], 5),
                "zipf_p99_latency_s": round(data[worst]["p99_latency_s"], 5),
            },
            gate={"zipf_events_per_s": "higher"},
        ),
    )

    for a in alphas:
        assert data[a]["outputs"] == n_barriers
        assert 0.0 <= data[a]["p50_latency_s"] <= data[a]["p99_latency_s"]
    # Graceful degradation floor: heavy skew halves the usable
    # parallelism, it must not collapse throughput by an order of
    # magnitude (that would mean the hot worker's backlog stalls joins).
    assert data[worst]["events_per_s"] > 0.2 * base, (
        f"Zipf(alpha={worst}) throughput fell to "
        f"{data[worst]['events_per_s'] / base:.2f}x of uniform (floor: 0.2x)"
    )
