"""Unit tests for repro.core.program (DGS program definitions)."""

import pytest

from repro.core import (
    DGSProgram,
    DependenceRelation,
    Event,
    ForkFn,
    Heartbeat,
    ProgramError,
    StateType,
    pred_of,
    single_state_program,
    true_pred,
)
from repro.apps import keycounter as kc


def _counter_program():
    return kc.make_program(2)


class TestProgramValidation:
    def test_keycounter_constructs(self):
        prog = _counter_program()
        assert prog.initial_type in prog.state_types
        assert len(prog.forks) == 1 and len(prog.joins) == 1

    def test_initial_pred_must_be_true(self):
        uni = ["a", "b"]
        dep = DependenceRelation.all_independent(uni)
        st = StateType("State0", pred_of(uni, ["a"]), lambda s, e: (s, []))
        with pytest.raises(ProgramError, match="pred_0"):
            DGSProgram(
                name="bad", tags=uni, depends=dep, state_types=[st], init=lambda: 0
            )

    def test_unknown_initial_type(self):
        uni = ["a"]
        dep = DependenceRelation.all_independent(uni)
        st = StateType("State0", true_pred(uni), lambda s, e: (s, []))
        with pytest.raises(ProgramError, match="initial"):
            DGSProgram(
                name="bad",
                tags=uni,
                depends=dep,
                state_types=[st],
                init=lambda: 0,
                initial_type="Nope",
            )

    def test_duplicate_state_type_rejected(self):
        uni = ["a"]
        dep = DependenceRelation.all_independent(uni)
        st = StateType("State0", true_pred(uni), lambda s, e: (s, []))
        with pytest.raises(ProgramError, match="duplicate"):
            DGSProgram(
                name="bad",
                tags=uni,
                depends=dep,
                state_types=[st, st],
                init=lambda: 0,
            )

    def test_fork_referencing_unknown_type_rejected(self):
        uni = ["a"]
        dep = DependenceRelation.all_independent(uni)
        st = StateType("State0", true_pred(uni), lambda s, e: (s, []))
        bad_fork = ForkFn("State0", "Missing", "State0", lambda s, p, q: (s, s))
        with pytest.raises(ProgramError, match="unknown state type"):
            DGSProgram(
                name="bad",
                tags=uni,
                depends=dep,
                state_types=[st],
                init=lambda: 0,
                forks=[bad_fork],
            )

    def test_universe_mismatch_rejected(self):
        uni = ["a"]
        dep = DependenceRelation.all_independent(["a", "b"])
        st = StateType("State0", true_pred(uni), lambda s, e: (s, []))
        with pytest.raises(ProgramError, match="universe"):
            DGSProgram(
                name="bad", tags=uni, depends=dep, state_types=[st], init=lambda: 0
            )


class TestLookups:
    def test_fork_join_lookup(self):
        prog = _counter_program()
        f = prog.fork_for("State0", "State0", "State0")
        j = prog.join_for("State0", "State0", "State0")
        assert f is prog.forks[0]
        assert j is prog.joins[0]
        assert prog.has_fork_join("State0", "State0", "State0")

    def test_missing_fork_raises(self):
        prog = _counter_program()
        with pytest.raises(ProgramError):
            prog.fork_for("State0", "State0", "Nope")

    def test_unknown_state_type_raises(self):
        prog = _counter_program()
        with pytest.raises(ProgramError):
            prog.state_type("Nope")


class TestSequentialSpec:
    def test_paper_example_sequence(self):
        # Input: i(1), i(2), r(1), i(2), r(1)  ->  outputs 1 then 0 for key 1.
        prog = kc.make_program(3)
        events = [
            Event(kc.inc_tag(1), 0, 1),
            Event(kc.inc_tag(2), 0, 2),
            Event(kc.reset_tag(1), 0, 3),
            Event(kc.inc_tag(2), 0, 4),
            Event(kc.reset_tag(1), 0, 5),
        ]
        assert prog.spec(events) == [(1, 1), (1, 0)]

    def test_spec_of_streams_merges_and_drops_heartbeats(self):
        prog = kc.make_program(2)
        s1 = [Event(kc.inc_tag(0), 0, 1), Event(kc.inc_tag(0), 0, 2)]
        s2 = [Heartbeat(kc.reset_tag(0), 1, 1), Event(kc.reset_tag(0), 1, 3)]
        assert prog.spec_of_streams([s1, s2]) == [(0, 2)]

    def test_spec_rejects_foreign_tags(self):
        prog = kc.make_program(1)
        with pytest.raises(ProgramError):
            prog.spec([Event(("x", 9), 0, 1)])

    def test_empty_input(self):
        prog = _counter_program()
        assert prog.spec([]) == []


class TestSingleStateConstructor:
    def test_single_state_program_shape(self):
        uni = ["a"]
        prog = single_state_program(
            name="trivial",
            tags=uni,
            depends=DependenceRelation.all_independent(uni),
            init=lambda: 0,
            update=lambda s, e: (s + 1, []),
            fork=lambda s, p, q: (s, 0),
            join=lambda a, b: a + b,
        )
        assert list(prog.state_types) == ["State0"]
        assert prog.spec([Event("a", 0, t) for t in range(3)]) == []
