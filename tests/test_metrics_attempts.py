"""Per-attempt metrics under faults and reconfiguration.

The paper's headline claims are about staying correct *through*
crashes and re-planning, so the metrics plane must not go dark exactly
there: every substrate's execution attempt reports its own RunMetrics
(`AttemptOutcome.metrics`), the drivers keep one snapshot per attempt
(`RecoveredRun.attempt_metrics`, `PhaseRecord.metrics`) and merge them
— with the recovery/elasticity counters stamped — into
``BackendRun.metrics``.

Also here: the cross-attempt merge primitives
(`MetricsSnapshot.add`, `RunMetrics.accumulate`,
`merge_attempt_metrics`), the overflow-aware percentile (+inf, never a
silent clamp), the attempt-labelled exporter, the AutoScaler's
metrics-plane backlog bridge, and the open-loop pacing anchor
regression (offset timestamps must not stall the producer).
"""

import dataclasses
import math
import time
import urllib.request

import pytest

from test_differential import ALL_APPS, _elastic_app_case

from repro.apps import value_barrier as vb
from repro.core.semantics import output_multiset
from repro.plans.morph import plan_width
from repro.runtime import (
    DEFAULT_LATENCY_BUCKETS,
    CrashFault,
    FaultPlan,
    InputStream,
    LatencyHistogram,
    MetricsExporter,
    MetricsSnapshot,
    ReconfigPoint,
    ReconfigSchedule,
    RunMetrics,
    RunOptions,
    every_root_join,
    local_nodes,
    run_on_backend,
    run_sequential_reference,
)
from repro.runtime.metrics import merge_attempt_metrics
from repro.runtime.quiesce import SCALE_IN, SCALE_OUT, WatermarkTrigger


def _fault_options(plan, streams, **kw):
    """A fault plan whose crash reliably fires mid-run with at least
    one checkpoint behind it: trigger just past the *second* root-owned
    (globally-synchronizing) event — the first root join has
    checkpointed by then — and pick a victim leaf whose own stream
    still has events at or after the trigger, so the crash actually
    fires on every app's workload shape."""
    root = plan.root.id
    sync = next(s for s in streams if plan.owner_of(s.itag).id == root)
    for idx in (1, 0):
        # Prefer the second sync event; fall back to the first for
        # workloads whose leaf events all precede it (a leaf is only
        # released past sync event k after that join's checkpoint, so
        # the crash always has a snapshot to recover from).
        at_ts = sync.events[idx].ts + 0.01
        victims = [
            plan.owner_of(s.itag).id
            for s in streams
            if plan.owner_of(s.itag).id != root
            and any(e.ts >= at_ts for e in s.events)
        ]
        if victims:
            break
    assert victims, "no leaf stream extends past the first sync event"
    kw.setdefault("timeout_s", 60.0)
    return RunOptions(
        fault_plan=FaultPlan(CrashFault(victims[0], at_ts=at_ts)),
        checkpoint_predicate=every_root_join(),
        metrics=True,
        **kw,
    )


def _check_recovering(run):
    rec = run.recovery
    assert rec is not None and rec.attempts >= 2
    assert run.metrics is not None
    # One snapshot per attempt, crashed attempts included.
    assert len(rec.attempt_metrics) == rec.attempts
    # The merged RunMetrics carries the recovery ledger...
    assert run.metrics.attempts == rec.attempts
    assert run.metrics.replayed_events == rec.replayed_events
    assert run.metrics.checkpoints_restored == len(rec.recoveries)
    # ...and totals consistent with the per-attempt sum.
    merged = run.metrics.merged()
    assert merged.events_processed == sum(
        m.merged().events_processed for m in rec.attempt_metrics
    )
    assert merged.joins_completed == sum(
        m.merged().joins_completed for m in rec.attempt_metrics
    )
    if merged.event_latency is not None:
        assert merged.event_latency.count == sum(
            m.merged().event_latency.count
            for m in rec.attempt_metrics
            if m.merged().event_latency is not None
        )


def _reconfig_options(plan, **kw):
    mid = max(1, plan_width(plan) // 2)
    kw.setdefault("timeout_s", 60.0)
    return RunOptions(
        reconfig_schedule=ReconfigSchedule(
            ReconfigPoint(after_joins=1, to_leaves=mid)
        ),
        checkpoint_predicate=every_root_join(),
        metrics=True,
        **kw,
    )


def _check_elastic(run):
    rec = run.reconfig
    assert rec is not None and rec.attempts >= 2
    assert run.metrics is not None
    assert len(rec.attempt_metrics) == rec.attempts
    # Every phase keeps its own snapshot — the per-shape load signal.
    assert all(p.metrics is not None for p in rec.phases)
    assert run.metrics.attempts == rec.attempts
    assert run.metrics.reconfigurations == len(rec.reconfigurations) >= 1
    assert run.metrics.migration_pause_s == pytest.approx(
        sum(s.pause_s for s in rec.reconfigurations)
    )
    merged = run.metrics.merged()
    assert merged.events_processed == sum(
        m.merged().events_processed for m in rec.attempt_metrics
    )


class TestFaultMatrix:
    """metrics=True + fault_plan= is never dark: every app, every
    substrate, snapshot counts match attempts, totals add up."""

    @pytest.mark.parametrize("app", ALL_APPS)
    def test_all_apps_threaded(self, app):
        prog, streams, plan = _elastic_app_case(app)
        run = run_on_backend(
            "threaded", prog, plan, streams, options=_fault_options(plan, streams)
        )
        _check_recovering(run)
        # Instrumented recovery is still spec-identical.
        ref = run_sequential_reference(prog, streams)
        assert output_multiset(run.outputs) == output_multiset(ref)

    @pytest.mark.parametrize("backend", ("sim", "process"))
    def test_other_substrates(self, backend):
        prog, streams, plan = _elastic_app_case("value_barrier")
        run = run_on_backend(
            backend, prog, plan, streams, options=_fault_options(plan, streams)
        )
        _check_recovering(run)

    def test_tcp_cluster(self):
        prog, streams, plan = _elastic_app_case("value_barrier")
        run = run_on_backend(
            "process",
            prog,
            plan,
            streams,
            options=_fault_options(
                plan, streams, nodes=local_nodes(2), timeout_s=120.0
            ),
        )
        _check_recovering(run)
        # The cluster assembles the whole tree's snapshots per attempt.
        workers = {n.id for n in plan.workers()}
        assert set(run.metrics.per_worker) == workers


class TestReconfigMatrix:
    @pytest.mark.parametrize("app", ALL_APPS)
    def test_all_apps_threaded(self, app):
        prog, streams, plan = _elastic_app_case(app)
        run = run_on_backend(
            "threaded", prog, plan, streams, options=_reconfig_options(plan)
        )
        _check_elastic(run)

    @pytest.mark.parametrize("backend", ("sim", "process"))
    def test_other_substrates(self, backend):
        prog, streams, plan = _elastic_app_case("pageview")
        run = run_on_backend(
            backend, prog, plan, streams, options=_reconfig_options(plan)
        )
        _check_elastic(run)

    def test_tcp_cluster(self):
        prog, streams, plan = _elastic_app_case("pageview")
        run = run_on_backend(
            "process",
            prog,
            plan,
            streams,
            options=_reconfig_options(
                plan, nodes=local_nodes(2), timeout_s=120.0
            ),
        )
        _check_elastic(run)


class TestMergePrimitives:
    def _snap(self, worker, events, lat=None):
        s = MetricsSnapshot(worker=worker, events_processed=events)
        if lat is not None:
            h = LatencyHistogram(DEFAULT_LATENCY_BUCKETS)
            h.observe(lat)
            s.event_latency = h
        return s

    def test_snapshot_add_sums_counters_and_merges_histograms(self):
        a = self._snap("w1", 10, lat=0.01)
        a.max_backlog = 3
        b = self._snap("w1", 7, lat=0.02)
        b.max_backlog = 9
        a.add(b)
        assert a.events_processed == 17
        assert a.max_backlog == 9  # high-water, not a sum
        assert a.event_latency.count == 2
        assert b.events_processed == 7  # other untouched

    def test_accumulate_vs_absorb(self):
        """absorb keeps the richest snapshot (within one attempt's
        live/final feed); accumulate sums (across attempts)."""
        rm1, rm2 = RunMetrics(), RunMetrics()
        rm1.absorb(self._snap("w1", 10))
        rm1.absorb(self._snap("w1", 4))  # stale: ignored
        rm2.absorb(self._snap("w1", 5))
        rm1.accumulate(rm2)
        assert rm1.per_worker["w1"].events_processed == 15
        assert rm2.per_worker["w1"].events_processed == 5

    def test_merge_attempt_metrics(self):
        rm1, rm2 = RunMetrics(), RunMetrics()
        rm1.absorb(self._snap("w1", 10))
        rm2.absorb(self._snap("w1", 5))
        total = merge_attempt_metrics([rm1, rm2])
        assert total.attempts == 2
        assert total.per_worker["w1"].events_processed == 15
        # Inputs are left untouched.
        assert rm1.per_worker["w1"].events_processed == 10
        assert merge_attempt_metrics([]) is None
        assert merge_attempt_metrics([None, None]) is None

    def test_recovery_counters_in_json_and_prometheus(self):
        rm = RunMetrics()
        rm.absorb(self._snap("w1", 10))
        assert "recovery" not in rm.to_json()  # plain run: no section
        rm.attempts = 3
        rm.replayed_events = 12
        js = rm.to_json()["recovery"]
        assert js["attempts"] == 3 and js["replayed_events"] == 12
        text = rm.prometheus_text()
        assert "repro_run_attempts 3.0" in text
        assert "repro_run_replayed_events 12.0" in text


class TestOverflowPercentile:
    def test_percentile_in_overflow_bucket_is_inf(self):
        h = LatencyHistogram((0.001, 0.01))
        h.observe(5.0)  # everything overflows
        assert math.isinf(h.percentile(50))
        assert h.overflow == 1

    def test_mixed_mass_clamps_only_below_overflow_rank(self):
        h = LatencyHistogram((0.001, 0.01))
        for _ in range(99):
            h.observe(0.005)
        h.observe(5.0)
        assert math.isfinite(h.percentile(50))  # within bounds
        assert h.percentile(50) <= 0.01
        assert math.isinf(h.percentile(100))  # the overflowed tail

    def test_overflow_exposed_in_json(self):
        h = LatencyHistogram(DEFAULT_LATENCY_BUCKETS)
        h.observe(1e9)
        s = MetricsSnapshot(worker="w1", event_latency=h)
        assert s.to_json()["event_latency"]["overflow"] == 1


class TestExporterAttemptLabels:
    def test_attempt_label_groups(self):
        exp = MetricsExporter(port=0).start()
        try:
            exp.begin_attempt()
            exp.update(MetricsSnapshot(worker="w1", events_processed=3))
            exp.begin_attempt()
            exp.update(MetricsSnapshot(worker="w1", events_processed=4))
            body = urllib.request.urlopen(
                f"http://127.0.0.1:{exp.port}/metrics", timeout=2
            ).read().decode()
        finally:
            exp.stop()
        assert 'repro_worker_events_processed{attempt="1",worker="w1"} 3.0' in body
        assert 'repro_worker_events_processed{attempt="2",worker="w1"} 4.0' in body
        # HELP/TYPE headers appear once per metric, not per attempt.
        assert body.count("# TYPE repro_worker_events_processed gauge") == 1

    def test_plain_runs_stay_unlabelled(self):
        exp = MetricsExporter(port=0)
        exp.update(MetricsSnapshot(worker="w1", events_processed=3))
        assert 'repro_worker_events_processed{worker="w1"} 3.0' in exp.render()
        assert "attempt=" not in exp.render()


class TestAutoScalerBacklogBridge:
    def test_windowed_high_water_triggers_scale_out(self):
        """A burst that drained before the join still counts as load:
        the metrics-plane high-water crosses the watermark even when
        the instantaneous depth at the join is zero."""
        t = WatermarkTrigger(high_watermark=10)
        assert t.reason_for(0, joins_seen=1) is None  # bare scalar: calm
        assert t.reason_for(0, joins_seen=1, backlog_hw=50) == SCALE_OUT

    def test_scale_in_needs_both_signals_low(self):
        t = WatermarkTrigger(high_watermark=100, low_watermark=2)
        assert t.reason_for(0, joins_seen=1) == SCALE_IN
        # A recent burst vetoes shedding width the run is about to need.
        assert t.reason_for(0, joins_seen=1, backlog_hw=30) is None

    def test_cooldown_still_applies(self):
        t = WatermarkTrigger(high_watermark=1, cooldown_joins=3)
        assert t.reason_for(99, joins_seen=2, backlog_hw=99) is None


class TestOpenLoopPacingAnchor:
    """Regression: ``due = start + ts/pace`` stalled ts0/pace seconds
    when the workload's timestamps do not start near 0.  The producers
    anchor at the schedule's first timestamp now."""

    def _offset_case(self, offset):
        prog = vb.make_program()
        wl = vb.make_workload(
            n_value_streams=2, values_per_barrier=10, n_barriers=2
        )
        streams = [
            InputStream(
                s.itag,
                tuple(
                    dataclasses.replace(e, ts=e.ts + offset) for e in s.events
                ),
                s.source_host,
                s.heartbeat_interval,
            )
            for s in vb.make_streams(wl)
        ]
        return prog, streams, vb.make_plan(prog, wl)

    @pytest.mark.parametrize("backend", ("threaded", "process"))
    def test_offset_timestamps_do_not_stall(self, backend):
        # Timestamps start at 10_000 units.  At pace=1000 the old
        # anchor would sleep 10s before the first event; the whole
        # paced span after anchoring is well under a second.
        prog, streams, plan = self._offset_case(10_000.0)
        t0 = time.monotonic()
        run = run_on_backend(
            backend,
            prog,
            plan,
            streams,
            options=RunOptions(pace=1000.0, timeout_s=30.0),
        )
        elapsed = time.monotonic() - t0
        assert len(run.outputs) == 2
        assert elapsed < 8.0, (
            f"paced producer stalled {elapsed:.1f}s — pacing is anchored "
            "at ts=0 instead of the schedule's first timestamp"
        )
