"""The Flumina-style DGS runtime (paper §3.4) plus checkpointing, a
sequential reference oracle, and the runtime-backend registry.

Three execution substrates run the same synchronization-plan protocol:

* ``sim`` — the simulated cluster (:class:`FluminaRuntime`), used for
  the paper's figures: models network cost, latency, utilization;
* ``threaded`` — one OS thread per worker (:class:`ThreadedRuntime`):
  real concurrency, GIL-bound throughput;
* ``process`` — one OS process per worker with batched channels
  (:class:`ProcessRuntime`): multi-core parallel speedup.

Benchmarks, examples, and tests select them uniformly through
:func:`get_backend` / :func:`run_on_backend`, which normalize each
substrate's native result into a :class:`BackendRun`.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from ..core.errors import NoCheckpointError, RecoveryUnsoundError, RuntimeFault
from ..core.program import DGSProgram
from ..plans.plan import SyncPlan
from .protocol import RunStatsMixin
from .checkpoint import (
    ByTimestampInterval,
    Checkpoint,
    EveryNthJoin,
    EveryRootJoin,
    by_timestamp_interval,
    every_nth_join,
    every_root_join,
    recover,
)
from .faults import (
    CrashFault,
    CrashRecord,
    DropHeartbeats,
    FaultPlan,
    WorkerCrash,
)
from .recovery import (
    AttemptOutcome,
    RecoveredRun,
    RecoveryStep,
    assert_recovery_sound,
    run_with_recovery,
    suffix_streams,
)
from .mailbox import Buffered, Mailbox
from .messages import (
    EventMsg,
    ForkStateMsg,
    HeartbeatMsg,
    JoinRequest,
    JoinResponse,
)
from .process import ProcessResult, ProcessRuntime
from .runtime import (
    FluminaRuntime,
    InputStream,
    RunResult,
    run_sequential_reference,
)
from .threaded import ThreadedResult, ThreadedRuntime
from .worker import RunCollector, WorkerActor, default_state_size


# ---------------------------------------------------------------------------
# Runtime backends: uniform selection across sim / threaded / process
# ---------------------------------------------------------------------------

@dataclass
class BackendRun(RunStatsMixin):
    """One execution, normalized across substrates.

    ``outputs`` is the flat list of output values (no timing tuples);
    ``wall_s`` is real wall-clock time for the threaded and process
    backends but *host* wall-clock of the simulation for ``sim`` — only
    compare wall times within the same backend family.  ``raw`` keeps
    the substrate's native result for backend-specific metrics.
    """

    backend: str
    outputs: List[Any] = field(default_factory=list)
    events_in: int = 0
    events_processed: int = 0
    joins: int = 0
    wall_s: float = 0.0
    raw: Any = None
    #: The RecoveredRun when the execution ran with fault_plan= (attempt
    #: count, crash records, recovery steps); None for plain runs.
    recovery: Any = None


class RuntimeBackend:
    """A named execution substrate for synchronization plans.

    Every backend takes two orthogonal fault-tolerance options:
    ``checkpoint_predicate=`` arms Appendix-D.2 snapshots at root
    joins, and ``fault_plan=`` injects crashes/drops and drives the
    restore-and-replay recovery loop (see
    :mod:`repro.runtime.recovery`).
    """

    name: str = "?"

    def run(
        self,
        program: DGSProgram,
        plan: SyncPlan,
        streams: Sequence[InputStream],
        *,
        fault_plan: Any = None,
        checkpoint_predicate: Any = None,
        **opts: Any,
    ) -> BackendRun:
        if fault_plan is None:
            return self._run_plain(
                program, plan, streams, checkpoint_predicate=checkpoint_predicate, **opts
            )

        def attempt(attempt_streams, initial_state):
            # Stateful predicates (EveryNthJoin's counter, ...) restart
            # per attempt on every substrate: the process backend forks
            # a pristine copy anyway, so give threaded/sim the same
            # semantics by deep-copying here.
            return self._attempt(
                program,
                plan,
                attempt_streams,
                initial_state,
                fault_plan,
                copy.deepcopy(checkpoint_predicate),
                **opts,
            )

        rec = run_with_recovery(attempt, program, plan, streams, fault_plan)
        return BackendRun(
            backend=self.name,
            outputs=rec.outputs,
            events_in=rec.events_in,
            events_processed=rec.events_processed,
            joins=rec.joins,
            wall_s=rec.wall_s,
            raw=rec,
            recovery=rec,
        )

    # -- substrate hooks -------------------------------------------------
    def _run_plain(self, program, plan, streams, *, checkpoint_predicate, **opts):
        raise NotImplementedError

    def _attempt(
        self, program, plan, streams, initial_state, fault_plan, checkpoint_predicate, **opts
    ) -> AttemptOutcome:
        raise NotImplementedError


class SimBackend(RuntimeBackend):
    """The simulated cluster: protocol + network/latency model."""

    name = "sim"

    def _run_plain(self, program, plan, streams, *, checkpoint_predicate=None, **opts):
        opts.pop("timeout_s", None)  # wall timeouts have no simulated analogue
        t0 = time.perf_counter()
        res = FluminaRuntime(
            program, plan, checkpoint_predicate=checkpoint_predicate, **opts
        ).run(streams)
        return BackendRun(
            backend=self.name,
            outputs=res.output_values(),
            events_in=res.events_in,
            events_processed=res.events_processed,
            joins=res.joins,
            wall_s=time.perf_counter() - t0,
            raw=res,
        )

    def _attempt(
        self, program, plan, streams, initial_state, fault_plan, checkpoint_predicate, **opts
    ):
        opts.pop("timeout_s", None)
        t0 = time.perf_counter()
        res = FluminaRuntime(
            program,
            plan,
            checkpoint_predicate=checkpoint_predicate,
            faults=fault_plan,
            record_keys=True,
            **opts,
        ).run(streams, initial_state=initial_state)
        return AttemptOutcome(
            outputs=res.output_values(),
            keyed_outputs=res.keyed_outputs,
            checkpoints=res.checkpoints,
            crashes=res.crashes,
            events_in=res.events_in,
            events_processed=res.events_processed,
            joins=res.joins,
            wall_s=time.perf_counter() - t0,
        )


class ThreadedBackend(RuntimeBackend):
    """One OS thread per plan worker (GIL-bound)."""

    name = "threaded"

    def _run_plain(
        self, program, plan, streams, *, timeout_s: float = 60.0,
        checkpoint_predicate=None, **opts,
    ):
        res = ThreadedRuntime(program, plan, **opts).run(
            streams, timeout_s=timeout_s, checkpoint_predicate=checkpoint_predicate
        )
        return BackendRun(
            backend=self.name,
            outputs=res.outputs,
            events_in=res.events_in,
            events_processed=res.events_processed,
            joins=res.joins,
            wall_s=res.wall_s,
            raw=res,
        )

    def _attempt(
        self, program, plan, streams, initial_state, fault_plan, checkpoint_predicate,
        *, timeout_s: float = 60.0, **opts,
    ):
        res = ThreadedRuntime(program, plan, **opts).run(
            streams,
            timeout_s=timeout_s,
            initial_state=initial_state,
            checkpoint_predicate=checkpoint_predicate,
            faults=fault_plan,
            record_keys=True,
        )
        return AttemptOutcome(
            outputs=res.outputs,
            keyed_outputs=res.keyed_outputs,
            checkpoints=res.checkpoints,
            crashes=res.crashes,
            events_in=res.events_in,
            events_processed=res.events_processed,
            joins=res.joins,
            wall_s=res.wall_s,
        )


class ProcessBackend(RuntimeBackend):
    """One OS process per plan worker, batched channels (multi-core)."""

    name = "process"

    def _run_plain(
        self, program, plan, streams, *, timeout_s: float = 120.0,
        batch_size: int = 64, checkpoint_predicate=None, **opts,
    ):
        rt = ProcessRuntime(program, plan, batch_size=batch_size, **opts)
        res = rt.run(
            streams, timeout_s=timeout_s, checkpoint_predicate=checkpoint_predicate
        )
        return BackendRun(
            backend=self.name,
            outputs=res.outputs,
            events_in=res.events_in,
            events_processed=res.events_processed,
            joins=res.joins,
            wall_s=res.wall_s,
            raw=res,
        )

    def _attempt(
        self, program, plan, streams, initial_state, fault_plan, checkpoint_predicate,
        *, timeout_s: float = 120.0, batch_size: int = 64, **opts,
    ):
        rt = ProcessRuntime(program, plan, batch_size=batch_size, **opts)
        res = rt.run(
            streams,
            timeout_s=timeout_s,
            initial_state=initial_state,
            checkpoint_predicate=checkpoint_predicate,
            faults=fault_plan,
            record_keys=True,
        )
        return AttemptOutcome(
            outputs=res.outputs,
            keyed_outputs=res.keyed_outputs,
            checkpoints=res.checkpoints,
            crashes=res.crashes,
            events_in=res.events_in,
            events_processed=res.events_processed,
            joins=res.joins,
            wall_s=res.wall_s,
        )


BACKENDS: Dict[str, RuntimeBackend] = {
    b.name: b for b in (SimBackend(), ThreadedBackend(), ProcessBackend())
}


def available_backends() -> Tuple[str, ...]:
    return tuple(sorted(BACKENDS))


def get_backend(name: str) -> RuntimeBackend:
    try:
        return BACKENDS[name]
    except KeyError:
        raise RuntimeFault(
            f"unknown runtime backend {name!r}; available: {available_backends()}"
        ) from None


def run_on_backend(
    name: str,
    program: DGSProgram,
    plan: SyncPlan,
    streams: Sequence[InputStream],
    **opts: Any,
) -> BackendRun:
    """Run a program + plan on the named backend (uniform entry point
    for benchmarks, examples, and tests)."""
    return get_backend(name).run(program, plan, streams, **opts)


__all__ = [
    "BACKENDS",
    "AttemptOutcome",
    "BackendRun",
    "Buffered",
    "ByTimestampInterval",
    "Checkpoint",
    "CrashFault",
    "CrashRecord",
    "DropHeartbeats",
    "EventMsg",
    "EveryNthJoin",
    "EveryRootJoin",
    "FaultPlan",
    "FluminaRuntime",
    "ForkStateMsg",
    "HeartbeatMsg",
    "InputStream",
    "JoinRequest",
    "JoinResponse",
    "Mailbox",
    "NoCheckpointError",
    "ProcessBackend",
    "ProcessResult",
    "ProcessRuntime",
    "RecoveredRun",
    "RecoveryStep",
    "RecoveryUnsoundError",
    "RunCollector",
    "RunResult",
    "RuntimeBackend",
    "SimBackend",
    "ThreadedBackend",
    "ThreadedResult",
    "ThreadedRuntime",
    "WorkerActor",
    "WorkerCrash",
    "assert_recovery_sound",
    "available_backends",
    "by_timestamp_interval",
    "default_state_size",
    "every_nth_join",
    "every_root_join",
    "get_backend",
    "recover",
    "run_on_backend",
    "run_sequential_reference",
    "run_with_recovery",
    "suffix_streams",
]
