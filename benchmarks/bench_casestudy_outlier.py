"""Case study A.1: outlier detection execution-time speedup, 1-8 nodes.

Paper result: DGS achieves near-linear speedup (7.3x at 8 nodes),
comparable to the handcrafted C++ cluster implementation (7.7x).
"""

from conftest import quick

from repro.apps import outlier as ol
from repro.bench import publish, render_table
from repro.runtime import FluminaRuntime
from repro.sim import Topology

QUICK = quick()
NODES = (1, 2, 4, 8)
# Large windows amortize the fixed ramp/drain overheads of a short
# simulation, mirroring the paper's long executions.
CONNS_PER_QUERY = 800 if QUICK else 2500
N_QUERIES = 2
RATE = 2000.0  # saturating offered rate -> execution-time measurement


def _run(n_nodes: int):
    prog = ol.make_program()
    conns, queries, qit = ol.synthetic_connections(
        n_streams=n_nodes,
        conns_per_query=CONNS_PER_QUERY,
        n_queries=N_QUERIES,
        rate_per_ms=RATE,
    )
    plan = ol.make_plan(prog, conns, qit)
    topo = Topology.cluster(n_nodes)
    rt = FluminaRuntime(prog, plan, topology=topo)
    res = rt.run(ol.make_streams(conns, queries, qit, heartbeat_interval=0.05))
    return res


def test_outlier_speedup(benchmark):
    def compute():
        results = {}
        for n in NODES:
            res = _run(n)
            # Execution time per input event normalizes stream count
            # (each node consumes its own stream, as in Reloaded).
            results[n] = res.duration_ms / res.events_in
        return results

    per_event = benchmark.pedantic(compute, rounds=1, iterations=1)
    speedups = {n: per_event[1] / per_event[n] for n in NODES}
    text = render_table(
        "Case study A.1 - Reloaded outlier detection: speedup vs nodes",
        "nodes",
        list(NODES),
        {
            "ms/event": [per_event[n] for n in NODES],
            "speedup": [speedups[n] for n in NODES],
        },
        note="paper: ~linear, 7.3x @8 (handcrafted C++: 7.7x @8)",
    )
    publish("casestudy_outlier", text)
    assert speedups[8] > 5.0, speedups
    assert speedups[4] > 2.8, speedups


def test_outlier_finds_injected_anomalies(benchmark):
    res = benchmark.pedantic(lambda: _run(4), rounds=1, iterations=1)
    outliers = [v for v, _, _ in res.outputs if v[0] == "outlier"]
    # ~1% of conns are 8-sigma anomalies; the global model must flag a
    # healthy number of them.
    n_conns = 4 * CONNS_PER_QUERY * N_QUERIES
    assert len(outliers) > 0.003 * n_conns
    assert all(score > ol.ZSCORE_THRESHOLD for _, _, score in outliers)
