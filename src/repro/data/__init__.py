"""Synthetic workload generators replacing the paper's generated and
recorded datasets (see the substitution table in DESIGN.md), plus the
adversarial shapes (Zipf skew, flash crowds, stragglers, late
arrivals) production traffic exhibits and the paper's inputs do not."""

from .adversarial import (
    assert_collision_free,
    flash_crowd_stream,
    late_stream,
    straggler_stream,
    zipf_rank_sequence,
    zipf_streams,
    zipf_weights,
)
from .generators import (
    PageViewWorkload,
    ValueBarrierWorkload,
    pageview_workload,
    uniform_stream,
    value_barrier_workload,
)

__all__ = [
    "PageViewWorkload",
    "ValueBarrierWorkload",
    "assert_collision_free",
    "flash_crowd_stream",
    "late_stream",
    "pageview_workload",
    "straggler_stream",
    "uniform_stream",
    "value_barrier_workload",
    "zipf_rank_sequence",
    "zipf_streams",
    "zipf_weights",
]
