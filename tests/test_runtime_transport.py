"""The fast-path transport layer (repro.runtime.transport + the frame
codec in repro.runtime.wire).

Four concerns:

* **Frame round-trips** — the pipe transport's byte format must
  reproduce every message exactly (type identity included): empty
  batches, >64 KiB state blobs, unicode tags/streams/payloads,
  non-finite timestamps, and adversarial interleavings that break the
  columnar run detection.

* **Fast path vs pickle fallback equivalence** — the struct-packed
  path and the pickle path must be observationally identical; seeded
  sweeps and hypothesis both drive mixed batches through the frame
  codec and the queue transport's tuple codec and compare.

* **Batch policy** — fixed vs adaptive flushing, backlog-driven
  target moves, deadline flushes.

* **End-to-end equivalence + crash-mid-frame recovery** — both
  transports run the full protocol to spec-identical outputs, and a
  worker crash landing in the middle of a batched frame still
  recovers to exactly-once output delivery.
"""

import math
import multiprocessing as mp
import os
import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import keycounter as kc
from repro.apps import value_barrier as vb
from repro.core import Event, ImplTag
from repro.core.errors import RuntimeFault
from repro.core.semantics import output_multiset
from repro.runtime import (
    CrashFault,
    FaultPlan,
    RunOptions,
    every_root_join,
    run_on_backend,
    run_sequential_reference,
)
from repro.runtime.messages import (
    EventMsg,
    EventRun,
    ForkStateMsg,
    HeartbeatMsg,
    JoinRequest,
    JoinResponse,
)
from repro.runtime.transport import (
    COORDINATOR,
    STOP,
    BatchPolicy,
    BatchingSender,
    ControlPlane,
    FrameReceiver,
    PipeTransport,
    QueueTransport,
    SharedMemoryTransport,
    SocketTransport,
    TRANSPORTS,
    make_transport,
    plan_edges,
    resolve_policy,
)
from repro.runtime.wire import (
    FRAME_LEN,
    batch_message_count,
    decode_batch,
    encode_batch,
    pack_frame,
    unpack_frame,
)


def vb_case(n_value_streams=3, values_per_barrier=25, n_barriers=4):
    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=n_value_streams,
        values_per_barrier=values_per_barrier,
        n_barriers=n_barriers,
    )
    return prog, vb.make_streams(wl), vb.make_plan(prog, wl)


def assert_same_messages(actual, expected):
    """Message-list equality that is NaN-tolerant and type-exact."""
    assert len(actual) == len(expected)
    for a, e in zip(actual, expected):
        assert repr(a) == repr(e)
        assert type(a) is type(e)


def roundtrip(msgs):
    return unpack_frame(pack_frame(msgs))


def expand_runs(msgs):
    """Normalize a framed-receiver delivery (columnar runs interleaved
    with plain messages) back to the per-event message sequence."""
    out = []
    for m in msgs:
        if type(m) is EventRun:
            out.extend(EventMsg(e) for e in m.events())
        else:
            out.append(m)
    return out


class SubclassedTag(str):
    """Module-level str subclass (the frame codec's pickle fallback
    needs it importable): equal to its base value, distinct in type."""


# ---------------------------------------------------------------------------
# Frame round-trips
# ---------------------------------------------------------------------------

class TestFrameRoundTrips:
    def test_empty_batch(self):
        assert pack_frame([]) == b"\x00\x00\x00\x00"
        assert unpack_frame(pack_frame([])) == []

    def test_hot_path_event_run(self):
        msgs = [
            EventMsg(Event("value", "v0", float(i), payload=i * 3))
            for i in range(500)
        ]
        assert_same_messages(roundtrip(msgs), msgs)
        # A run compresses: route once + 16 bytes per event, far below
        # the tuple-pickle encoding.
        assert len(pack_frame(msgs)) < len(pickle.dumps(encode_batch(msgs)))

    def test_all_event_shapes(self):
        msgs = [
            EventMsg(Event("v", "s", 1.0, payload=7)),       # float ts, int
            EventMsg(Event("v", "s", 2.0, payload=None)),    # float ts, None
            EventMsg(Event("v", "s", 3, payload=9)),         # int ts, int
            EventMsg(Event("v", "s", 4.0, payload=0.5)),     # float ts, float
            EventMsg(Event("v", 3, 5.0, payload=1)),         # int stream
        ]
        back = roundtrip(msgs)
        assert_same_messages(back, msgs)
        # type identity of the int-ts event survives
        assert type(back[2].event.ts) is int

    def test_large_state_blob_over_64k(self):
        blob = {"state": b"x" * (1 << 17), "keys": list(range(500))}
        msgs = [
            JoinResponse(("w1", 1), "left", blob, 1.0, 3),
            ForkStateMsg(("w1", 1), blob, 1.0),
        ]
        back = roundtrip(msgs)
        assert back[0].state == blob
        assert back[1].state == blob

    def test_unicode_tags_streams_payloads(self):
        msgs = [
            EventMsg(Event("ключ-☃", "流-💡", 3.25, payload="naïve\n\t\0')")),
            HeartbeatMsg(
                ImplTag("ключ-☃", "流-💡"),
                (4.0, ("str", "ключ-☃"), ("str", "流-💡")),
            ),
            JoinRequest(("wörker", 3), ImplTag("b", "s"), (2.5,), "wörker", "left"),
        ]
        back = roundtrip(msgs)
        assert_same_messages(back, msgs)
        assert back[0].event.itag == ImplTag("ключ-☃", "流-💡")

    def test_inf_nan_timestamps(self):
        msgs = [
            EventMsg(Event("v", "s", float("inf"), payload=1)),
            EventMsg(Event("v", "s", float("-inf"), payload=2)),
            EventMsg(Event("v", "s", float("nan"), payload=3)),
            HeartbeatMsg(
                ImplTag("v", "s"), (float("inf"), ("str", "v"), ("str", "s"))
            ),
        ]
        back = roundtrip(msgs)
        assert back[0].event.ts == float("inf")
        assert back[1].event.ts == float("-inf")
        assert math.isnan(back[2].event.ts)
        assert back[3].key[0] == float("inf")

    def test_run_broken_by_shape_and_route_changes(self):
        # Adversarial interleaving: every neighbour differs in stream,
        # shape, or type — runs of length 1 everywhere.
        msgs = []
        for i in range(50):
            msgs.append(EventMsg(Event("v", "s%d" % (i % 3), float(i), payload=i)))
            msgs.append(EventMsg(Event("v", "s0", float(i) + 0.5, payload=None)))
            msgs.append(EventMsg(Event("v", "s0", i, payload=i)))
        assert_same_messages(roundtrip(msgs), msgs)

    def test_bool_stream_never_collides_with_int_stream(self):
        # True == 1 and hash(True) == hash(1): neither the route cache
        # nor the columnar run scan may treat a bool stream as its int
        # twin (regression test).
        msgs = [
            EventMsg(Event("v", 1, 1.0, payload=2)),
            EventMsg(Event("v", True, 2.0, payload=3)),
            EventMsg(Event("v", 1, 3.0, payload=4)),
            HeartbeatMsg(ImplTag("v", True), (4.0, ("str", "v"), ("int", True))),
        ]
        back = roundtrip(msgs)
        assert_same_messages(back, msgs)
        assert type(back[0].event.stream) is int
        assert type(back[1].event.stream) is bool
        assert type(back[2].event.stream) is int
        assert type(back[3].itag.stream) is bool

    def test_str_subclass_tag_never_collides_with_str_tag(self):
        # A str subclass compares (and hashes) equal to its base
        # value: neither the route cache nor the columnar run scan may
        # let it ride the plain-str fast path, which would decode it
        # as plain str and break exact-type round-trips.
        msgs = [
            EventMsg(Event("v", "s", 1.0, payload=1)),
            EventMsg(Event(SubclassedTag("v"), "s", 2.0, payload=2)),
            EventMsg(Event("v", "s", 3.0, payload=3)),
        ]
        back = roundtrip(msgs)
        assert_same_messages(back, msgs)
        assert type(back[0].event.tag) is str
        assert type(back[1].event.tag) is SubclassedTag
        assert type(back[2].event.tag) is str

    def test_type_identity_of_exotic_payloads(self):
        msgs = [
            EventMsg(Event("v", "s", 1.0, payload=True)),     # bool, not int
            EventMsg(Event("v", "s", 2.0, payload=2**100)),   # > i64
            EventMsg(Event("v", "s", 3.0, payload=-(2**80))),
            EventMsg(Event("v", 2**70, 4.0, payload=1)),      # > i64 stream
            EventMsg(Event(("compound", 1), "s", 5, payload={"k": [1]})),
        ]
        back = roundtrip(msgs)
        assert_same_messages(back, msgs)
        assert type(back[0].event.payload) is bool
        assert back[1].event.payload == 2**100

    def test_truncated_and_corrupt_frames_raise(self):
        msgs = [EventMsg(Event("v", "s", float(i), payload=i)) for i in range(20)]
        data = pack_frame(msgs)
        for cut in (2, 5, len(data) // 2, len(data) - 1):
            with pytest.raises(RuntimeFault):
                unpack_frame(data[:cut])
        with pytest.raises(RuntimeFault):
            unpack_frame(data + b"\x00")  # trailing garbage
        with pytest.raises(RuntimeFault):
            unpack_frame(b"\x01\x00\x00\x00\xff")  # unknown message kind


# ---------------------------------------------------------------------------
# Fast path vs pickle fallback equivalence
# ---------------------------------------------------------------------------

def random_message(rng: random.Random):
    tags = ["v", "barrier", "ключ", ("compound", 2), 7]
    streams = ["s0", "s1", 0, 3, "流"]
    payloads = [
        None,
        rng.randrange(-(2**66), 2**66),
        rng.random(),
        "p%d" % rng.randrange(100),
        (1, ("nested", rng.random())),
        {"k": rng.randrange(10)},
        True,
        float("nan"),
    ]
    ts = rng.choice([float(rng.randrange(100)), rng.randrange(100), rng.random()])
    tag = rng.choice(tags)
    stream = rng.choice(streams)
    kind = rng.randrange(5)
    if kind == 0:
        return EventMsg(Event(tag, stream, ts, rng.choice(payloads)))
    if kind == 1:
        key = (ts, ("str", str(tag)), ("str", str(stream)))
        return HeartbeatMsg(ImplTag(tag, stream), key)
    if kind == 2:
        return JoinRequest(("w%d" % rng.randrange(5), rng.randrange(9)),
                           ImplTag(tag, stream), (ts,), "root", "left")
    if kind == 3:
        return JoinResponse(("w1", rng.randrange(9)), "right",
                            rng.choice(payloads), 1.0, rng.randrange(5))
    return ForkStateMsg(("w2", rng.randrange(9)), rng.choice(payloads), 1.0)


class TestFastPathPickleEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 20260728])
    def test_seeded_mixed_batches(self, seed):
        rng = random.Random(seed)
        for _ in range(20):
            msgs = [random_message(rng) for _ in range(rng.randrange(0, 60))]
            framed = roundtrip(msgs)
            tupled = decode_batch(
                pickle.loads(pickle.dumps(encode_batch(msgs)))
            )
            assert_same_messages(framed, msgs)
            assert_same_messages(tupled, msgs)
            assert_same_messages(framed, tupled)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["v", "b", "ключ-☃"]),
                st.one_of(st.integers(-5, 5), st.sampled_from(["s0", "流"])),
                st.one_of(
                    st.integers(-(2**70), 2**70),
                    st.floats(allow_nan=True, allow_infinity=True),
                ),
                st.one_of(
                    st.none(),
                    st.booleans(),
                    st.integers(-(2**70), 2**70),
                    st.floats(allow_nan=True, allow_infinity=True),
                    st.text(max_size=8),
                ),
            ),
            max_size=40,
        )
    )
    def test_hypothesis_event_batches(self, specs):
        msgs = [EventMsg(Event(t, s, ts, p)) for (t, s, ts, p) in specs]
        framed = roundtrip(msgs)
        tupled = decode_batch(pickle.loads(pickle.dumps(encode_batch(msgs))))
        assert_same_messages(framed, msgs)
        assert_same_messages(framed, tupled)


# ---------------------------------------------------------------------------
# Batch policy
# ---------------------------------------------------------------------------

class _FakeControl:
    """In-process stand-in for ControlPlane: records accounting and
    serves a scripted backlog to the adaptive policy."""

    def __init__(self):
        self.inflight = 0
        self.scripted_backlog = 0

    def add_inflight(self, n):
        self.inflight += n

    def mark_done(self, n):
        self.inflight -= n

    def backlog(self):
        return self.scripted_backlog


class TestBatchPolicy:
    def test_resolve_policy_mapping(self):
        assert resolve_policy(8, None).describe() == "fixed(8)"
        assert resolve_policy(None, None).adaptive
        assert resolve_policy(None, 5.0).deadline_s == pytest.approx(0.005)

    def test_flush_ms_zero_means_flush_immediately(self):
        # 0 is the tightest deadline, not "no deadline" (regression
        # test for the falsy-zero trap).
        policy = resolve_policy(None, 0.0)
        assert policy.deadline_s == 0.0
        sent = []
        sender = BatchingSender(
            lambda dst, batch: sent.append(len(batch)), _FakeControl(), policy
        )
        sender.post("w1", 1)
        sender.post("w1", 2)
        assert sent == [1, 1], "flush_ms=0 must flush every post immediately"

    def test_invalid_bounds_rejected(self):
        with pytest.raises(RuntimeFault):
            BatchPolicy(
                adaptive=True, start_batch=4, min_batch=8, max_batch=16,
                deadline_ms=1.0,
            )

    def test_fixed_policy_flushes_at_size_only(self):
        sent = []
        control = _FakeControl()
        sender = BatchingSender(
            lambda dst, batch: sent.append((dst, list(batch))),
            control,
            BatchPolicy.fixed(4),
        )
        for i in range(10):
            sender.post("w1", i)
        assert [len(b) for _, b in sent] == [4, 4]
        assert sender.pending() == 2
        sender.flush()
        assert [len(b) for _, b in sent] == [4, 4, 2]
        assert control.inflight == 10

    def test_adaptive_target_grows_under_backlog(self):
        sent = []
        control = _FakeControl()
        policy = BatchPolicy.adaptive_policy(
            start_batch=4, min_batch=2, max_batch=16, deadline_ms=None
        )
        sender = BatchingSender(
            lambda dst, batch: sent.append(len(batch)), control, policy
        )
        control.scripted_backlog = 1000  # saturated: grow every flush
        for i in range(4 + 8 + 16 + 16):
            sender.post("w1", i)
        assert sent == [4, 8, 16, 16]

    def test_adaptive_target_shrinks_when_idle(self):
        sent = []
        control = _FakeControl()
        policy = BatchPolicy.adaptive_policy(
            start_batch=16, min_batch=2, max_batch=64, deadline_ms=None
        )
        sender = BatchingSender(
            lambda dst, batch: sent.append(len(batch)), control, policy
        )
        control.scripted_backlog = 0  # idle: shrink every flush
        for i in range(16 + 8 + 4 + 2 + 2):
            sender.post("w1", i)
        assert sent == [16, 8, 4, 2, 2]

    def test_deadline_flushes_stale_buffer(self, monkeypatch):
        import repro.runtime.transport as T

        now = [0.0]
        monkeypatch.setattr(T.time, "monotonic", lambda: now[0])
        sent = []
        control = _FakeControl()
        policy = BatchPolicy.adaptive_policy(
            start_batch=64, min_batch=2, max_batch=64, deadline_ms=10.0
        )
        sender = BatchingSender(
            lambda dst, batch: sent.append(len(batch)), control, policy
        )
        sender.post("w1", 0)
        sender.post("w1", 1)
        assert sent == []
        now[0] = 0.5  # way past the 10ms deadline
        sender.post("w1", 2)
        assert sent == [3]

    def test_per_destination_buffers_are_independent(self):
        sent = []
        control = _FakeControl()
        sender = BatchingSender(
            lambda dst, batch: sent.append((dst, len(batch))),
            control,
            BatchPolicy.fixed(3),
        )
        for i in range(5):
            sender.post("a", i)
            sender.post("b", i)
        sender.flush()
        assert sent == [("a", 3), ("b", 3), ("a", 2), ("b", 2)]
        assert control.inflight == 10


# ---------------------------------------------------------------------------
# Transport fabric (in-process coordinator-side checks + cross-process)
# ---------------------------------------------------------------------------

class TestTransportFabric:
    def test_make_transport_names(self):
        ctx = mp.get_context("fork")
        edges = {"w1": [COORDINATOR]}
        assert isinstance(make_transport("pipe", ctx, edges), PipeTransport)
        assert isinstance(make_transport("queue", ctx, edges), QueueTransport)
        tcp = make_transport("tcp", ctx, edges)
        assert isinstance(tcp, SocketTransport)
        tcp.close()
        shm = make_transport("shm", ctx, edges)
        assert isinstance(shm, SharedMemoryTransport)
        shm.close()
        assert set(TRANSPORTS) == {"pipe", "queue", "tcp", "shm"}
        with pytest.raises(RuntimeFault):
            make_transport("carrier-pigeon", ctx, edges)
        with pytest.raises(RuntimeFault):
            # Options are shm-only; anything else must fail loudly.
            make_transport("pipe", ctx, edges, slots=8)

    def test_plan_edges_covers_tree_and_coordinator(self):
        prog, _, plan = vb_case(n_value_streams=2)
        edges = plan_edges(plan)
        assert set(edges) == {n.id for n in plan.workers()}
        for wid, srcs in edges.items():
            assert COORDINATOR in srcs
            parent = plan.parent_of(wid)
            if parent is not None:
                assert parent.id in srcs
            node = plan.node(wid)
            if not node.is_leaf:
                for child in node.children:
                    assert child.id in srcs

    @pytest.mark.parametrize("name", ["pipe", "queue", "tcp", "shm"])
    def test_same_process_send_recv_stop(self, name):
        """Every fabric delivers frames in order and honours stop_all
        (driven from one process: reader and writer share it).  Framed
        receivers decode consecutive same-route stretches as columnar
        EventRun objects; expanding them must reproduce the posted
        per-event sequence exactly."""
        ctx = mp.get_context("fork")
        tr = make_transport(name, ctx, {"w1": [COORDINATOR]})
        control = ControlPlane(ctx)
        sender = tr.sender(COORDINATOR, control, BatchPolicy.fixed(3))
        rx = tr.receiver("w1")
        msgs = [EventMsg(Event("v", "s", float(i), payload=i)) for i in range(7)]
        for m in msgs:
            sender.post("w1", m)
        sender.flush()
        tr.stop_all()
        got = []
        while True:
            item = rx.recv()
            if item is STOP:
                break
            got.extend(item)
            control.mark_done(batch_message_count(item))
        expanded = []
        for m in got:
            if type(m) is EventRun:
                expanded.extend(EventMsg(e) for e in m.events())
            else:
                expanded.append(m)
        assert_same_messages(expanded, msgs)
        assert control.backlog() == 0
        assert control.idle.is_set()
        tr.drain()
        tr.close()


# ---------------------------------------------------------------------------
# Frame-over-socket torture: adversarial fragmentation on real TCP
# ---------------------------------------------------------------------------

def tcp_edge():
    """One configured TCP loopback edge as (read fd, write fd), built
    by the socket transport's own connection setup (NODELAY, widened
    buffers, non-blocking write side)."""
    return SocketTransport._open_edge(None)


def feed(w_fd, data, rx, chunk=None):
    """Write ``data`` to a non-blocking socket fd, interleaving
    receiver polls — every partial write and every poll exercises the
    reassembly path.  ``chunk`` caps the bytes per write so one frame
    deterministically straddles many TCP segments."""
    step = chunk or len(data)
    for start in range(0, len(data), step):
        view = memoryview(data)[start : start + step]
        while view:
            try:
                n = os.write(w_fd, view)
            except BlockingIOError:
                rx.poll()
                continue
            view = view[n:]
        rx.poll()


class TestFrameOverSocketTorture:
    """The socket receiver against adversarial stream fragmentation:
    TCP delivers whatever segment boundaries it likes, so the frame
    layer must reassemble across splits that land mid-length-prefix,
    mid-frame, and across dozens of reads — and a peer that dies with
    half a frame on the wire must raise, not truncate."""

    def setup_method(self):
        self.r, self.w = tcp_edge()

    def teardown_method(self):
        for fd in (self.r, self.w):
            try:
                os.close(fd)
            except OSError:
                pass

    def test_split_mid_length_prefix(self):
        msgs = [EventMsg(Event("v", "s", float(i), payload=i)) for i in range(5)]
        frame = pack_frame(msgs)
        record = FRAME_LEN.pack(len(frame)) + frame
        rx = FrameReceiver([self.r])
        feed(self.w, record[:2], rx)  # half the length prefix
        rx.poll()
        assert not rx._ready, "half a length prefix must not decode"
        feed(self.w, record[2:], rx)
        rx.poll()
        assert_same_messages(expand_runs(rx.recv()), msgs)

    def test_split_mid_frame(self):
        msgs = [EventMsg(Event("v", "s", float(i), payload=i)) for i in range(40)]
        frame = pack_frame(msgs)
        record = FRAME_LEN.pack(len(frame)) + frame
        rx = FrameReceiver([self.r])
        cut = 4 + len(frame) // 2
        feed(self.w, record[:cut], rx)
        rx.poll()
        assert not rx._ready, "half a frame must not decode"
        feed(self.w, record[cut:], rx)
        rx.poll()
        assert_same_messages(expand_runs(rx.recv()), msgs)

    def test_large_frame_straddles_many_segments(self):
        # A >64 KiB frame: far beyond one os.read(1 << 16), written in
        # 997-byte slices so reassembly spans hundreds of feeds; two
        # trailing frames in the same stream must still decode after it.
        blob = {"state": b"x" * (200_000), "keys": list(range(100))}
        big = [JoinResponse(("w1", 1), "left", blob, 1.0, 3)]
        small = [EventMsg(Event("v", "s", 1.0, payload=7))]
        records = b"".join(
            FRAME_LEN.pack(len(f)) + f
            for f in (pack_frame(big), pack_frame(small), pack_frame(small))
        )
        assert len(records) > 3 * (1 << 16)
        rx = FrameReceiver([self.r])
        feed(self.w, records, rx, chunk=997)
        rx.poll()
        got = rx.recv()
        assert got[0].state == blob
        assert_same_messages(expand_runs(rx.recv()), small)
        assert_same_messages(expand_runs(rx.recv()), small)

    def test_peer_close_mid_frame_raises(self):
        msgs = [EventMsg(Event("v", "s", float(i), payload=i)) for i in range(30)]
        frame = pack_frame(msgs)
        record = FRAME_LEN.pack(len(frame)) + frame
        rx = FrameReceiver([self.r])
        feed(self.w, record[: len(record) - 11], rx)
        os.close(self.w)  # peer dies mid-frame
        with pytest.raises(RuntimeFault, match="mid-frame"):
            rx.recv()  # blocks until the EOF event, which must raise

    def test_peer_close_mid_length_prefix_raises(self):
        rx = FrameReceiver([self.r])
        feed(self.w, b"\x99\x00", rx)  # 2 of 4 prefix bytes
        os.close(self.w)
        with pytest.raises(RuntimeFault, match="mid-frame"):
            rx.recv()

    def test_clean_close_at_frame_boundary_is_eof_not_fault(self):
        msgs = [EventMsg(Event("v", "s", 1.0, payload=1))]
        frame = pack_frame(msgs)
        rx = FrameReceiver([self.r])
        feed(self.w, FRAME_LEN.pack(len(frame)) + frame, rx)
        os.close(self.w)  # exits cleanly between frames
        assert_same_messages(expand_runs(rx.recv()), msgs)
        assert rx.recv() is STOP  # last live stream gone -> STOP


# ---------------------------------------------------------------------------
# End-to-end: differential across transports + crash-mid-frame recovery
# ---------------------------------------------------------------------------

class TestTransportDifferential:
    @pytest.mark.parametrize("transport", ["pipe", "queue", "tcp", "shm"])
    @pytest.mark.parametrize("batch_size", [None, 1, 16])
    def test_value_barrier_matches_spec(self, transport, batch_size):
        prog, streams, plan = vb_case()
        run = run_on_backend(
            "process", prog, plan, streams,
            options=RunOptions(transport=transport, batch_size=batch_size),
        )
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )
        assert run.raw.transport == transport

    def test_keycounter_pipe_adaptive_matches_spec(self):
        from repro.plans import random_valid_plan
        from repro.runtime import InputStream

        rng = random.Random(11)
        prog = kc.make_program(2)
        itags = []
        for k in range(2):
            itags.append(ImplTag(kc.inc_tag(k), f"i{k}"))
            itags.append(ImplTag(kc.reset_tag(k), f"r{k}"))
        events = {it: [] for it in itags}
        for t in range(1, 120):
            it = itags[rng.randrange(len(itags))]
            events[it].append(Event(it.tag, it.stream, float(t)))
        streams = [
            InputStream(it, tuple(events[it]), heartbeat_interval=5.0)
            for it in itags
        ]
        plan = random_valid_plan(prog, itags, random.Random(4))
        run = run_on_backend(
            "process", prog, plan, streams, options=RunOptions(flush_ms=0.5)
        )
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )

    def test_transport_option_round_trips_through_options(self):
        prog, streams, plan = vb_case(n_value_streams=2)
        opts = RunOptions(transport="queue", batch_size=4)
        run = run_on_backend("process", prog, plan, streams, options=opts)
        assert run.raw.transport == "queue"
        assert run.raw.batch == "fixed(4)"


class TestCrashMidFrame:
    @pytest.mark.parametrize("transport", ["pipe", "queue", "tcp", "shm"])
    def test_crash_mid_frame_recovers_exactly_once(self, transport):
        """A leaf crashes on an event that sits mid-batch inside a
        framed channel (fixed batches guarantee the triggering event
        has neighbours in its frame).  The surviving prefix of the
        frame was processed and flushed, the rest dies with the
        worker; recovery must restore the last checkpoint and replay
        to *exactly* the sequential outputs — no loss from the dead
        remainder of the frame, no duplication of the flushed
        prefix."""
        prog, streams, plan = vb_case(
            n_value_streams=3, values_per_barrier=30, n_barriers=4
        )
        leaf = plan.leaves()[0].id
        # after_events=37 fires at the 37th event the leaf processes:
        # past the first barrier (so a checkpoint exists to restore)
        # and, with batch 8, mid-frame — neither first nor last of its
        # batch, modulo heartbeats interleaved in the frame.
        run = run_on_backend(
            "process", prog, plan, streams,
            options=RunOptions(
                transport=transport,
                batch_size=8,
                fault_plan=FaultPlan(CrashFault(leaf, after_events=37)),
                checkpoint_predicate=every_root_join(),
            ),
        )
        assert run.recovery is not None
        assert len(run.recovery.crashes) == 1
        assert run.recovery.attempts == 2
        spec = output_multiset(run_sequential_reference(prog, streams))
        got = output_multiset(run.outputs)
        assert got == spec, "crash-mid-frame broke exactly-once delivery"

    def test_crash_on_every_frame_position(self):
        """Sweep the crash point across one whole frame's worth of
        events on the pipe transport: first-in-frame, interior, and
        last-in-frame crashes all recover to the same multiset."""
        prog, streams, plan = vb_case(
            n_value_streams=2, values_per_barrier=20, n_barriers=3
        )
        spec = output_multiset(run_sequential_reference(prog, streams))
        leaf = plan.leaves()[0].id
        # Crash points sweep one whole frame inside the second window
        # (the first barrier's checkpoint exists by then).
        for k in range(25, 25 + 6):
            run = run_on_backend(
                "process", prog, plan, streams,
                options=RunOptions(
                    batch_size=6,
                    fault_plan=FaultPlan(CrashFault(leaf, after_events=k)),
                    checkpoint_predicate=every_root_join(),
                ),
            )
            assert output_multiset(run.outputs) == spec, f"crash at event {k}"
