"""DGS programs (paper Definition 2.1).

A DGS program packages:

1. a finite tag universe (the parallelization-relevant part of events),
2. a symmetric dependence relation on tags,
3. one or more *state types*, each with a predicate restricting the
   events a state of that type may process and an ``update`` function,
4. an initial state of type ``State_0`` whose predicate is ``true``,
5. fork and join parallelization primitives converting between state
   types.

Deviation from the paper's signature, for Pythonic ergonomics: the
paper splits event handling into ``update_i : (State_i, Event) ->
State_i`` and ``out_i : (State_i, Event) -> List(Out)``; we merge them
into ``update(state, event) -> (state', [out])``, which is equivalent
(project on either component) and avoids recomputation.

Update functions must be *pure*: they receive a state and return a new
state (in-place mutation of shared containers breaks fork/join
semantics and the consistency checker will catch most such bugs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .dependence import DependenceRelation
from .errors import ProgramError
from .events import Event, Record, Tag, sort_streams
from .predicates import TagPredicate, true_pred

State = Any
Output = Any
UpdateFn = Callable[[State, Event], Tuple[State, List[Output]]]
#: Vectorized update over a columnar run of same-tag events
#: (:class:`repro.runtime.messages.EventRun`): returns the folded state
#: and ``(event_index, output)`` pairs so outputs keep their per-event
#: order keys.  Must be output-equivalent to folding ``update`` over
#: the run's events.
BatchUpdateFn = Callable[[State, Any], Tuple[State, List[Tuple[int, Output]]]]
ForkImpl = Callable[[State, TagPredicate, TagPredicate], Tuple[State, State]]
JoinImpl = Callable[[State, State], State]

INITIAL_STATE_TYPE = "State0"


@dataclass(frozen=True)
class StateType:
    """A state type ``State_i`` with its event predicate ``pred_i``.

    ``update_batch`` is an optional vectorized opt-in: when present,
    leaf workers on the runs-enabled data plane hand whole columnar
    runs to it instead of calling ``update`` per event.  Programs that
    leave it ``None`` still benefit from runs (framing and mailbox
    costs amortize); the worker just folds ``update`` over the run."""

    name: str
    pred: TagPredicate
    update: UpdateFn
    update_batch: Optional[BatchUpdateFn] = None

    def can_handle(self, tag: Tag) -> bool:
        return tag in self.pred


@dataclass(frozen=True)
class ForkFn:
    """A fork primitive ``State_i -> (State_j, State_k)``."""

    input: str
    left: str
    right: str
    fn: ForkImpl

    def __call__(
        self, state: State, pred1: TagPredicate, pred2: TagPredicate
    ) -> Tuple[State, State]:
        return self.fn(state, pred1, pred2)


@dataclass(frozen=True)
class JoinFn:
    """A join primitive ``(State_j, State_k) -> State_i``."""

    left: str
    right: str
    output: str
    fn: JoinImpl

    def __call__(self, s1: State, s2: State) -> State:
        return self.fn(s1, s2)


class DGSProgram:
    """A complete DGS program (Definition 2.1)."""

    def __init__(
        self,
        *,
        name: str,
        tags: Iterable[Tag],
        depends: DependenceRelation,
        state_types: Sequence[StateType],
        init: Callable[[], State],
        forks: Sequence[ForkFn] = (),
        joins: Sequence[JoinFn] = (),
        initial_type: str = INITIAL_STATE_TYPE,
    ) -> None:
        self.name = name
        self.tags = frozenset(tags)
        self.depends = depends
        self.init = init
        self.initial_type = initial_type
        self.state_types: Dict[str, StateType] = {}
        for st in state_types:
            if st.name in self.state_types:
                raise ProgramError(f"duplicate state type {st.name!r}")
            self.state_types[st.name] = st
        self.forks: Tuple[ForkFn, ...] = tuple(forks)
        self.joins: Tuple[JoinFn, ...] = tuple(joins)
        self._validate()
        self._fork_index: Dict[Tuple[str, str, str], ForkFn] = {
            (f.input, f.left, f.right): f for f in self.forks
        }
        self._join_index: Dict[Tuple[str, str, str], JoinFn] = {
            (j.left, j.right, j.output): j for j in self.joins
        }

    # -- validation ----------------------------------------------------
    def _validate(self) -> None:
        if self.depends.universe != self.tags:
            raise ProgramError(
                "dependence relation universe does not match program tags"
            )
        if self.initial_type not in self.state_types:
            raise ProgramError(f"initial state type {self.initial_type!r} undefined")
        init_pred = self.state_types[self.initial_type].pred
        if init_pred.tags != self.tags:
            raise ProgramError("pred_0 must be the true predicate (Definition 2.1)")
        for st in self.state_types.values():
            if st.pred.universe != self.tags:
                raise ProgramError(
                    f"state type {st.name!r} predicate uses a different universe"
                )
        for f in self.forks:
            for ref in (f.input, f.left, f.right):
                if ref not in self.state_types:
                    raise ProgramError(f"fork references unknown state type {ref!r}")
        for j in self.joins:
            for ref in (j.left, j.right, j.output):
                if ref not in self.state_types:
                    raise ProgramError(f"join references unknown state type {ref!r}")

    # -- lookups ---------------------------------------------------------
    def state_type(self, name: str) -> StateType:
        try:
            return self.state_types[name]
        except KeyError:
            raise ProgramError(f"unknown state type {name!r}") from None

    def fork_for(self, input: str, left: str, right: str) -> ForkFn:
        try:
            return self._fork_index[(input, left, right)]
        except KeyError:
            raise ProgramError(
                f"no fork {input!r} -> ({left!r}, {right!r}) declared"
            ) from None

    def join_for(self, left: str, right: str, output: str) -> JoinFn:
        try:
            return self._join_index[(left, right, output)]
        except KeyError:
            raise ProgramError(
                f"no join ({left!r}, {right!r}) -> {output!r} declared"
            ) from None

    def has_fork_join(self, input: str, left: str, right: str) -> bool:
        return (input, left, right) in self._fork_index and (
            left,
            right,
            input,
        ) in self._join_index

    def pred(self, state_type: str) -> TagPredicate:
        return self.state_type(state_type).pred

    def true_pred(self) -> TagPredicate:
        return true_pred(self.tags)

    # -- sequential specification (the paper's ``spec``) ------------------
    def spec(self, events: Iterable[Event]) -> List[Output]:
        """Run the sequential implementation over an already-ordered
        event list; outputs are produced in order."""
        st = self.state_types[self.initial_type]
        state = self.init()
        outputs: List[Output] = []
        for event in events:
            if event.tag not in self.tags:
                raise ProgramError(f"event tag {event.tag!r} outside universe")
            state, outs = st.update(state, event)
            outputs.extend(outs)
        return outputs

    def spec_of_streams(self, streams: Iterable[Iterable[Record]]) -> List[Output]:
        """``spec(sortO(u_1, ..., u_k))`` of Definition 3.4."""
        return self.spec(sort_streams(streams))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DGSProgram({self.name!r}, |tags|={len(self.tags)}, "
            f"states={sorted(self.state_types)}, forks={len(self.forks)}, "
            f"joins={len(self.joins)})"
        )


def single_state_program(
    *,
    name: str,
    tags: Iterable[Tag],
    depends: DependenceRelation,
    init: Callable[[], State],
    update: UpdateFn,
    fork: ForkImpl,
    join: JoinImpl,
    update_batch: Optional[BatchUpdateFn] = None,
) -> DGSProgram:
    """Convenience constructor for the common one-state-type program
    (all of the paper's evaluation applications have this shape)."""
    universe = frozenset(tags)
    st = StateType(INITIAL_STATE_TYPE, true_pred(universe), update, update_batch)
    return DGSProgram(
        name=name,
        tags=universe,
        depends=depends,
        state_types=[st],
        init=init,
        forks=[ForkFn(INITIAL_STATE_TYPE, INITIAL_STATE_TYPE, INITIAL_STATE_TYPE, fork)],
        joins=[JoinFn(INITIAL_STATE_TYPE, INITIAL_STATE_TYPE, INITIAL_STATE_TYPE, join)],
    )
