"""Unit tests for synchronization plan structures (Definition 3.1)."""

import pytest

from repro.core import ImplTag, PlanError
from repro.plans import PlanNode, SyncPlan
from repro.apps import keycounter as kc


def it(tag, stream=0):
    return ImplTag(tag, stream)


def figure3_plan():
    """The plan of the paper's Figure 3 (two keys, five streams)."""
    w2 = PlanNode("w2", "State0", frozenset({it(kc.reset_tag(0), "r1"), it(kc.inc_tag(0), "i1")}))
    w4 = PlanNode("w4", "State0", frozenset({it(kc.inc_tag(1), "a")}))
    w5 = PlanNode("w5", "State0", frozenset({it(kc.inc_tag(1), "b")}))
    w3 = PlanNode("w3", "State0", frozenset({it(kc.reset_tag(1), "r2")}), (w4, w5))
    w1 = PlanNode("w1", "State0", frozenset(), (w2, w3))
    return SyncPlan(w1)


class TestPlanNode:
    def test_leaf_and_internal(self):
        leaf = PlanNode("w1", "State0", frozenset())
        assert leaf.is_leaf
        n = PlanNode("w2", "State0", frozenset(), (leaf, PlanNode("w3", "State0", frozenset())))
        assert not n.is_leaf

    def test_unary_node_rejected(self):
        leaf = PlanNode("w1", "State0", frozenset())
        with pytest.raises(PlanError, match="binary"):
            PlanNode("w2", "State0", frozenset(), (leaf,))

    def test_with_host(self):
        leaf = PlanNode("w1", "State0", frozenset())
        assert leaf.with_host("node3").host == "node3"


class TestSyncPlanStructure:
    def setup_method(self):
        self.plan = figure3_plan()

    def test_workers_and_leaves(self):
        assert {n.id for n in self.plan.workers()} == {"w1", "w2", "w3", "w4", "w5"}
        assert {n.id for n in self.plan.leaves()} == {"w2", "w4", "w5"}
        assert {n.id for n in self.plan.internal()} == {"w1", "w3"}

    def test_parent_and_ancestors(self):
        assert self.plan.parent_of("w4").id == "w3"
        assert self.plan.parent_of("w1") is None
        assert self.plan.ancestors_of("w5") == frozenset({"w3", "w1"})
        assert self.plan.ancestors_of("w1") == frozenset()

    def test_related(self):
        assert self.plan.related("w1", "w5")
        assert self.plan.related("w5", "w1")
        assert self.plan.related("w3", "w3")
        assert not self.plan.related("w2", "w4")
        assert not self.plan.related("w4", "w5")

    def test_descendants(self):
        assert {n.id for n in self.plan.descendants_of("w3")} == {"w4", "w5"}
        assert self.plan.descendants_of("w2") == []

    def test_subtree_itags(self):
        sub = self.plan.subtree_itags("w3")
        assert it(kc.reset_tag(1), "r2") in sub
        assert it(kc.inc_tag(1), "a") in sub
        assert it(kc.inc_tag(0), "i1") not in sub
        assert len(self.plan.all_itags()) == 5

    def test_owner_of(self):
        assert self.plan.owner_of(it(kc.inc_tag(1), "a")).id == "w4"
        assert self.plan.owner_of(it(kc.reset_tag(1), "r2")).id == "w3"
        with pytest.raises(PlanError):
            self.plan.owner_of(it(("x", 9), "zz"))

    def test_depth_and_size(self):
        assert self.plan.depth() == 3
        assert self.plan.size() == 5

    def test_duplicate_ids_rejected(self):
        a = PlanNode("w1", "State0", frozenset())
        b = PlanNode("w1", "State0", frozenset())
        with pytest.raises(PlanError, match="duplicate"):
            SyncPlan(PlanNode("root", "State0", frozenset(), (a, b)))

    def test_iter_topdown_starts_at_root(self):
        ids = [n.id for n in self.plan.iter_topdown()]
        assert ids[0] == "w1"
        assert set(ids) == {"w1", "w2", "w3", "w4", "w5"}

    def test_pretty_renders_all_workers(self):
        s = self.plan.pretty()
        for wid in ("w1", "w2", "w3", "w4", "w5"):
            assert wid in s
