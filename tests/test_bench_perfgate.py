"""The CI perf gate (repro.bench.perfgate): record schema, directional
comparisons, fail-closed behaviour, and the rebase flow."""

import json
import os

import pytest

from repro.bench import bench_record, publish_json
from repro.bench.perfgate import (
    check_dirs,
    compare,
    host_mismatch,
    load_records,
    main,
    rebase,
)


def rec(name, metrics, gate=None):
    return bench_record(name, config={"case": name}, metrics=metrics, gate=gate)


def other_host(record, **changes):
    """A copy of ``record`` whose host stamp differs from this machine's."""
    host = dict(record["host"])
    host.update(changes or {"cores": host.get("cores", 1) + 63})
    return dict(record, host=host)


class TestBenchRecord:
    def test_record_shape(self):
        r = rec("x", {"eps": 100}, gate={"eps": "higher"})
        assert r["schema"] == "repro-bench/1"
        assert r["name"] == "x"
        assert r["metrics"] == {"eps": 100}
        assert r["gate"] == {"eps": "higher"}
        assert r["host"]["cores"] >= 1
        assert "python" in r["host"]

    def test_gate_must_name_numeric_metric(self):
        with pytest.raises(ValueError):
            rec("x", {"eps": "fast"}, gate={"eps": "higher"})
        with pytest.raises(ValueError):
            rec("x", {"eps": 1}, gate={"missing": "higher"})
        with pytest.raises(ValueError):
            rec("x", {"eps": 1}, gate={"eps": "sideways"})

    def test_publish_json_writes_bench_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = publish_json("unit", rec("unit", {"eps": 5}))
        assert os.path.basename(path) == "BENCH_unit.json"
        with open(path) as f:
            assert json.load(f)["metrics"] == {"eps": 5}


class TestCompare:
    def test_higher_metric_within_tolerance_passes(self):
        base = {"b": rec("b", {"eps": 100}, gate={"eps": "higher"})}
        res = {"b": rec("b", {"eps": 80})}
        checks, problems = compare(res, base, tolerance=0.25)
        assert not problems
        assert [c.ok for c in checks] == [True]

    def test_higher_metric_regression_fails(self):
        base = {"b": rec("b", {"eps": 100}, gate={"eps": "higher"})}
        res = {"b": rec("b", {"eps": 74})}
        checks, _ = compare(res, base, tolerance=0.25)
        assert [c.ok for c in checks] == [False]
        assert checks[0].change == pytest.approx(-0.26)

    def test_lower_metric_direction(self):
        base = {"b": rec("b", {"p50_ms": 10.0}, gate={"p50_ms": "lower"})}
        ok_res = {"b": rec("b", {"p50_ms": 12.0})}
        bad_res = {"b": rec("b", {"p50_ms": 13.0})}
        assert [c.ok for c in compare(ok_res, base, tolerance=0.25)[0]] == [True]
        assert [c.ok for c in compare(bad_res, base, tolerance=0.25)[0]] == [False]

    def test_missing_result_is_a_problem(self):
        base = {"b": rec("b", {"eps": 100}, gate={"eps": "higher"})}
        checks, problems = compare({}, base)
        assert not checks
        assert problems and "no matching" in problems[0]

    def test_ungated_baseline_is_ignored(self):
        base = {"b": rec("b", {"eps": 100})}
        checks, problems = compare({}, base)
        assert not checks and not problems

    def test_missing_metric_is_a_problem(self):
        base = {"b": rec("b", {"eps": 100}, gate={"eps": "higher"})}
        res = {"b": rec("b", {"other": 1})}
        checks, problems = compare(res, base)
        assert not checks
        assert problems and "not a number" in problems[0]

    def test_schema_mismatch_is_a_problem(self):
        base = {"b": rec("b", {"eps": 100}, gate={"eps": "higher"})}
        res = {"b": dict(rec("b", {"eps": 100}), schema="repro-bench/999")}
        _, problems = compare(res, base)
        assert problems and "schema mismatch" in problems[0]


class TestProvenance:
    """Host-stamp provenance: cross-machine comparisons warn instead of
    failing; same-host (and stamp-less) comparisons stay fail-closed."""

    def test_host_mismatch_detects_class_changes(self):
        a = rec("b", {"eps": 1})
        assert host_mismatch(a, a) is None
        assert "cores" in host_mismatch(a, other_host(a, cores=-1))
        bumped = other_host(a, python="99.1.0")
        assert "python" in host_mismatch(a, bumped)
        moved = other_host(a, platform="Plan9-1.0-sparc")
        assert "platform" in host_mismatch(a, moved)

    def test_python_patch_and_kernel_point_releases_match(self):
        a = rec("b", {"eps": 1})
        py = a["host"]["python"]
        patch = other_host(a, python=py.rsplit(".", 1)[0] + ".999")
        assert host_mismatch(a, patch) is None
        plat = a["host"]["platform"].split("-", 1)[0]
        kernel = other_host(a, platform=plat + "-999.0.0-generic")
        assert host_mismatch(a, kernel) is None

    def test_stampless_records_compare_as_matching(self):
        a = rec("b", {"eps": 1})
        legacy = dict(a)
        legacy.pop("host", None)
        assert host_mismatch(a, legacy) is None
        assert host_mismatch(legacy, a) is None

    def test_mismatched_host_regression_is_advisory(self):
        base = {"b": rec("b", {"eps": 1000}, gate={"eps": "higher"})}
        res = {"b": other_host(rec("b", {"eps": 10}))}
        checks, problems = compare(res, base)
        assert not problems
        (check,) = checks
        assert not check.ok and check.advisory
        assert "host mismatch" in check.note
        assert "warn" in check.describe() and "FAIL" not in check.describe()

    def test_matching_host_regression_still_fails(self):
        base = {"b": rec("b", {"eps": 1000}, gate={"eps": "higher"})}
        res = {"b": rec("b", {"eps": 10})}
        (check,) = compare(res, base)[0]
        assert not check.ok and not check.advisory
        assert "FAIL" in check.describe()

    def test_stampless_baseline_regression_still_fails(self):
        """Records that predate host stamps keep the gate fail-closed."""
        legacy = dict(rec("b", {"eps": 1000}, gate={"eps": "higher"}))
        legacy.pop("host", None)
        (check,) = compare({"b": rec("b", {"eps": 10})}, {"b": legacy})[0]
        assert not check.ok and not check.advisory

    def test_check_dirs_passes_with_advisory_warning(self, tmp_path):
        results, baselines = tmp_path / "results", tmp_path / "baselines"
        os.makedirs(results), os.makedirs(baselines)
        base = rec("t", {"eps": 1000}, gate={"eps": "higher"})
        with open(baselines / "BENCH_t.json", "w") as f:
            json.dump(base, f)
        with open(results / "BENCH_t.json", "w") as f:
            json.dump(other_host(rec("t", {"eps": 10})), f)
        ok, report = check_dirs(str(results), str(baselines))
        assert ok
        assert "advisory warning" in report
        assert "perf gate: PASS" in report

    def test_advisory_does_not_mask_same_host_failures(self, tmp_path):
        """One cross-host warning must not let a same-host regression
        through."""
        results, baselines = tmp_path / "results", tmp_path / "baselines"
        os.makedirs(results), os.makedirs(baselines)
        for name, base_eps, res in (
            ("cross", 1000, other_host(rec("cross", {"eps": 10}))),
            ("local", 1000, rec("local", {"eps": 10})),
        ):
            with open(baselines / f"BENCH_{name}.json", "w") as f:
                json.dump(rec(name, {"eps": base_eps}, gate={"eps": "higher"}), f)
            with open(results / f"BENCH_{name}.json", "w") as f:
                json.dump(res, f)
        ok, report = check_dirs(str(results), str(baselines))
        assert not ok and "perf gate: FAIL" in report
        assert "warn" in report  # the cross-host check still reports


class TestDirsAndCli:
    def _write(self, directory, record):
        os.makedirs(directory, exist_ok=True)
        with open(
            os.path.join(directory, f"BENCH_{record['name']}.json"), "w"
        ) as f:
            json.dump(record, f)

    def test_check_dirs_pass_and_fail(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        self._write(results, rec("t", {"eps": 100}, gate={"eps": "higher"}))
        self._write(baselines, rec("t", {"eps": 90}, gate={"eps": "higher"}))
        ok, report = check_dirs(str(results), str(baselines))
        assert ok and "PASS" in report
        assert "rebase" not in report  # no recovery hint on a pass

        self._write(baselines, rec("t", {"eps": 500}, gate={"eps": "higher"}))
        ok, report = check_dirs(str(results), str(baselines))
        assert not ok and "FAIL" in report

    def test_failure_report_prints_rebase_recovery_flow(self, tmp_path):
        """A regression must be actionable from the CI log alone: the
        failure report carries the documented rebase commands."""
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        self._write(results, rec("t", {"eps": 10}, gate={"eps": "higher"}))
        self._write(baselines, rec("t", {"eps": 500}, gate={"eps": "higher"}))
        ok, report = check_dirs(str(results), str(baselines))
        assert not ok
        assert "perf_gate.py rebase" in report
        assert "bench_transport.py" in report
        assert "bench_latency_openloop.py" in report
        assert "bench_adversarial.py --smoke" in report
        assert "commit benchmarks/baselines" in report

    def test_empty_baselines_fail_closed(self, tmp_path):
        results = tmp_path / "results"
        self._write(results, rec("t", {"eps": 100}))
        ok, report = check_dirs(str(results), str(tmp_path / "nothing"))
        assert not ok and "no baselines" in report

    def test_rebase_copies_only_gated_records(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        self._write(results, rec("gated", {"eps": 1}, gate={"eps": "higher"}))
        self._write(results, rec("trajectory", {"eps": 2}))
        written = rebase(str(results), str(baselines))
        assert [os.path.basename(p) for p in written] == ["BENCH_gated.json"]
        assert load_records(str(baselines)).keys() == {"gated"}

    def test_cli_check_and_rebase(self, tmp_path, capsys):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        self._write(results, rec("t", {"eps": 100}, gate={"eps": "higher"}))
        assert (
            main(["rebase", "--results", str(results), "--baselines", str(baselines)])
            == 0
        )
        assert (
            main(["check", "--results", str(results), "--baselines", str(baselines)])
            == 0
        )
        self._write(results, rec("t", {"eps": 1}, gate={"eps": "higher"}))
        assert (
            main(["check", "--results", str(results), "--baselines", str(baselines)])
            == 1
        )
        out = capsys.readouterr().out
        assert "perf gate: FAIL" in out
