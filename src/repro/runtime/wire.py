"""Compact wire encoding for runtime messages.

Two layers live here:

* **Tuple codec** (``encode_msg``/``decode_msg``): each protocol
  message becomes a small tuple headed by an integer type code.
  Pickling the message dataclasses directly works but spends most of
  the bytes on class metadata; the tuple form roughly halves the
  serialized size and sidesteps dataclass-pickling quirks across
  Python versions.  The queue transport ships lists of these tuples
  (``multiprocessing`` pickles them internally).

* **Frame codec** (``pack_frame``/``unpack_frame``): the pipe
  transport's byte-level format.  A frame carries one batch of
  messages.  The dominant message kinds — events and heartbeats whose
  fields are scalars (ints, floats, strings, ``None``) or tuples
  thereof — take a ``struct``-packed fast path with no pickle
  involved; anything carrying arbitrary application state (join
  responses, fork states, exotic payloads) falls back to pickling that
  one message.  Both paths round-trip exactly, including type identity
  (``3`` never comes back as ``3.0``, ``True`` never as ``1``), which
  the cross-backend differential suites rely on (output multisets
  compare ``repr``\\ s).

Messages travel in *batches* so producers and workers amortize one
channel operation — one encode, one pipe write, one wakeup — over many
messages; see :mod:`repro.runtime.transport` for the batching policy.

On the wire each frame is length-prefixed (:data:`FRAME_LEN`) and may
arrive arbitrarily fragmented — pipes deliver whatever one ``read``
returns, TCP delivers segments.  :class:`FrameAssembler` owns the
reassembly: it buffers partial prefixes and partial frames across
``feed`` calls and surfaces a peer that closed mid-frame as a
:class:`~repro.core.errors.RuntimeFault` (a torn write must never turn
into silently dropped messages).

Event payloads and join/fork states are application data: they must be
picklable (every app in :mod:`repro.apps` uses ints, tuples, and
dicts), and scalar-shaped payloads additionally ride the fast path.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List, Sequence, Tuple

from ..core.errors import RuntimeFault
from ..core.events import Event, ImplTag
from .messages import (
    EventMsg,
    EventRun,
    ForkStateMsg,
    HeartbeatMsg,
    JoinRequest,
    JoinResponse,
)

# Type codes: one small int per message kind.
_EVENT = 0
_HEARTBEAT = 1
_JOIN_REQ = 2
_JOIN_RESP = 3
_FORK = 4
_EVT_RUN = 5

WireMsg = Tuple[Any, ...]


def encode_msg(msg: Any) -> WireMsg:
    """Encode one protocol message as a compact tuple."""
    if isinstance(msg, EventMsg):
        e = msg.event
        return (_EVENT, e.tag, e.stream, e.ts, e.payload)
    if isinstance(msg, HeartbeatMsg):
        return (_HEARTBEAT, msg.itag.tag, msg.itag.stream, msg.key)
    if isinstance(msg, EventRun):
        return (_EVT_RUN, msg.tag, msg.stream, msg.shape, msg.ts, msg.payloads)
    if isinstance(msg, JoinRequest):
        return (
            _JOIN_REQ,
            msg.req_id,
            msg.itag.tag,
            msg.itag.stream,
            msg.key,
            msg.reply_to,
            msg.side,
        )
    if isinstance(msg, JoinResponse):
        return (
            _JOIN_RESP,
            msg.req_id,
            msg.side,
            msg.state,
            msg.state_size,
            msg.backlog,
            msg.metrics,
        )
    if isinstance(msg, ForkStateMsg):
        return (_FORK, msg.req_id, msg.state, msg.state_size)
    raise RuntimeFault(f"cannot wire-encode {msg!r}")


def decode_msg(wire: WireMsg) -> Any:
    """Inverse of :func:`encode_msg`."""
    code = wire[0]
    if code == _EVENT:
        return EventMsg(Event(wire[1], wire[2], wire[3], wire[4]))
    if code == _HEARTBEAT:
        return HeartbeatMsg(ImplTag(wire[1], wire[2]), tuple(wire[3]))
    if code == _JOIN_REQ:
        return JoinRequest(
            tuple(wire[1]), ImplTag(wire[2], wire[3]), tuple(wire[4]), wire[5], wire[6]
        )
    if code == _JOIN_RESP:
        # len guards: tolerate pre-backlog / pre-metrics encodings
        # (recorded traces).
        backlog = wire[5] if len(wire) > 5 else 0
        metrics = wire[6] if len(wire) > 6 else None
        return JoinResponse(tuple(wire[1]), wire[2], wire[3], wire[4], backlog, metrics)
    if code == _FORK:
        return ForkStateMsg(tuple(wire[1]), wire[2], wire[3])
    if code == _EVT_RUN:
        payloads = wire[5]
        return EventRun(
            wire[1],
            wire[2],
            wire[3],
            tuple(wire[4]),
            tuple(payloads) if payloads is not None else None,
        )
    raise RuntimeFault(f"unknown wire type code {code!r}")


def encode_batch(msgs: Sequence[Any]) -> List[WireMsg]:
    return [encode_msg(m) for m in msgs]


def decode_batch(batch: Sequence[WireMsg]) -> List[Any]:
    return [decode_msg(w) for w in batch]


def batch_message_count(msgs: Sequence[Any]) -> int:
    """Event-level message count of a batch: an :class:`EventRun`
    counts as its length, everything else as one.  The in-flight
    accounting (sender increment, receiver decrement) and the
    ``messages_sent`` metric both use this, so a run coalesced on one
    side and decoded per-event on the other still balances to zero."""
    n = 0
    for m in msgs:
        n += len(m.ts) if type(m) is EventRun else 1
    return n


# ---------------------------------------------------------------------------
# Stream framing: length prefix + reassembly from arbitrary fragmentation
# ---------------------------------------------------------------------------

#: The 4-byte little-endian length prefix in front of every frame on a
#: byte-stream channel (pipe or TCP).  A zero-length frame is the
#: transport's stop sentinel.
FRAME_LEN = struct.Struct("<I")


class FrameAssembler:
    """Reassemble length-prefixed frames from an arbitrarily chunked
    byte stream.

    One assembler per inbound channel.  ``feed`` accepts whatever the
    channel's last read returned — a split can land mid-prefix, mid-
    frame, or carry several frames at once (TCP coalesces batched
    sends) — and returns every frame completed so far, in order.  A
    zero-length frame comes back as ``b""`` (the stop sentinel; the
    receiver maps it, this layer just preserves it).

    ``close`` is called when the peer's stream ends: leftover buffered
    bytes mean the writer died mid-``write`` (or the segment carrying
    the rest was reset), which must surface as a
    :class:`RuntimeFault` — never as silently dropped messages."""

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        buf = self._buf
        buf += data
        frames: List[bytes] = []
        pos = 0
        end = len(buf)
        while end - pos >= 4:
            n = FRAME_LEN.unpack_from(buf, pos)[0]
            if end - pos - 4 < n:
                break
            frames.append(bytes(buf[pos + 4 : pos + 4 + n]))
            pos += 4 + n
        if pos:
            del buf[:pos]
        return frames

    def pending(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def close(self) -> None:
        if self._buf:
            raise RuntimeFault(
                f"peer closed mid-frame: {len(self._buf)} byte(s) of an "
                "incomplete frame buffered (torn write or connection reset)"
            )


# ---------------------------------------------------------------------------
# Frame codec: the pipe transport's byte-level format
# ---------------------------------------------------------------------------
#
# frame   := <u32 count> message*        (count is event-level: a run
#                                          of n events contributes n)
# message := 0x05 route shape:u8 n:u16 <columnar struct body>
#                                                     (event-run fast path)
#          | 0x06 route tskind:u8 <f64 | i64>         (self-keyed heartbeat)
#          | 0x03 scalar(tag) scalar(stream) scalar(ts) scalar(payload)
#                                                     (generic EventMsg)
#          | 0x04 scalar(tag) scalar(stream) scalar(key)
#                                                     (generic HeartbeatMsg)
#          | 0x01 <scalar tree of the wire tuple>     (generic struct path)
#          | 0x02 <u32 len> <pickle of the wire tuple>
# route   := taglen:u8 <utf-8 tag> ('i' <i64> | 's' len:u8 <utf-8>)
# scalar  := 'N'                                      None
#          | 'i' <i64>                                int (exactly; not bool)
#          | 'd' <f64>                                float (exactly)
#          | 's' <u16 len> <utf-8 bytes>              str
#          | 't' <u8 count> scalar*                   tuple
#
# Events and heartbeats — the traffic that dominates every workload —
# skip the intermediate wire tuple entirely.  A *run* of consecutive
# events with the same implementation tag and the same field shape
# (producers emit exactly that) is packed columnar: the (tag, stream)
# route prefix once, then one precompiled struct for all (ts, payload)
# columns.  Heartbeats whose key is the canonical self key
# ``(ts, stable(tag), stable(stream))`` collapse to the route plus the
# timestamp.  Everything else walks the generic scalar grammar, and
# anything carrying arbitrary application state (join states, exotic
# payloads) falls back to pickling that one message.
#
# Type checks are exact (``type(v) is int``) so bools, int subclasses,
# numpy scalars, big ints (> 64 bit) and long strings all take a
# slower path instead of coming back as a different type.  f64 packing
# is lossless for floats (same IEEE bits, inf/NaN included).

_MSG_PACKED = 0x01
_MSG_PICKLED = 0x02
_MSG_EVENT = 0x03
_MSG_HEARTBEAT = 0x04
_MSG_EVT_RUN = 0x05
_MSG_HB_SELF = 0x06

# Run shapes: (type(ts), type(payload)) -> (shape byte, struct columns).
_SHAPE_FI = 0  # ts float, payload int    -> "dq"
_SHAPE_FN = 1  # ts float, payload None   -> "d"
_SHAPE_II = 2  # ts int,   payload int    -> "qq"
_SHAPE_FF = 3  # ts float, payload float  -> "dd"
_SHAPE_COLS = ("dq", "d", "qq", "dd")
_SHAPE_WIDTH = (16, 8, 16, 16)

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U16 = struct.Struct("<H")

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1

#: Memoized per-(shape, run-length) structs for the columnar event
#: path; run lengths repeat heavily (the batch policy's flush sizes),
#: so this stays small.
_RUN_STRUCTS: dict = {}


def _run_struct(shape: int, count: int) -> struct.Struct:
    key = (shape, count)
    s = _RUN_STRUCTS.get(key)
    if s is None:
        if len(_RUN_STRUCTS) > 8192:  # pragma: no cover - pathological
            _RUN_STRUCTS.clear()
        s = _RUN_STRUCTS[key] = struct.Struct("<" + _SHAPE_COLS[shape] * count)
    return s


_MISSING = object()

#: Route (tag, stream) -> encoded prefix bytes, or None when the pair
#: is not fast-path eligible.  Implementation tags come from a small
#: finite universe (§3.1), so this hits after the first message.
_ROUTE_ENC: dict = {}

#: Interning memo for decoded tag/stream strings (bytes -> str).
_STR_DEC: dict = {}


def _route_bytes(tag: Any, stream: Any):
    # The *types* participate in the key alongside the values: True ==
    # 1 and hash(True) == hash(1), so a bool stream must not hit the
    # int entry, and a str-subclass tag comparing equal to a cached
    # str tag must not ride its fast path (the fast path promises
    # exact-type round-trips; subclasses take the pickle fallback).
    key = (tag, type(tag), stream, type(stream))
    route = _ROUTE_ENC.get(key, _MISSING)
    if route is not _MISSING:
        return route
    computed = None
    if type(tag) is str:
        tb = tag.encode("utf-8")
        if len(tb) <= 0xFF:
            if type(stream) is int and _I64_MIN <= stream <= _I64_MAX:
                computed = bytes((len(tb),)) + tb + b"i" + _I64.pack(stream)
            elif type(stream) is str:
                sb = stream.encode("utf-8")
                if len(sb) <= 0xFF:
                    computed = (
                        bytes((len(tb),)) + tb + b"s" + bytes((len(sb),)) + sb
                    )
    if len(_ROUTE_ENC) > 4096:  # pragma: no cover - pathological
        _ROUTE_ENC.clear()
    _ROUTE_ENC[key] = computed
    return computed


def _intern_str(b: bytes) -> str:
    s = _STR_DEC.get(b)
    if s is None:
        if len(_STR_DEC) > 4096:  # pragma: no cover - pathological
            _STR_DEC.clear()
        s = _STR_DEC[b] = b.decode("utf-8")
    return s


def _read_route(data: bytes, pos: int):
    n = data[pos]
    pos += 1
    tag = _intern_str(data[pos : pos + n])
    pos += n
    sk = data[pos]
    pos += 1
    if sk == 0x69:  # 'i'
        stream = _I64.unpack_from(data, pos)[0]
        pos += 8
    elif sk == 0x73:  # 's'
        m = data[pos]
        pos += 1
        stream = _intern_str(data[pos : pos + m])
        pos += m
    else:
        raise RuntimeFault(f"corrupt frame: unknown stream kind {sk:#x}")
    return tag, stream, pos


class _Unpackable(Exception):
    """Internal: this wire tuple needs the pickle fallback."""


def _pack_scalar(v: Any, out: List[bytes]) -> None:
    t = type(v)
    if t is int:
        if not _I64_MIN <= v <= _I64_MAX:
            raise _Unpackable
        out.append(b"i")
        out.append(_I64.pack(v))
    elif t is float:
        out.append(b"d")
        out.append(_F64.pack(v))
    elif t is str:
        b = v.encode("utf-8")
        if len(b) > 0xFFFF:
            raise _Unpackable
        out.append(b"s")
        out.append(_U16.pack(len(b)))
        out.append(b)
    elif v is None:
        out.append(b"N")
    elif t is tuple:
        if len(v) > 0xFF:
            raise _Unpackable
        out.append(b"t")
        out.append(bytes((len(v),)))
        for item in v:
            _pack_scalar(item, out)
    else:
        raise _Unpackable


def _unpack_scalar(buf: bytes, pos: int) -> Tuple[Any, int]:
    kind = buf[pos]
    pos += 1
    if kind == 0x69:  # 'i'
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if kind == 0x64:  # 'd'
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if kind == 0x73:  # 's'
        n = _U16.unpack_from(buf, pos)[0]
        pos += 2
        return buf[pos : pos + n].decode("utf-8"), pos + n
    if kind == 0x4E:  # 'N'
        return None, pos
    if kind == 0x74:  # 't'
        n = buf[pos]
        pos += 1
        items = []
        for _ in range(n):
            item, pos = _unpack_scalar(buf, pos)
            items.append(item)
        return tuple(items), pos
    raise RuntimeFault(f"corrupt frame: unknown scalar kind {kind:#x}")


def _event_shape(ts: Any, payload: Any) -> int:
    """Shape code of one event's (ts, payload) pair, or -1."""
    tts = type(ts)
    if tts is float:
        tp = type(payload)
        if tp is int:
            return _SHAPE_FI
        if payload is None:
            return _SHAPE_FN
        if tp is float:
            return _SHAPE_FF
        return -1
    if tts is int and type(payload) is int:
        return _SHAPE_II
    return -1


def pack_frame(batch: Sequence[Any]) -> bytes:
    """Encode one batch of protocol messages as a self-contained frame.

    Order is preserved exactly (per-sender FIFO is a mailbox
    invariant), so fast-path and fallback messages interleave freely
    within a frame.  The frame header counts *event-level* messages
    (:func:`batch_message_count`): an :class:`EventRun` batch item of
    ``n`` events contributes ``n``, so the same frame decodes
    consistently whether the receiver asks for runs or per-event
    objects."""
    out: List[bytes] = [_U32.pack(batch_message_count(batch))]
    append = out.append
    n_msgs = len(batch)
    i = 0
    while i < n_msgs:
        msg = batch[i]
        i += 1
        mark = len(out)
        try:
            cls = type(msg)
            if cls is EventRun:
                # Already-columnar run (producer coalescing or a
                # re-packed decode): route + shape + packed columns,
                # no per-event objects touched.
                route = _route_bytes(msg.tag, msg.stream)
                count = len(msg.ts)
                if route is None or not 1 <= count <= 0xFFFE:
                    raise _Unpackable
                if msg.payloads is None:
                    flat: Any = msg.ts
                else:
                    flat = [None] * (2 * count)
                    flat[0::2] = msg.ts
                    flat[1::2] = msg.payloads
                try:
                    body = _run_struct(msg.shape, count).pack(*flat)
                except (struct.error, IndexError):
                    raise _Unpackable from None
                append(bytes((_MSG_EVT_RUN,)))
                append(route)
                append(bytes((msg.shape,)))
                append(_U16.pack(count))
                append(body)
                continue
            if cls is EventMsg:
                e = msg.event
                tag, stream = e.tag, e.stream
                route = _route_bytes(tag, stream)
                if route is not None:
                    ts, p = e.ts, e.payload
                    shape = _event_shape(ts, p)
                    if shape >= 0:
                        # Columnar run: swallow every directly
                        # following event with the same route and
                        # shape into one struct pack.
                        if shape == _SHAPE_FN:
                            flat = [ts]
                        else:
                            flat = [ts, p]
                        j = i
                        j_max = i + 0xFFFE  # u16 run-length cap
                        while j < n_msgs and j < j_max:
                            m2 = batch[j]
                            if type(m2) is not EventMsg:
                                break
                            e2 = m2.event
                            # type checks before ==: True == 1, but a
                            # bool stream must not join an int run; a
                            # str-subclass tag comparing equal must
                            # not join a str run either.
                            if (
                                type(e2.stream) is not type(stream)
                                or e2.stream != stream
                                or type(e2.tag) is not type(tag)
                                or e2.tag != tag
                            ):
                                break
                            ts2, p2 = e2.ts, e2.payload
                            if _event_shape(ts2, p2) != shape:
                                break
                            flat.append(ts2)
                            if shape != _SHAPE_FN:
                                flat.append(p2)
                            j += 1
                        count = j - i + 1
                        try:
                            body = _run_struct(shape, count).pack(*flat)
                        except struct.error:
                            pass  # out-of-range i64 -> generic, this msg only
                        else:
                            append(bytes((_MSG_EVT_RUN,)))
                            append(route)
                            append(bytes((shape,)))
                            append(_U16.pack(count))
                            append(body)
                            i = j
                            continue
                append(b"\x03")
                _pack_scalar(e.tag, out)
                _pack_scalar(e.stream, out)
                _pack_scalar(e.ts, out)
                _pack_scalar(e.payload, out)
                continue
            if cls is HeartbeatMsg:
                it = msg.itag
                tag, stream = it.tag, it.stream
                key = msg.key
                route = _route_bytes(tag, stream)
                if (
                    route is not None
                    and type(key) is tuple
                    and len(key) == 3
                    and key[1] == ("str", tag)
                    and key[2] == (("int", stream) if type(stream) is int else ("str", stream))
                ):
                    ts = key[0]
                    tts = type(ts)
                    try:
                        if tts is float:
                            append(bytes((_MSG_HB_SELF,)))
                            append(route)
                            append(b"\x00")
                            append(_F64.pack(ts))
                            continue
                        if tts is int:
                            body = _I64.pack(ts)
                            append(bytes((_MSG_HB_SELF,)))
                            append(route)
                            append(b"\x01")
                            append(body)
                            continue
                    except struct.error:
                        del out[mark:]
                append(b"\x04")
                _pack_scalar(tag, out)
                _pack_scalar(stream, out)
                _pack_scalar(key, out)
                continue
            append(b"\x01")
            _pack_scalar(encode_msg(msg), out)
            continue
        except _Unpackable:
            del out[mark:]
        blob = pickle.dumps(encode_msg(msg), protocol=pickle.HIGHEST_PROTOCOL)
        append(b"\x02")
        append(_U32.pack(len(blob)))
        append(blob)
    return b"".join(out)


def unpack_frame(data: bytes, *, runs: bool = False) -> List[Any]:
    """Inverse of :func:`pack_frame`: decode a frame back to messages.

    With ``runs=True`` a columnar event run stays columnar — one
    :class:`EventRun` carrying the packed timestamp/payload columns —
    instead of exploding into per-event :class:`EventMsg` objects (the
    default, kept for compatibility and for consumers that want plain
    events).  The mailbox and :class:`~repro.runtime.protocol.
    WorkerCore` accept runs natively; object materialization is
    deferred to the fallback boundaries that actually need it.

    Truncated or corrupt frames raise :class:`RuntimeFault` — a
    half-written frame (e.g. from a writer that died mid-``write``)
    must surface as a transport error, never as silently dropped or
    garbled messages."""
    try:
        total = _U32.unpack_from(data, 0)[0]
        pos = 4
        seen = 0
        msgs: List[Any] = []
        mappend = msgs.append
        while seen < total:
            if pos >= len(data):
                raise RuntimeFault(
                    f"corrupt frame: truncated after {seen}/{total} messages"
                )
            kind = data[pos]
            pos += 1
            seen += 1
            if kind == _MSG_EVT_RUN:
                tag, stream, pos = _read_route(data, pos)
                shape = data[pos]
                pos += 1
                count = _U16.unpack_from(data, pos)[0]
                pos += 2
                if shape > _SHAPE_FF:
                    raise RuntimeFault(
                        f"corrupt frame: unknown run shape {shape:#x}"
                    )
                vals = _run_struct(shape, count).unpack_from(data, pos)
                pos += _SHAPE_WIDTH[shape] * count
                seen += count - 1
                if runs and count > 1:
                    if shape == _SHAPE_FN:
                        mappend(EventRun(tag, stream, shape, vals, None))
                    else:
                        mappend(
                            EventRun(tag, stream, shape, vals[0::2], vals[1::2])
                        )
                elif shape == _SHAPE_FN:
                    for ts in vals:
                        mappend(EventMsg(Event(tag, stream, ts, None)))
                else:
                    for k in range(0, 2 * count, 2):
                        mappend(
                            EventMsg(Event(tag, stream, vals[k], vals[k + 1]))
                        )
                continue
            if kind == _MSG_HB_SELF:
                tag, stream, pos = _read_route(data, pos)
                tskind = data[pos]
                pos += 1
                if tskind == 0:
                    ts = _F64.unpack_from(data, pos)[0]
                else:
                    ts = _I64.unpack_from(data, pos)[0]
                pos += 8
                skey = ("int", stream) if type(stream) is int else ("str", stream)
                mappend(
                    HeartbeatMsg(ImplTag(tag, stream), (ts, ("str", tag), skey))
                )
                continue
            if kind == _MSG_EVENT:
                tag, pos = _unpack_scalar(data, pos)
                stream, pos = _unpack_scalar(data, pos)
                ts, pos = _unpack_scalar(data, pos)
                payload, pos = _unpack_scalar(data, pos)
                mappend(EventMsg(Event(tag, stream, ts, payload)))
                continue
            if kind == _MSG_HEARTBEAT:
                tag, pos = _unpack_scalar(data, pos)
                stream, pos = _unpack_scalar(data, pos)
                key, pos = _unpack_scalar(data, pos)
                mappend(HeartbeatMsg(ImplTag(tag, stream), key))
                continue
            if kind == _MSG_PACKED:
                wire, pos = _unpack_scalar(data, pos)
            elif kind == _MSG_PICKLED:
                n = _U32.unpack_from(data, pos)[0]
                pos += 4
                if pos + n > len(data):
                    raise RuntimeFault("corrupt frame: truncated pickle payload")
                wire = pickle.loads(data[pos : pos + n])
                pos += n
            else:
                raise RuntimeFault(f"corrupt frame: unknown message kind {kind:#x}")
            mappend(decode_msg(wire))
    except (struct.error, IndexError, UnicodeDecodeError, pickle.UnpicklingError, EOFError) as exc:
        raise RuntimeFault(f"corrupt frame: {exc!r}") from exc
    if pos != len(data):
        raise RuntimeFault(
            f"corrupt frame: {len(data) - pos} trailing bytes after {total} messages"
        )
    return msgs


def _run_vals_packable(shape: int, ts: Any, payload: Any) -> bool:
    """True when (ts, payload) of a shape-eligible event also fits the
    struct columns (i64 range for int columns) — the producer-side
    guard that keeps :func:`pack_frame`'s run branch from ever hitting
    ``struct.error`` on a coalesced run."""
    if shape == _SHAPE_FI:
        return _I64_MIN <= payload <= _I64_MAX
    if shape == _SHAPE_II:
        return _I64_MIN <= ts <= _I64_MAX and _I64_MIN <= payload <= _I64_MAX
    return True


def coalesce_event_runs(msgs: Sequence[Any], *, max_run: int = 512) -> List[Any]:
    """Merge consecutive same-route, same-shape :class:`EventMsg`
    items into columnar :class:`EventRun`\\ s.

    The producer-side twin of :func:`pack_frame`'s run coalescing:
    applying it *before* posting means the coordinator's batcher and
    codec handle one object per run instead of one per event, and the
    receiving worker's mailbox can release whole runs.  Messages that
    are not run-eligible (heartbeats, heterogeneous routes, exotic
    scalar shapes) pass through untouched, order preserved.
    ``max_run`` bounds a run's length so frames and mailbox release
    granularity stay reasonable under the batch policy."""
    out: List[Any] = []
    i, n = 0, len(msgs)
    while i < n:
        m = msgs[i]
        if type(m) is not EventMsg:
            out.append(m)
            i += 1
            continue
        e = m.event
        tag, stream = e.tag, e.stream
        shape = _event_shape(e.ts, e.payload)
        if (
            shape < 0
            or _route_bytes(tag, stream) is None
            or not _run_vals_packable(shape, e.ts, e.payload)
        ):
            out.append(m)
            i += 1
            continue
        ts_col = [e.ts]
        pl_col: List[Any] = [] if shape == _SHAPE_FN else [e.payload]
        j = i + 1
        j_max = i + max_run
        while j < n and j < j_max:
            m2 = msgs[j]
            if type(m2) is not EventMsg:
                break
            e2 = m2.event
            if (
                type(e2.stream) is not type(stream)
                or e2.stream != stream
                or type(e2.tag) is not type(tag)
                or e2.tag != tag
            ):
                break
            ts2, p2 = e2.ts, e2.payload
            if _event_shape(ts2, p2) != shape or not _run_vals_packable(
                shape, ts2, p2
            ):
                break
            ts_col.append(ts2)
            if shape != _SHAPE_FN:
                pl_col.append(p2)
            j += 1
        if j - i == 1:
            out.append(m)
        else:
            out.append(
                EventRun(
                    tag,
                    stream,
                    shape,
                    tuple(ts_col),
                    tuple(pl_col) if shape != _SHAPE_FN else None,
                )
            )
        i = j
    return out
