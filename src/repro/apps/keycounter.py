"""The paper's running example (Figure 1): a map from keys to counters.

Two event kinds per key ``k``:

* ``("i", k)`` — increment the counter for ``k`` by the payload (the
  paper increments by one; we allow a payload amount defaulting to 1,
  which preserves all the algebraic structure),
* ``("r", k)`` — *read-reset*: output the current counter, reset to 0.

Dependence (Figure 1): ``r(k)`` depends on ``r(k)`` and ``i(k)`` of the
same key; increments are independent of each other (counting is
commutative and mergeable); different keys are fully independent.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..core.dependence import DependenceRelation
from ..core.events import Event, Tag
from ..core.predicates import TagPredicate
from ..core.program import DGSProgram, single_state_program

KeyCounterState = Dict[int, int]


def inc_tag(key: int) -> Tag:
    return ("i", key)


def reset_tag(key: int) -> Tag:
    return ("r", key)


def tag_universe(num_keys: int) -> List[Tag]:
    tags: List[Tag] = []
    for k in range(num_keys):
        tags.append(inc_tag(k))
        tags.append(reset_tag(k))
    return tags


def depends_fn(t1: Tag, t2: Tag) -> bool:
    kind1, k1 = t1
    kind2, k2 = t2
    if k1 != k2:
        return False
    # Same key: everything is dependent except increment/increment.
    return not (kind1 == "i" and kind2 == "i")


def _update(state: KeyCounterState, event: Event) -> Tuple[KeyCounterState, List[Any]]:
    kind, key = event.tag
    if kind == "i":
        amount = 1 if event.payload is None else int(event.payload)
        new = dict(state)
        new[key] = new.get(key, 0) + amount
        return new, []
    if kind == "r":
        value = state.get(key, 0)
        new = dict(state)
        new[key] = 0
        return new, [(key, value)]
    raise ValueError(f"unknown tag kind {kind!r}")


def _update_batch(
    state: KeyCounterState, run: Any
) -> Tuple[KeyCounterState, List[Tuple[int, Any]]]:
    """Vectorized update over a columnar run (single tag per run).

    An increment run for key ``k`` folds to one summed add — counting
    is commutative, so the column sum is exactly the per-event fold.
    Read-reset runs keep per-event semantics (the first read observes
    the count; later reads in the same run observe zero)."""
    kind, key = run.tag
    if kind == "i":
        pl = run.payloads
        amount = len(run.ts) if pl is None else sum(map(int, pl))
        new = dict(state)
        new[key] = new.get(key, 0) + amount
        return new, []
    new = dict(state)
    outs: List[Tuple[int, Any]] = []
    for i in range(len(run.ts)):
        outs.append((i, (key, new.get(key, 0))))
        new[key] = 0
    return new, outs


def _fork(
    state: KeyCounterState, pred1: TagPredicate, pred2: TagPredicate
) -> Tuple[KeyCounterState, KeyCounterState]:
    """Figure 1's fork: the side responsible for read-resets of a key
    keeps that key's count; keys owned by neither side default to the
    second state (as in the paper's pseudocode)."""
    s1: KeyCounterState = {}
    s2: KeyCounterState = {}
    for key, count in state.items():
        if reset_tag(key) in pred1:
            s1[key] = count
        else:
            s2[key] = count
    return s1, s2


def _join(s1: KeyCounterState, s2: KeyCounterState) -> KeyCounterState:
    out = dict(s1)
    for key, count in s2.items():
        out[key] = out.get(key, 0) + count
    return out


def _normalize(state: KeyCounterState) -> Dict[int, int]:
    return {k: v for k, v in state.items() if v != 0}


def state_eq(a: KeyCounterState, b: KeyCounterState) -> bool:
    """Counter maps are equal up to absent-vs-zero entries."""
    return _normalize(a) == _normalize(b)


def make_program(num_keys: int = 2) -> DGSProgram:
    universe = tag_universe(num_keys)
    depends = DependenceRelation.from_function(universe, depends_fn)
    return single_state_program(
        name=f"keycounter[{num_keys}]",
        tags=universe,
        depends=depends,
        init=dict,
        update=_update,
        update_batch=_update_batch,
        fork=_fork,
        join=_join,
    )
