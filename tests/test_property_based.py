"""Hypothesis property-based tests on the core invariants:

* mailbox: released dependent items are globally ordered by key; every
  item is released at most once; after full frontier advance nothing
  stays buffered;
* Theorem 2.4: for hypothesis-generated inputs, every random legal wire
  diagram's output multiset equals the sequential spec's;
* plans: generated plans are always P-valid and cover each itag once;
* end-to-end (Theorem 3.5): hypothesis-generated workloads through the
  simulated runtime match the spec;
* the same randomized differential sweep on the *real* substrates —
  threaded and process — with fixed seeds so failures reproduce
  exactly (the process runtime forks per case, so its sweep is seeded
  rather than hypothesis-driven to keep the case count bounded).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import keycounter as kc
from repro.core import (
    DependenceRelation,
    Event,
    ImplTag,
    evaluate,
    output_multiset,
    random_diagram,
)
from repro.plans import is_p_valid, random_valid_plan
from repro.runtime import (
    FluminaRuntime,
    InputStream,
    Mailbox,
    run_on_backend,
    run_sequential_reference,
)

# -- strategies ---------------------------------------------------------------

UNI = ["v", "b"]
DEP = DependenceRelation(UNI, {"b": ["b", "v"]})
V0, V1, B = ImplTag("v", 0), ImplTag("v", 1), ImplTag("b", "s")

# A mailbox action: (itag index, is_heartbeat); timestamps are assigned
# monotonically per itag afterwards.
actions = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2), st.booleans()),
    min_size=1,
    max_size=60,
)


@st.composite
def keycounter_workload(draw):
    nkeys = draw(st.integers(min_value=1, max_value=3))
    n_events = draw(st.integers(min_value=5, max_value=60))
    choices = []
    for k in range(nkeys):
        choices += [kc.inc_tag(k), kc.reset_tag(k)]
    tags = draw(
        st.lists(
            st.sampled_from(choices), min_size=n_events, max_size=n_events
        )
    )
    events = [Event(tag, f"s{tag}", float(i + 1)) for i, tag in enumerate(tags)]
    return nkeys, events


# -- mailbox properties --------------------------------------------------------


@given(actions)
@settings(max_examples=60, deadline=None)
def test_mailbox_release_order_and_uniqueness(acts):
    itags = [V0, V1, B]
    mb = Mailbox(itags, DEP)
    clock = {t: 0.0 for t in itags}
    released = []
    inserted = 0
    for idx, is_hb in acts:
        itag = itags[idx]
        clock[itag] += 1.0
        key = Event(itag.tag, itag.stream, clock[itag]).order_key
        if is_hb:
            released += mb.advance(itag, key)
        else:
            released += mb.insert(itag, key, ("item", itag, clock[itag]))
            inserted += 1
    # Flush everything.
    for itag in itags:
        clock[itag] += 1000.0
        released += mb.advance(
            itag, Event(itag.tag, itag.stream, clock[itag]).order_key
        )
    # (1) everything inserted is released exactly once
    assert len(released) == inserted
    assert len({id(b.item) for b in released}) == inserted
    assert mb.buffered_count() == 0
    # (2) dependent items appear in key order
    for i, a in enumerate(released):
        for b in released[i + 1 :]:
            if DEP.itag_depends(a.itag, b.itag):
                assert a.key < b.key


# -- Theorem 2.4 ---------------------------------------------------------------


@given(keycounter_workload(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_theorem_2_4_random_diagrams(workload, seed):
    nkeys, events = workload
    prog = kc.make_program(nkeys)
    diagram = random_diagram(prog, events, random.Random(seed))
    result = evaluate(prog, diagram)
    assert output_multiset(result.outputs) == output_multiset(
        prog.spec(diagram.events())
    )


# -- plan generation -------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_random_plans_always_valid(nkeys, n_streams, seed):
    prog = kc.make_program(nkeys)
    itags = []
    for k in range(nkeys):
        for s in range(n_streams):
            itags.append(ImplTag(kc.inc_tag(k), f"i{k}.{s}"))
        itags.append(ImplTag(kc.reset_tag(k), f"r{k}"))
    plan = random_valid_plan(prog, itags, random.Random(seed))
    assert is_p_valid(plan, prog)
    assigned = sorted((t for n in plan.workers() for t in n.itags), key=repr)
    assert assigned == sorted(itags, key=repr)


# -- Theorem 3.5 (end to end) -----------------------------------------------------


@given(keycounter_workload(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_theorem_3_5_runtime_matches_spec(workload, seed):
    nkeys, events = workload
    prog = kc.make_program(nkeys)
    by_itag = {}
    for e in events:
        by_itag.setdefault(e.itag, []).append(e)
    streams = [
        InputStream(itag, tuple(evs), heartbeat_interval=7.0)
        for itag, evs in by_itag.items()
    ]
    itags = list(by_itag)
    plan = random_valid_plan(prog, itags, random.Random(seed))
    res = FluminaRuntime(prog, plan).run(streams)
    assert output_multiset(res.output_values()) == output_multiset(
        run_sequential_reference(prog, streams)
    )


# -- Theorem 3.5 on the real substrates -------------------------------------
#
# The same randomized workload/plan derivation as above, but executed on
# the threaded and process backends.  Seeds are fixed module constants:
# a failure names (backend, seed) and reruns with exactly the same
# workload, plan, and input interleaving.

def _seeded_keycounter_case(seed: int):
    rng = random.Random(seed)
    nkeys = rng.randint(1, 3)
    n_events = rng.randint(20, 60)
    prog = kc.make_program(nkeys)
    choices = []
    for k in range(nkeys):
        choices += [kc.inc_tag(k), kc.reset_tag(k)]
    by_itag = {}
    for i in range(n_events):
        tag = rng.choice(choices)
        itag = ImplTag(tag, f"s{tag}")
        by_itag.setdefault(itag, []).append(
            Event(tag, itag.stream, float(i + 1))
        )
    streams = [
        InputStream(itag, tuple(evs), heartbeat_interval=rng.choice((3.0, 7.0)))
        for itag, evs in by_itag.items()
    ]
    plan = random_valid_plan(prog, list(by_itag), random.Random(seed + 1))
    return prog, streams, plan


@pytest.mark.parametrize("backend", ["threaded", "process"])
@pytest.mark.parametrize("seed", [2, 71, 1009, 20260728])
def test_randomized_sweep_on_real_backends(backend, seed):
    prog, streams, plan = _seeded_keycounter_case(seed)
    run = run_on_backend(backend, prog, plan, streams, timeout_s=60.0)
    assert output_multiset(run.outputs) == output_multiset(
        run_sequential_reference(prog, streams)
    ), f"{backend} diverged from spec for seed {seed}"
