"""Unit tests for repro.core.events (tags, events, heartbeats, sortO)."""

import pytest

from repro.core import (
    Event,
    Heartbeat,
    ImplTag,
    check_valid_input_instance,
    sort_streams,
    stream_is_monotone,
)


class TestEventBasics:
    def test_itag_pairs_tag_and_stream(self):
        e = Event(tag="a", stream=3, ts=7, payload=42)
        assert e.itag == ImplTag("a", 3)
        assert e.itag.tag == "a"
        assert e.itag.stream == 3

    def test_events_are_immutable(self):
        e = Event("a", 0, 1)
        with pytest.raises(AttributeError):
            e.ts = 2  # type: ignore[misc]

    def test_heartbeat_is_heartbeat(self):
        assert Heartbeat("a", 0, 5).is_heartbeat()
        assert not Event("a", 0, 5).is_heartbeat()

    def test_order_key_orders_by_timestamp_first(self):
        early = Event("z", 9, 1)
        late = Event("a", 0, 2)
        assert early.order_key < late.order_key

    def test_order_key_breaks_ties_deterministically(self):
        a = Event("a", 0, 1)
        b = Event("b", 0, 1)
        assert (a.order_key < b.order_key) != (b.order_key < a.order_key)

    def test_order_key_handles_heterogeneous_tags(self):
        # int vs str tags must still be comparable.
        a = Event(1, 0, 1)
        b = Event("x", 0, 1)
        assert (a.order_key < b.order_key) or (b.order_key < a.order_key)

    def test_tuple_tags_order(self):
        a = Event(("i", 1), 0, 1)
        b = Event(("r", 1), 0, 1)
        assert a.order_key < b.order_key


class TestSortStreams:
    def test_merges_by_timestamp(self):
        s1 = [Event("a", 0, 1), Event("a", 0, 5)]
        s2 = [Event("b", 1, 2), Event("b", 1, 4)]
        merged = sort_streams([s1, s2])
        assert [e.ts for e in merged] == [1, 2, 4, 5]

    def test_drops_heartbeats(self):
        s1 = [Event("a", 0, 1), Heartbeat("a", 0, 2), Event("a", 0, 3)]
        merged = sort_streams([s1])
        assert [e.ts for e in merged] == [1, 3]
        assert all(not e.is_heartbeat() for e in merged)

    def test_empty(self):
        assert sort_streams([]) == []
        assert sort_streams([[], []]) == []


class TestMonotonicity:
    def test_monotone_stream(self):
        assert stream_is_monotone([Event("a", 0, 1), Event("a", 0, 2)])

    def test_non_monotone_stream(self):
        assert not stream_is_monotone([Event("a", 0, 2), Event("a", 0, 1)])

    def test_equal_timestamps_same_tag_not_monotone(self):
        assert not stream_is_monotone([Event("a", 0, 1), Event("a", 0, 1)])

    def test_heartbeats_participate_in_order(self):
        assert stream_is_monotone([Event("a", 0, 1), Heartbeat("a", 0, 2)])


class TestValidInputInstance:
    def test_valid_instance(self):
        s1 = [Event("a", 0, 1), Event("a", 0, 3), Heartbeat("a", 0, 10)]
        s2 = [Event("b", 1, 2), Heartbeat("b", 1, 11)]
        assert check_valid_input_instance([s1, s2]) == []

    def test_progress_violation_detected(self):
        # Stream 1's last record never passes stream 0's last event.
        s1 = [Event("a", 0, 100)]
        s2 = [Event("b", 1, 1)]
        problems = check_valid_input_instance([s1, s2])
        assert any("progress" in p for p in problems)

    def test_monotonicity_violation_detected(self):
        s1 = [Event("a", 0, 5), Event("a", 0, 1), Heartbeat("a", 0, 10)]
        problems = check_valid_input_instance([s1])
        assert any("increasing" in p for p in problems)

    def test_heartbeats_satisfy_progress(self):
        s1 = [Event("a", 0, 1), Heartbeat("a", 0, 50)]
        s2 = [Event("b", 1, 2), Heartbeat("b", 1, 50)]
        assert check_valid_input_instance([s1, s2]) == []
