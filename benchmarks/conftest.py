"""Shared benchmark configuration.

Set ``REPRO_BENCH_QUICK=1`` to run the figure reproductions on a
reduced parallelism axis (useful for smoke runs); the default runs the
paper's full 1-20 node axis.
"""

import glob
import os

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

PARALLELISM_LEVELS = (1, 4, 12) if QUICK else (1, 4, 8, 12, 16, 20)

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Dump every regenerated paper artifact into the terminal report
    (stdout of passing tests is captured by pytest, so without this the
    tables would only exist as files under benchmarks/results/)."""
    paths = sorted(glob.glob(os.path.join(_RESULTS_DIR, "*.txt")))
    if not paths:
        return
    tr = terminalreporter
    tr.section("reproduced paper artifacts (also in benchmarks/results/)")
    for path in paths:
        with open(path) as f:
            tr.write_line("")
            for line in f.read().rstrip().splitlines():
                tr.write_line(line)
