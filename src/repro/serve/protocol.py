"""The service wire protocol: framed control + event traffic.

Every message on a service connection rides the same 4-byte
length-prefix convention as the data plane
(:data:`~repro.runtime.wire.FRAME_LEN`, reassembled by
:class:`~repro.runtime.wire.FrameAssembler`).  Inside the length
prefix, the first byte selects the payload kind:

* ``C`` (0x43) — a JSON control blob (hello, welcome, ack, flush,
  finish, eof).  JSON, never pickle: control frames arrive from
  sockets that are not yet trusted, and unpickling attacker bytes is
  code execution — the same rule the cluster handshake follows.
* ``E`` (0x45) — a batch of protocol messages in the frame codec
  (:func:`~repro.runtime.wire.pack_frame`).  Ingest clients send
  :class:`~repro.runtime.messages.EventMsg` batches; the egress
  channel sends committed outputs wrapped as events (below).

Committed outputs are opaque application values; the egress channel
wraps each as ``Event(OUT_TAG, OUT_STREAM, ts=float(seq), payload=v)``
so they ride the existing codec, with the commit-log sequence number
carried in the timestamp.  Sequence numbers are the exactly-once
handle: the server assigns them at commit time, subscribers resume
from any ``from_seq`` and deduplicate by seq across reconnects.

The hello handshake mirrors the cluster registry: the first frame must
be a control blob carrying the service cookie (compared with
``hmac.compare_digest``), and anything malformed, mis-cookied, or slow
is dropped without joining — or crashing — the service.
"""

from __future__ import annotations

import json
from typing import Any, List, Sequence, Tuple

from ..core.errors import RuntimeFault
from ..core.events import Event
from ..runtime.messages import EventMsg
from ..runtime.wire import FRAME_LEN, pack_frame, unpack_frame

#: Protocol version, echoed in hellos; bumped on incompatible change.
PROTOCOL_VERSION = 1

#: Frame kind bytes.
KIND_CONTROL = 0x43  # 'C'
KIND_EVENTS = 0x45  # 'E'

#: Control blobs are a few hundred bytes; event frames are bounded by
#: the client's batch size.  Anything bigger is not a client of ours.
MAX_FRAME = 1 << 24

#: The egress channel's synthetic route for committed outputs.
OUT_TAG = "__serve_out__"
OUT_STREAM = "egress"


def control_frame(obj: Any) -> bytes:
    """A length-prefixed control frame carrying one JSON blob."""
    body = bytes((KIND_CONTROL,)) + json.dumps(obj).encode("utf-8")
    return FRAME_LEN.pack(len(body)) + body


def events_frame(msgs: Sequence[Any]) -> bytes:
    """A length-prefixed event frame carrying one message batch."""
    body = bytes((KIND_EVENTS,)) + pack_frame(msgs)
    return FRAME_LEN.pack(len(body)) + body


def parse_frame(body: bytes) -> Tuple[str, Any]:
    """Decode one reassembled frame body into ``("control", dict)`` or
    ``("events", [msgs])``; anything else is a protocol violation."""
    if not body:
        raise RuntimeFault("service protocol: empty frame")
    kind = body[0]
    if kind == KIND_CONTROL:
        try:
            blob = json.loads(body[1:].decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise RuntimeFault(f"service protocol: bad control blob: {exc!r}") from exc
        if not isinstance(blob, dict):
            raise RuntimeFault("service protocol: control blob must be an object")
        return ("control", blob)
    if kind == KIND_EVENTS:
        return ("events", unpack_frame(body[1:]))
    raise RuntimeFault(f"service protocol: unknown frame kind {kind:#x}")


def ingest_events_frame(events: Sequence[Event]) -> bytes:
    """The ingest side's event frame: raw application events."""
    return events_frame([EventMsg(e) for e in events])


def outputs_frame(values: Sequence[Any], start_seq: int) -> bytes:
    """The egress side's event frame: committed output values wrapped
    with their commit-log sequence numbers riding the timestamp."""
    msgs = [
        EventMsg(Event(OUT_TAG, OUT_STREAM, float(start_seq + i), v))
        for i, v in enumerate(values)
    ]
    return events_frame(msgs)


def decode_outputs(msgs: Sequence[Any]) -> List[Tuple[int, Any]]:
    """Inverse of :func:`outputs_frame`: ``(seq, value)`` pairs."""
    out: List[Tuple[int, Any]] = []
    for m in msgs:
        if not isinstance(m, EventMsg) or m.event.tag != OUT_TAG:
            raise RuntimeFault(f"service protocol: unexpected egress message {m!r}")
        out.append((int(m.event.ts), m.event.payload))
    return out
