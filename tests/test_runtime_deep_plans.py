"""Stress tests for deep / unusual plan shapes on the Flumina runtime:
multi-level recursive joins, chains, forests, single-event streams, and
extreme heartbeat settings — all must still match the sequential spec
(Theorem 3.5 holds for *any* P-valid plan)."""

import random
from collections import Counter

import pytest

from repro.apps import keycounter as kc, pageview as pv, value_barrier as vb
from repro.core import Event, ImplTag
from repro.plans import chain_plan, is_p_valid
from repro.runtime import FluminaRuntime, InputStream, run_sequential_reference


def outputs_match(prog, plan, streams):
    res = FluminaRuntime(prog, plan).run(streams)
    got = Counter(map(repr, res.output_values()))
    want = Counter(map(repr, run_sequential_reference(prog, streams)))
    return got == want, res


class TestDeepChains:
    @pytest.mark.parametrize("n_leaves", [2, 5, 9, 16])
    def test_chain_of_any_depth(self, n_leaves):
        prog = vb.make_program()
        wl = vb.make_workload(
            n_value_streams=n_leaves, values_per_barrier=15, n_barriers=3
        )
        plan = chain_plan(
            prog, [wl.barrier_itag], [[t] for t in wl.value_streams]
        )
        assert plan.depth() == n_leaves
        ok, res = outputs_match(prog, plan, vb.make_streams(wl))
        assert ok
        # Every internal node joins once per barrier (recursively).
        assert res.joins == (n_leaves - 1) * 3


class TestMultiLevelSyncTags:
    def test_sync_tags_at_two_levels(self):
        """An internal node with its own itags *below* another internal
        node with itags: joins must nest correctly (g joins through p)."""
        prog = kc.make_program(2)
        # key 0: r at inner node over two i-streams; key 1 alongside;
        # then a root holding nothing.
        i00 = ImplTag(kc.inc_tag(0), "a")
        i01 = ImplTag(kc.inc_tag(0), "b")
        r0 = ImplTag(kc.reset_tag(0), "r0")
        i1 = ImplTag(kc.inc_tag(1), "c")
        r1 = ImplTag(kc.reset_tag(1), "r1")
        from repro.plans import PlanNode, SyncPlan

        leaf_a = PlanNode("wa", "State0", frozenset({i00}))
        leaf_b = PlanNode("wb", "State0", frozenset({i01}))
        inner = PlanNode("wi", "State0", frozenset({r0}), (leaf_a, leaf_b))
        side = PlanNode("ws", "State0", frozenset({i1, r1}))
        root = PlanNode("wr", "State0", frozenset(), (inner, side))
        plan = SyncPlan(root)
        assert is_p_valid(plan, prog)

        rng = random.Random(4)
        itags = [i00, i01, r0, i1, r1]
        events = {it: [] for it in itags}
        for t in range(1, 150):
            it = itags[rng.randrange(len(itags))]
            events[it].append(Event(it.tag, it.stream, float(t)))
        streams = [
            InputStream(it, tuple(events[it]), heartbeat_interval=3.0)
            for it in itags
        ]
        ok, res = outputs_match(prog, plan, streams)
        assert ok
        assert res.joins > 0

    def test_root_with_itags_above_inner_sync(self):
        """Root r-tags of key 0 *and* inner r-tags of key 1 in one tree:
        the root's join recursively absorbs an inner node that itself
        owns synchronizing tags."""
        prog = kc.make_program(2)
        i1a = ImplTag(kc.inc_tag(1), "x")
        i1b = ImplTag(kc.inc_tag(1), "y")
        r1 = ImplTag(kc.reset_tag(1), "r1")
        i0 = ImplTag(kc.inc_tag(0), "z")
        r0 = ImplTag(kc.reset_tag(0), "r0")
        from repro.plans import PlanNode, SyncPlan

        la = PlanNode("la", "State0", frozenset({i1a}))
        lb = PlanNode("lb", "State0", frozenset({i1b}))
        inner = PlanNode("in", "State0", frozenset({r1}), (la, lb))
        other = PlanNode("ot", "State0", frozenset({i0}))
        root = PlanNode("rt", "State0", frozenset({r0}), (inner, other))
        plan = SyncPlan(root)
        assert is_p_valid(plan, prog)

        rng = random.Random(9)
        itags = [i1a, i1b, r1, i0, r0]
        events = {it: [] for it in itags}
        for t in range(1, 150):
            it = itags[rng.randrange(len(itags))]
            events[it].append(Event(it.tag, it.stream, float(t)))
        streams = [
            InputStream(it, tuple(events[it]), heartbeat_interval=3.0)
            for it in itags
        ]
        ok, _ = outputs_match(prog, plan, streams)
        assert ok


class TestDegenerateInputs:
    def test_single_event_per_stream(self):
        prog = vb.make_program()
        vitag = ImplTag(vb.VALUE_TAG, "v0")
        bitag = ImplTag(vb.BARRIER_TAG, "b")
        streams = [
            InputStream(vitag, (Event(vb.VALUE_TAG, "v0", 1.5, 7),), heartbeat_interval=1.0),
            InputStream(bitag, (Event(vb.BARRIER_TAG, "b", 2.0, 0),), heartbeat_interval=1.0),
        ]
        from repro.plans import PlanNode, SyncPlan

        leafv = PlanNode("lv", "State0", frozenset({vitag}))
        leafd = PlanNode("ld", "State0", frozenset())
        root = PlanNode("rt", "State0", frozenset({bitag}), (leafv, leafd))
        plan = SyncPlan(root)
        ok, res = outputs_match(prog, plan, streams)
        assert ok
        assert res.output_values() == [("window_sum", 2.0, 7)]

    def test_stream_with_no_events_but_heartbeats(self):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=2, values_per_barrier=15, n_barriers=2)
        streams = vb.make_streams(wl)
        # One extra value stream with no events at all.
        extra = ImplTag(vb.VALUE_TAG, "empty")
        streams.append(InputStream(extra, (), heartbeat_interval=5.0))
        leaf_groups = [[t] for t in wl.value_streams] + [[extra]]
        from repro.plans import root_and_leaves_plan

        plan = root_and_leaves_plan(prog, [wl.barrier_itag], leaf_groups)
        ok, _ = outputs_match(prog, plan, streams)
        assert ok

    def test_barriers_only(self):
        prog = vb.make_program()
        bitag = ImplTag(vb.BARRIER_TAG, "b")
        events = tuple(Event(vb.BARRIER_TAG, "b", float(t), 0) for t in (1, 2, 3))
        streams = [InputStream(bitag, events, heartbeat_interval=1.0)]
        from repro.plans import sequential_plan

        plan = sequential_plan(prog, [bitag])
        ok, res = outputs_match(prog, plan, streams)
        assert ok
        assert len(res.output_values()) == 3


class TestForestUnderLoad:
    def test_pageview_forest_with_many_streams(self):
        prog = pv.make_program(3)
        wl = pv.make_workload(
            n_pages=3, n_view_streams=9, views_per_update=25, n_updates_per_page=3
        )
        plan = pv.make_plan(prog, wl)
        assert is_p_valid(plan, prog)
        ok, res = outputs_match(prog, plan, pv.make_streams(wl))
        assert ok
        # Each page's subtree joins independently.
        assert res.joins > 0
