"""The end-to-end Flumina-style runtime on the cluster simulator.

:class:`FluminaRuntime` instantiates a P-valid synchronization plan as
one actor per worker, distributes the initial state down the tree with
the program's fork (consistent by C2), feeds the input streams (with
periodic heartbeats, §3.4), runs the simulation to completion, and
returns a :class:`RunResult` with outputs, latencies, throughput, and
network statistics.

Timestamps double as simulated arrival times: an event with timestamp
``ts`` departs its producer at ``ts`` milliseconds of simulated time,
so event latency is ``emit_time - ts``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import RuntimeFault
from ..core.events import Event, Heartbeat, ImplTag
from ..core.program import DGSProgram
from ..plans.generation import assign_hosts_round_robin
from ..plans.plan import SyncPlan
from ..plans.validity import assert_p_valid
from ..sim.actors import ActorSystem
from ..sim.core import Simulator
from ..sim.network import NetworkStats, Topology
from ..sim.params import DEFAULT_PARAMS, SimParams
from .checkpoint import Checkpoint
from .faults import CrashRecord, FaultPlan
from .messages import EventMsg, HeartbeatMsg
from .metrics import LatencyHistogram, MetricsConfig, MetricsSnapshot, RunMetrics
from .protocol import INIT_STATE
from .quiesce import QuiesceRecord
from .worker import RunCollector, StateSizeFn, WorkerActor, default_state_size


@dataclass(frozen=True)
class InputStream:
    """One input stream: a single implementation tag's events.

    ``events`` must be strictly increasing in timestamp.  ``source_host``
    is where the producer runs (events from a producer co-located with
    the owning worker are local).  ``heartbeat_interval`` is the gap (in
    timestamp units == simulated ms) between heartbeats; ``None``
    disables periodic heartbeats (a closing heartbeat is still sent so
    finite runs drain).
    """

    itag: ImplTag
    events: Tuple[Event, ...]
    source_host: Optional[str] = None
    heartbeat_interval: Optional[float] = 10.0


@dataclass
class RunResult:
    """Everything measured in one simulated execution."""

    outputs: List[Tuple[Any, float, float]]  # (value, emit_time, latency)
    duration_ms: float
    first_input_ms: float
    last_input_ms: float
    events_in: int
    events_processed: int
    joins: int
    network: NetworkStats
    host_utilization: Dict[str, float]
    checkpoints: List[Checkpoint] = field(default_factory=list)
    event_latencies: List[float] = field(default_factory=list)
    #: (order_key, value) log (record_keys runs) + injected crashes.
    keyed_outputs: List[Tuple[tuple, Any]] = field(default_factory=list)
    crashes: List[CrashRecord] = field(default_factory=list)
    #: Set when the root quiesced for elastic reconfiguration.
    quiesce: Optional[QuiesceRecord] = None
    #: Metrics-plane snapshot (one "sim" pseudo-worker; latencies are
    #: simulated ms scaled to seconds) when metrics were enabled.
    metrics: Optional[RunMetrics] = None

    def event_latency_percentiles(
        self, qs: Sequence[float] = (10, 50, 90)
    ) -> List[float]:
        """Percentiles over *every processed event's* latency — the
        Appendix D.1 metric (requires track_event_latency=True)."""
        if not self.event_latencies:
            return [math.nan for _ in qs]
        return [float(p) for p in np.percentile(self.event_latencies, qs)]

    def output_values(self) -> List[Any]:
        return [v for v, _, _ in self.outputs]

    def latencies(self) -> List[float]:
        return [lat for _, _, lat in self.outputs]

    def latency_percentiles(self, qs: Sequence[float] = (10, 50, 90)) -> List[float]:
        lats = self.latencies()
        if not lats:
            return [math.nan for _ in qs]
        return [float(p) for p in np.percentile(lats, qs)]

    @property
    def input_span_ms(self) -> float:
        """Length of the input injection window (offered-load basis)."""
        return max(self.last_input_ms - self.first_input_ms, 1e-9)

    @property
    def throughput_events_per_ms(self) -> float:
        span = self.duration_ms - self.first_input_ms
        if span <= 0:
            return 0.0
        return self.events_in / span


class FluminaRuntime:
    """Instantiate a program + plan on a simulated cluster and run it."""

    def __init__(
        self,
        program: DGSProgram,
        plan: SyncPlan,
        *,
        topology: Optional[Topology] = None,
        params: SimParams = DEFAULT_PARAMS,
        state_size: StateSizeFn = default_state_size,
        checkpoint_predicate: Optional[Callable[[Event, int], bool]] = None,
        track_event_latency: bool = False,
        faults: Optional[FaultPlan] = None,
        record_keys: bool = False,
        reconfig: Optional[Any] = None,
        metrics: Optional[MetricsConfig] = None,
        validate: bool = True,
    ) -> None:
        self.program = program
        if validate:
            assert_p_valid(plan, program)
        if topology is None:
            n_hosts = max(1, len(plan.leaves()))
            topology = Topology.cluster(n_hosts, params=params)
        self.topology = topology
        if any(n.host is None for n in plan.workers()):
            plan = assign_hosts_round_robin(plan, topology.host_names())
        for node in plan.workers():
            if node.host not in topology.hosts:
                raise RuntimeFault(
                    f"worker {node.id} placed on unknown host {node.host!r}"
                )
        self.plan = plan
        self.params = topology.params
        self.state_size = state_size
        self.checkpoint_predicate = checkpoint_predicate
        self.track_event_latency = track_event_latency
        self.faults = faults
        self.record_keys = record_keys
        #: RootReconfigView handed to the root worker (elastic runs).
        self.reconfig = reconfig
        #: MetricsConfig when the metrics plane is on (the simulated
        #: substrate reports a single "sim" pseudo-worker).
        self.metrics = metrics

    # -- setup ----------------------------------------------------------------
    @staticmethod
    def actor_name_of(worker_id: str) -> str:
        return f"worker:{worker_id}"

    def _build(
        self, initial_state: Any = INIT_STATE
    ) -> Tuple[ActorSystem, RunCollector, Dict[str, WorkerActor]]:
        sim = Simulator()
        system = ActorSystem(sim, self.topology)
        collector = RunCollector(
            track_event_latency=self.track_event_latency,
            record_keys=self.record_keys,
        )
        workers: Dict[str, WorkerActor] = {}
        for node in self.plan.workers():
            actor = WorkerActor(
                self.actor_name_of(node.id),
                node.host,  # type: ignore[arg-type]
                node=node,
                plan=self.plan,
                program=self.program,
                collector=collector,
                actor_name_of=self.actor_name_of,
                state_size=self.state_size,
                checkpoint_predicate=self.checkpoint_predicate,
                faults=(
                    self.faults.view_for(node.id) if self.faults is not None else None
                ),
                reconfig=(
                    self.reconfig if node.id == self.plan.root.id else None
                ),
            )
            system.add(actor)
            workers[node.id] = actor
        self._distribute_initial_state(workers, initial_state)
        return system, collector, workers

    def _distribute_initial_state(
        self, workers: Dict[str, WorkerActor], root_state: Any = INIT_STATE
    ) -> None:
        """Fork the root state (``init()``, or a restored checkpoint)
        down the tree so every leaf holds its share (consistent with
        the sequential state by C2)."""

        def distribute(node_id: str, state: Any) -> None:
            worker = workers[node_id]
            if worker.is_leaf:
                worker.state = state
                worker.has_state = True
                return
            left, right = worker.node.children
            s_left, s_right = worker.fork(state, worker.pred_left, worker.pred_right)
            distribute(left.id, s_left)
            distribute(right.id, s_right)

        distribute(
            self.plan.root.id,
            self.program.init() if root_state is INIT_STATE else root_state,
        )

    # -- input feeding ------------------------------------------------------------
    def _feed(self, system: ActorSystem, streams: Sequence[InputStream]) -> Tuple[int, float, float]:
        owners = {s.itag: self.plan.owner_of(s.itag) for s in streams}
        events_in = 0
        first_ts = math.inf
        last_ts = 0.0
        for stream in streams:
            for e in stream.events:
                if e.itag != stream.itag:
                    raise RuntimeFault(
                        f"event {e!r} does not belong to stream {stream.itag!r}"
                    )
                first_ts = min(first_ts, e.ts)
                last_ts = max(last_ts, e.ts)
        end_ts = last_ts + 1.0
        for stream in streams:
            owner = owners[stream.itag]
            dst = self.actor_name_of(owner.id)
            src_host = stream.source_host or owner.host
            prev_ts = 0.0
            for e in stream.events:
                if e.ts <= prev_ts and events_in:
                    pass  # monotonicity enforced by the mailbox on arrival
                system.inject(dst, EventMsg(e), at=e.ts, from_host=src_host)
                prev_ts = e.ts
                events_in += 1
            # Periodic heartbeats between events, plus a closing one so
            # that every buffer drains at the end of the run.
            hb_times: List[float] = []
            if stream.heartbeat_interval:
                t = stream.heartbeat_interval
                while t < end_ts:
                    hb_times.append(t)
                    t += stream.heartbeat_interval
            hb_times.append(end_ts)
            event_ts = {e.ts for e in stream.events}
            for t in hb_times:
                if t in event_ts:
                    continue
                hb = Heartbeat(stream.itag.tag, stream.itag.stream, t)
                system.inject(
                    dst,
                    HeartbeatMsg(stream.itag, hb.order_key),
                    at=t,
                    from_host=src_host,
                )
        if not math.isfinite(first_ts):
            first_ts = 0.0
        return events_in, first_ts, last_ts

    # -- execution ------------------------------------------------------------------
    def run(
        self,
        streams: Sequence[InputStream],
        *,
        max_sim_events: int = 50_000_000,
        initial_state: Any = INIT_STATE,
    ) -> RunResult:
        system, collector, workers = self._build(initial_state)
        events_in, first_ts, last_ts = self._feed(system, streams)
        system.sim.run(max_events=max_sim_events)
        duration_clock = max(system.sim.now, system.last_completion)
        if not collector.crashes and collector.quiesce is None:
            # A crashed or quiesced attempt legitimately strands
            # buffered items (the stopped worker's, and its blocked
            # ancestors'); the recovery/reconfiguration drivers replay
            # them, so only fail-free runs must prove they drained.
            for worker in workers.values():
                if worker.mailbox.buffered_count() or worker.pending:
                    raise RuntimeFault(
                        f"run ended with unprocessed items at {worker.name} "
                        f"(buffered={worker.mailbox.buffered_count()}, "
                        f"pending={len(worker.pending)}); "
                        "check heartbeats / dependence relation"
                    )
        duration = duration_clock
        util = {
            name: host.utilization(duration) if duration > 0 else 0.0
            for name, host in self.topology.hosts.items()
        }
        run_metrics: Optional[RunMetrics] = None
        if self.metrics is not None:
            # One pseudo-worker for the whole simulated cluster:
            # counters from the collector, the end-to-end histogram
            # fed from per-output latencies (simulated ms -> seconds).
            buckets = self.metrics.latency_buckets
            snap = MetricsSnapshot(
                worker="sim",
                events_processed=collector.events_processed,
                joins_completed=collector.joins,
            )
            lats = [lat for _, _, lat in collector.outputs]
            if lats:
                h = LatencyHistogram(buckets)
                for lat in lats:
                    h.observe(max(lat, 0.0) / 1000.0)
                snap.event_latency = h
            run_metrics = RunMetrics(latency_buckets=buckets)
            run_metrics.absorb(snap)
        return RunResult(
            outputs=list(collector.outputs),
            duration_ms=duration,
            first_input_ms=first_ts,
            last_input_ms=last_ts,
            events_in=events_in,
            events_processed=collector.events_processed,
            joins=collector.joins,
            network=self.topology.stats,
            host_utilization=util,
            checkpoints=list(collector.checkpoints),
            event_latencies=collector.event_latencies,
            keyed_outputs=list(collector.keyed_outputs),
            crashes=list(collector.crashes),
            quiesce=collector.quiesce,
            metrics=run_metrics,
        )


def run_sequential_reference(
    program: DGSProgram, streams: Sequence[InputStream]
) -> List[Any]:
    """The sequential specification output for the same input streams
    (the correctness oracle of Definition 3.4)."""
    return program.spec_of_streams([list(s.events) for s in streams])
