#!/usr/bin/env python
"""CI perf gate CLI over the BENCH_*.json records.

Check the current results against the committed baselines::

    PYTHONPATH=src python benchmarks/perf_gate.py check

Regenerate the committed baselines after an intentional perf change
(run the smoke benchmarks first so fresh results exist)::

    PYTHONPATH=src python -m pytest benchmarks/bench_micro_core.py \\
        benchmarks/bench_transport.py \\
        benchmarks/bench_adversarial.py --smoke -q
    PYTHONPATH=src python benchmarks/perf_gate.py rebase

See :mod:`repro.bench.perfgate` for the comparison rules (directional
metrics, 25% default tolerance, fail-closed on missing records).
"""

import sys

from repro.bench.perfgate import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
