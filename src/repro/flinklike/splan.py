"""Manual synchronization plans inside the Flink-like engine (§4.3).

The paper implements synchronization plans *manually* in Flink by
letting parallel operator instances rendezvous through an external
Java-RMI service guarded by semaphores (Figure 7) — sacrificing
parallelism independence (PIP1: the code knows the instance count),
partition independence (PIP2: subtask indices map to trees), and API
compliance (PIP3: operators now have side effects).

We model the RMI service as a :class:`ForkJoinService` actor on its own
host.  A child instance "releases its J semaphore and acquires its F
semaphore" by sending its state and blocking until the fork response
arrives; the parent joins all child states, processes the
synchronizing event, and releases the children with forked states.

Two applications are provided, matching §4.3:

* fraud detection — one tree: rules joined against all transaction
  shards;
* page-view join — a forest: one tree per page over that page's view
  shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..apps import fraud as fraud_app
from ..apps import pageview as pv_app
from ..data.generators import PageViewWorkload, ValueBarrierWorkload
from ..sim.actors import Actor
from ..sim.params import DEFAULT_PARAMS, SimParams
from .apps import _MergingInstance, _Forward, _recs
from .engine import FlinkJob, JobGraph, OperatorInstance, Rec


@dataclass(frozen=True)
class JoinChild:
    group: int
    child: str
    state: Any


@dataclass(frozen=True)
class JoinParent:
    group: int
    parent: str
    payload: Any
    ts: float


@dataclass(frozen=True)
class ForkResponse:
    group: int
    state: Any


@dataclass(frozen=True)
class ParentResult:
    group: int
    result: Any
    ts: float


class ForkJoinService(Actor):
    """Central rendezvous service (the RMI + semaphores analog).

    One *group* per tree in the synchronization plan; each group has a
    fixed set of children and one parent.  ``combine(states, payload)``
    returns ``(parent_result, [child_state, ...])``.
    """

    def __init__(
        self,
        name: str,
        host: str,
        *,
        groups: Dict[int, int],  # group -> number of children
        combine: Callable[[List[Any], Any], Tuple[Any, List[Any]]],
        virtual_init: Optional[Callable[[], Any]] = None,
    ) -> None:
        super().__init__(name, host)
        self.expected = dict(groups)
        self.combine = combine
        self._children: Dict[int, List[JoinChild]] = {g: [] for g in groups}
        self._parent: Dict[int, Optional[JoinParent]] = {g: None for g in groups}
        # Childless groups (no shard serves the key at this
        # parallelism): the service itself holds the state.
        self._virtual: Dict[int, Any] = {
            g: virtual_init() if virtual_init else None
            for g, n in groups.items()
            if n == 0
        }

    def handle(self, msg: Any, sender: Optional[str]) -> None:
        if isinstance(msg, JoinChild):
            self._children[msg.group].append(msg)
        elif isinstance(msg, JoinParent):
            if self._parent[msg.group] is not None:
                raise RuntimeError(f"group {msg.group}: overlapping parent joins")
            self._parent[msg.group] = msg
        else:
            raise RuntimeError(f"ForkJoinService got {msg!r}")
        self._try_complete(msg.group)

    def _try_complete(self, group: int) -> None:
        parent = self._parent[group]
        children = self._children[group]
        if parent is None or len(children) < self.expected[group]:
            return
        children.sort(key=lambda c: c.child)
        if self.expected[group] == 0:
            states = [self._virtual[group]]
            result, new_states = self.combine(states, parent.payload)
            self._virtual[group] = new_states[0]
        else:
            states = [c.state for c in children]
            result, new_states = self.combine(states, parent.payload)
            for child, new_state in zip(children, new_states):
                self.send(child.child, ForkResponse(group, new_state), state_size=1.0)
        self.send(parent.parent, ParentResult(group, result, parent.ts))
        self._children[group] = []
        self._parent[group] = None


# -- Fraud detection (manual) ----------------------------------------------------


class _FraudShard(_MergingInstance):
    """Transaction shard: local (sum, model); on each broadcast rule it
    joins through the service and blocks (the semaphore acquire)."""

    def __init__(self, service: str) -> None:
        super().__init__()
        self.service = service

    def open(self) -> None:
        super().open()
        self.total = 0
        self.model = 0

    def on_ordered(self, rec: Rec, input_id: int) -> None:
        if input_id == 0:
            value = int(rec.value)
            if value % fraud_app.MODULO == self.model:
                self.output(("fraud", rec.ts, value), rec.ts)
            self.total += value
        else:
            # Rule: join via the central service, then block until the
            # forked state comes back.
            self.send_service(
                self.service, JoinChild(0, self.ctx.name, (self.total, self.model))
            )
            self.block()

    def on_service(self, msg: Any, sender: Optional[str]) -> None:
        assert isinstance(msg, ForkResponse)
        self.total, self.model = msg.state
        self.unblock()


class _FraudRuleParent(OperatorInstance):
    def __init__(self, service: str) -> None:
        super().__init__()
        self.service = service

    def process(self, rec: Rec, input_id: int, channel: int) -> None:
        self.send_service(
            self.service, JoinParent(0, self.ctx.name, int(rec.value), rec.ts)
        )
        self.block()

    def on_service(self, msg: Any, sender: Optional[str]) -> None:
        assert isinstance(msg, ParentResult)
        self.output(("window_sum", msg.ts, msg.result), msg.ts)
        self.unblock()


def build_fraud_splan_job(
    workload: ValueBarrierWorkload,
    *,
    parallelism: int,
    n_hosts: Optional[int] = None,
    params: SimParams = DEFAULT_PARAMS,
    heartbeat_interval: float = 1.0,
) -> FlinkJob:
    txn_lists = [_recs(evs) for evs in workload.value_streams.values()]
    if len(txn_lists) != parallelism:
        raise ValueError("one txn stream per shard expected")
    service_name = "svc:fraud"

    def combine(states: List[Any], rule_value: Any) -> Tuple[Any, List[Any]]:
        total = sum(s[0] for s in states)
        model = (total + int(rule_value)) % fraud_app.MODULO
        return total, [(0, model) for _ in states]

    g = JobGraph("fraud-splan")
    txns = g.add("txns", parallelism, lambda i: _Forward())
    rules = g.add("rules", 1, lambda i: _Forward())
    shards = g.add("shards", parallelism, lambda i: _FraudShard(service_name))
    parent = g.add("parent", 1, lambda i: _FraudRuleParent(service_name))
    g.connect(txns, shards, mode="forward", input_id=0)
    g.connect(rules, shards, mode="broadcast", input_id=1)
    g.connect(rules, parent, mode="forward", input_id=0)
    job = FlinkJob(g, n_hosts=n_hosts or parallelism, params=params)
    # The central service runs on its own host, like the paper's
    # external RMI registry (all calls to it are remote).
    job.add_service(
        ForkJoinService(
            service_name,
            job.topology.host_names()[0],
            groups={0: parallelism},
            combine=combine,
        )
    )
    job.feed("txns", txn_lists, heartbeat_interval=heartbeat_interval)
    job.feed("rules", [_recs(workload.barrier_stream)], heartbeat_interval=heartbeat_interval)
    return job


# -- Page-view join (manual) ---------------------------------------------------------


class _PageViewShard(_MergingInstance):
    """View shard for one page: local replicated metadata; updates of
    its page arrive broadcast and trigger a service join."""

    def __init__(self, service: str, page: int) -> None:
        super().__init__()
        self.service = service
        self.page = page

    def open(self) -> None:
        super().open()
        self.zip = pv_app.DEFAULT_ZIP

    def on_ordered(self, rec: Rec, input_id: int) -> None:
        page, payload = rec.value
        if page != self.page:
            return  # broadcast noise for other pages (PIP2 violation)
        if input_id == 0:
            _ = self.zip
        else:
            self.send_service(
                self.service, JoinChild(self.page, self.ctx.name, self.zip)
            )
            self.block()

    def on_service(self, msg: Any, sender: Optional[str]) -> None:
        assert isinstance(msg, ForkResponse)
        self.zip = msg.state
        self.unblock()


class _PageUpdateParent(OperatorInstance):
    def __init__(self, service: str) -> None:
        super().__init__()
        self.service = service

    def process(self, rec: Rec, input_id: int, channel: int) -> None:
        page, payload = rec.value
        self.send_service(
            self.service, JoinParent(page, self.ctx.name, (page, payload), rec.ts)
        )
        self.block()

    def on_service(self, msg: Any, sender: Optional[str]) -> None:
        assert isinstance(msg, ParentResult)
        page, old = msg.result
        self.output(("old_info", msg.ts, page, old), msg.ts)
        self.unblock()


def build_pageview_splan_job(
    workload: PageViewWorkload,
    *,
    n_hosts: Optional[int] = None,
    params: SimParams = DEFAULT_PARAMS,
    heartbeat_interval: float = 1.0,
) -> FlinkJob:
    """One tree per page; each page's view shards join through the
    service when that page's metadata is updated."""
    view_items = list(workload.view_streams.items())
    # Every page with an update stream needs a (possibly childless)
    # group, even when no view shard serves it at low parallelism.
    pages = sorted(
        {itag.tag[1] for itag, _ in view_items}
        | {itag.tag[1] for itag in workload.update_streams}
    )
    shards_per_page: Dict[int, int] = {
        p: sum(1 for itag, _ in view_items if itag.tag[1] == p) for p in pages
    }
    service_name = "svc:pageview"

    def combine(states: List[Any], payload: Any) -> Tuple[Any, List[Any]]:
        page, new_zip = payload
        old = states[0] if states else pv_app.DEFAULT_ZIP
        return (page, old), [int(new_zip) for _ in states]

    g = JobGraph("pageview-splan")
    view_lists = []
    factories: List[Tuple[int, int]] = []  # (page, shard index)
    for itag, evs in view_items:
        page = itag.tag[1]
        view_lists.append([Rec(e.ts, (page, e.payload)) for e in evs])
        factories.append(page)
    views = g.add("views", len(view_lists), lambda i: _Forward())
    updates = g.add("updates", 1, lambda i: _Forward())
    shards = g.add(
        "shards",
        len(view_lists),
        lambda i: _PageViewShard(service_name, factories[i]),
    )
    parent = g.add("parent", 1, lambda i: _PageUpdateParent(service_name))
    g.connect(views, shards, mode="forward", input_id=0)
    # PIP2/PIP3 violation: all updates are broadcast to every shard,
    # which filters by its hard-coded page (Figure 5's pattern).
    g.connect(updates, shards, mode="broadcast", input_id=1)
    g.connect(updates, parent, mode="forward", input_id=0)
    update_list = sorted(
        (
            Rec(e.ts, (itag.tag[1], e.payload))
            for itag, evs in workload.update_streams.items()
            for e in evs
        ),
        key=lambda r: r.ts,
    )
    job = FlinkJob(g, n_hosts=n_hosts or len(view_lists), params=params)
    job.add_service(
        ForkJoinService(
            service_name,
            job.topology.host_names()[0],
            groups={p: shards_per_page[p] for p in pages},
            combine=combine,
            virtual_init=lambda: pv_app.DEFAULT_ZIP,
        )
    )
    job.feed("views", view_lists, heartbeat_interval=heartbeat_interval)
    job.feed("updates", [update_list], heartbeat_interval=heartbeat_interval)
    return job
