"""Tag predicates over a finite tag universe (paper §2.2, "Representing
predicates").

The implementation-level representation the paper chooses (and we
follow) is *sets of tags*: a predicate is a finite subset of the tag
universe, so fork functions receive simple set-membership tests instead
of arbitrary Boolean functions.  :class:`TagPredicate` is an immutable
set wrapper with the combinators needed by plan generation (union,
intersection, difference, restriction) and with evaluation on both tags
and events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, FrozenSet, Iterable, Iterator

from .errors import PredicateError
from .events import Event, Tag

if TYPE_CHECKING:  # pragma: no cover
    from .dependence import DependenceRelation


@dataclass(frozen=True, slots=True)
class TagPredicate:
    """An immutable set-of-tags predicate.

    ``universe`` records the full finite tag universe the predicate was
    built against; combinators require matching universes, which guards
    against accidentally mixing predicates from different programs.
    """

    tags: FrozenSet[Tag]
    universe: FrozenSet[Tag]

    def __post_init__(self) -> None:
        extra = self.tags - self.universe
        if extra:
            raise PredicateError(f"tags outside universe: {sorted(map(repr, extra))}")

    # -- evaluation ----------------------------------------------------
    def __call__(self, tag: Tag) -> bool:
        return tag in self.tags

    def matches_event(self, event: Event) -> bool:
        return event.tag in self.tags

    def __contains__(self, tag: Tag) -> bool:
        return tag in self.tags

    def __iter__(self) -> Iterator[Tag]:
        return iter(self.tags)

    def __len__(self) -> int:
        return len(self.tags)

    def __bool__(self) -> bool:
        return bool(self.tags)

    # -- combinators ---------------------------------------------------
    def _check(self, other: "TagPredicate") -> None:
        if self.universe != other.universe:
            raise PredicateError("predicates built over different universes")

    def union(self, other: "TagPredicate") -> "TagPredicate":
        self._check(other)
        return TagPredicate(self.tags | other.tags, self.universe)

    def intersect(self, other: "TagPredicate") -> "TagPredicate":
        self._check(other)
        return TagPredicate(self.tags & other.tags, self.universe)

    def difference(self, other: "TagPredicate") -> "TagPredicate":
        self._check(other)
        return TagPredicate(self.tags - other.tags, self.universe)

    def complement(self) -> "TagPredicate":
        return TagPredicate(self.universe - self.tags, self.universe)

    def restrict(self, tags: Iterable[Tag]) -> "TagPredicate":
        return TagPredicate(self.tags & frozenset(tags), self.universe)

    def implies(self, other: "TagPredicate") -> bool:
        """``self`` implies ``other`` iff self's tag set is a subset."""
        self._check(other)
        return self.tags <= other.tags

    def is_disjoint(self, other: "TagPredicate") -> bool:
        self._check(other)
        return not (self.tags & other.tags)

    def independent_of(self, other: "TagPredicate", depends: "DependenceRelation") -> bool:
        """Every tag satisfying ``self`` is independent of every tag
        satisfying ``other`` (the fork precondition of Definition 2.2)."""
        self._check(other)
        return all(depends.indep(a, b) for a in self.tags for b in other.tags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(sorted(map(repr, self.tags)))
        return f"TagPredicate({{{inner}}})"


def true_pred(universe: Iterable[Tag]) -> TagPredicate:
    """The always-true predicate (required for ``pred_0``)."""
    uni = frozenset(universe)
    return TagPredicate(uni, uni)


def false_pred(universe: Iterable[Tag]) -> TagPredicate:
    uni = frozenset(universe)
    return TagPredicate(frozenset(), uni)


def pred_of(universe: Iterable[Tag], tags: Iterable[Tag]) -> TagPredicate:
    return TagPredicate(frozenset(tags), frozenset(universe))


def pred_where(universe: Iterable[Tag], fn: Callable[[Tag], bool]) -> TagPredicate:
    """Materialize a Boolean function into a set predicate over a
    finite universe — the bridge from the paper's symbolic predicates
    to the implementation's tag sets."""
    uni = frozenset(universe)
    return TagPredicate(frozenset(t for t in uni if fn(t)), uni)
