"""Analytic cost model for synchronization plans.

Estimates, for a plan and per-itag input rates, the quantities that
drive the paper's performance results:

* **sync overhead** — every event processed at an internal worker joins
  and re-forks its whole subtree: ``2 * (subtree size - 1)`` state
  messages plus a critical path of ``2 * subtree depth`` network hops;
* **leaf capacity** — leaves process their share of events at CPU
  speed, so the achievable throughput is bounded by the busiest worker
  (CPU) and by the fraction of time the tree is *not* stalled in
  joins;
* **network load** — bytes/ms crossing host boundaries.

The model is deliberately simple (no queueing theory): it is used by
the ablation benchmarks to *rank* plans, and its ranking is validated
against simulated throughput in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..core.events import ImplTag
from ..sim.params import DEFAULT_PARAMS, SimParams
from .plan import PlanNode, SyncPlan


@dataclass(frozen=True)
class CostEstimate:
    """Summary statistics for a plan under given input rates."""

    throughput_bound_events_per_ms: float
    sync_messages_per_ms: float
    sync_stall_fraction: float
    remote_bytes_per_ms: float
    max_worker_load: float  # CPU utilization of the busiest worker

    def score(self) -> float:
        """Higher is better: the throughput bound discounted by stall."""
        return self.throughput_bound_events_per_ms * max(
            0.0, 1.0 - self.sync_stall_fraction
        )


def estimate_cost(
    plan: SyncPlan,
    rates: Mapping[ImplTag, float],
    *,
    params: SimParams = DEFAULT_PARAMS,
    source_hosts: Mapping[ImplTag, str] | None = None,
) -> CostEstimate:
    """Estimate plan performance under the given per-itag input rates
    (events per millisecond)."""
    total_rate = sum(rates.values())
    source_hosts = source_hosts or {}

    # --- per-worker CPU load from its own events ---
    worker_rate: Dict[str, float] = {}
    for node in plan.workers():
        worker_rate[node.id] = sum(rates.get(t, 0.0) for t in node.itags)

    # --- synchronization: internal workers join/fork their subtree ---
    sync_msgs = 0.0
    stall = 0.0
    subtree_cpu_penalty: Dict[str, float] = {n.id: 0.0 for n in plan.workers()}
    for node in plan.internal():
        r = worker_rate[node.id]
        if r <= 0:
            continue
        desc = plan.descendants_of(node.id)
        n_edges = len(desc)  # tree edges below node
        sync_msgs += r * 2 * n_edges
        depth = _subtree_depth(node)
        # Critical path: join requests travel down, states travel up,
        # forked states travel down again => ~2 hops per level.
        stall_per_event = 2 * depth * params.remote_latency_ms
        stall += r * stall_per_event
        # Every descendant spends CPU handling the join+fork messages.
        for d in desc:
            subtree_cpu_penalty[d.id] += r * 2 * (
                params.recv_overhead_ms + params.send_overhead_ms
            )

    # --- busiest worker utilization ---
    max_load = 0.0
    for node in plan.workers():
        load = worker_rate[node.id] * (
            params.cpu_per_event_ms + params.recv_overhead_ms
        ) + subtree_cpu_penalty[node.id]
        max_load = max(max_load, load)

    # --- throughput bound ---
    if total_rate > 0 and max_load > 0:
        # Scale rates by 1/max_load until the busiest worker saturates.
        throughput_bound = total_rate / max_load
    else:
        throughput_bound = float("inf") if total_rate == 0 else 0.0
    stall_fraction = min(1.0, stall / 1.0) if total_rate else 0.0
    # stall is ms of blocked tree time per ms of input; tree-wide stalls
    # suppress leaf processing for the whole subtree.

    # --- network bytes ---
    remote_bytes = 0.0
    for node in plan.workers():
        for t in node.itags:
            src = source_hosts.get(t)
            if src is not None and node.host is not None and src != node.host:
                remote_bytes += rates.get(t, 0.0) * params.bytes_per_event
    for node in plan.internal():
        r = worker_rate[node.id]
        if r <= 0:
            continue
        for d in plan.descendants_of(node.id):
            parent = plan.parent_of(d.id)
            if parent is not None and d.host != parent.host:
                remote_bytes += r * 2 * params.bytes_per_event

    return CostEstimate(
        throughput_bound_events_per_ms=throughput_bound,
        sync_messages_per_ms=sync_msgs,
        sync_stall_fraction=stall_fraction,
        remote_bytes_per_ms=remote_bytes,
        max_worker_load=max_load,
    )


def _subtree_depth(node: PlanNode) -> int:
    if node.is_leaf:
        return 0
    return 1 + max(_subtree_depth(c) for c in node.children)


def compare_plans(
    plans: Mapping[str, SyncPlan],
    rates: Mapping[ImplTag, float],
    *,
    params: SimParams = DEFAULT_PARAMS,
) -> Dict[str, CostEstimate]:
    """Estimate costs for several plans under identical rates (the
    ablation-bench entry point)."""
    return {name: estimate_cost(p, rates, params=params) for name, p in plans.items()}
