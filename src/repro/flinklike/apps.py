"""The paper's three applications implemented on the Flink-like engine
(§4.2, Appendix G), in the same variants the paper evaluates:

* **event windowing** — parallel via barrier broadcast + windowed
  partial aggregation (scales), plus a sequential low-level join
  baseline;
* **page-view join** — the automatic keyed join (parallel in pages, so
  it saturates at the number of hot pages);
* **fraud detection** — sequential only: the sharded API offers no way
  to propagate the model across instances (the paper's central
  negative result for Flink).

Inputs come from the same workload generators as the DGS runtime, so
throughput comparisons are apples-to-apples within the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..apps import fraud as fraud_app
from ..apps import pageview as pv_app
from ..data.generators import PageViewWorkload, ValueBarrierWorkload
from ..sim.params import DEFAULT_PARAMS, SimParams
from .engine import FlinkJob, JobGraph, OperatorInstance, Rec, TimestampMerger


def _recs(events) -> List[Rec]:
    return [Rec(e.ts, e.payload) for e in events]


class _Forward(OperatorInstance):
    """Source pass-through: re-emits records and watermarks.  Reading
    and forwarding a record is much cheaper than operator logic."""

    cpu_cost_factor = 0.2

    def process(self, rec: Rec, input_id: int, channel: int) -> None:
        self.emit(rec)

    def on_watermark(self, ts: float, input_id: int, channel: int) -> None:
        self.emit_watermark(ts)


class _MergingInstance(OperatorInstance):
    """Base for operators that merge all input channels by timestamp
    (the paper's makeProgress pattern); subclasses implement
    ``on_ordered(rec, input_id)``."""

    def open(self) -> None:
        self._input_of: Dict[int, int] = {}
        for input_id, channel in self.ctx.expected_channels:
            self._input_of[channel] = input_id
        self._merger = TimestampMerger(list(self._input_of))

    def process(self, rec: Rec, input_id: int, channel: int) -> None:
        self._input_of[channel] = input_id
        for r, ch in self._tag(self._merger.add(channel, rec)):
            self.on_ordered(r, self._input_of[ch])

    def on_watermark(self, ts: float, input_id: int, channel: int) -> None:
        self._input_of[channel] = input_id
        for r, ch in self._tag(self._merger.watermark(channel, ts)):
            self.on_ordered(r, self._input_of[ch])

    def _tag(self, recs: List[Rec]):
        return zip(recs, self._merger.last_released_channels)

    def on_ordered(self, rec: Rec, input_id: int) -> None:
        raise NotImplementedError


# -- Event-based windowing ----------------------------------------------------


class _WindowPartial(_MergingInstance):
    """Per-shard partial sum, closed by broadcast barriers (input 1)."""

    def open(self) -> None:
        super().open()
        self.sum = 0

    def on_ordered(self, rec: Rec, input_id: int) -> None:
        if input_id == 0:
            self.sum += int(rec.value)
        else:
            self.emit(Rec(rec.ts, ("partial", rec.ts, self.sum)))
            self.sum = 0


class _WindowReduce(OperatorInstance):
    def __init__(self, expected: int) -> None:
        super().__init__()
        self.expected = expected
        self.acc: Dict[float, Tuple[int, int]] = {}

    def process(self, rec: Rec, input_id: int, channel: int) -> None:
        _, barrier_ts, partial = rec.value
        count, total = self.acc.get(barrier_ts, (0, 0))
        count += 1
        total += partial
        if count == self.expected:
            self.output(("window_sum", barrier_ts, total), barrier_ts)
            self.acc.pop(barrier_ts, None)
        else:
            self.acc[barrier_ts] = (count, total)


class _SeqWindow(_MergingInstance):
    """Sequential low-level join: one instance does everything."""

    def open(self) -> None:
        super().open()
        self.sum = 0

    def on_ordered(self, rec: Rec, input_id: int) -> None:
        if input_id == 0:
            self.sum += int(rec.value)
        else:
            self.output(("window_sum", rec.ts, self.sum), rec.ts)
            self.sum = 0


def build_event_window_job(
    workload: ValueBarrierWorkload,
    *,
    parallelism: int,
    n_hosts: Optional[int] = None,
    params: SimParams = DEFAULT_PARAMS,
    mode: str = "parallel",
    heartbeat_interval: float = 1.0,
) -> FlinkJob:
    value_lists = [_recs(evs) for evs in workload.value_streams.values()]
    if len(value_lists) != parallelism:
        raise ValueError("one value stream per parallel instance expected")
    g = JobGraph(f"event-window-{mode}")
    values = g.add("values", parallelism, lambda i: _Forward())
    barriers = g.add("barriers", 1, lambda i: _Forward())
    if mode == "parallel":
        agg = g.add("agg", parallelism, lambda i: _WindowPartial())
        red = g.add("reduce", 1, lambda i: _WindowReduce(parallelism))
        g.connect(values, agg, mode="forward", input_id=0)
        g.connect(barriers, agg, mode="broadcast", input_id=1)
        g.connect(agg, red, mode="rebalance")
    elif mode == "sequential":
        proc = g.add("proc", 1, lambda i: _SeqWindow())
        g.connect(values, proc, mode="rebalance", input_id=0)
        g.connect(barriers, proc, mode="forward", input_id=1)
    else:
        raise ValueError(f"unknown mode {mode!r}")
    job = FlinkJob(g, n_hosts=n_hosts or parallelism, params=params)
    job.feed("values", value_lists, heartbeat_interval=heartbeat_interval)
    job.feed("barriers", [_recs(workload.barrier_stream)], heartbeat_interval=heartbeat_interval)
    return job


# -- Page-view join -------------------------------------------------------------


class _KeyedJoin(_MergingInstance):
    """Keyed co-process: updates (input 1) set metadata, views (input
    0) read it.  Parallel in the page key only."""

    def open(self) -> None:
        super().open()
        self.zip: Dict[int, int] = {}

    def on_ordered(self, rec: Rec, input_id: int) -> None:
        page, payload = rec.value
        if input_id == 0:
            _ = self.zip.get(page, pv_app.DEFAULT_ZIP)
        else:
            old = self.zip.get(page, pv_app.DEFAULT_ZIP)
            self.zip[page] = int(payload)
            self.output(("old_info", rec.ts, page, old), rec.ts)


def build_pageview_job(
    workload: PageViewWorkload,
    *,
    parallelism: int,
    n_hosts: Optional[int] = None,
    params: SimParams = DEFAULT_PARAMS,
    heartbeat_interval: float = 1.0,
) -> FlinkJob:
    """Automatic keyed implementation: views and updates keyBy(page)."""
    view_lists = [
        [Rec(e.ts, (itag.tag[1], e.payload)) for e in evs]
        for itag, evs in workload.view_streams.items()
    ]
    update_list = sorted(
        (
            Rec(e.ts, (itag.tag[1], e.payload))
            for itag, evs in workload.update_streams.items()
            for e in evs
        ),
        key=lambda r: r.ts,
    )
    g = JobGraph("pageview-keyed")
    views = g.add("views", len(view_lists), lambda i: _Forward())
    updates = g.add("updates", 1, lambda i: _Forward())
    join = g.add("join", parallelism, lambda i: _KeyedJoin())
    g.connect(views, join, mode="hash", key_fn=lambda v: v[0], input_id=0)
    g.connect(updates, join, mode="hash", key_fn=lambda v: v[0], input_id=1)
    job = FlinkJob(g, n_hosts=n_hosts or parallelism, params=params)
    job.feed("views", view_lists, heartbeat_interval=heartbeat_interval)
    job.feed("updates", [update_list], heartbeat_interval=heartbeat_interval)
    return job


# -- Fraud detection ---------------------------------------------------------------


class _SeqFraud(_MergingInstance):
    def open(self) -> None:
        super().open()
        self.total = 0
        self.model = 0

    def on_ordered(self, rec: Rec, input_id: int) -> None:
        if input_id == 0:
            value = int(rec.value)
            if value % fraud_app.MODULO == self.model:
                self.output(("fraud", rec.ts, value), rec.ts)
            self.total += value
        else:
            self.output(("window_sum", rec.ts, self.total), rec.ts)
            self.model = (self.total + int(rec.value)) % fraud_app.MODULO
            self.total = 0


def build_fraud_job(
    workload: ValueBarrierWorkload,
    *,
    parallelism: int,
    n_hosts: Optional[int] = None,
    params: SimParams = DEFAULT_PARAMS,
    heartbeat_interval: float = 1.0,
) -> FlinkJob:
    """Flink can only run fraud detection sequentially (§4.2): the model
    update requires cross-shard state, which sharding forbids.
    ``parallelism`` only spreads the (cheap) sources."""
    txn_lists = [_recs(evs) for evs in workload.value_streams.values()]
    g = JobGraph("fraud-sequential")
    txns = g.add("txns", len(txn_lists), lambda i: _Forward())
    rules = g.add("rules", 1, lambda i: _Forward())
    proc = g.add("proc", 1, lambda i: _SeqFraud())
    g.connect(txns, proc, mode="rebalance", input_id=0)
    g.connect(rules, proc, mode="forward", input_id=1)
    job = FlinkJob(g, n_hosts=n_hosts or parallelism, params=params)
    job.feed("txns", txn_lists, heartbeat_interval=heartbeat_interval)
    job.feed("rules", [_recs(workload.barrier_stream)], heartbeat_interval=heartbeat_interval)
    return job
