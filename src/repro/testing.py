"""Differential output testing for DGS programs.

Inspired by the authors' companion work (DiffStream, OOPSLA 2020,
cited in §5): the strongest practical check for a parallel streaming
implementation is *differential* — run the same input through multiple
implementations/plans and compare outputs under the right equivalence
(here: multiset equality, per Theorem 2.4's "determinism up to output
reordering").

Used by the test suite to cross-check the simulated runtime, the
threaded runtime, and arbitrary plan choices against the sequential
specification and each other.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .core.events import ImplTag
from .core.program import DGSProgram
from .core.semantics import output_multiset
from .plans.generation import random_valid_plan
from .plans.plan import SyncPlan
from .runtime.runtime import FluminaRuntime, InputStream, run_sequential_reference


@dataclass
class Mismatch:
    """One differential-testing discrepancy."""

    implementation: str
    missing: Counter
    extra: Counter

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.implementation}: missing={dict(self.missing)} "
            f"extra={dict(self.extra)}"
        )


@dataclass
class DiffReport:
    reference: Counter
    mismatches: List[Mismatch] = field(default_factory=list)
    implementations_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches


def compare_outputs(
    reference: Sequence[Any], candidate: Sequence[Any], name: str = "candidate"
) -> Optional[Mismatch]:
    """Multiset-compare two output sequences; None means equivalent."""
    want = output_multiset(reference)
    got = output_multiset(candidate)
    if want == got:
        return None
    return Mismatch(name, missing=want - got, extra=got - want)


def diff_against_spec(
    program: DGSProgram,
    streams: Sequence[InputStream],
    implementations: Dict[str, Callable[[], Sequence[Any]]],
) -> DiffReport:
    """Run each implementation thunk and compare against the sequential
    specification."""
    reference = run_sequential_reference(program, streams)
    report = DiffReport(reference=output_multiset(reference))
    for name, thunk in implementations.items():
        report.implementations_checked += 1
        mismatch = compare_outputs(reference, thunk(), name)
        if mismatch is not None:
            report.mismatches.append(mismatch)
    return report


def diff_plans(
    program: DGSProgram,
    streams: Sequence[InputStream],
    plans: Dict[str, SyncPlan],
) -> DiffReport:
    """Differentially test several synchronization plans on the
    simulated runtime against the sequential spec — the practical form
    of Theorem 3.5's "correct for any P-valid plan"."""
    return diff_against_spec(
        program,
        streams,
        {
            name: (lambda p=plan: FluminaRuntime(program, p).run(streams).output_values())
            for name, plan in plans.items()
        },
    )


def fuzz_plans(
    program: DGSProgram,
    streams: Sequence[InputStream],
    *,
    n_plans: int = 5,
    seed: int = 0,
) -> DiffReport:
    """Generate ``n_plans`` random P-valid plans for the streams' itags
    and differentially test them all."""
    itags: List[ImplTag] = [s.itag for s in streams]
    rng = random.Random(seed)
    plans = {
        f"random-plan-{i}": random_valid_plan(program, itags, rng)
        for i in range(n_plans)
    }
    return diff_plans(program, streams, plans)
