#!/usr/bin/env python3
"""Service mode: a long-running ingest/egress tier over any backend.

Every other example drives a *closed* run — build the streams, call
the backend, read the outputs.  This one runs the runtime as a
*service*: a TCP front door accepts externally produced events,
executes them epoch-by-epoch on the chosen substrate (crash recovery
included, see ``--crash``), and streams committed outputs to a
subscriber with exactly-once sequence numbers.  The subscriber's view
is verified against the sequential specification over exactly the
events the service *admitted* — the service's correctness contract.

Run:  python examples/service_mode.py
      python examples/service_mode.py --nodes 2          # cluster epochs
      python examples/service_mode.py --crash            # + worker crash
      python examples/service_mode.py --events 10000 --shards 4
"""

import argparse
import threading
import urllib.request
from collections import Counter

from repro.runtime import RunOptions
from repro.runtime.faults import CrashFault, FaultPlan
from repro.serve import ServeOptions, connect, keycounter_app, spec_outputs, start_service


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=4000)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--backend", default="threaded")
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="deploy each epoch across this many cluster nodes",
    )
    parser.add_argument(
        "--crash", action="store_true",
        help="crash a leaf worker mid-stream and recover from the "
        "latest root-join checkpoint",
    )
    args = parser.parse_args()

    app = keycounter_app(shards=args.shards)
    fault_plan = None
    if args.crash:
        leaf = app.plan.root.children[0].id
        fault_plan = FaultPlan(CrashFault(leaf, after_events=40))
    options = ServeOptions(
        backend="process" if args.nodes else args.backend,
        run=RunOptions(nodes=args.nodes, metrics=True, fault_plan=fault_plan),
        epoch_events=1500,
        epoch_idle_ms=100.0,
        metrics_port=0,
    )
    events = app.make_events(args.events)

    with start_service(app.program, app.plan, options=options) as handle:
        print(
            f"service up: {app.name} on :{handle.port} "
            f"(metrics on :{handle.metrics_port})"
        )
        received = []
        subscriber = threading.Thread(
            target=lambda: received.extend(
                connect(handle.port, handle.cookie, mode="subscribe").outputs()
            )
        )
        subscriber.start()

        with connect(handle.port, handle.cookie) as ingest:
            ack = ingest.send_events(events, batch=250)
            print(
                f"streamed {len(events)} events over TCP: "
                f"{ack.admitted} admitted, {ack.rejected} rejected {ack.reasons}"
            )
            total = ingest.finish()
        subscriber.join(timeout=60)

        counters = handle.runtime.counters
        print(
            f"epochs={counters.epochs} attempts={counters.attempts} "
            f"crashes_recovered={counters.crashes_recovered} "
            f"committed={total}"
        )
        scrape = urllib.request.urlopen(
            f"http://127.0.0.1:{handle.metrics_port}/metrics", timeout=10
        ).read().decode()
        gauges = [l for l in scrape.splitlines() if l.startswith("repro_serve_")]
        print("prometheus gauges:\n  " + "\n  ".join(sorted(gauges)))

        # The exactly-once contract: the subscriber's (seq, value) log
        # is gapless and its values match the sequential spec over the
        # admitted events, crash or no crash.
        seqs = [seq for seq, _value in received]
        gapless = seqs == list(range(len(seqs)))
        want = Counter(map(repr, spec_outputs(app.program, events)))
        got = Counter(repr(value) for _seq, value in received)
        ok = gapless and got == want and not subscriber.is_alive()
        print(f"subscriber log gapless: {gapless}")
        print(f"committed outputs match sequential spec: {got == want}")
        if args.crash:
            recovered = counters.crashes_recovered >= 1
            ok = ok and recovered
            print(f"worker crash recovered mid-service: {recovered}")
    if not ok:
        raise SystemExit(1)  # checked, not asserted — and honest to $?


if __name__ == "__main__":
    main()
