"""Measurement harness (paper §4 methodology).

The paper measures *maximum throughput* by "increasing the input rate
until throughput stabilizes or the system crashes", and latency as
percentiles at a fixed offered rate.  The harness mirrors that:

* :func:`max_throughput` — geometric rate sweep; a configuration is
  saturated when achieved throughput falls below ``efficiency`` of the
  offered rate; the reported maximum is the best achieved rate.
* :func:`latency_profile` — percentiles of output latency across a
  ramp of offered rates (Figure 6's axes).

``run_at_rate`` callbacks receive an events-per-millisecond *per
input stream* rate and return any object exposing
``throughput_events_per_ms`` and ``latency_percentiles`` (all engine
results in this repository do).
"""

from __future__ import annotations

import math
import os
import platform
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

from ..runtime.options import RunOptions  # leaf module; no import cycle


class ResultLike(Protocol):  # pragma: no cover - structural typing only
    @property
    def throughput_events_per_ms(self) -> float: ...

    def latency_percentiles(self, qs: Sequence[float] = (10, 50, 90)) -> List[float]: ...


@dataclass(frozen=True)
class RatePoint:
    """One measured point on an offered-rate sweep."""

    offered_per_ms: float
    achieved_per_ms: float
    latency_p10: float
    latency_p50: float
    latency_p90: float

    @property
    def efficiency(self) -> float:
        return (
            self.achieved_per_ms / self.offered_per_ms
            if self.offered_per_ms > 0
            else 0.0
        )


@dataclass
class SweepResult:
    points: List[RatePoint] = field(default_factory=list)

    @property
    def max_throughput(self) -> float:
        return max((p.achieved_per_ms for p in self.points), default=0.0)

    def saturation_point(self, efficiency: float = 0.9) -> Optional[RatePoint]:
        for p in self.points:
            if p.efficiency < efficiency:
                return p
        return None


def _measure(run_at_rate: Callable[[float], Any], rate: float) -> RatePoint:
    res = run_at_rate(rate)
    p10, p50, p90 = res.latency_percentiles((10, 50, 90))
    # Offered load = total events over the injection window; results
    # expose input_span_ms precisely so efficiency is scale-free
    # (duration converging to the input span means "keeping up").
    span = getattr(res, "input_span_ms", None)
    events_in = getattr(res, "events_in", None)
    if span and events_in:
        offered = events_in / span
    else:  # pragma: no cover - non-standard result object
        offered = rate
    return RatePoint(
        offered_per_ms=offered,
        achieved_per_ms=res.throughput_events_per_ms,
        latency_p10=p10,
        latency_p50=p50,
        latency_p90=p90,
    )


def max_throughput(
    run_at_rate: Callable[[float], Any],
    *,
    start_rate: float = 50.0,
    growth: float = 2.0,
    max_steps: int = 7,
    efficiency: float = 0.9,
) -> SweepResult:
    """Geometric offered-rate sweep until saturation.

    The sweep stops one step after the first rate whose achieved
    throughput drops below ``efficiency * offered`` (by then the
    system is clearly saturated; pushing further only slows the
    simulation)."""
    sweep = SweepResult()
    rate = start_rate
    saturated_steps = 0
    for _ in range(max_steps):
        point = _measure(run_at_rate, rate)
        sweep.points.append(point)
        if point.efficiency < efficiency:
            saturated_steps += 1
            if saturated_steps >= 2:
                break
        rate *= growth
    return sweep


def latency_profile(
    run_at_rate: Callable[[float], Any],
    rates: Sequence[float],
) -> List[RatePoint]:
    """Latency percentiles across a fixed ramp of offered rates
    (the x/y data of Figure 6)."""
    return [_measure(run_at_rate, r) for r in rates]


@dataclass(frozen=True)
class ScalingPoint:
    parallelism: int
    max_throughput_per_ms: float


# ---------------------------------------------------------------------------
# Open-loop arrival processes (latency measurement under offered load)
# ---------------------------------------------------------------------------
#
# Closed-loop pumps (push the next event as soon as the channel takes
# it) measure throughput but hide queueing delay: the producer slows
# down with the system, so latency looks flat right up to collapse.
# An *open-loop* process fixes arrival timestamps in advance; replayed
# with RunOptions(pace=1000.0) they arrive on the wall clock at the
# offered rate regardless of how the system keeps up — the latency
# distribution then reflects genuine queueing (coordinated omission
# avoided by construction).

def fixed_rate_arrivals(
    n: int, rate_per_s: float, *, start_ms: float = 0.0
) -> List[float]:
    """Timestamps (ms) of ``n`` arrivals at a constant offered rate."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be > 0")
    period_ms = 1000.0 / rate_per_s
    return [start_ms + i * period_ms for i in range(n)]


def bursty_arrivals(
    n: int,
    rate_per_s: float,
    *,
    burst: int = 10,
    compression: float = 10.0,
    start_ms: float = 0.0,
) -> List[float]:
    """Timestamps (ms) of ``n`` arrivals in bursts of ``burst`` events.

    The long-run mean rate is still ``rate_per_s``: each burst's
    events are squeezed ``compression``× closer together than the
    fixed-rate spacing, followed by an idle gap until the next burst's
    scheduled start.  ``compression`` must be > 1 (at 1.0 this
    degenerates to :func:`fixed_rate_arrivals`)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be > 0")
    if burst < 1:
        raise ValueError("burst must be >= 1")
    if compression < 1.0:
        raise ValueError("compression must be >= 1.0")
    period_ms = 1000.0 / rate_per_s
    intra_ms = period_ms / compression
    out: List[float] = []
    for i in range(n):
        k, j = divmod(i, burst)
        out.append(start_ms + k * burst * period_ms + j * intra_ms)
    return out


# ---------------------------------------------------------------------------
# Wall-clock backend comparison (threaded vs process vs ...)
# ---------------------------------------------------------------------------

def available_cores() -> int:
    """CPU cores this process may use (portable: sched_getaffinity
    where it exists — Linux —, cpu_count elsewhere)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@dataclass(frozen=True)
class WallClockPoint:
    """One backend's wall-clock measurement on a fixed workload."""

    backend: str
    events: int
    wall_s: float

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


@dataclass
class BenchConfig:
    """Shared configuration for the wall-clock measurement functions
    (:func:`compare_backends`, :func:`compare_transports`,
    :func:`measure_recovery_overhead`, :func:`measure_reconfig_pause`).

    ``options`` is the :class:`~repro.runtime.RunOptions` every run is
    launched with — set ``metrics=True`` there and each measured run's
    latency summary lands in :attr:`BenchResult.metrics`.  ``repeats``
    selects best-of-N wall clock per measured label."""

    options: RunOptions = field(default_factory=RunOptions)
    repeats: int = 1


@dataclass
class BenchResult:
    """Common result shape of the wall-clock measurement functions.

    ``points`` maps each measured label (backend name, transport
    config label, ``"clean"``/``"faulty"``/``"elastic"``) to its best
    :class:`WallClockPoint`.  ``outputs_equal`` records the
    differential check across labels.  ``metrics`` maps labels to a
    flat latency/counter summary when the runs carried the metrics
    plane (see :meth:`BenchConfig.options`).  ``detail`` keeps the
    measurement-specific record (:class:`RecoveryOverheadPoint`,
    :class:`ReconfigPausePoint`) for fields the common shape cannot
    hold."""

    kind: str
    points: Dict[str, WallClockPoint]
    outputs_equal: bool
    detail: Any = None
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def events_per_s(self, label: str) -> float:
        return self.points[label].events_per_s


def _metrics_summary(run: Any) -> Optional[Dict[str, float]]:
    """Flatten a run's RunMetrics into the numbers benchmarks gate on
    (None when the run carried no metrics plane)."""
    m = getattr(run, "metrics", None)
    if m is None:
        return None
    merged = m.merged()
    return {
        "events_processed": float(merged.events_processed),
        "joins_completed": float(merged.joins_completed),
        "max_backlog": float(merged.max_backlog),
        "p50_latency_s": float(m.latency_percentile(50)),
        "p99_latency_s": float(m.latency_percentile(99)),
    }


# ---------------------------------------------------------------------------
# Machine-readable benchmark records (the repo's perf trajectory)
# ---------------------------------------------------------------------------

#: Schema identifier written into every record; bump on breaking
#: changes so the perf gate can refuse to compare across schemas.
BENCH_SCHEMA = "repro-bench/1"


def bench_record(
    name: str,
    *,
    config: Mapping[str, Any],
    metrics: Mapping[str, Any],
    gate: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Build one ``BENCH_<name>.json`` record (see
    :func:`repro.bench.tables.publish_json`).

    ``metrics`` holds the measured numbers (throughput, latency
    percentiles, speedups — nesting allowed).  ``gate`` names the
    top-level metrics the CI perf gate thresholds against the
    committed baseline, each mapped to its direction: ``"higher"``
    (throughput-like: fail when it *drops* more than the tolerance) or
    ``"lower"`` (latency-like: fail when it *rises* more than the
    tolerance).  Ungated records still land in the artifact trail —
    they chart the trajectory without failing CI on noisy numbers."""
    for metric, direction in (gate or {}).items():
        if direction not in ("higher", "lower"):
            raise ValueError(f"gate direction for {metric!r} must be higher|lower")
        value = metrics.get(metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"gated metric {metric!r} must be a number, got {value!r}")
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "created_unix": round(time.time(), 3),
        "host": {
            "cores": available_cores(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "config": dict(config),
        "metrics": dict(metrics),
        "gate": dict(gate or {}),
    }


def _best_run(
    backend: Any,
    program: Any,
    plan: Any,
    streams: Sequence[Any],
    opts: RunOptions,
    repeats: int,
    *,
    fresh_options: Optional[Callable[[], RunOptions]] = None,
) -> Any:
    """Best-of-``repeats`` wall clock on one backend; ``fresh_options``
    rebuilds the RunOptions per repeat when it carries stateful values
    (fault plans record fired crashes, checkpoint predicates count)."""
    best: Optional[Any] = None
    for _ in range(max(1, repeats)):
        run = backend.run(
            program, plan, streams,
            options=fresh_options() if fresh_options is not None else opts,
        )
        if best is None or run.wall_s < best.wall_s:
            best = run
    return best


def compare_backends(
    program: Any,
    plan: Any,
    streams: Sequence[Any],
    *,
    backends: Sequence[str] = ("threaded", "process"),
    config: Optional[BenchConfig] = None,
) -> BenchResult:
    """Run the same program/plan/streams on several runtime backends
    and report each one's best wall-clock throughput.

    Unlike the offered-rate sweeps above (which measure the *simulated*
    clock), this measures real elapsed time — the basis for the
    threaded-vs-process speedup claim.  ``config.options`` is shared by
    every backend (each substrate consults only the fields it owns, so
    one RunOptions serves the whole comparison); every backend's
    outputs are cross-checked against the others (multiset equality) so
    a speedup can never come from dropping work.
    """
    from ..runtime import get_backend  # runtime does not import bench; no cycle

    cfg = config if config is not None else BenchConfig()
    points: Dict[str, WallClockPoint] = {}
    metrics: Dict[str, Dict[str, float]] = {}
    reference: Optional[Any] = None
    for name in backends:
        run = _best_run(
            get_backend(name), program, plan, streams, cfg.options, cfg.repeats
        )
        if reference is None:
            reference = run.output_multiset()
        elif run.output_multiset() != reference:
            raise AssertionError(
                f"backend {name!r} produced different outputs than "
                f"{backends[0]!r}; refusing to report throughput"
            )
        points[name] = WallClockPoint(name, run.events_in, run.wall_s)
        summary = _metrics_summary(run)
        if summary is not None:
            metrics[name] = summary
    return BenchResult(
        kind="backends", points=points, outputs_equal=True, metrics=metrics
    )


def compare_transports(
    program: Any,
    plan: Any,
    streams: Sequence[Any],
    *,
    configs: Mapping[str, RunOptions],
    config: Optional[BenchConfig] = None,
) -> BenchResult:
    """Run the same workload on the *process* backend under several
    data-plane configurations (``label -> RunOptions(transport=,
    batch_size=, flush_ms=, nodes=, placement=, ...)``) and report each
    one's best wall-clock throughput.

    The config axis spans every data plane the backend offers:
    ``transport="queue" | "pipe" | "tcp"`` for the one-process-per-
    worker runtime, and ``nodes=N`` for a cluster deployment across
    local node agents (see :mod:`repro.runtime.cluster`) — which is
    how the queue/pipe/tcp benchmark matrix and the distributed smoke
    lane share one measurement path.  Each label's RunOptions is used
    as given, except that fields left at their defaults inherit from
    ``config.options`` (so a shared timeout or ``metrics=True`` need
    not be repeated per label).  Outputs are multiset-verified across
    configurations — a transport can never look fast by corrupting or
    dropping messages.

    Repeats are *interleaved* round-robin across the labels (round 1
    runs every config once, then round 2, ...) rather than exhausting
    one label's repeats before starting the next.  Machine throughput
    drifts on shared hosts — background load, thermal state, page
    cache — on a timescale comparable to a best-of-N block, so
    sequential per-label blocks hand whichever label ran during a
    quiet window an unearned win.  Interleaving samples every label
    across the same span of machine conditions, making the per-label
    best a paired comparison instead of a lottery."""
    from ..runtime import get_backend  # runtime does not import bench; no cycle

    cfg = config if config is not None else BenchConfig()
    backend = get_backend("process")
    points: Dict[str, WallClockPoint] = {}
    metrics: Dict[str, Dict[str, float]] = {}
    reference: Optional[Any] = None
    ref_label: Optional[str] = None
    merged_opts: Dict[str, RunOptions] = {}
    for label, label_opts in configs.items():
        merged_opts[label] = RunOptions.collect(
            cfg.options,
            **{
                f: getattr(label_opts, f)
                for f in (
                    "transport", "batch_size", "flush_ms", "nodes",
                    "placement", "timeout_s", "metrics_port", "pace",
                )
            },
            metrics=label_opts.metrics or None,
        )
    best_runs: Dict[str, Any] = {}
    for _ in range(max(1, cfg.repeats)):
        for label, merged in merged_opts.items():
            run = backend.run(program, plan, streams, options=merged)
            prev = best_runs.get(label)
            if prev is None or run.wall_s < prev.wall_s:
                best_runs[label] = run
    for label, run in best_runs.items():
        if reference is None:
            reference = run.output_multiset()
            ref_label = label
        elif run.output_multiset() != reference:
            raise AssertionError(
                f"transport config {label!r} produced different outputs "
                f"than {ref_label!r}; refusing to report throughput"
            )
        points[label] = WallClockPoint(label, run.events_in, run.wall_s)
        summary = _metrics_summary(run)
        if summary is not None:
            metrics[label] = summary
    return BenchResult(
        kind="transports", points=points, outputs_equal=True, metrics=metrics
    )


def backend_speedup(
    points: Dict[str, WallClockPoint], *, base: str = "threaded"
) -> Dict[str, float]:
    """Each backend's throughput relative to ``base``'s."""
    base_eps = points[base].events_per_s
    if base_eps <= 0:
        return {name: math.nan for name in points}
    return {name: p.events_per_s / base_eps for name, p in points.items()}


# ---------------------------------------------------------------------------
# Recovery overhead (fault injection + checkpoint restore + replay)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RecoveryOverheadPoint:
    """Wall-clock cost of surviving injected crashes on one backend.

    ``overhead_ratio`` is faulty/clean wall time: 1.0 means recovery
    was free, 2.0 means the crashes doubled the run.  ``outputs_equal``
    records the differential check — an overhead number for a run that
    dropped or duplicated outputs would be meaningless."""

    backend: str
    clean_wall_s: float
    faulty_wall_s: float
    attempts: int
    crashes: int
    replayed_events: int
    checkpoints_taken: int
    outputs_equal: bool

    @property
    def overhead_ratio(self) -> float:
        return (
            self.faulty_wall_s / self.clean_wall_s
            if self.clean_wall_s > 0
            else math.nan
        )


def measure_recovery_overhead(
    program: Any,
    plan: Any,
    streams: Sequence[Any],
    *,
    backend: str = "threaded",
    fault_plan_factory: Callable[[], Any],
    checkpoint_predicate_factory: Optional[Callable[[], Any]] = None,
    config: Optional[BenchConfig] = None,
) -> BenchResult:
    """Measure the wall-clock cost of checkpoint-based crash recovery.

    Runs the workload fault-free and with the injected fault plan on
    the same backend, best-of-``config.repeats`` each, and reports the
    ratio (in ``detail``, a :class:`RecoveryOverheadPoint`).  The clean
    baseline runs with the *same* checkpoint predicate armed, so the
    ratio isolates the crash + restore + replay cost rather than
    folding the snapshotting itself into "overhead" (the paper's claim
    is precisely that the snapshots are free).
    ``fault_plan_factory`` (rather than a plan instance) because fault
    plans record which crashes fired — each repeat needs a fresh one;
    same for stateful checkpoint predicates.
    """
    from ..runtime import get_backend  # runtime does not import bench; no cycle
    from ..runtime.checkpoint import every_root_join

    cfg = config if config is not None else BenchConfig()
    predicate_factory = checkpoint_predicate_factory or every_root_join
    be = get_backend(backend)

    clean_best = _best_run(
        be, program, plan, streams, cfg.options, cfg.repeats,
        fresh_options=lambda: replace(
            cfg.options, checkpoint_predicate=predicate_factory()
        ),
    )
    faulty_best = _best_run(
        be, program, plan, streams, cfg.options, cfg.repeats,
        fresh_options=lambda: replace(
            cfg.options,
            checkpoint_predicate=predicate_factory(),
            fault_plan=fault_plan_factory(),
        ),
    )

    rec = faulty_best.recovery
    detail = RecoveryOverheadPoint(
        backend=backend,
        clean_wall_s=clean_best.wall_s,
        faulty_wall_s=faulty_best.wall_s,
        attempts=rec.attempts,
        crashes=len(rec.crashes),
        replayed_events=rec.replayed_events,
        checkpoints_taken=rec.checkpoints_taken,
        outputs_equal=faulty_best.output_multiset() == clean_best.output_multiset(),
    )
    points = {
        "clean": WallClockPoint("clean", clean_best.events_in, clean_best.wall_s),
        "faulty": WallClockPoint("faulty", faulty_best.events_in, faulty_best.wall_s),
    }
    metrics: Dict[str, Dict[str, float]] = {}
    clean_summary = _metrics_summary(clean_best)
    if clean_summary is not None:
        # Faulty runs go through the recovery driver, which keeps
        # metrics off (per-attempt metrics are a later extension).
        metrics["clean"] = clean_summary
    return BenchResult(
        kind="recovery",
        points=points,
        outputs_equal=detail.outputs_equal,
        detail=detail,
        metrics=metrics,
    )


# ---------------------------------------------------------------------------
# Elastic reconfiguration: pause + post-scale throughput
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReconfigPausePoint:
    """Wall-clock cost of live re-planning on one backend.

    ``migration_pause_s`` is the driver-side stop-the-world slice per
    migration (suffix computation + target-plan construction +
    compatibility checks); ``overhead_ratio`` (elastic/clean wall time)
    additionally folds in worker restart and suffix replay.  The
    per-phase throughputs are events processed over that phase's wall
    time, so scale-out gains are measured, not asserted.
    ``outputs_equal`` records the differential check — a pause number
    for a run that dropped or duplicated outputs would be meaningless.
    """

    backend: str
    clean_wall_s: float
    elastic_wall_s: float
    reconfigs: int
    attempts: int
    migration_pause_s: float
    phase_widths: Tuple[int, ...]
    phase_throughputs_eps: Tuple[float, ...]
    outputs_equal: bool

    @property
    def overhead_ratio(self) -> float:
        return (
            self.elastic_wall_s / self.clean_wall_s
            if self.clean_wall_s > 0
            else math.nan
        )

    @property
    def pre_scale_throughput_eps(self) -> float:
        return self.phase_throughputs_eps[0] if self.phase_throughputs_eps else math.nan

    @property
    def post_scale_throughput_eps(self) -> float:
        return self.phase_throughputs_eps[-1] if self.phase_throughputs_eps else math.nan


def measure_reconfig_pause(
    program: Any,
    plan: Any,
    streams: Sequence[Any],
    *,
    backend: str = "threaded",
    schedule: Any,
    config: Optional[BenchConfig] = None,
) -> BenchResult:
    """Measure the cost of elastic reconfiguration against a clean run
    of the *initial* plan on the same backend (best-of-
    ``config.repeats`` each; the :class:`ReconfigPausePoint` lands in
    ``detail``).

    Schedules are pure data (firing state lives in the driver), so one
    ``schedule`` instance serves every repeat.  The elastic run's
    outputs are multiset-verified against the clean run's, so neither
    the pause nor a throughput gain can come from dropping work."""
    from ..runtime import get_backend  # runtime does not import bench; no cycle

    cfg = config if config is not None else BenchConfig()
    be = get_backend(backend)

    clean_best = _best_run(be, program, plan, streams, cfg.options, cfg.repeats)
    elastic_best = _best_run(
        be, program, plan, streams,
        replace(cfg.options, reconfig_schedule=schedule),
        cfg.repeats,
    )

    rec = elastic_best.reconfig
    detail = ReconfigPausePoint(
        backend=backend,
        clean_wall_s=clean_best.wall_s,
        elastic_wall_s=elastic_best.wall_s,
        reconfigs=len(rec.reconfigurations),
        attempts=rec.attempts,
        migration_pause_s=sum(s.pause_s for s in rec.reconfigurations),
        phase_widths=tuple(p.leaves for p in rec.phases),
        phase_throughputs_eps=tuple(p.throughput_events_per_s for p in rec.phases),
        outputs_equal=elastic_best.output_multiset() == clean_best.output_multiset(),
    )
    points = {
        "clean": WallClockPoint("clean", clean_best.events_in, clean_best.wall_s),
        "elastic": WallClockPoint(
            "elastic", elastic_best.events_in, elastic_best.wall_s
        ),
    }
    metrics: Dict[str, Dict[str, float]] = {}
    clean_summary = _metrics_summary(clean_best)
    if clean_summary is not None:
        # Elastic runs go through the reconfiguration driver, which
        # keeps metrics off (per-attempt metrics are a later extension).
        metrics["clean"] = clean_summary
    return BenchResult(
        kind="reconfig",
        points=points,
        outputs_equal=detail.outputs_equal,
        detail=detail,
        metrics=metrics,
    )


def scaling_curve(
    run_factory: Callable[[int], Callable[[float], Any]],
    parallelism_levels: Sequence[int],
    *,
    start_rate: float = 50.0,
    growth: float = 2.0,
    max_steps: int = 7,
    efficiency: float = 0.9,
) -> List[ScalingPoint]:
    """Max throughput as a function of parallelism (Figures 4 and 8).

    ``run_factory(p)`` returns the ``run_at_rate`` callback for
    parallelism ``p``."""
    out: List[ScalingPoint] = []
    for p in parallelism_levels:
        sweep = max_throughput(
            run_factory(p),
            start_rate=start_rate,
            growth=growth,
            max_steps=max_steps,
            efficiency=efficiency,
        )
        out.append(ScalingPoint(p, sweep.max_throughput))
    return out


def speedup(points: Sequence[ScalingPoint]) -> List[Tuple[int, float]]:
    """Normalize a scaling curve by its first point."""
    if not points:
        return []
    base = points[0].max_throughput_per_ms
    if base <= 0 or math.isnan(base):
        return [(p.parallelism, math.nan) for p in points]
    return [(p.parallelism, p.max_throughput_per_ms / base) for p in points]
