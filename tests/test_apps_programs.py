"""Tests for the application DGS programs (§4.1, Appendix A): semantics
of each update function, consistency, and runtime-vs-spec equality."""

from collections import Counter


from repro.core import Event, check_consistency
from repro.runtime import FluminaRuntime, run_sequential_reference
from repro.apps import fraud, outlier, pageview, smarthome, value_barrier as vb


class TestValueBarrierProgram:
    def test_update_semantics(self):
        prog = vb.make_program()
        events = [
            Event(vb.VALUE_TAG, "v0", 1.0, 5),
            Event(vb.VALUE_TAG, "v1", 2.0, 7),
            Event(vb.BARRIER_TAG, "b", 3.0, 0),
            Event(vb.VALUE_TAG, "v0", 4.0, 1),
            Event(vb.BARRIER_TAG, "b", 5.0, 1),
        ]
        assert prog.spec(events) == [
            ("window_sum", 3.0, 12),
            ("window_sum", 5.0, 1),
        ]

    def test_dependence(self):
        prog = vb.make_program()
        assert prog.depends.depends(vb.BARRIER_TAG, vb.BARRIER_TAG)
        assert prog.depends.depends(vb.VALUE_TAG, vb.BARRIER_TAG)
        assert prog.depends.indep(vb.VALUE_TAG, vb.VALUE_TAG)

    def test_consistency(self):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=2, values_per_barrier=10, n_barriers=3)
        events = [e for _, evs in wl.all_streams() for e in evs][:30]
        assert check_consistency(prog, events).ok

    def test_runtime_matches_spec(self):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=3, values_per_barrier=40, n_barriers=4)
        streams = vb.make_streams(wl)
        res = FluminaRuntime(prog, vb.make_plan(prog, wl)).run(streams)
        assert Counter(map(repr, res.output_values())) == Counter(
            map(repr, run_sequential_reference(prog, streams))
        )

    def test_optimized_plan_is_valid_and_correct(self):
        from repro.plans import is_p_valid

        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=4, values_per_barrier=30, n_barriers=3)
        hosts = [f"node{i}" for i in range(4)]
        plan = vb.optimized_plan(prog, wl, hosts=hosts)
        assert is_p_valid(plan, prog)
        owner = plan.owner_of(wl.barrier_itag)
        assert not owner.is_leaf


class TestFraudProgram:
    def test_model_carries_across_windows(self):
        prog = fraud.make_program()
        events = [
            Event(fraud.TXN_TAG, "t0", 1.0, 500),
            Event(fraud.RULE_TAG, "b", 2.0, 100),  # model = (500+100)%1000 = 600
            Event(fraud.TXN_TAG, "t0", 3.0, 1600),  # 1600%1000=600 -> fraud
            Event(fraud.TXN_TAG, "t0", 4.0, 601),  # not fraud
            Event(fraud.RULE_TAG, "b", 5.0, 1),
        ]
        out = prog.spec(events)
        assert ("window_sum", 2.0, 500) in out
        assert ("fraud", 3.0, 1600) in out
        assert ("window_sum", 5.0, 2201) in out
        assert not any(v[0] == "fraud" and v[1] == 4.0 for v in out)

    def test_fork_duplicates_model(self):
        prog = fraud.make_program()
        f = prog.forks[0]
        from repro.core import pred_of

        uni = prog.tags
        p_txn = pred_of(uni, [fraud.TXN_TAG])
        s1, s2 = f((42, 7), p_txn, p_txn)
        assert s1[1] == 7 and s2[1] == 7
        assert s1[0] + s2[0] == 42

    def test_consistency(self):
        prog = fraud.make_program()
        wl = fraud.make_workload(n_txn_streams=2, txns_per_rule=10, n_rules=3)
        events = [e for _, evs in wl.all_streams() for e in evs][:30]
        assert check_consistency(prog, events, state_eq=fraud.state_eq).ok

    def test_runtime_matches_spec(self):
        prog = fraud.make_program()
        wl = fraud.make_workload(n_txn_streams=4, txns_per_rule=50, n_rules=4)
        streams = fraud.make_streams(wl)
        res = FluminaRuntime(prog, fraud.make_plan(prog, wl)).run(streams)
        assert Counter(map(repr, res.output_values())) == Counter(
            map(repr, run_sequential_reference(prog, streams))
        )


class TestPageViewProgram:
    def test_update_outputs_old_metadata(self):
        prog = pageview.make_program(2)
        events = [
            Event(pageview.update_tag(0), "u0", 1.0, 11111),
            Event(pageview.view_tag(0), "v0", 2.0, None),
            Event(pageview.update_tag(0), "u0", 3.0, 22222),
        ]
        out = prog.spec(events)
        assert out == [
            ("old_info", 1.0, 0, pageview.DEFAULT_ZIP),
            ("old_info", 3.0, 0, 11111),
        ]

    def test_views_same_page_independent(self):
        prog = pageview.make_program(2)
        assert prog.depends.indep(pageview.view_tag(0), pageview.view_tag(0))
        assert prog.depends.depends(pageview.view_tag(0), pageview.update_tag(0))
        assert prog.depends.indep(pageview.view_tag(0), pageview.update_tag(1))

    def test_fork_replicates_metadata_for_views(self):
        prog = pageview.make_program(1)
        from repro.core import pred_of

        uni = prog.tags
        p_views = pred_of(uni, [pageview.view_tag(0)])
        s1, s2 = prog.forks[0]({0: 99}, p_views, p_views)
        # Both sides read page 0 -> both get its metadata.
        assert s1 == {0: 99} and s2 == {0: 99}
        assert prog.joins[0](s1, s2) == {0: 99}

    def test_consistency(self):
        prog = pageview.make_program(2)
        wl = pageview.make_workload(
            n_pages=2, n_view_streams=2, views_per_update=10, n_updates_per_page=2
        )
        events = [e for _, evs in wl.all_streams() for e in evs][:30]
        assert check_consistency(prog, events, state_eq=pageview.state_eq).ok

    def test_forest_plan_runtime_matches_spec(self):
        prog = pageview.make_program(2)
        wl = pageview.make_workload(
            n_pages=2, n_view_streams=4, views_per_update=40, n_updates_per_page=3
        )
        streams = pageview.make_streams(wl)
        res = FluminaRuntime(prog, pageview.make_plan(prog, wl)).run(streams)
        assert Counter(map(repr, res.output_values())) == Counter(
            map(repr, run_sequential_reference(prog, streams))
        )


class TestOutlierProgram:
    def test_flags_injected_outliers(self):
        prog = outlier.make_program()
        conns, queries, qit = outlier.synthetic_connections(
            n_streams=2, conns_per_query=150, n_queries=2, rate_per_ms=10.0,
            outlier_fraction=0.05, seed=3,
        )
        streams = outlier.make_streams(conns, queries, qit)
        out = run_sequential_reference(prog, streams)
        assert any(v[0] == "outlier" for v in out)
        assert all(v[2] > outlier.ZSCORE_THRESHOLD for v in out if v[0] == "outlier")

    def test_moments_merge_exactly(self):
        prog = outlier.make_program()
        j = prog.joins[0]
        s1 = (2, (1.0, 2.0, 3.0), (1.0, 4.0, 9.0), {"tcp": 2}, {1: (0.5, (9.0,) * 3)})
        s2 = (1, (0.5, 0.5, 0.5), (0.25, 0.25, 0.25), {"udp": 1}, {})
        c, sums, sq, cats, cands = j(s1, s2)
        assert c == 3
        assert sums == (1.5, 2.5, 3.5)
        assert cats == {"tcp": 2, "udp": 1}
        assert 1 in cands

    def test_consistency(self):
        prog = outlier.make_program()
        conns, queries, qit = outlier.synthetic_connections(
            n_streams=2, conns_per_query=15, n_queries=2, rate_per_ms=10.0
        )
        events = [e for evs in conns.values() for e in evs][:20] + list(queries)
        assert check_consistency(prog, events, state_eq=outlier.state_eq).ok

    def test_runtime_matches_spec(self):
        prog = outlier.make_program()
        conns, queries, qit = outlier.synthetic_connections(
            n_streams=3, conns_per_query=60, n_queries=3, rate_per_ms=10.0
        )
        streams = outlier.make_streams(conns, queries, qit)
        plan = outlier.make_plan(prog, conns, qit)
        res = FluminaRuntime(prog, plan).run(streams)
        assert Counter(map(repr, res.output_values())) == Counter(
            map(repr, run_sequential_reference(prog, streams))
        )


class TestSmartHomeProgram:
    def test_prediction_blends_current_and_historic(self):
        prog = smarthome.make_program(1)
        tag = smarthome.house_tag(0)
        events = [
            Event(tag, "h0", 1.0, (0, 0, 100.0)),
            Event(smarthome.TICK_TAG, "t", 2.0, 0),  # slice 0: no history
            Event(tag, "h0", 3.0, (0, 0, 50.0)),
            Event(smarthome.TICK_TAG, "t", 4.0, 0),  # history avg=100, cur=50
        ]
        out = prog.spec(events)
        preds = {v[1]: v[2] for v in out if v[0] == "prediction"}
        # Second tick: (50 + 100)/2 = 75 at every granularity of the key.
        assert preds[("house", 0)] == 75.0 or any(
            abs(v[2] - 75.0) < 1e-9 for v in out[3:] if v[0] == "prediction"
        )

    def test_all_granularities_predicted(self):
        prog = smarthome.make_program(2)
        houses, ticks, tit = smarthome.synthetic_plug_load(
            n_houses=2, measurements_per_slice=20, n_slices=2
        )
        out = run_sequential_reference(
            prog, smarthome.make_streams(houses, ticks, tit)
        )
        kinds = {v[1][0] for v in out if v[0] == "prediction"}
        assert kinds == {"house", "household", "plug"}

    def test_consistency(self):
        prog = smarthome.make_program(2)
        houses, ticks, tit = smarthome.synthetic_plug_load(
            n_houses=2, measurements_per_slice=8, n_slices=2
        )
        events = [e for evs in houses.values() for e in evs][:16] + list(ticks)
        assert check_consistency(prog, events, state_eq=smarthome.state_eq).ok

    def test_runtime_matches_spec(self):
        prog = smarthome.make_program(3)
        houses, ticks, tit = smarthome.synthetic_plug_load(
            n_houses=3, measurements_per_slice=30, n_slices=3
        )
        streams = smarthome.make_streams(houses, ticks, tit)
        plan = smarthome.make_plan(prog, houses, tit)
        res = FluminaRuntime(prog, plan).run(streams)
        assert Counter(map(repr, res.output_values())) == Counter(
            map(repr, run_sequential_reference(prog, streams))
        )

    def test_house_measurements_self_dependent(self):
        prog = smarthome.make_program(2)
        t0 = smarthome.house_tag(0)
        t1 = smarthome.house_tag(1)
        assert prog.depends.depends(t0, t0)
        assert prog.depends.indep(t0, t1)
        assert prog.depends.depends(t0, smarthome.TICK_TAG)
