"""P-validity of synchronization plans (paper Definition 3.2).

A plan is *P-valid* for a program P when:

* **V1** (typing): every worker's state type exists in P, can handle
  the tags of the worker's implementation tags (``pred_i``), and every
  internal worker has a fork/join pair defined between its state type
  and its children's state types.
* **V2** (isolation): every pair of workers *without* an ancestor/
  descendant relationship handles disjoint and pairwise-independent
  implementation tag sets.

Validity is purely syntactic and is a precondition of the end-to-end
correctness theorem (Theorem 3.5); the runtime refuses to instantiate
invalid plans.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List

from ..core.errors import ValidityError
from ..core.program import DGSProgram
from .plan import SyncPlan


@dataclass(frozen=True)
class ValidityViolation:
    rule: str  # "V1" or "V2"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.rule}] {self.detail}"


def validity_violations(plan: SyncPlan, program: DGSProgram) -> List[ValidityViolation]:
    """Return all V1/V2 violations (empty list == P-valid)."""
    out: List[ValidityViolation] = []
    out.extend(_check_v1(plan, program))
    out.extend(_check_v2(plan, program))
    return out


def is_p_valid(plan: SyncPlan, program: DGSProgram) -> bool:
    return not validity_violations(plan, program)


def assert_p_valid(plan: SyncPlan, program: DGSProgram) -> None:
    violations = validity_violations(plan, program)
    if violations:
        summary = "; ".join(str(v) for v in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise ValidityError(f"plan is not P-valid: {summary}{more}")


# ---------------------------------------------------------------------------
# Reconfiguration compatibility (elastic re-planning at snapshots)
# ---------------------------------------------------------------------------
#
# A live reconfiguration migrates the root's joined state from one plan
# into another (repro.runtime.reconfigure).  Beyond each plan being
# P-valid on its own, the *pair* must satisfy:
#
# * **R1** (itag partition): both plans cover exactly the same
#   implementation tags — the input streams do not change across a
#   migration, only their assignment to workers;
# * **R2** (root state type): the target root's state type equals the
#   source root's, because the captured snapshot is a value of the
#   source root's state type and is forked down the target tree as-is.


def reconfig_violations(
    old_plan: SyncPlan, new_plan: SyncPlan, program: DGSProgram
) -> List[ValidityViolation]:
    """All violations making ``new_plan`` an invalid migration target
    for ``old_plan`` (empty list == compatible).  Includes each plan's
    own V1/V2 violations."""
    out: List[ValidityViolation] = []
    out.extend(validity_violations(old_plan, program))
    out.extend(validity_violations(new_plan, program))
    missing = old_plan.all_itags() - new_plan.all_itags()
    extra = new_plan.all_itags() - old_plan.all_itags()
    if missing:
        out.append(
            ValidityViolation(
                "R1",
                f"target plan drops itags {sorted(map(repr, missing))}",
            )
        )
    if extra:
        out.append(
            ValidityViolation(
                "R1",
                f"target plan adds itags {sorted(map(repr, extra))}",
            )
        )
    if old_plan.root.state_type != new_plan.root.state_type:
        out.append(
            ValidityViolation(
                "R2",
                f"root state type changes {old_plan.root.state_type!r} -> "
                f"{new_plan.root.state_type!r}; the migrated snapshot "
                "cannot be forked down the target tree",
            )
        )
    return out


def assert_reconfig_compatible(
    old_plan: SyncPlan, new_plan: SyncPlan, program: DGSProgram
) -> None:
    violations = reconfig_violations(old_plan, new_plan, program)
    if violations:
        summary = "; ".join(str(v) for v in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise ValidityError(
            f"plans are not reconfiguration-compatible: {summary}{more}"
        )


def _check_v1(plan: SyncPlan, program: DGSProgram) -> List[ValidityViolation]:
    out: List[ValidityViolation] = []
    for node in plan.workers():
        if node.state_type not in program.state_types:
            out.append(
                ValidityViolation(
                    "V1", f"worker {node.id} uses unknown state type {node.state_type!r}"
                )
            )
            continue
        pred = program.pred(node.state_type)
        for itag in node.itags:
            if itag.tag not in program.tags:
                out.append(
                    ValidityViolation(
                        "V1", f"worker {node.id} itag {itag!r} outside tag universe"
                    )
                )
            elif itag.tag not in pred:
                out.append(
                    ValidityViolation(
                        "V1",
                        f"worker {node.id} state type {node.state_type!r} cannot "
                        f"handle tag {itag.tag!r}",
                    )
                )
        if node.children:
            left, right = node.children
            try:
                program.fork_for(node.state_type, left.state_type, right.state_type)
            except Exception:
                out.append(
                    ValidityViolation(
                        "V1",
                        f"no fork {node.state_type!r} -> "
                        f"({left.state_type!r}, {right.state_type!r}) for worker {node.id}",
                    )
                )
            try:
                program.join_for(left.state_type, right.state_type, node.state_type)
            except Exception:
                out.append(
                    ValidityViolation(
                        "V1",
                        f"no join ({left.state_type!r}, {right.state_type!r}) -> "
                        f"{node.state_type!r} for worker {node.id}",
                    )
                )
    return out


def _check_v2(plan: SyncPlan, program: DGSProgram) -> List[ValidityViolation]:
    out: List[ValidityViolation] = []
    workers = plan.workers()
    for a, b in itertools.combinations(workers, 2):
        if plan.related(a.id, b.id):
            continue
        overlap = a.itags & b.itags
        if overlap:
            out.append(
                ValidityViolation(
                    "V2",
                    f"unrelated workers {a.id} and {b.id} share itags "
                    f"{sorted(map(repr, overlap))}",
                )
            )
        if not program.depends.itag_sets_independent(a.itags, b.itags):
            out.append(
                ValidityViolation(
                    "V2",
                    f"unrelated workers {a.id} and {b.id} handle dependent tags",
                )
            )
    return out
