"""The service front door: asyncio TCP ingest/egress around a
:class:`~repro.serve.service.ServiceRuntime`.

One listener serves both roles; the hello handshake picks the mode:

* **ingest** connections stream framed event batches in and receive an
  admission ack per batch (admitted/rejected-by-reason counts plus the
  current backpressure state), so a rejected event is always *reported*
  back to the producer that sent it.  ``flush`` forces an epoch,
  ``finish`` closes the service with a final commit-everything epoch.
* **subscribe** connections receive the committed output log from any
  ``from_seq`` cursor onward: first the catch-up tail, then each
  epoch's newly committed outputs as they land, then ``eof`` once the
  service finishes.  Sequence numbers make redelivery detectable, so a
  subscriber reconnecting mid-stream still sees the exactly-once log.

The handshake follows the cluster registry's stray-connection model:
the first frame must be a control hello carrying the service cookie
(compared with ``hmac.compare_digest``); anything slow, malformed, or
mis-cookied is counted and dropped without disturbing the service.

Epochs are sealed by a background task — when the inbox reaches
``epoch_events``, or after ``epoch_idle_ms`` of a non-empty buffer —
and executed on a worker thread so the event loop keeps admitting and
acking while a (possibly crashing, possibly reconfiguring) epoch runs.
The :mod:`~repro.runtime.metrics` exporter, when enabled, publishes
the ``repro_serve_*`` gauges plus the accumulated run metrics; cluster
epochs (``run.nodes``) additionally stream per-worker gauges through
the same exporter via the shared-exporter idiom the recovering and
elastic cluster paths use.
"""

from __future__ import annotations

import asyncio
import hmac
import secrets
import threading
from dataclasses import replace
from typing import Any, Dict, List, Optional

from ..core.errors import RuntimeFault
from ..core.program import DGSProgram
from ..plans.plan import SyncPlan
from ..runtime.messages import EventMsg
from ..runtime.metrics import MetricsExporter
from ..runtime.options import ServeOptions
from ..runtime.wire import FRAME_LEN
from .protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    control_frame,
    outputs_frame,
    parse_frame,
)
from .service import ServiceRuntime

#: A client that has not said a valid hello within this window is a
#: stray (same posture as the cluster registry's handshake).
HELLO_TIMEOUT_S = 5.0

#: Egress push chunking: one frame per this many committed outputs.
EGRESS_CHUNK = 512


class ServiceServer:
    """The asyncio service tier.  Construct, then either ``await
    run()`` inside an event loop or use :func:`start_service` for the
    background-thread form."""

    def __init__(
        self,
        program: DGSProgram,
        plan: SyncPlan,
        *,
        options: Optional[ServeOptions] = None,
    ) -> None:
        opts = options if options is not None else ServeOptions()
        self.cookie = opts.cookie if opts.cookie is not None else secrets.token_hex(16)
        self.exporter: Optional[MetricsExporter] = None
        if opts.metrics_port is not None:
            self.exporter = MetricsExporter(port=int(opts.metrics_port)).start()
            if opts.run.nodes is not None and opts.run.metrics:
                # Cluster epochs each build a fresh launcher; handing
                # them the live exporter instance keeps one scrape
                # endpoint across attempts (attempt="N" label groups),
                # exactly like ProcessBackend._shared_exporter.
                opts = replace(
                    opts, run=replace(opts.run, metrics_port=self.exporter)
                )
        self.options = opts
        self.runtime = ServiceRuntime(program, plan, options=opts)
        #: Connections dropped at the handshake (bad cookie, garbage,
        #: timeout) — the service's stray counter.
        self.strays = 0
        self.port: Optional[int] = None

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._sealer: Optional[asyncio.Task] = None
        self._epoch_lock: Optional[asyncio.Lock] = None
        self._kick: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        #: key -> [writer, cursor]; cursors only move under _epoch_lock.
        self._subscribers: Dict[int, List[Any]] = {}
        self._next_sub = 0

    # -- lifecycle -------------------------------------------------------
    async def run(self, *, ready: Optional[threading.Event] = None) -> None:
        """Bind, serve until :meth:`request_stop`, then tear down."""
        self._loop = asyncio.get_running_loop()
        self._epoch_lock = asyncio.Lock()
        self._kick = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_conn, self.options.host, self.options.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._sealer = asyncio.create_task(self._seal_loop())
        if ready is not None:
            ready.set()
        try:
            await self._stopped.wait()
        finally:
            self._sealer.cancel()
            self._server.close()
            await self._server.wait_closed()
            for writer, _cursor in list(self._subscribers.values()):
                writer.close()
            self._subscribers.clear()
            if self.exporter is not None:
                self.exporter.stop()

    def request_stop(self) -> None:
        """Stop serving (thread-safe; does not run a final epoch —
        send ``finish`` on an ingest connection for a clean close)."""
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._stopped.set)

    # -- epoch sealing ---------------------------------------------------
    async def _seal_loop(self) -> None:
        tick = max(self.options.epoch_idle_ms, 1.0) / 1000.0
        while not self.runtime.finished:
            try:
                await asyncio.wait_for(self._kick.wait(), timeout=tick)
            except asyncio.TimeoutError:
                pass
            self._kick.clear()
            if self.runtime.finished:
                return
            if self.runtime.inbox_size() > 0:
                await self._run_epoch()

    async def _run_epoch(self, *, final: bool = False):
        async with self._epoch_lock:
            if self.runtime.finished:
                return None
            report = await self._loop.run_in_executor(
                None, lambda: self.runtime.run_epoch(final=final)
            )
            await self._publish()
            return report

    async def _publish(self) -> None:
        """Push newly committed outputs to every subscriber (caller
        holds the epoch lock, so cursors move race-free) and refresh
        the exporter."""
        self._export()
        dead: List[int] = []
        for key, sub in list(self._subscribers.items()):
            writer, cursor = sub
            try:
                sub[1] = await self._push_outputs(writer, cursor)
                if self.runtime.finished:
                    writer.write(
                        control_frame({"type": "eof", "next_seq": sub[1]})
                    )
                    await writer.drain()
            except (ConnectionError, OSError):
                dead.append(key)
        for key in dead:
            self._subscribers.pop(key, None)

    async def _push_outputs(self, writer, cursor: int) -> int:
        tail, nxt = self.runtime.committed_since(cursor)
        for i in range(0, len(tail), EGRESS_CHUNK):
            writer.write(outputs_frame(tail[i : i + EGRESS_CHUNK], cursor + i))
            await writer.drain()
        return nxt

    def _export(self) -> None:
        if self.exporter is None:
            return
        self.exporter.set_service_gauges(self.runtime.service_gauges())
        metrics = self.runtime.metrics
        if metrics is not None:
            self.exporter.update(metrics.merged())

    # -- connections -----------------------------------------------------
    async def _on_conn(self, reader, writer) -> None:
        try:
            blob = await asyncio.wait_for(self._hello(reader), HELLO_TIMEOUT_S)
        except (asyncio.TimeoutError, RuntimeFault, ConnectionError, OSError):
            blob = None
        if blob is None:
            self.strays += 1
            writer.close()
            return
        mode = blob["mode"]
        try:
            writer.write(
                control_frame(
                    {
                        "type": "welcome",
                        "v": PROTOCOL_VERSION,
                        "mode": mode,
                        "next_seq": len(self.runtime.committed),
                    }
                )
            )
            await writer.drain()
            if mode == "subscribe":
                await self._serve_subscriber(
                    reader, writer, int(blob.get("from_seq", 0))
                )
            else:
                await self._serve_ingest(reader, writer)
        except (RuntimeFault, ConnectionError, OSError):
            pass  # a broken client never disturbs the service
        finally:
            writer.close()

    async def _hello(self, reader) -> Optional[dict]:
        body = await self._read_frame(reader)
        if body is None:
            return None
        kind, blob = parse_frame(body)  # RuntimeFault on garbage -> stray
        if (
            kind == "control"
            and blob.get("type") == "hello"
            and blob.get("v") == PROTOCOL_VERSION
            and isinstance(blob.get("cookie"), str)
            and hmac.compare_digest(blob["cookie"], self.cookie)
            and blob.get("mode") in ("ingest", "subscribe")
        ):
            return blob
        return None

    async def _serve_ingest(self, reader, writer) -> None:
        while True:
            body = await self._read_frame(reader)
            if body is None:
                return
            kind, payload = parse_frame(body)
            if kind == "events":
                events = [m.event for m in payload if isinstance(m, EventMsg)]
                counts = self.runtime.offer_batch(events)
                unsupported = len(payload) - len(events)
                if unsupported:
                    counts["unsupported"] = counts.get("unsupported", 0) + unsupported
                reasons = {k: v for k, v in counts.items() if k != "admitted"}
                writer.write(
                    control_frame(
                        {
                            "type": "ack",
                            "admitted": counts.get("admitted", 0),
                            "rejected": sum(reasons.values()),
                            "reasons": reasons,
                            "paused": self.runtime.gate.paused,
                        }
                    )
                )
                await writer.drain()
                if self.runtime.inbox_size() >= self.options.epoch_events:
                    self._kick.set()
                continue
            msg_type = payload.get("type")
            if msg_type == "flush":
                report = await self._run_epoch()
                writer.write(
                    control_frame(
                        {
                            "type": "flushed",
                            "epoch": None if report is None else report.index,
                            "committed_total": len(self.runtime.committed),
                        }
                    )
                )
                await writer.drain()
            elif msg_type == "finish":
                await self._run_epoch(final=True)
                writer.write(
                    control_frame(
                        {
                            "type": "finished",
                            "committed_total": len(self.runtime.committed),
                        }
                    )
                )
                await writer.drain()
            elif msg_type == "bye":
                return
            else:
                raise RuntimeFault(
                    f"service protocol: unexpected ingest control {msg_type!r}"
                )

    async def _serve_subscriber(self, reader, writer, from_seq: int) -> None:
        key = self._next_sub
        self._next_sub += 1
        sub = [writer, max(0, from_seq)]
        # Catch up under the epoch lock: no epoch can commit (and
        # publish) between the tail read and the registration, so the
        # subscriber sees every seq exactly once.
        async with self._epoch_lock:
            self._subscribers[key] = sub
            sub[1] = await self._push_outputs(writer, sub[1])
            if self.runtime.finished:
                writer.write(control_frame({"type": "eof", "next_seq": sub[1]}))
                await writer.drain()
        try:
            while True:
                body = await self._read_frame(reader)
                if body is None:
                    return
                kind, payload = parse_frame(body)
                if kind == "control" and payload.get("type") == "bye":
                    return
                # Anything else from a subscriber is noise; ignore.
        finally:
            self._subscribers.pop(key, None)

    async def _read_frame(self, reader) -> Optional[bytes]:
        """One length-prefixed frame body; None on EOF or the
        zero-length stop sentinel (a polite close)."""
        try:
            header = await reader.readexactly(FRAME_LEN.size)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return None
        (length,) = FRAME_LEN.unpack(header)
        if length == 0:
            return None
        if length > MAX_FRAME:
            raise RuntimeFault(
                f"service protocol: {length}-byte frame exceeds the "
                f"{MAX_FRAME}-byte cap"
            )
        try:
            return await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return None


class ServiceHandle:
    """A running service in a background thread (see
    :func:`start_service`); context-manager for scoped use."""

    def __init__(self, server: ServiceServer, thread: threading.Thread) -> None:
        self.server = server
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def cookie(self) -> str:
        return self.server.cookie

    @property
    def runtime(self) -> ServiceRuntime:
        return self.server.runtime

    @property
    def metrics_port(self) -> Optional[int]:
        exporter = self.server.exporter
        return None if exporter is None else exporter.port

    def stop(self, timeout: float = 30.0) -> None:
        self.server.request_stop()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeFault("service did not stop within the timeout")

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_service(
    program: DGSProgram,
    plan: SyncPlan,
    *,
    options: Optional[ServeOptions] = None,
) -> ServiceHandle:
    """Run a :class:`ServiceServer` on a background event-loop thread
    and return once the listener is bound (``handle.port`` is live)."""
    server = ServiceServer(program, plan, options=options)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run(ready=ready)),
        name="repro-serve",
        daemon=True,
    )
    thread.start()
    if not ready.wait(timeout=30.0) or server.port is None:
        raise RuntimeFault("service failed to start (listener never bound)")
    return ServiceHandle(server, thread)
