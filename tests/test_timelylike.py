"""Tests for the Timely-like epoch-batched engine (§4.2, Appendix F)."""

from collections import Counter

import pytest

from repro.apps import fraud, pageview as pv, value_barrier as vb
from repro.runtime import run_sequential_reference
from repro.timelylike import (
    StageDef,
    TimelyJob,
    build_event_window_job,
    build_fraud_job,
    build_pageview_job,
    strip_ts,
)


def _spec_projected(mod, wl, n_pages=2):
    prog = mod.make_program() if mod is not pv else mod.make_program(n_pages)
    streams = mod.make_streams(wl)
    return Counter(
        map(repr, map(strip_ts, run_sequential_reference(prog, streams)))
    )


class TestEngine:
    def test_stage_fires_when_all_channels_arrive(self):
        job = TimelyJob(2)
        fired = []

        def collect(worker, epoch, inputs):
            fired.append((worker.index, epoch, sorted(inputs["in"])))
            return []

        job.add_stage(StageDef("s", {"in": 2}, collect))
        # Each worker sends one batch per epoch to worker 0.
        job.feed(
            "s", "in",
            batches=[[["a0"], ["a1"]], [["b0"], ["b1"]]],
            epoch_times=[1.0, 2.0],
        )
        # Only 1 batch per worker per epoch arrived; expected 2 -> wire
        # a second channel by feeding again.
        job.feed(
            "s", "in",
            batches=[[["c0"], ["c1"]], [["d0"], ["d1"]]],
            epoch_times=[1.0, 2.0],
        )
        job.run()
        assert len(fired) == 4  # 2 workers x 2 epochs
        assert ((0, 0, ["a0", "c0"]) in fired)

    def test_duplicate_stage_rejected(self):
        from repro.core import RuntimeFault

        job = TimelyJob(1)
        job.add_stage(StageDef("s", {"in": 1}, lambda w, e, i: []))
        with pytest.raises(RuntimeFault):
            job.add_stage(StageDef("s", {"in": 1}, lambda w, e, i: []))

    def test_output_routing(self):
        job = TimelyJob(1)
        job.add_stage(
            StageDef("s", {"in": 1}, lambda w, e, i: [("output", i["in"])])
        )
        job.feed("s", "in", batches=[[["x", "y"]]], epoch_times=[1.0])
        res = job.run()
        assert sorted(res.output_values()) == ["x", "y"]

    def test_feedback_arrives_next_epoch(self):
        job = TimelyJob(1)
        seen = []

        def stage(worker, epoch, inputs):
            seen.append((epoch, inputs["fb"]))
            return [("feedback", "s", "fb", [f"from{epoch}"])]

        job.add_stage(
            StageDef("s", {"in": 1, "fb": 1}, stage, feedback_initial={"fb": ["seed"]})
        )
        job.feed("s", "in", batches=[[["a"], ["b"], ["c"]]], epoch_times=[1.0, 2.0, 3.0])
        job.run()
        assert seen[0] == (0, ["seed"])
        assert seen[1] == (1, ["from0"])
        assert seen[2] == (2, ["from1"])

    def test_batching_amortizes_overhead(self):
        # Same events, one batch vs many: the batched run finishes sooner.
        def mk(n_batches):
            job = TimelyJob(1)
            job.add_stage(StageDef("s", {"in": 1}, lambda w, e, i: []))
            per_epoch = [[1] * (100 // n_batches) for _ in range(n_batches)]
            job.feed("s", "in", batches=[per_epoch], epoch_times=[1.0] * n_batches)
            return job.run()

        coarse = mk(1)
        fine = mk(100)
        assert coarse.duration_ms < fine.duration_ms


class TestApps:
    def test_event_window_matches_spec(self):
        wl = vb.make_workload(n_value_streams=4, values_per_barrier=40, n_barriers=4)
        res = build_event_window_job(wl, n_workers=4).run()
        got = Counter(map(repr, map(strip_ts, res.output_values())))
        assert got == _spec_projected(vb, wl)

    def test_fraud_matches_spec(self):
        wl = fraud.make_workload(n_txn_streams=4, txns_per_rule=40, n_rules=4)
        res = build_fraud_job(wl, n_workers=4).run()
        got = Counter(map(repr, map(strip_ts, res.output_values())))
        assert got == _spec_projected(fraud, wl)

    @pytest.mark.parametrize("manual", [False, True])
    def test_pageview_matches_spec(self, manual):
        wl = pv.make_workload(
            n_pages=2, n_view_streams=4, views_per_update=40, n_updates_per_page=4
        )
        res = build_pageview_job(wl, n_workers=4, manual=manual).run()
        got = Counter(map(repr, map(strip_ts, res.output_values())))
        assert got == _spec_projected(pv, wl)

    def test_fraud_scales_via_feedback(self):
        def mk(p):
            return fraud.make_workload(
                n_txn_streams=p, txns_per_rule=400, n_rules=3, txn_rate_per_ms=800.0
            )
        r1 = build_fraud_job(mk(1), n_workers=1).run()
        r8 = build_fraud_job(mk(8), n_workers=8).run()
        assert r8.throughput_events_per_ms > 3.0 * r1.throughput_events_per_ms

    def test_strip_ts(self):
        assert strip_ts(("fraud", 3.5, 77)) == ("fraud", 77)
        assert strip_ts(("old_info", 1.0, 2, 10_000)) == ("old_info", 2, 10_000)
