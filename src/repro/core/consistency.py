"""Consistency conditions C1-C3 (paper Definition 2.3).

A program is *consistent* when:

* **C1** (update/join commutation): for every join ``(State_j, State_k)
  -> State_i`` and event ``e`` with ``pred_i(e)`` and ``pred_j(e)``,
  ``join(update(s1, e), s2) == update(join(s1, s2), e)`` and both sides
  produce the same outputs.
* **C2** (fork/join inverse): ``join(fork(s, pred1, pred2)) == s``.
* **C3** (commutation of independent updates): for independent events
  ``e1, e2`` allowed by ``pred_i``, updates commute on the state and
  the combined output multisets agree.

Consistency is the analogue of MapReduce's commutativity/associativity
requirement: the runtime does not *assume* it, but without it parallel
executions may diverge from the sequential spec.  This module checks
the conditions on concrete sample states and events — directed testing
rather than proof — and is wired into hypothesis property tests in the
test suite.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .events import Event
from .predicates import TagPredicate
from .program import DGSProgram, ForkFn, JoinFn, State
from .semantics import output_multiset

StateEq = Callable[[State, State], bool]


def _default_eq(a: State, b: State) -> bool:
    return a == b


@dataclass(frozen=True)
class Violation:
    """A single observed violation of a consistency condition."""

    condition: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.condition}] {self.detail}"


@dataclass
class ConsistencyReport:
    violations: List[Violation] = field(default_factory=list)
    checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, condition: str, detail: str) -> None:
        self.violations.append(Violation(condition, detail))

    def merge(self, other: "ConsistencyReport") -> None:
        self.violations.extend(other.violations)
        self.checks += other.checks


def check_c1(
    program: DGSProgram,
    join: JoinFn,
    state_pairs: Iterable[Tuple[State, State, Optional[TagPredicate]]],
    events: Iterable[Event],
    *,
    state_eq: StateEq = _default_eq,
) -> ConsistencyReport:
    """Check C1 on the given (s1, s2, wire_pred) triples.

    Deviation from the paper's literal statement, documented in
    DESIGN.md: Definition 2.3 quantifies C1 over *all* state pairs, but
    the proof of Theorem 2.4 only ever applies C1 to pairs that co-occur
    on two parallel wires — where ``s1``'s wire predicate contains ``e``
    and ``s2``'s does not.  Checking over arbitrary pairs falsely flags
    the paper's own Figure-1 program (a read-reset on ``s1`` observes
    counts parked in an arbitrary ``s2``).  We therefore check C1 on
    *co-reachable* pairs produced by :func:`co_reachable_pairs`, each
    carrying the wire predicate of the left state (``None`` means
    unrestricted).
    """
    report = ConsistencyReport()
    pred_i = program.pred(join.output)
    pred_j = program.pred(join.left)
    upd_j = program.state_type(join.left).update
    upd_i = program.state_type(join.output).update
    events = [e for e in events if e.tag in pred_i and e.tag in pred_j]
    for (s1, s2, wire_pred), e in itertools.product(list(state_pairs), events):
        if wire_pred is not None and e.tag not in wire_pred:
            continue
        report.checks += 1
        lhs_state, lhs_out = upd_j(s1, e)
        lhs = join(lhs_state, s2)
        joined = join(s1, s2)
        rhs, rhs_out = upd_i(joined, e)
        if not state_eq(lhs, rhs):
            report.add(
                "C1",
                f"join∘update != update∘join for event {e.tag!r}: "
                f"{lhs!r} vs {rhs!r}",
            )
        if output_multiset(lhs_out) != output_multiset(rhs_out):
            report.add(
                "C1",
                f"outputs differ for event {e.tag!r}: {lhs_out!r} vs {rhs_out!r}",
            )
    return report


def co_reachable_pairs(
    program: DGSProgram,
    events: Sequence[Event],
    rng: random.Random,
    *,
    n: int = 12,
    max_len: int = 10,
) -> List[Tuple[State, State, TagPredicate]]:
    """Sample (s1, s2, pred1) triples that can co-occur on parallel
    wires: fork a reachable state with independent predicates, then
    advance each side with events satisfying its own predicate."""
    st0 = program.state_type(program.initial_type)
    if not program.has_fork_join(
        program.initial_type, program.initial_type, program.initial_type
    ):
        return []
    fork = program.fork_for(
        program.initial_type, program.initial_type, program.initial_type
    )
    bases = reachable_states(program, events, rng, n=max(2, n // 3))
    pred_pairs = independent_pred_pairs(program, rng, n=n)
    triples: List[Tuple[State, State, TagPredicate]] = []
    for _ in range(n):
        base = bases[rng.randrange(len(bases))]
        p1, p2 = pred_pairs[rng.randrange(len(pred_pairs))]
        s1, s2 = fork(base, p1, p2)
        for _ in range(rng.randrange(max_len)):
            pool1 = [e for e in events if e.tag in p1]
            if pool1:
                s1, _ = st0.update(s1, pool1[rng.randrange(len(pool1))])
        for _ in range(rng.randrange(max_len)):
            pool2 = [e for e in events if e.tag in p2]
            if pool2:
                s2, _ = st0.update(s2, pool2[rng.randrange(len(pool2))])
        triples.append((s1, s2, p1))
    return triples


def check_c2(
    program: DGSProgram,
    fork: ForkFn,
    join: JoinFn,
    states: Iterable[State],
    pred_pairs: Iterable[Tuple[TagPredicate, TagPredicate]],
    *,
    state_eq: StateEq = _default_eq,
) -> ConsistencyReport:
    report = ConsistencyReport()
    for s, (p1, p2) in itertools.product(list(states), list(pred_pairs)):
        report.checks += 1
        s1, s2 = fork(s, p1, p2)
        back = join(s1, s2)
        if not state_eq(back, s):
            report.add(
                "C2",
                f"join(fork(s)) != s with preds ({sorted(map(repr, p1.tags))}, "
                f"{sorted(map(repr, p2.tags))}): {back!r} vs {s!r}",
            )
    return report


def check_c3(
    program: DGSProgram,
    state_type: str,
    states: Iterable[State],
    event_pairs: Iterable[Tuple[Event, Event]],
    *,
    state_eq: StateEq = _default_eq,
) -> ConsistencyReport:
    report = ConsistencyReport()
    st = program.state_type(state_type)
    pairs = [
        (e1, e2)
        for e1, e2 in event_pairs
        if program.depends.indep(e1.tag, e2.tag)
        and e1.tag in st.pred
        and e2.tag in st.pred
    ]
    for s, (e1, e2) in itertools.product(list(states), pairs):
        report.checks += 1
        s12, out1a = st.update(s, e1)
        s12, out1b = st.update(s12, e2)
        s21, out2a = st.update(s, e2)
        s21, out2b = st.update(s21, e1)
        if not state_eq(s12, s21):
            report.add(
                "C3",
                f"independent events {e1.tag!r}, {e2.tag!r} do not commute: "
                f"{s12!r} vs {s21!r}",
            )
        if output_multiset(out1a + out1b) != output_multiset(out2a + out2b):
            report.add(
                "C3",
                f"output multisets differ for {e1.tag!r}, {e2.tag!r}",
            )
    return report


def independent_pred_pairs(
    program: DGSProgram, rng: random.Random, n: int = 8
) -> List[Tuple[TagPredicate, TagPredicate]]:
    """Sample pairs of independent (possibly overlapping) predicates —
    the legal fork arguments for a program."""
    from .semantics import _independent_tag_split  # shared sampling logic

    universe = program.true_pred()
    pairs: List[Tuple[TagPredicate, TagPredicate]] = []
    tags = sorted(program.tags, key=repr)
    for _ in range(n * 4):
        if len(pairs) >= n:
            break
        subset = [t for t in tags if rng.random() < 0.7] or tags[:1]
        split = _independent_tag_split(program.depends, subset, rng)
        if split is None:
            continue
        pairs.append((universe.restrict(split[0]), universe.restrict(split[1])))
    if not pairs:
        # Always legal: fork with one empty predicate.
        from .predicates import false_pred

        pairs.append((universe, false_pred(program.tags)))
    return pairs


def reachable_states(
    program: DGSProgram,
    events: Sequence[Event],
    rng: random.Random,
    *,
    n: int = 6,
    max_len: int = 12,
) -> List[State]:
    """Sample states reachable from ``init`` by random event prefixes.

    Checking consistency on reachable states (rather than arbitrary
    values) matches how the conditions are exercised at runtime.
    """
    states: List[State] = [program.init()]
    st = program.state_type(program.initial_type)
    for _ in range(max(0, n - 1)):
        state = program.init()
        for _ in range(rng.randrange(1, max_len + 1)):
            if not events:
                break
            e = events[rng.randrange(len(events))]
            state, _ = st.update(state, e)
        states.append(state)
    return states


def check_consistency(
    program: DGSProgram,
    events: Sequence[Event],
    *,
    rng: Optional[random.Random] = None,
    n_states: int = 6,
    n_pred_pairs: int = 6,
    state_eq: StateEq = _default_eq,
) -> ConsistencyReport:
    """Run C1-C3 over sampled reachable states, event pairs and
    independent predicate pairs.  A clean report is evidence (not
    proof) of consistency; any violation is a definite bug in the
    program's fork/join/update definitions."""
    rng = rng or random.Random(0)
    report = ConsistencyReport()
    states = reachable_states(program, events, rng, n=n_states)
    pred_pairs = independent_pred_pairs(program, rng, n=n_pred_pairs)
    co_pairs = co_reachable_pairs(program, events, rng, n=3 * n_states)

    for join in program.joins:
        # C1 needs (s1: State_j, s2: State_k); for single-state programs
        # co-reachable pairs serve both roles.  For multi-state programs
        # users should call check_c1 directly with typed samples.
        if join.left == program.initial_type and join.right == program.initial_type:
            report.merge(
                check_c1(program, join, co_pairs, events, state_eq=state_eq)
            )
    for fork in program.forks:
        if fork.input != program.initial_type:
            continue
        try:
            join = program.join_for(fork.left, fork.right, fork.input)
        except Exception:
            continue
        report.merge(
            check_c2(program, fork, join, states, pred_pairs, state_eq=state_eq)
        )
    event_pairs = list(itertools.product(events, events))
    rng.shuffle(event_pairs)
    report.merge(
        check_c3(
            program,
            program.initial_type,
            states,
            event_pairs[: 20 * max(1, len(events) // 2)],
            state_eq=state_eq,
        )
    )
    return report
