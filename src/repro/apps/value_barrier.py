"""Event-based windowing ("value-barrier", paper §4.1 & Figure 11).

Input: several parallel streams of integer *values* and one stream of
*barriers*.  The task: output the sum of all values between every two
consecutive barriers.

DGS program (mirroring the paper's Erlang in Figure 11):

* state = running sum;
* ``update(value)`` adds to the sum; ``update(barrier)`` outputs the
  sum and resets it;
* dependence: every tag depends on barriers (and barriers on
  themselves); values are mutually independent;
* ``fork`` gives one side the sum and the other zero; ``join`` adds.

Note the deviation from Figure 11's literal code: the paper's update
keeps the sum across barriers; the prose ("produce an aggregate of the
values between every two consecutive barriers") implies a reset, which
is what we implement (both versions are consistent programs).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..core.dependence import DependenceRelation
from ..core.events import Event
from ..core.predicates import TagPredicate
from ..core.program import DGSProgram, single_state_program
from ._cpuwork import burn
from ..data.generators import ValueBarrierWorkload, value_barrier_workload
from ..plans.generation import root_and_leaves_plan
from ..plans.optimizer import StreamInfo, optimize
from ..plans.plan import SyncPlan
from ..runtime.runtime import InputStream

VALUE_TAG = "value"
BARRIER_TAG = "barrier"
TAGS = (VALUE_TAG, BARRIER_TAG)

State = int


def depends_fn(t1, t2) -> bool:
    return BARRIER_TAG in (t1, t2)


def _update(state: State, event: Event) -> Tuple[State, List[Any]]:
    if event.tag == VALUE_TAG:
        return state + int(event.payload), []
    # Barrier: emit the window aggregate, reset.
    return 0, [("window_sum", event.ts, state)]


def _update_batch(state: State, run: Any) -> Tuple[State, List[Tuple[int, Any]]]:
    """Vectorized update over a columnar run (one tag per run).

    A value run folds to one ``sum`` over the packed payload column —
    this is where the batch data plane pays off.  Barrier runs are rare
    (and usually length 1); emit per event to keep window boundaries."""
    if run.tag == VALUE_TAG:
        return state + sum(run.payloads), []
    outs: List[Tuple[int, Any]] = []
    for i, ts in enumerate(run.ts):
        outs.append((i, ("window_sum", ts, state)))
        state = 0
    return state, outs


def _fork(state: State, pred1: TagPredicate, pred2: TagPredicate) -> Tuple[State, State]:
    # The side able to process barriers keeps the running sum (it will
    # need the total); with neither, default left.
    if BARRIER_TAG in pred2 and BARRIER_TAG not in pred1:
        return 0, state
    return state, 0


def _join(s1: State, s2: State) -> State:
    return s1 + s2


def make_program() -> DGSProgram:
    return single_state_program(
        name="value-barrier",
        tags=TAGS,
        depends=DependenceRelation.from_function(TAGS, depends_fn),
        init=lambda: 0,
        update=_update,
        update_batch=_update_batch,
        fork=_fork,
        join=_join,
    )


def make_cpu_program(spin: int) -> DGSProgram:
    """The same program with ``spin`` units of CPU work per value event
    (a stand-in for real per-event feature extraction/scoring cost).

    The plain program's update is a single integer add, so wall-clock
    runs of it measure message-passing overhead, not computation; this
    variant is the workload on which multi-core substrates can show
    genuine parallel speedup (used by the threaded-vs-process
    benchmarks).  Semantics delegate to the plain ``_update`` — only
    the burned work is added.
    """

    def update(state: State, event: Event) -> Tuple[State, List[Any]]:
        if event.tag == VALUE_TAG:
            state = state + burn(int(event.payload), spin)
        return _update(state, event)

    return single_state_program(
        name=f"value-barrier[spin={spin}]",
        tags=TAGS,
        depends=DependenceRelation.from_function(TAGS, depends_fn),
        init=lambda: 0,
        update=update,
        fork=_fork,
        join=_join,
    )


def make_workload(
    *,
    n_value_streams: int = 4,
    values_per_barrier: int = 100,
    n_barriers: int = 10,
    value_rate_per_ms: float = 10.0,
) -> ValueBarrierWorkload:
    return value_barrier_workload(
        value_tag=VALUE_TAG,
        barrier_tag=BARRIER_TAG,
        n_value_streams=n_value_streams,
        values_per_barrier=values_per_barrier,
        n_barriers=n_barriers,
        value_rate_per_ms=value_rate_per_ms,
        value_payload_fn=lambda i: 1 + (i % 7),
    )


def make_streams(
    workload: ValueBarrierWorkload, *, heartbeat_interval: float | None = 1.0
) -> List[InputStream]:
    streams = [
        InputStream(itag, events, heartbeat_interval=heartbeat_interval)
        for itag, events in workload.all_streams()
    ]
    return streams


def make_plan(program: DGSProgram, workload: ValueBarrierWorkload) -> SyncPlan:
    """The natural plan: barriers at the root, one leaf per value
    stream (what the optimizer also produces — see tests)."""
    return root_and_leaves_plan(
        program,
        [workload.barrier_itag],
        [[itag] for itag in workload.value_streams],
    )


def optimized_plan(
    program: DGSProgram, workload: ValueBarrierWorkload, *, hosts: List[str]
) -> SyncPlan:
    """Appendix-B optimizer applied to the workload's rates, with value
    producers placed on distinct hosts and the barrier near host 0."""
    infos = []
    for i, (itag, events) in enumerate(workload.value_streams.items()):
        span = events[-1].ts - events[0].ts if len(events) > 1 else 1.0
        infos.append(StreamInfo(itag, len(events) / max(span, EPS_RATE), hosts[i % len(hosts)]))
    b = workload.barrier_stream
    span = b[-1].ts - b[0].ts if len(b) > 1 else 1.0
    infos.append(StreamInfo(workload.barrier_itag, len(b) / max(span, EPS_RATE), hosts[0]))
    return optimize(program, infos)


EPS_RATE = 1e-9
