"""Service mode: a long-running streaming front door for the runtime.

Every other entry point in this repo executes a *closed* run — finite
streams in, outputs out.  :mod:`repro.serve` is the open-world tier on
top: a TCP service that accepts externally produced event streams,
executes them on any registered backend as a sequence of bounded
*epochs* (crash recovery and live reconfiguration keep working,
epoch by epoch), and streams committed outputs to subscribers with
exactly-once delivery at root-join commit boundaries.

The pieces:

* :class:`~repro.serve.service.ServiceRuntime` — the epoch engine:
  admission control, commit-by-checkpoint-prefix, carried state
  (importable without any sockets for embedding and testing);
* :class:`~repro.serve.server.ServiceServer` /
  :func:`~repro.serve.server.start_service` — the asyncio TCP tier
  (cookie-authenticated hello, framed ingest with per-batch admission
  acks, sequence-numbered egress, Prometheus gauges);
* :func:`~repro.serve.client.connect` /
  :class:`~repro.serve.client.ServiceClient` — the blocking-socket
  client for producers (``mode="ingest"``) and consumers
  (``mode="subscribe"``);
* :mod:`~repro.serve.apps` — servable instances of the paper's
  applications plus the sequential-spec oracle;
* ``python -m repro.serve`` — run a service from the command line.

Configuration is one value: :class:`~repro.runtime.options.ServeOptions`
(wrapping the per-epoch :class:`~repro.runtime.options.RunOptions`).
"""

from ..runtime.options import ServeOptions
from .apps import SERVICE_APPS, ServiceApp, keycounter_app, spec_outputs, value_barrier_app
from .client import IngestAck, ServiceClient, connect
from .protocol import PROTOCOL_VERSION
from .server import ServiceHandle, ServiceServer, start_service
from .service import (
    ADMITTED,
    REJECT_BACKPRESSURE,
    REJECT_CLOSED,
    REJECT_LATE,
    REJECT_ORDER,
    REJECT_REASONS,
    REJECT_UNKNOWN,
    AdmissionGate,
    EpochReport,
    ServiceCounters,
    ServiceRuntime,
)

__all__ = [
    "ADMITTED",
    "AdmissionGate",
    "EpochReport",
    "IngestAck",
    "PROTOCOL_VERSION",
    "REJECT_BACKPRESSURE",
    "REJECT_CLOSED",
    "REJECT_LATE",
    "REJECT_ORDER",
    "REJECT_REASONS",
    "REJECT_UNKNOWN",
    "SERVICE_APPS",
    "ServeOptions",
    "ServiceApp",
    "ServiceClient",
    "ServiceCounters",
    "ServiceHandle",
    "ServiceRuntime",
    "ServiceServer",
    "connect",
    "keycounter_app",
    "spec_outputs",
    "start_service",
    "value_barrier_app",
]
