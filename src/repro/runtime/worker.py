"""Worker processes of the Flumina-style runtime (paper §3.4).

Each plan node becomes one :class:`WorkerActor` combining the paper's
two components — the selective-reordering *mailbox* and the
*event-processing* worker — in a single simulated actor (they are
co-located on one host in Flumina too, so the cost model is the same).

Protocol summary:

* **Leaf**, released event: run ``update``, emit outputs.
* **Internal**, released own event ``e@k``: send ``JoinRequest(k)`` to
  both children, block; when both states return: ``join`` them, run
  ``update(e)``, ``fork`` the result with the two child-subtree
  predicates, send the halves back down, unblock.
* **Any node**, released parent ``JoinRequest``: a leaf replies with
  its state and blocks ("absorbed") until the matching
  :class:`ForkStateMsg` restores it; an internal node recursively joins
  its own children first and replies with the merged state, then on
  restore re-forks downward.
* **Heartbeats** are relayed down the tree, but only for tags whose
  local buffer is empty (otherwise a pending synchronizing event could
  still produce a join request with a smaller key than the relayed
  frontier, breaking ordering).

While blocked, a worker queues mailbox releases in arrival order and
drains them after unblocking; this preserves the release order that
the mailbox established.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..core.errors import RuntimeFault
from ..core.events import Event, ImplTag
from ..core.predicates import TagPredicate
from ..core.program import DGSProgram
from ..plans.plan import PlanNode, SyncPlan
from ..sim.actors import Actor
from .checkpoint import Checkpoint
from .faults import CrashRecord, WorkerCrash, WorkerFaultView
from .mailbox import Buffered, Mailbox
from .quiesce import QuiesceRecord, QuiesceSignal
from .messages import (
    EventMsg,
    EventRun,
    ForkStateMsg,
    HeartbeatMsg,
    JoinRequest,
    JoinResponse,
)

StateSizeFn = Callable[[Any], float]


def default_state_size(state: Any) -> float:
    try:
        return float(len(state))
    except TypeError:
        return 1.0


@dataclass
class RunCollector:
    """Cross-worker measurement sink for one runtime execution."""

    outputs: List[Tuple[Any, float, float]] = field(default_factory=list)
    # (value, emit_time_ms, latency_ms)
    joins: int = 0
    joins_per_worker: Dict[str, int] = field(default_factory=dict)
    events_processed: int = 0
    checkpoints: List[Checkpoint] = field(default_factory=list)
    #: per-event processing latency (process_time - event.ts) for every
    #: update, recorded only when track_event_latency is set (the
    #: heartbeat-sensitivity experiments of Appendix D.1 need it).
    track_event_latency: bool = False
    event_latencies: List[float] = field(default_factory=list)
    #: (order_key, value) output log plus injected-crash records, for
    #: the fault-recovery driver (see repro.runtime.recovery).
    record_keys: bool = False
    keyed_outputs: List[Tuple[tuple, Any]] = field(default_factory=list)
    crashes: List[CrashRecord] = field(default_factory=list)
    #: Set when the root quiesced for an elastic reconfiguration
    #: (repro.runtime.reconfigure); carries the migration snapshot.
    quiesce: Optional[QuiesceRecord] = None

    def record_output(
        self, value: Any, emit_time: float, event_ts: float, key: Any = None
    ) -> None:
        self.outputs.append((value, emit_time, emit_time - event_ts))
        if self.record_keys:
            self.keyed_outputs.append((key, value))

    def record_join(self, worker: str) -> None:
        self.joins += 1
        self.joins_per_worker[worker] = self.joins_per_worker.get(worker, 0) + 1

    def output_values(self) -> List[Any]:
        return [v for v, _, _ in self.outputs]

    def latencies(self) -> List[float]:
        return [lat for _, _, lat in self.outputs]


class WorkerActor(Actor):
    """One synchronization-plan worker (mailbox + processing loop)."""

    def __init__(
        self,
        name: str,
        host: str,
        *,
        node: PlanNode,
        plan: SyncPlan,
        program: DGSProgram,
        collector: RunCollector,
        actor_name_of: Callable[[str], str],
        state_size: StateSizeFn = default_state_size,
        checkpoint_predicate: Optional[Callable[[Event, int], bool]] = None,
        faults: Optional[WorkerFaultView] = None,
        reconfig: Optional[Any] = None,
    ) -> None:
        super().__init__(name, host)
        self.node = node
        self.plan = plan
        self.program = program
        self.collector = collector
        self.state_size = state_size
        self.checkpoint_predicate = checkpoint_predicate
        self.faults = faults
        #: RootReconfigView for the root of an elastic run (see
        #: repro.runtime.quiesce); None everywhere else.
        self.reconfig = reconfig
        #: Fail-stop flag: a crashed actor silently absorbs everything.
        self.crashed = False

        ancestors = plan.ancestors_of(node.id)
        known = set(node.itags)
        for anc_id in ancestors:
            known |= plan.node(anc_id).itags
        self.mailbox = Mailbox(known, program.depends)

        self.is_leaf = node.is_leaf
        self.is_root = plan.parent_of(node.id) is None
        self.children_ids: Tuple[str, ...] = tuple(c.id for c in node.children)
        self.child_actor: Dict[str, str] = {
            side: actor_name_of(cid)
            for side, cid in zip(("left", "right"), self.children_ids)
        }
        parent = plan.parent_of(node.id)
        self.parent_actor = actor_name_of(parent.id) if parent else None

        st = program.state_type(node.state_type)
        self.update = st.update
        if not self.is_leaf:
            left, right = node.children
            self.join = program.join_for(
                left.state_type, right.state_type, node.state_type
            )
            self.fork = program.fork_for(
                node.state_type, left.state_type, right.state_type
            )
            self.pred_left = self._subtree_pred(left)
            self.pred_right = self._subtree_pred(right)
        else:
            self.join = self.fork = None  # type: ignore[assignment]
            self.pred_left = self.pred_right = None  # type: ignore[assignment]

        # Leaves hold state between synchronizations; internal nodes
        # hold it only transiently during a join.
        self.state: Any = None
        self.has_state = self.is_leaf

        self.pending: Deque[Buffered] = deque()
        self.blocked = False
        self._join_seq = 0
        self._current_join: Optional[Tuple[Tuple[str, int], Any, Dict[str, Any]]] = None
        self._absorb_restore: Optional[Tuple[str, int]] = None  # sub req to re-fork
        self._last_relayed: Dict[ImplTag, Any] = {}
        # Released-but-not-yet-dispatched items per tag: while any are
        # in flight we must not relay that tag's frontier (a pending
        # synchronizing event still has to reach the children as a
        # join request with a key below the timer).
        self._inflight: Dict[ImplTag, int] = {}

    # -- helpers -------------------------------------------------------------
    def _subtree_pred(self, child: PlanNode) -> TagPredicate:
        tags = {t.tag for t in self.plan.subtree_itags(child.id)}
        return self.program.true_pred().restrict(tags)

    #: Flumina's per-event CPU multiplier relative to the bare update:
    #: the mailbox's selective-reordering bookkeeping (buffer insert,
    #: timer updates, cascade checks) runs on every event.  Calibrated
    #: so Flumina's absolute throughput sits below the record engines,
    #: as in the paper (Figures 4 vs 8 share no axis for this reason).
    MAILBOX_OVERHEAD = 1.8

    def service_time(self, msg: Any) -> float:
        p = self.system.params
        if isinstance(msg, HeartbeatMsg):
            return p.recv_overhead_ms * 0.5
        return p.cpu_per_event_ms * self.MAILBOX_OVERHEAD

    # -- actor entry point -----------------------------------------------------
    def handle(self, msg: Any, sender: Optional[str]) -> None:
        if self.crashed:
            return  # fail-stop: messages to a dead node are lost
        try:
            if type(msg) is EventRun:
                # The simulator models per-event cost; expand runs at
                # the door instead of threading them through its
                # instrumented state machine.
                for e in msg.events():
                    self.handle(EventMsg(e), sender)
                return
            if isinstance(msg, EventMsg):
                released = self.mailbox.insert(msg.event.itag, msg.event.order_key, msg)
                self._enqueue(released)
            elif isinstance(msg, HeartbeatMsg):
                if self.faults is not None and self.faults.should_drop_heartbeat(msg.key):
                    return
                released = self.mailbox.advance(msg.itag, msg.key)
                self._enqueue(released)
            elif isinstance(msg, JoinRequest):
                released = self.mailbox.insert(msg.itag, msg.key, msg)
                self._enqueue(released)
            elif isinstance(msg, JoinResponse):
                self._on_join_response(msg)
            elif isinstance(msg, ForkStateMsg):
                self._on_fork_state(msg)
            else:
                raise RuntimeFault(f"worker {self.name} got unknown message {msg!r}")
            self._drain()
            self._relay_frontiers()
        except WorkerCrash as crash:
            # Events processed before the crash already queued their
            # sends in the outbox; those still depart (they happened
            # before the failure).  The triggering event did not.
            self.crashed = True
            self.collector.crashes.append(crash.record)
        except QuiesceSignal as sig:
            # Planned stop for reconfiguration: the triggering event IS
            # fully processed (outputs recorded, snapshot captured);
            # only the fork back down was withheld.  The actor goes
            # silent like a fail-stop — the driver restarts the cluster
            # on the migrated plan.
            self.crashed = True
            self.collector.quiesce = sig.record

    # -- queue management ---------------------------------------------------------
    def _enqueue(self, released: List[Buffered]) -> None:
        for b in released:
            self._inflight[b.itag] = self._inflight.get(b.itag, 0) + 1
        self.pending.extend(released)

    def _drain(self) -> None:
        while self.pending and not self.blocked:
            buffered = self.pending.popleft()
            # Dispatch makes the item visible downstream (join requests
            # enter the outbox before any later frontier heartbeat), so
            # the tag may be relayed again after this point.
            self._inflight[buffered.itag] -= 1
            item = buffered.item
            if isinstance(item, EventMsg):
                self._process_event(item.event)
            elif isinstance(item, JoinRequest):
                self._process_join_request(item)
            else:  # pragma: no cover - defensive
                raise RuntimeFault(f"unexpected buffered item {item!r}")

    # -- event processing -----------------------------------------------------------
    def _process_event(self, event: Event) -> None:
        if self.faults is not None:
            # May raise WorkerCrash (fail-stop at the event boundary).
            self.faults.note_event(event.ts)
        self.collector.events_processed += 1
        if self.collector.track_event_latency:
            self.collector.event_latencies.append(self.now - event.ts)
        if self.is_leaf:
            if not self.has_state:
                raise RuntimeFault(
                    f"leaf {self.name} processing event while absorbed"
                )
            self.state, outs = self.update(self.state, event)
            for out in outs:
                self.collector.record_output(out, self.now, event.ts, key=event.order_key)
        else:
            self._start_join(("event", event))

    def _process_join_request(self, req: JoinRequest) -> None:
        if self.is_leaf:
            if not self.has_state:
                raise RuntimeFault(f"leaf {self.name} double-absorbed")
            size = self.state_size(self.state)
            self.send(
                req.reply_to,
                JoinResponse(req.req_id, req.side, self.state, size, self._backlog()),
                state_size=size,
            )
            self.state = None
            self.has_state = False
            self.blocked = True
            self._absorb_restore = None
        else:
            self._start_join(("parent", req))

    def _backlog(self) -> int:
        """Queue depth at this worker: buffered + released-but-pending
        mailbox items (the load signal piggybacked on JoinResponse)."""
        return self.mailbox.buffered_count() + len(self.pending)

    # -- join protocol ------------------------------------------------------------
    def _start_join(self, ctx: Tuple[str, Any]) -> None:
        self._join_seq += 1
        req_id = (self.name, self._join_seq)
        if ctx[0] == "event":
            itag, key = ctx[1].itag, ctx[1].order_key
        else:
            itag, key = ctx[1].itag, ctx[1].key
        for side in ("left", "right"):
            self.send(
                self.child_actor[side],
                JoinRequest(req_id, itag, key, self.name, side),
            )
        self.blocked = True
        self._current_join = (req_id, ctx, {})

    def _on_join_response(self, msg: JoinResponse) -> None:
        if self._current_join is None or self._current_join[0] != msg.req_id:
            raise RuntimeFault(f"{self.name}: unexpected join response {msg.req_id}")
        req_id, ctx, states = self._current_join
        states[msg.side] = msg
        if len(states) < 2:
            return
        joined = self.join(states["left"].state, states["right"].state)
        subtree_backlog = states["left"].backlog + states["right"].backlog
        self.collector.record_join(self.name)
        self._current_join = None
        if ctx[0] == "event":
            event: Event = ctx[1]
            self.collector.events_processed += 1
            if self.collector.track_event_latency:
                self.collector.event_latencies.append(self.now - event.ts)
            joined, outs = self.update(joined, event)
            for out in outs:
                self.collector.record_output(out, self.now, event.ts, key=event.order_key)
            if (
                self.is_root
                and self.checkpoint_predicate is not None
                and self.checkpoint_predicate(event, len(self.collector.checkpoints))
            ):
                # Appendix D.2: the root's joined state *is* a
                # consistent snapshot of the distributed state.
                self.collector.checkpoints.append(
                    Checkpoint(event.order_key, event.ts, joined)
                )
            if self.is_root and self.reconfig is not None:
                # Elastic reconfiguration hook (may raise QuiesceSignal
                # — caught in handle(); the fork below never happens).
                self.reconfig.maybe_quiesce(
                    event, subtree_backlog + self._backlog(), joined
                )
            self._fork_down(req_id, joined)
            self.blocked = False
        else:
            req: JoinRequest = ctx[1]
            size = self.state_size(joined)
            self.send(
                req.reply_to,
                JoinResponse(
                    req.req_id,
                    req.side,
                    joined,
                    size,
                    subtree_backlog + self._backlog(),
                ),
                state_size=size,
            )
            # Stay blocked ("absorbed"): our subtree has no state until
            # the parent's ForkStateMsg arrives; remember our own
            # request id so we can re-fork to our children then.
            self._absorb_restore = req_id

    def _on_fork_state(self, msg: ForkStateMsg) -> None:
        if self.is_leaf:
            self.state = msg.state
            self.has_state = True
            self.blocked = False
        else:
            sub_req = self._absorb_restore
            if sub_req is None:
                raise RuntimeFault(f"{self.name}: fork state without absorption")
            self._absorb_restore = None
            self._fork_down(sub_req, msg.state)
            self.blocked = False

    def _fork_down(self, req_id: Tuple[str, int], state: Any) -> None:
        s_left, s_right = self.fork(state, self.pred_left, self.pred_right)
        for side, s in (("left", s_left), ("right", s_right)):
            size = self.state_size(s)
            self.send(
                self.child_actor[side],
                ForkStateMsg(req_id, s, size),
                state_size=size,
            )

    # -- heartbeat relay ------------------------------------------------------------
    def _relay_frontiers(self) -> None:
        """Relay progress for every known tag whose buffer is empty.

        Safe because a tag with an empty local buffer cannot generate a
        join request with a key below its timer (arrivals are monotone
        per tag)."""
        if self.is_leaf:
            return
        for itag in self.mailbox.itags:
            if self._inflight.get(itag, 0) > 0:
                continue
            frontier = self.mailbox.frontier(itag)
            if frontier is None or frontier[0] == float("-inf"):
                continue
            last = self._last_relayed.get(itag)
            if last is not None and last >= frontier:
                continue
            self._last_relayed[itag] = frontier
            hb = HeartbeatMsg(itag, frontier)
            for side in self.child_actor:
                self.send(self.child_actor[side], hb)
