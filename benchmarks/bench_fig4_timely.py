"""Figure 4 (bottom): Timely max throughput vs parallelism, including
the manual page-view variant.

Paper shape: absolute throughput far above the record-at-a-time engines
(epoch batching); Event Windowing ~8x; Fraud Detection scales via the
feedback loop (~6x); automatic Page-View stays flat at the hot-key
capacity while Page View (M) — broadcast + hard-coded partition filter,
sacrificing PIP2 — keeps scaling.
"""

from conftest import parallelism_levels

from repro.bench import experiments as ex
from repro.bench import publish, render_table
from repro.bench.harness import speedup


def test_fig4_timely(benchmark):
    data = benchmark.pedantic(
        lambda: ex.figure4_timely(parallelism_levels()), rounds=1, iterations=1
    )
    xs = [pt.parallelism for pt in next(iter(data.values()))]
    series = {
        app: [pt.max_throughput_per_ms for pt in pts] for app, pts in data.items()
    }
    text = render_table(
        "Figure 4 (bottom) - Timely: max throughput (events/ms) vs parallelism",
        "parallelism",
        xs,
        series,
        note=(
            "paper shape: batching -> higher absolutes; Event Win. ~8x; "
            "Fraud scales via feedback; Page View flat vs Page View (M) scaling"
        ),
    )
    publish("fig4_timely", text)

    sp = {app: dict(speedup(pts)) for app, pts in data.items()}
    assert sp["Event Win."][12] > 5.0
    assert sp["Fraud Dec."][12] > 4.0  # the feedback loop parallelizes fraud
    # Auto page-view saturates at hot-key capacity...
    pv = {pt.parallelism: pt.max_throughput_per_ms for pt in data["Page View"]}
    pvm = {pt.parallelism: pt.max_throughput_per_ms for pt in data["Page View (M)"]}
    assert pv[max(xs)] < 1.5 * pv[4]
    # ...while the manual variant keeps scaling past it.
    assert pvm[12] > 1.8 * pv[12]

    # Batching advantage: Timely's 12-node event-window throughput beats
    # the Flink-like engine's (cross-engine absolute comparison is only
    # qualitative, as in the paper).
    from repro.bench.harness import max_throughput

    flink_ew12 = max_throughput(ex.flink_event_window(12), **ex.SWEEP).max_throughput
    assert pvm[12] > 0 and dict(
        (pt.parallelism, pt.max_throughput_per_ms) for pt in data["Event Win."]
    )[12] > flink_ew12
