"""Recovery overhead: the wall-clock cost of surviving a worker crash
via Appendix-D.2 checkpoints (restore the last root-join snapshot,
replay the input suffix) on the real substrates.

Not a paper artifact — the paper argues the snapshots are free but
never measures recovery; this table quantifies restore+replay cost so
regressions in the fault path show up as numbers, not just test
failures.  Outputs of the faulty run are multiset-verified against the
clean run, so the overhead ratio can never be bought by dropping work.
"""

from conftest import quick

from repro.apps import value_barrier as vb
from repro.bench import (
    BenchConfig,
    bench_record,
    measure_recovery_overhead,
    publish,
    publish_json,
    render_table,
)
from repro.runtime import CrashFault, FaultPlan


def _case(n_value_streams: int, values_per_barrier: int, n_barriers: int):
    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=n_value_streams,
        values_per_barrier=values_per_barrier,
        n_barriers=n_barriers,
    )
    streams = vb.make_streams(wl)
    plan = vb.make_plan(prog, wl)
    return prog, streams, plan


def test_recovery_overhead_by_backend(benchmark):
    QUICK = quick()
    prog, streams, plan = _case(
        n_value_streams=2 if QUICK else 4,
        values_per_barrier=40 if QUICK else 200,
        n_barriers=3 if QUICK else 6,
    )
    # Crash one leaf right after the second barrier: one checkpoint to
    # restore, most of the input left to replay — the expensive case.
    barrier2 = streams[-1].events[1].ts + 0.01
    crashed_leaf = plan.leaves()[0].id

    def fault_plan_factory():
        return FaultPlan(CrashFault(crashed_leaf, at_ts=barrier2))

    def run():
        # .detail: the RecoveryOverheadPoint (ratio, replay counts);
        # the common BenchResult shape carries the raw wall points.
        return {
            backend: measure_recovery_overhead(
                prog,
                plan,
                streams,
                backend=backend,
                fault_plan_factory=fault_plan_factory,
                config=BenchConfig(repeats=1 if QUICK else 2),
            ).detail
            for backend in ("threaded", "process")
        }

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    backends = list(points)
    text = render_table(
        "Crash-recovery overhead (checkpoint restore + suffix replay)",
        "backend",
        backends,
        {
            "clean s": [points[b].clean_wall_s for b in backends],
            "faulty s": [points[b].faulty_wall_s for b in backends],
            "overhead x": [points[b].overhead_ratio for b in backends],
            "attempts": [points[b].attempts for b in backends],
            "replayed ev": [points[b].replayed_events for b in backends],
        },
        note=(
            f"1 leaf crash after barrier 2; checkpoints at every root join; "
            f"outputs verified equal: "
            f"{all(points[b].outputs_equal for b in backends)}"
        ),
    )
    publish("recovery_overhead", text)
    publish_json(
        "recovery_overhead",
        bench_record(
            "recovery_overhead",
            config={"quick": QUICK, "crashed_leaf": crashed_leaf},
            metrics={
                b: {
                    "clean_wall_s": round(points[b].clean_wall_s, 4),
                    "faulty_wall_s": round(points[b].faulty_wall_s, 4),
                    "overhead_ratio": round(points[b].overhead_ratio, 3),
                    "replayed_events": points[b].replayed_events,
                }
                for b in backends
            },
        ),
    )

    for b in backends:
        assert points[b].outputs_equal, f"{b}: faulty run diverged from clean run"
        assert points[b].attempts == 2
        assert points[b].crashes == 1
