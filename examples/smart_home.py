#!/usr/bin/env python3
"""Case study A.2: DEBS'14 smart-home power prediction.

Predicts next-timeslice load per plug / household / house using the
current-slice average blended with the historic slice-of-day average —
with end-of-timeslice synchronization over house-partitioned state, and
checkpointing at every root join (Appendix D.2) thrown in.

Run:  python examples/smart_home.py
"""

from collections import Counter

from repro.apps import smarthome as sh
from repro.runtime import (
    FluminaRuntime,
    every_root_join,
    run_sequential_reference,
)
from repro.sim import Topology

N_HOUSES = 6


def main() -> None:
    program = sh.make_program(N_HOUSES)
    houses, ticks, tick_itag = sh.synthetic_plug_load(
        n_houses=N_HOUSES, measurements_per_slice=120, n_slices=4, rate_per_ms=30.0
    )
    plan = sh.make_plan(program, houses, tick_itag)
    print("plan: end-of-timeslice at the root, one leaf per house")
    print(plan.pretty())

    topo = Topology.cluster(N_HOUSES)
    runtime = FluminaRuntime(
        program,
        plan,
        topology=topo,
        checkpoint_predicate=every_root_join(),
        track_event_latency=True,
    )
    hosts = {itag: runtime.plan.owner_of(itag).host for itag in houses}
    streams = sh.make_streams(
        houses, ticks, tick_itag, heartbeat_interval=0.5, house_hosts=hosts
    )
    result = runtime.run(streams)

    got = Counter(map(repr, result.output_values()))
    want = Counter(map(repr, run_sequential_reference(program, streams)))
    ok = got == want
    print(f"\noutputs match sequential spec: {ok}")

    house_preds = [
        (v[1], v[2]) for v, _, _ in result.outputs
        if v[0] == "prediction" and v[1][0] == "house"
    ]
    print("\nsample house-level predictions (W):")
    for gkey, pred in house_preds[: N_HOUSES]:
        print(f"  house {gkey[1]}: {pred:8.2f}")

    p10, p50, p90 = result.event_latency_percentiles((10, 50, 90))
    total_bytes = result.events_in * topo.params.bytes_per_event
    print(
        f"\nlatency p10/p50/p90 = {p10:.2f}/{p50:.2f}/{p90:.2f} ms, "
        f"throughput {result.throughput_events_per_ms:.0f} events/ms"
    )
    print(
        f"network load: {result.network.remote_bytes / 1000:.0f} KB of "
        f"{total_bytes / 1000:.0f} KB processed (edge processing)"
    )
    print(f"checkpoints taken at root joins: {len(result.checkpoints)}")
    if not ok:
        raise SystemExit(1)  # checked, not asserted — and honest to $?


if __name__ == "__main__":
    main()
