"""Constructors for synchronization plans.

The framework derives many P-valid plans from one program; these
builders cover the shapes used in the paper's evaluation:

* :func:`sequential_plan` — a single worker (the no-parallelism plan);
* :func:`root_and_leaves_plan` — synchronizing tags at the root, a
  balanced binary tree of leaves over independent groups (the
  event-windowing / fraud-detection shape, Figure 3 right subtree);
* :func:`forest_plan` — a neutral root over per-key subtrees (the
  page-view shape: "a forest containing a tree for each key");
* :func:`random_valid_plan` — a randomized generator of P-valid plans,
  used by the property tests to check that runtime correctness is
  independent of the plan chosen (Theorem 3.5);
* :func:`chain_plan` — a degenerate left-deep tree used by the plan
  shape ablation.

All builders assign every implementation tag to exactly one worker
(a stronger condition than V2 requires, matching the paper's figures)
and produce plans over a single state type by default.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.errors import PlanError
from ..core.events import ImplTag
from ..core.program import DGSProgram
from .plan import PlanNode, SyncPlan

ItagGroup = FrozenSet[ImplTag]


class _Ids:
    """Sequential worker-id allocator (w1, w2, ... as in Figure 3)."""

    def __init__(self, prefix: str = "w") -> None:
        self.prefix = prefix
        self.n = 0

    def next(self) -> str:
        self.n += 1
        return f"{self.prefix}{self.n}"


def sequential_plan(
    program: DGSProgram,
    itags: Iterable[ImplTag],
    *,
    host: Optional[str] = None,
    state_type: Optional[str] = None,
) -> SyncPlan:
    """The trivial plan: one worker responsible for everything."""
    st = state_type or program.initial_type
    root = PlanNode("w1", st, frozenset(itags), host=host)
    return SyncPlan(root)


def _balanced(
    leaves: List[PlanNode], ids: _Ids, state_type: str
) -> PlanNode:
    """Combine leaves into a balanced binary tree with empty-itag
    internal nodes."""
    if not leaves:
        raise PlanError("cannot build a tree with no leaves")
    level = leaves
    while len(level) > 1:
        nxt: List[PlanNode] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(
                PlanNode(
                    ids.next(), state_type, frozenset(), (level[i], level[i + 1])
                )
            )
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _chain(leaves: List[PlanNode], ids: _Ids, state_type: str) -> PlanNode:
    """Combine leaves into a left-deep chain (worst-case depth)."""
    if not leaves:
        raise PlanError("cannot build a tree with no leaves")
    node = leaves[0]
    for leaf in leaves[1:]:
        node = PlanNode(ids.next(), state_type, frozenset(), (node, leaf))
    return node


def root_and_leaves_plan(
    program: DGSProgram,
    root_itags: Iterable[ImplTag],
    leaf_groups: Sequence[Iterable[ImplTag]],
    *,
    state_type: Optional[str] = None,
    shape: str = "balanced",
) -> SyncPlan:
    """Synchronizing tags at the root; one leaf per group underneath.

    With a single leaf group the root still gets the group as its own
    child?  No — one group means the plan degenerates to a root with
    that group merged in (a sequential plan), because a binary tree
    cannot have one child.
    """
    st = state_type or program.initial_type
    ids = _Ids()
    root_id = ids.next()
    leaves = [
        PlanNode(ids.next(), st, frozenset(group)) for group in leaf_groups
    ]
    if not leaves:
        return SyncPlan(PlanNode(root_id, st, frozenset(root_itags)))
    if len(leaves) == 1:
        merged = frozenset(root_itags) | leaves[0].itags
        return SyncPlan(PlanNode(root_id, st, merged))
    if shape == "balanced":
        subtree = _balanced(leaves, ids, st)
    elif shape == "chain":
        subtree = _chain(leaves, ids, st)
    else:
        raise PlanError(f"unknown shape {shape!r}")
    # The subtree combiner returns a single node; attach the root tags
    # at the top.  If the combined subtree root is itself an internal
    # node with no itags, reuse it as the root to avoid a useless level.
    if not subtree.is_leaf and not subtree.itags:
        root = PlanNode(root_id, st, frozenset(root_itags), subtree.children)
    else:
        # Root must have two children: pair the subtree with an empty
        # sibling leaf only if root tags exist; otherwise subtree is it.
        rt = frozenset(root_itags)
        if not rt:
            return SyncPlan(subtree)
        left, right = _split_node(subtree)
        root = PlanNode(root_id, st, rt, (left, right))
    return SyncPlan(root)


def _split_node(node: PlanNode) -> Tuple[PlanNode, PlanNode]:
    if node.is_leaf:
        raise PlanError("cannot attach root tags above a single leaf")
    return node.children  # type: ignore[return-value]


def chain_plan(
    program: DGSProgram,
    root_itags: Iterable[ImplTag],
    leaf_groups: Sequence[Iterable[ImplTag]],
    *,
    state_type: Optional[str] = None,
) -> SyncPlan:
    return root_and_leaves_plan(
        program, root_itags, leaf_groups, state_type=state_type, shape="chain"
    )


def forest_plan(
    program: DGSProgram,
    subtrees: Sequence[Tuple[Iterable[ImplTag], Sequence[Iterable[ImplTag]]]],
    *,
    state_type: Optional[str] = None,
) -> SyncPlan:
    """A neutral (empty-itag) root over independent per-key subtrees.

    ``subtrees`` is a list of ``(root_itags, leaf_groups)`` pairs, one
    per key.  Keys must be mutually independent for the result to be
    P-valid (checked by the caller via ``assert_p_valid``).
    """
    st = state_type or program.initial_type
    ids = _Ids()
    ids.next()  # reserve w1 for the forest root
    roots: List[PlanNode] = []
    for root_itags, leaf_groups in subtrees:
        leaves = [PlanNode(ids.next(), st, frozenset(g)) for g in leaf_groups]
        rt = frozenset(root_itags)
        if not leaves:
            roots.append(PlanNode(ids.next(), st, rt))
        elif len(leaves) == 1:
            roots.append(PlanNode(ids.next(), st, rt | leaves[0].itags))
        else:
            sub = _balanced(leaves, ids, st)
            if not sub.is_leaf and not sub.itags:
                roots.append(PlanNode(ids.next(), st, rt, sub.children))
            else:
                roots.append(PlanNode(ids.next(), st, rt | sub.itags))
    if not roots:
        raise PlanError("forest with no subtrees")
    if len(roots) == 1:
        return SyncPlan(roots[0])
    top = _balanced(roots, ids, st)
    if not top.is_leaf and not top.itags:
        top = PlanNode("w1", st, frozenset(), top.children)
    return SyncPlan(top)


def random_valid_plan(
    program: DGSProgram,
    itags: Iterable[ImplTag],
    rng: random.Random,
    *,
    state_type: Optional[str] = None,
    max_leaf_size: int = 3,
) -> SyncPlan:
    """Generate a random P-valid plan assigning each itag exactly once.

    Recursive strategy mirroring the optimizer's structure: if the itag
    dependence graph is disconnected, split components between the two
    children; otherwise move tags up to the local root until the rest
    disconnects (or give up and make a leaf).
    """
    st = state_type or program.initial_type
    ids = _Ids()
    all_itags = list(itags)

    def build(group: List[ImplTag]) -> PlanNode:
        if len(group) <= 1 or (
            len(group) <= max_leaf_size and rng.random() < 0.4
        ):
            return PlanNode(ids.next(), st, frozenset(group))
        g = program.depends.itag_graph(group)
        comps = [sorted(c, key=repr) for c in nx.connected_components(g)]
        root_tags: List[ImplTag] = []
        remaining = sorted(group, key=repr)
        while len(comps) < 2 and remaining:
            # Move a random itag up to the root until the rest splits.
            victim = remaining.pop(rng.randrange(len(remaining)))
            root_tags.append(victim)
            if not remaining:
                break
            g = program.depends.itag_graph(remaining)
            comps = [sorted(c, key=repr) for c in nx.connected_components(g)]
        if len(comps) < 2:
            return PlanNode(ids.next(), st, frozenset(group))
        rng.shuffle(comps)
        cut = rng.randrange(1, len(comps))
        left_tags = [t for c in comps[:cut] for t in c]
        right_tags = [t for c in comps[cut:] for t in c]
        node_id = ids.next()
        left = build(left_tags)
        right = build(right_tags)
        return PlanNode(node_id, st, frozenset(root_tags), (left, right))

    return SyncPlan(build(all_itags))


def sharded_groups(
    groups: Sequence[Iterable[ImplTag]], n_shards: int
) -> List[List[ImplTag]]:
    """Deal per-key itag groups round-robin into ``n_shards`` leaf
    groups (deterministic: groups are taken in the order given).

    This is the static counterpart of
    :func:`~repro.plans.morph.repartition_plan`'s component dealing: a
    plan built from the sharded groups re-shards under live
    reconfiguration to any width in ``[1, len(groups)]`` because each
    original group stays a dependence component of its own.
    """
    if n_shards < 1:
        raise PlanError(f"cannot shard into {n_shards} groups")
    materialized = [list(g) for g in groups]
    n = min(n_shards, len(materialized)) or 1
    buckets: List[List[ImplTag]] = [[] for _ in range(n)]
    for i, group in enumerate(materialized):
        buckets[i % n].extend(group)
    return [b for b in buckets if b]


def rooted_shards_plan(
    program: DGSProgram,
    root_itags: Iterable[ImplTag],
    key_groups: Sequence[Iterable[ImplTag]],
    *,
    n_shards: Optional[int] = None,
    state_type: Optional[str] = None,
    shape: str = "balanced",
) -> SyncPlan:
    """Synchronizing tags at the root over ``n_shards`` leaves, each
    holding a round-robin share of the per-key groups (default: one
    leaf per group — the widest rooted instance).

    The shape every re-shardable app family uses: because the root
    itags synchronize globally and each key group is an independent
    dependence component, the resulting plan composes with checkpoint
    recovery and live reconfiguration (morphing regroups the same
    components at a different width).
    """
    groups = sharded_groups(
        key_groups, len(key_groups) if n_shards is None else n_shards
    )
    return root_and_leaves_plan(
        program, root_itags, groups, state_type=state_type, shape=shape
    )


# -- host placement helpers --------------------------------------------------

def assign_hosts_round_robin(plan: SyncPlan, hosts: Sequence[str]) -> SyncPlan:
    """Place leaves round-robin across hosts; internal nodes go to the
    host of their first-leaf descendant (keeping parents near one
    child, which is what the communication optimizer also does)."""
    if not hosts:
        raise PlanError("no hosts to assign")
    leaf_hosts: Dict[str, str] = {}
    for i, leaf in enumerate(plan.leaves()):
        leaf_hosts[leaf.id] = hosts[i % len(hosts)]

    def rebuild(node: PlanNode) -> PlanNode:
        if node.is_leaf:
            return node.with_host(leaf_hosts[node.id])
        children = tuple(rebuild(c) for c in node.children)
        return PlanNode(node.id, node.state_type, node.itags, children, children[0].host)

    return SyncPlan(rebuild(plan.root))


def map_hosts(plan: SyncPlan, mapping: Dict[str, str]) -> SyncPlan:
    """Explicitly place workers by id; ids absent from the mapping keep
    their current host."""

    def rebuild(node: PlanNode) -> PlanNode:
        children = tuple(rebuild(c) for c in node.children)
        host = mapping.get(node.id, node.host)
        return PlanNode(node.id, node.state_type, node.itags, children, host)

    return SyncPlan(rebuild(plan.root))
