"""Actor layer on top of the simulation kernel.

Actors are named, live on a host, and handle one message at a time;
hosts are serial (1-core) resources, so all actors co-located on a host
share its CPU in FIFO order.  The execution model:

* a message delivered at time ``t`` claims ``service_time(msg) [+
  remote receive overhead] [+ per-send overhead]`` of CPU on the
  destination host, starting no earlier than ``t``;
* the handler runs atomically; its effects (sends, outputs) are
  timestamped at the handler's *completion* time;
* per-pair message delivery is FIFO (constant per-pair latency), which
  is the Erlang delivery guarantee the paper's proof assumes
  (Appendix C assumption 4).

This gives deterministic, reproducible simulations: same inputs, same
schedule, same statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .core import Simulator
from .network import Host, Topology
from .params import SimParams


@dataclass
class OutputRecord:
    """An output emitted by an actor, with emission time."""

    time: float
    actor: str
    value: Any


class Actor:
    """Base class for simulated actors.

    Subclasses override :meth:`handle` (and optionally
    :meth:`service_time` for message-dependent CPU costs).
    """

    def __init__(self, name: str, host: str) -> None:
        self.name = name
        self.host_name = host
        self.system: "ActorSystem" = None  # type: ignore[assignment]
        self.now: float = 0.0  # completion time of the current handler
        self._outbox: List[Tuple[str, Any, int, float]] = []
        self.messages_handled = 0

    # -- to override -----------------------------------------------------
    def handle(self, msg: Any, sender: Optional[str]) -> None:
        raise NotImplementedError

    def service_time(self, msg: Any) -> float:
        """CPU cost of handling ``msg``; defaults to one event's cost."""
        return self.system.params.cpu_per_event_ms

    # -- actions available inside handle ---------------------------------
    def send(self, dst: str, msg: Any, *, units: int = 1, state_size: float = 0.0) -> None:
        """Queue a message to actor ``dst``; departs at handler completion.

        ``units`` counts the application events carried (for byte
        accounting and batched delivery); ``state_size`` adds state
        transfer cost to the receiver (fork/join state movement).
        """
        self._outbox.append((dst, msg, units, state_size))

    def emit(self, value: Any) -> None:
        self.system.record_output(OutputRecord(self.now, self.name, value))

    def set_timer(self, delay: float, key: Any = None) -> None:
        """Schedule :meth:`on_timer` to fire ``delay`` from now (no CPU
        cost is charged for the timer interrupt itself)."""
        self.system.sim.schedule(delay, lambda: self.system._deliver_timer(self, key))

    def on_timer(self, key: Any) -> None:  # pragma: no cover - default no-op
        pass

    @property
    def host(self) -> Host:
        return self.system.topology.host(self.host_name)


class ActorSystem:
    """Registry + message router binding actors to the simulator."""

    def __init__(self, sim: Simulator, topology: Topology) -> None:
        self.sim = sim
        self.topology = topology
        self.params: SimParams = topology.params
        self.actors: Dict[str, Actor] = {}
        self.outputs: List[OutputRecord] = []
        self.messages_delivered = 0
        #: Latest handler completion time; the simulator clock only
        #: advances on *scheduled* events, so a busy tail of handlers
        #: that send nothing would otherwise be invisible in makespans.
        self.last_completion = 0.0

    def add(self, actor: Actor) -> Actor:
        if actor.name in self.actors:
            raise ValueError(f"duplicate actor name {actor.name!r}")
        if actor.host_name not in self.topology.hosts:
            raise ValueError(f"unknown host {actor.host_name!r}")
        actor.system = self
        self.actors[actor.name] = actor
        return actor

    def record_output(self, rec: OutputRecord) -> None:
        self.outputs.append(rec)

    # -- message transport -------------------------------------------------
    def inject(
        self,
        dst: str,
        msg: Any,
        *,
        at: float,
        from_host: Optional[str] = None,
        units: int = 1,
    ) -> None:
        """Schedule an external event (e.g. from a data source) to
        arrive at actor ``dst``.  ``at`` is the departure time at the
        source; network latency from ``from_host`` (default: remote)
        is added on top."""
        actor = self.actors[dst]
        src_host = from_host if from_host is not None else "__external__"
        latency = (
            self.topology.latency(src_host, actor.host_name)
            if from_host is not None
            else self.params.remote_latency_ms
        )
        nbytes = units * self.params.bytes_per_event
        self.topology.record_message(src_host, actor.host_name, nbytes)
        remote = src_host != actor.host_name
        self.sim.schedule_at(
            at + latency, lambda: self._deliver(actor, msg, None, units, 0.0, remote)
        )

    def _send_from(
        self, src: Actor, dst: str, msg: Any, units: int, state_size: float
    ) -> None:
        actor = self.actors[dst]
        latency = self.topology.latency(src.host_name, actor.host_name)
        remote = src.host_name != actor.host_name
        nbytes = units * self.params.bytes_per_event + int(
            state_size * self.params.bytes_per_state_unit
        )
        self.topology.record_message(src.host_name, actor.host_name, nbytes)
        depart = self.sim.now
        self.sim.schedule_at(
            depart + latency,
            lambda: self._deliver(actor, msg, src.name, units, state_size, remote),
        )

    def _deliver(
        self,
        actor: Actor,
        msg: Any,
        sender: Optional[str],
        units: int,
        state_size: float,
        remote: bool,
    ) -> None:
        """Delivery event: reserve CPU, run the handler, ship outbox."""
        self.messages_delivered += 1
        cost = actor.service_time(msg)
        if remote:
            cost += self.params.recv_overhead_ms
        if state_size:
            cost += state_size * self.params.state_transfer_ms_per_unit
        host = actor.host
        start_guard = self.sim.now
        completion = host.reserve(start_guard, cost)
        actor.now = completion
        actor.messages_handled += 1
        actor._outbox = []
        actor.handle(msg, sender)
        outbox = actor._outbox
        actor._outbox = []
        if outbox:
            # Sends are part of the handler's work: charge send
            # overhead serially after the handler body.
            send_cost = self.params.send_overhead_ms * len(outbox)
            completion = host.reserve(completion, send_cost)
            actor.now = completion
        if completion > self.last_completion:
            self.last_completion = completion
        # Effects depart at completion; run them at that simulated time.
        if outbox:
            def ship() -> None:
                for dst, m, u, ssz in outbox:
                    self._send_from(actor, dst, m, u, ssz)

            self.sim.schedule_at(completion, ship)

    def _deliver_timer(self, actor: Actor, key: Any) -> None:
        actor.now = self.sim.now
        actor._outbox = []
        actor.on_timer(key)
        outbox = actor._outbox
        actor._outbox = []
        for dst, m, u, ssz in outbox:
            self._send_from(actor, dst, m, u, ssz)

    # -- measurement helpers -------------------------------------------------
    def output_values(self) -> List[Any]:
        return [rec.value for rec in self.outputs]

    def run(self, **kwargs) -> float:
        return self.sim.run(**kwargs)
