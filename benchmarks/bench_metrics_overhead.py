"""Metrics-plane overhead guard: the per-worker counters and latency
histograms must be close to free on the hot path.

The metrics plane samples inside ``WorkerCore`` (every event, every
join) and inside the transport flush path, and piggybacks snapshots on
join responses — all places where a careless implementation would tax
the paper's throughput claims.  This bench runs the communication-bound
value-barrier workload (trivial updates, so wall clock is dominated by
message passing — the worst case for instrumentation overhead) with
metrics off and on, and asserts the metrics-on throughput stays within
5% of metrics-off on multi-core full-size runs.

Writes ``BENCH_metrics_overhead.json`` (ungated: the ratio hovers at
1.0 and its noise band is wider than any drift the gate could catch;
the in-bench assertion is the guard).
"""

from conftest import quick

from repro import RunOptions, run_on_backend
from repro.apps import value_barrier as vb
from repro.bench import (
    available_cores,
    bench_record,
    publish,
    publish_json,
    render_table,
)


def _workload(QUICK: bool):
    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=2 if QUICK else 4,
        values_per_barrier=250 if QUICK else 1500,
        n_barriers=2 if QUICK else 4,
    )
    return prog, vb.make_streams(wl), vb.make_plan(prog, wl)


def test_metrics_overhead(benchmark):
    QUICK = quick()
    prog, streams, plan = _workload(QUICK)
    repeats = 2 if QUICK else 4

    def best_eps(metrics: bool) -> float:
        best = 0.0
        for _ in range(repeats):
            run = run_on_backend(
                "process",
                prog,
                plan,
                streams,
                options=RunOptions(metrics=metrics, timeout_s=60.0),
            )
            if metrics:
                assert run.metrics is not None
                assert run.metrics.merged().events_processed > 0
            eps = run.events_in / run.wall_s if run.wall_s > 0 else 0.0
            best = max(best, eps)
        return best

    def run():
        return {"off": best_eps(False), "on": best_eps(True)}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = data["on"] / data["off"] if data["off"] > 0 else float("nan")
    text = render_table(
        "Metrics-plane overhead (process backend, communication-bound)",
        "metrics",
        ["off", "on"],
        {"events/s": [data["off"], data["on"]]},
        note=(
            f"cores={available_cores()}, best-of-{repeats}; "
            f"on/off ratio {ratio:.3f}"
        ),
    )
    publish("metrics_overhead", text)
    publish_json(
        "metrics_overhead",
        bench_record(
            "metrics_overhead",
            config={"quick": QUICK, "repeats": repeats},
            metrics={
                "off_events_per_s": round(data["off"]),
                "on_events_per_s": round(data["on"]),
                "on_off_ratio": round(ratio, 4),
            },
        ),
    )

    cores = available_cores()
    if cores >= 2 and not QUICK:
        # The acceptance bar: metrics-on within 5% of metrics-off.
        # Only asserted where the measurement is signal — full-size
        # workloads on multi-core hosts (smoke sizes are a few ms of
        # compute, where process startup noise swamps a 5% band).
        assert ratio >= 0.95, (
            f"metrics plane cost {100 * (1 - ratio):.1f}% throughput "
            f"(allowed: 5%) on {cores} cores"
        )
