"""Fraud detection (paper §4.1 & Figure 13).

Input: parallel streams of integer *transactions* plus one stream of
*rules*.  On a rule: output the aggregate of transactions since the
last rule and retrain the "model" — the new model is ``(aggregate +
rule value) mod 1000``.  A transaction is flagged fraudulent when it is
congruent to the current model modulo 1000.

Same synchronization shape as event-based windowing, with the crucial
difference that each window's computation depends on the previous
window's result (the model), which is why Flink cannot parallelize it
(§4.2) while a feedback loop (Timely) or a synchronization plan can.

DGS program (Figure 13): state = (sum, model); ``fork`` hands the model
to both sides but the running sum to one; ``join`` adds sums and keeps
the left model.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..core.dependence import DependenceRelation
from ..core.events import Event
from ..core.predicates import TagPredicate
from ..core.program import DGSProgram, single_state_program
from ._cpuwork import burn
from ..data.generators import ValueBarrierWorkload, value_barrier_workload
from ..plans.generation import root_and_leaves_plan
from ..plans.plan import SyncPlan
from ..runtime.runtime import InputStream

TXN_TAG = "txn"
RULE_TAG = "rule"
TAGS = (TXN_TAG, RULE_TAG)
MODULO = 1000

State = Tuple[int, int]  # (window sum, model)


def depends_fn(t1, t2) -> bool:
    return RULE_TAG in (t1, t2)


def _update(state: State, event: Event) -> Tuple[State, List[Any]]:
    total, model = state
    if event.tag == TXN_TAG:
        value = int(event.payload)
        outs: List[Any] = []
        if value % MODULO == model:
            outs.append(("fraud", event.ts, value))
        return (total + value, model), outs
    # Rule: emit the window aggregate, retrain the model.
    rule_value = int(event.payload)
    new_model = (total + rule_value) % MODULO
    return (0, new_model), [("window_sum", event.ts, total)]


def _fork(state: State, pred1: TagPredicate, pred2: TagPredicate) -> Tuple[State, State]:
    total, model = state
    # Both sides need the model to label transactions; the sum follows
    # the rule-processing side (Figure 13 duplicates PrevBModulo).
    if RULE_TAG in pred2 and RULE_TAG not in pred1:
        return (0, model), (total, model)
    return (total, model), (0, model)


def _join(s1: State, s2: State) -> State:
    return (s1[0] + s2[0], s1[1])


def state_eq(a: State, b: State) -> bool:
    return a == b


def make_program() -> DGSProgram:
    return single_state_program(
        name="fraud-detection",
        tags=TAGS,
        depends=DependenceRelation.from_function(TAGS, depends_fn),
        init=lambda: (0, 0),
        update=_update,
        fork=_fork,
        join=_join,
    )


def make_cpu_program(spin: int) -> DGSProgram:
    """Fraud detection with ``spin`` units of CPU work per transaction
    (a stand-in for real model scoring); see
    :func:`repro.apps.value_barrier.make_cpu_program` for rationale.
    Semantics delegate to the plain ``_update``."""

    def update(state: State, event: Event) -> Tuple[State, List[Any]]:
        if event.tag == TXN_TAG:
            total, model = state
            state = (total + burn(int(event.payload), spin), model)
        return _update(state, event)

    return single_state_program(
        name=f"fraud-detection[spin={spin}]",
        tags=TAGS,
        depends=DependenceRelation.from_function(TAGS, depends_fn),
        init=lambda: (0, 0),
        update=update,
        fork=_fork,
        join=_join,
    )


def make_workload(
    *,
    n_txn_streams: int = 4,
    txns_per_rule: int = 100,
    n_rules: int = 10,
    txn_rate_per_ms: float = 10.0,
) -> ValueBarrierWorkload:
    return value_barrier_workload(
        value_tag=TXN_TAG,
        barrier_tag=RULE_TAG,
        n_value_streams=n_txn_streams,
        values_per_barrier=txns_per_rule,
        n_barriers=n_rules,
        value_rate_per_ms=txn_rate_per_ms,
        value_payload_fn=lambda i: (i * 137) % 5000,
        barrier_payload_fn=lambda k: k * 29,
    )


def make_streams(
    workload: ValueBarrierWorkload, *, heartbeat_interval: float | None = 1.0
) -> List[InputStream]:
    return [
        InputStream(itag, events, heartbeat_interval=heartbeat_interval)
        for itag, events in workload.all_streams()
    ]


def make_plan(program: DGSProgram, workload: ValueBarrierWorkload) -> SyncPlan:
    """Rules at the root, transactions at the leaves (§4.3)."""
    return root_and_leaves_plan(
        program,
        [workload.barrier_itag],
        [[itag] for itag in workload.value_streams],
    )
