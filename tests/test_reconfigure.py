"""Unit tests for the elastic-reconfiguration subsystem: plan
morphing, migration compatibility, schedules/views, the driver's
lifecycle bookkeeping, and the RunOptions plumbing."""

import pickle
import random

import pytest

from repro.apps import pageview, value_barrier as vb
from repro.core.errors import (
    NoCheckpointError,
    PlanError,
    ValidityError,
)
from repro.core.semantics import output_multiset
from repro.plans import (
    assert_reconfig_compatible,
    is_p_valid,
    max_width,
    plan_width,
    reconfig_violations,
    repartition_plan,
    narrow_plan,
    widen_plan,
)
from repro.runtime import (
    AutoScaler,
    CrashFault,
    FaultPlan,
    ReconfigPoint,
    ReconfigSchedule,
    RunOptions,
    every_root_join,
    run_on_backend,
    run_sequential_reference,
)
from repro.runtime.quiesce import (
    PointTrigger,
    QuiesceSignal,
    RootReconfigView,
    SCALE_IN,
    SCALE_OUT,
    WatermarkTrigger,
)


def vb_case(n_value_streams=4, values_per_barrier=20, n_barriers=4):
    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=n_value_streams,
        values_per_barrier=values_per_barrier,
        n_barriers=n_barriers,
    )
    return prog, vb.make_streams(wl), vb.make_plan(prog, wl)


class TestMorph:
    def test_widths(self):
        prog, _, plan = vb_case(n_value_streams=4)
        assert plan_width(plan) == 4
        assert max_width(prog, plan) == 4  # one component per value stream

    def test_repartition_is_valid_and_covers_same_itags(self):
        prog, _, plan = vb_case(n_value_streams=4)
        for n in (1, 2, 3, 4, 9):
            target = repartition_plan(prog, plan, n)
            assert is_p_valid(target, prog)
            assert target.all_itags() == plan.all_itags()
            assert plan_width(target) == min(max(n, 1), 4)

    def test_narrow_to_one_is_single_worker(self):
        prog, _, plan = vb_case(n_value_streams=3)
        seq = repartition_plan(prog, plan, 1)
        assert seq.size() == 1
        assert seq.all_itags() == plan.all_itags()

    def test_widen_and_narrow_clamp(self):
        prog, _, plan = vb_case(n_value_streams=4)
        narrow = narrow_plan(prog, plan)
        assert plan_width(narrow) == 2
        rewiden = widen_plan(prog, narrow, factor=4)
        assert plan_width(rewiden) == 4  # clamped at max useful width

    def test_morph_is_deterministic(self):
        prog, _, plan = vb_case(n_value_streams=4)
        a = repartition_plan(prog, plan, 2)
        b = repartition_plan(prog, plan, 2)
        assert a.pretty() == b.pretty()

    def test_no_synchronizing_root_is_rejected(self):
        # Two independent pages: no tag depends on the whole universe,
        # so there is no sound migration point to morph around.
        prog = pageview.make_program(2)
        wl = pageview.make_workload(
            n_pages=2, n_view_streams=2, views_per_update=5, n_updates_per_page=2
        )
        plan = pageview.make_plan(prog, wl)
        with pytest.raises(PlanError, match="synchronizing"):
            repartition_plan(prog, plan, 2)


class TestReconfigCompatibility:
    def test_morphed_plans_compatible(self):
        prog, _, plan = vb_case()
        assert reconfig_violations(plan, repartition_plan(prog, plan, 2), prog) == []

    def test_dropped_itags_flagged(self):
        prog, _, plan = vb_case(n_value_streams=4)
        smaller_prog, _, smaller = vb_case(n_value_streams=2)
        viol = reconfig_violations(plan, smaller, prog)
        assert any(v.rule == "R1" for v in viol)
        with pytest.raises(ValidityError, match="R1"):
            assert_reconfig_compatible(plan, smaller, prog)


class TestSchedulesAndTriggers:
    def test_point_validation(self):
        with pytest.raises(ValueError):
            ReconfigPoint(to_leaves=2)  # no trigger
        with pytest.raises(ValueError):
            ReconfigPoint(at_ts=1.0, after_joins=2, to_leaves=2)
        with pytest.raises(ValueError):
            ReconfigPoint(at_ts=1.0)  # no target
        with pytest.raises(ValueError):
            ReconfigPoint(after_joins=0, to_leaves=2)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            ReconfigSchedule()

    def test_autoscaler_validation_and_targets(self):
        with pytest.raises(ValueError):
            AutoScaler()
        auto = AutoScaler(high_watermark=10, low_watermark=2, factor=2, max_leaves=8)
        assert auto.target_width(SCALE_OUT, 3, ceiling=16) == 6
        assert auto.target_width(SCALE_OUT, 6, ceiling=16) == 8  # max_leaves
        assert auto.target_width(SCALE_OUT, 4, ceiling=5) == 5  # program ceiling
        assert auto.target_width(SCALE_IN, 6, ceiling=16) == 3
        assert auto.target_width(SCALE_IN, 1, ceiling=16) == 1

    def test_view_excludes_fired_points_and_disarms_noop_watermarks(self):
        sched = ReconfigSchedule(
            ReconfigPoint(after_joins=1, to_leaves=2),
            autoscaler=AutoScaler(high_watermark=5, factor=2),
        )
        view = sched.root_view("w1", width=4, ceiling=4)
        # Point armed; watermark disarmed (already at ceiling).
        assert view is not None and view._watermarks is None
        ev = type("E", (), {"ts": 1.0, "order_key": (1.0, 0, 0)})()
        with pytest.raises(QuiesceSignal) as exc:
            view.maybe_quiesce(ev, queue_depth=0, state=42)
        assert exc.value.record.point_index == 0
        # The driver tracks firings; a spent schedule yields no view.
        assert (
            sched.root_view("w1", width=4, ceiling=4, fired=frozenset({0}))
            is None
        )

    def test_wrong_direction_watermarks_disarmed(self):
        """A clamp inversion must not fire: already above max_leaves,
        a high-watermark 'scale-out' would *shrink* the plan — the
        view disarms it instead of quiescing."""
        sched = ReconfigSchedule(
            autoscaler=AutoScaler(high_watermark=1, low_watermark=0, max_leaves=4)
        )
        # width 8 > max_leaves 4: scale-out target (4) is narrower ->
        # high disarmed; scale-in (4 < 8) stays armed.
        view = sched.root_view("w1", width=8, ceiling=16)
        assert view._watermarks.high_watermark is None
        assert view._watermarks.low_watermark == 0
        # width at the floor: scale-in disarmed, scale-out armed.
        view = sched.root_view("w1", width=1, ceiling=16)
        assert view._watermarks.high_watermark == 1
        assert view._watermarks.low_watermark is None

    def test_schedules_are_reusable_pure_data(self):
        """Firing state lives in the driver, not the schedule: the same
        instance drives migrations on two different backends."""
        prog, streams, plan = vb_case(n_value_streams=4, values_per_barrier=15)
        sched = ReconfigSchedule(ReconfigPoint(after_joins=1, to_leaves=2))
        for backend in ("threaded", "sim"):
            run = run_on_backend(
                backend, prog, plan, streams,
                options=RunOptions(reconfig_schedule=sched),
            )
            assert run.reconfig.reconfigured, f"{backend}: schedule was consumed"
            assert output_multiset(run.outputs) == output_multiset(
                run_sequential_reference(prog, streams)
            )

    def test_watermark_cooldown(self):
        trig = WatermarkTrigger(high_watermark=1, cooldown_joins=3)
        assert trig.reason_for(queue_depth=100, joins_seen=2) is None
        assert trig.reason_for(queue_depth=100, joins_seen=3) == SCALE_OUT

    def test_views_and_records_are_picklable(self):
        view = RootReconfigView(
            "w1",
            [PointTrigger(0, at_ts=3.0)],
            WatermarkTrigger(high_watermark=10, low_watermark=1),
        )
        clone = pickle.loads(pickle.dumps(view))
        assert clone.worker == "w1"
        ev = type("Ev", (), {"ts": 5.0, "order_key": (5.0, 0, 0)})
        with pytest.raises(QuiesceSignal) as exc:
            clone.maybe_quiesce(ev(), queue_depth=0, state={"s": 1})
        rec = pickle.loads(pickle.dumps(exc.value.record))
        assert rec.point_index == 0 and rec.state == {"s": 1}


class TestElasticDriver:
    @pytest.mark.parametrize("backend", ["sim", "threaded", "process"])
    def test_planned_scale_out_matches_spec(self, backend):
        prog, streams, plan = vb_case(n_value_streams=4)
        narrow = repartition_plan(prog, plan, 2)
        sched = ReconfigSchedule(ReconfigPoint(after_joins=2, to_leaves=4))
        run = run_on_backend(
            backend, prog, narrow, streams,
            options=RunOptions(reconfig_schedule=sched, timeout_s=60.0),
        )
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )
        rec = run.reconfig
        assert rec.attempts == 2
        assert [s.from_leaves for s in rec.reconfigurations] == [2]
        assert [s.to_leaves for s in rec.reconfigurations] == [4]
        assert [p.leaves for p in rec.phases] == [2, 4]
        assert [plan_width(p) for p in rec.plan_history] == [2, 4]
        assert rec.reconfigurations[0].reason == "planned"

    def test_narrow_to_single_worker_completes(self):
        prog, streams, plan = vb_case(n_value_streams=3)
        sched = ReconfigSchedule(
            ReconfigPoint(after_joins=2, to_leaves=1),
            # Inert: a single worker has no root joins to quiesce at.
            ReconfigPoint(after_joins=3, to_leaves=3),
        )
        run = run_on_backend(
            "threaded", prog, plan, streams,
            options=RunOptions(reconfig_schedule=sched),
        )
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )
        assert [p.leaves for p in run.reconfig.phases] == [3, 1]

    def test_autoscaler_scales_out_under_backlog(self):
        prog, streams, plan = vb_case(n_value_streams=4, values_per_barrier=40)
        narrow = repartition_plan(prog, plan, 2)
        sched = ReconfigSchedule(
            autoscaler=AutoScaler(high_watermark=20, factor=2, max_reconfigs=2)
        )
        run = run_on_backend(
            "threaded", prog, narrow, streams,
            options=RunOptions(reconfig_schedule=sched),
        )
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )
        rec = run.reconfig
        # The threaded producers enqueue everything up-front, so the
        # first decision join sees a deep queue and must scale out.
        assert rec.reconfigured
        first = rec.reconfigurations[0]
        assert first.reason == "scale-out"
        assert first.queue_depth >= 20
        assert first.to_leaves == 4

    def test_crash_before_point_replays_trigger(self):
        """A crash that interrupts the phase before a timestamp-keyed
        point fires must not consume the point: the replay quiesces at
        the same place, and recovery restored into the original shape
        (plan_history only then gains the migration)."""
        prog, streams, plan = vb_case(n_value_streams=4)
        narrow = repartition_plan(prog, plan, 2)
        barriers = streams[-1].events
        sched = ReconfigSchedule(
            ReconfigPoint(at_ts=barriers[2].ts - 0.001, to_leaves=4)
        )
        victim = narrow.leaves()[0].id
        fp = FaultPlan(CrashFault(victim, at_ts=barriers[1].ts + 0.001))
        run = run_on_backend(
            "threaded",
            prog,
            narrow,
            streams,
            options=RunOptions(
                reconfig_schedule=sched,
                fault_plan=fp,
                checkpoint_predicate=every_root_join(),
            ),
        )
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )
        rec = run.reconfig
        assert rec.recovered and rec.reconfigured
        assert rec.recoveries[0].attempt < rec.reconfigurations[0].attempt
        assert [plan_width(p) for p in rec.plan_history] == [2, 4]

    def test_crash_after_migration_restores_current_shape(self):
        """A crash in the post-migration phase recovers into the *new*
        plan (the boundary snapshot doubles as a checkpoint), even with
        no checkpoint predicate armed."""
        prog, streams, plan = vb_case(n_value_streams=4)
        narrow = repartition_plan(prog, plan, 2)
        wide = repartition_plan(prog, narrow, 4)
        barriers = streams[-1].events
        sched = ReconfigSchedule(ReconfigPoint(after_joins=1, to_plan=wide))
        victim = wide.leaves()[-1].id
        fp = FaultPlan(CrashFault(victim, at_ts=barriers[2].ts - 0.001))
        run = run_on_backend(
            "process",
            prog,
            narrow,
            streams,
            options=RunOptions(reconfig_schedule=sched, fault_plan=fp),
        )
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )
        rec = run.reconfig
        assert rec.reconfigurations[0].attempt == 1
        assert rec.recovered
        assert rec.recoveries[0].attempt > rec.reconfigurations[0].attempt
        assert plan_width(rec.final_plan) == 4

    def test_crash_without_any_snapshot_is_clean_error(self):
        prog, streams, plan = vb_case(n_value_streams=3)
        barriers = streams[-1].events
        sched = ReconfigSchedule(
            ReconfigPoint(at_ts=barriers[-1].ts + 100.0, to_leaves=2)  # never fires
        )
        victim = plan.leaves()[0].id
        fp = FaultPlan(CrashFault(victim, after_events=1))
        with pytest.raises(NoCheckpointError):
            run_on_backend(
                "threaded",
                prog,
                plan,
                streams,
                options=RunOptions(reconfig_schedule=sched, fault_plan=fp),
            )

    def test_sim_reconfiguration_is_deterministic(self):
        prog, streams, plan = vb_case(n_value_streams=4)
        narrow = repartition_plan(prog, plan, 2)

        def once():
            sched = ReconfigSchedule(ReconfigPoint(after_joins=2, to_leaves=4))
            run = run_on_backend(
                "sim", prog, narrow, streams,
                options=RunOptions(reconfig_schedule=sched),
            )
            return (
                tuple(map(repr, run.outputs)),
                tuple((s.key, s.ts) for s in run.reconfig.reconfigurations),
            )

        assert once() == once()


class TestRunOptions:
    def test_collect_merges_and_overrides(self):
        base = RunOptions(timeout_s=30.0, record_keys=True)
        opts = RunOptions.collect(base, timeout_s=5.0, validate=False)
        assert opts.timeout_s == 5.0
        assert opts.record_keys is True
        assert opts.extra == {"validate": False}
        # The base object is untouched.
        assert base.timeout_s == 30.0 and base.extra == {}

    def test_defaults_helpers(self):
        opts = RunOptions()
        assert opts.with_timeout_default(60.0) == 60.0
        # batch_size=None rides through (adaptive batching downstream);
        # transport/flush knobs appear only when set.
        assert opts.transport_kwargs() == {"batch_size": None}
        assert RunOptions(timeout_s=1.0).with_timeout_default(60.0) == 1.0
        assert RunOptions(
            batch_size=8, transport="queue", flush_ms=2.0
        ).transport_kwargs() == {"batch_size": 8, "transport": "queue", "flush_ms": 2.0}

    def test_options_object_accepted_by_backends(self):
        prog, streams, plan = vb_case(n_value_streams=2, values_per_barrier=10)
        opts = RunOptions(
            reconfig_schedule=ReconfigSchedule(
                ReconfigPoint(after_joins=1, to_leaves=1)
            ),
            timeout_s=60.0,
        )
        run = run_on_backend("threaded", prog, plan, streams, options=opts)
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )
        assert run.reconfig.reconfigured

    def test_picklable_with_schedule_and_faults(self):
        opts = RunOptions(
            fault_plan=FaultPlan(CrashFault("w2", after_events=3)),
            checkpoint_predicate=every_root_join(),
            reconfig_schedule=ReconfigSchedule(
                ReconfigPoint(at_ts=4.0, to_leaves=3),
                autoscaler=AutoScaler(high_watermark=10),
            ),
            batch_size=8,
        )
        clone = pickle.loads(pickle.dumps(opts))
        assert clone.batch_size == 8
        assert clone.reconfig_schedule.points[0].to_leaves == 3
        assert clone.fault_plan.faults[0].worker == "w2"


class TestBacklogSignal:
    def test_join_response_backlog_round_trips_on_wire(self):
        from repro.runtime.messages import JoinResponse
        from repro.runtime.wire import decode_msg, encode_msg

        msg = JoinResponse(("w1", 3), "left", {"s": 1}, 2.0, backlog=17)
        assert decode_msg(encode_msg(msg)) == msg

    def test_legacy_wire_tuple_decodes_with_zero_backlog(self):
        from repro.runtime.wire import decode_msg

        legacy = (3, ("w1", 3), "left", {"s": 1}, 2.0)
        assert decode_msg(legacy).backlog == 0

    def test_root_observes_queue_depth_in_sim(self):
        """In the simulated cluster arrivals happen at event timestamps,
        so the queue depth the root observes at a quiesce is the true
        instantaneous backlog — assert it is recorded and plausible."""
        prog, streams, plan = vb_case(n_value_streams=4, values_per_barrier=30)
        sched = ReconfigSchedule(ReconfigPoint(after_joins=2, to_leaves=2))
        run = run_on_backend(
            "sim", prog, plan, streams, options=RunOptions(reconfig_schedule=sched)
        )
        rec = run.reconfig
        assert rec.reconfigured
        total_events = sum(len(s.events) for s in streams)
        assert 0 <= rec.reconfigurations[0].queue_depth <= total_events


def test_random_morph_targets_stay_valid():
    """Property-style: random repartition targets of random widths are
    always P-valid, cover the same itags, and are migration-compatible
    with their source."""
    prog, _, plan = vb_case(n_value_streams=6)
    rng = random.Random(20260728)
    current = plan
    for _ in range(12):
        n = rng.randint(1, 8)
        target = repartition_plan(
            prog, current, n, shape=rng.choice(("balanced", "chain"))
        )
        assert is_p_valid(target, prog)
        assert_reconfig_compatible(current, target, prog)
        current = target
