"""repro — a Python reproduction of "Stream Processing with
Dependency-Guided Synchronization" (Flumina, PPoPP 2022).

Public API lives in the subpackages:

* :mod:`repro.core`    — the DGS programming model (§2).
* :mod:`repro.plans`   — synchronization plans, validity, optimizer (§3.2-3.3, App. B).
* :mod:`repro.sim`     — deterministic discrete-event cluster simulator.
* :mod:`repro.runtime` — the Flumina-style runtime (§3.4) + sequential/threaded executors.
* :mod:`repro.flinklike`  — a mini Flink-style sharded dataflow baseline (§4.2-4.3).
* :mod:`repro.timelylike` — a mini Timely-style epoch dataflow baseline (§4.2).
* :mod:`repro.apps`    — the paper's applications and case studies (§4.1, App. A).
* :mod:`repro.data`    — synthetic workload generators.
* :mod:`repro.bench`   — throughput/latency measurement harness (§4).
"""

__version__ = "0.1.0"
