"""Crash recovery: restore the last root-join checkpoint, replay the
input suffix (paper Appendix D.2, made executable).

The driver is substrate-independent and lives *above* the runtimes: an
execution attempt runs on any backend with fault injection armed; if a
worker fail-stops, the driver

1. commits every logged output at or below the latest checkpoint's
   order key (those are exactly the sequential prefix's outputs, see
   below) and discards the rest,
2. restores the checkpoint state by forking it down a **fresh** set of
   workers (the same C2 fork used for ``init()``), and
3. replays the buffered input suffix — every event strictly after the
   checkpoint key — through the full protocol, until an attempt
   finishes without crashing.

Theorem 2.4's determinism-up-to-reordering is what makes this sound:
the recovered execution's outputs are, as a multiset, exactly the
fail-free execution's.  The argument needs the snapshot to be a
*timestamp-prefix* state, which holds when every tag handled at the
root depends on every tag in the universe (then each leaf answers the
root's join request only after processing all its events below the
join key, so the joined state — and the output log at or below that
key — is the sequential prefix).  :func:`assert_recovery_sound` checks
exactly this and rejects plans where restore-and-replay could double-
or under-apply independent events.

Crash faults fire once: the driver marks them fired so the replay does
not re-kill the restarted worker.  A crash with no checkpoint to
restore raises :class:`~repro.core.errors.NoCheckpointError` — a clean
error, never a hang (attempts are wall-clock bounded by the
substrates' own timeouts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.errors import NoCheckpointError, RecoveryUnsoundError, RuntimeFault
from ..core.program import DGSProgram
from ..plans.plan import SyncPlan
from .checkpoint import Checkpoint
from .faults import CrashRecord, FaultPlan
from .metrics import merge_attempt_metrics
from .protocol import INIT_STATE, RunStatsMixin
from .runtime import InputStream


@dataclass
class AttemptOutcome:
    """One execution attempt, normalized across substrates."""

    outputs: List[Any]
    keyed_outputs: List[Tuple[tuple, Any]]
    checkpoints: List[Checkpoint]
    crashes: List[CrashRecord]
    events_in: int = 0
    events_processed: int = 0
    joins: int = 0
    wall_s: float = 0.0
    #: QuiesceRecord when the attempt stopped at a reconfiguration
    #: point (see repro.runtime.reconfigure); None otherwise.
    quiesce: Any = None
    #: The attempt's RunMetrics when the metrics plane was on (crashed
    #: and quiesced attempts report too — fault-path latency/backlog is
    #: exactly what the plane exists to see); None otherwise.  Each
    #: attempt carries its own latency epoch (stamped at that attempt's
    #: producer release), so a replayed event's recorded latency is its
    #: true recovery delay: restart to re-commit.
    metrics: Any = None


#: (streams, initial_state) -> AttemptOutcome; the fault plan and the
#: checkpoint predicate are closed over by the backend adapter.
AttemptFn = Callable[[Sequence[InputStream], Any], AttemptOutcome]


@dataclass(frozen=True)
class RecoveryStep:
    """One restore-and-replay transition between attempts."""

    attempt: int
    crashed_workers: Tuple[str, ...]
    resumed_from_ts: float
    replayed_events: int


@dataclass
class RecoveredRun(RunStatsMixin):
    """A complete (possibly multi-attempt) fault-tolerant execution."""

    outputs: List[Any] = field(default_factory=list)
    events_in: int = 0
    events_processed: int = 0
    joins: int = 0
    wall_s: float = 0.0
    attempts: int = 1
    crashes: List[CrashRecord] = field(default_factory=list)
    recoveries: List[RecoveryStep] = field(default_factory=list)
    checkpoints_taken: int = 0
    #: One RunMetrics per attempt that reported metrics, in attempt
    #: order (empty when the metrics plane was off).
    attempt_metrics: List[Any] = field(default_factory=list)
    #: Whole-run merge of attempt_metrics with the recovery counters
    #: stamped (see metrics.merge_attempt_metrics); None when off.
    metrics: Any = None

    @property
    def recovered(self) -> bool:
        return bool(self.recoveries)

    @property
    def replayed_events(self) -> int:
        return sum(r.replayed_events for r in self.recoveries)


def suffix_streams(
    streams: Sequence[InputStream], key: tuple
) -> List[InputStream]:
    """The input log's suffix: every event strictly after ``key``.

    Streams whose events are all committed stay present with an empty
    event tuple — their closing heartbeat is still needed for the
    replay to drain."""
    return [
        InputStream(
            s.itag,
            tuple(e for e in s.events if e.order_key > key),
            s.source_host,
            s.heartbeat_interval,
        )
        for s in streams
    ]


def assert_recovery_sound(plan: SyncPlan, program: DGSProgram) -> None:
    """Reject plans whose root snapshots are not timestamp-prefix
    states (see module docstring).  Vacuously sound for roots with no
    tags — such plans never checkpoint, so a crash surfaces as
    :class:`NoCheckpointError` instead of silent corruption."""
    universe = program.depends.universe
    for itag in plan.root.itags:
        deps = program.depends.dependents_of(itag.tag)
        missing = universe - deps
        if missing:
            raise RecoveryUnsoundError(
                f"root tag {itag.tag!r} is independent of "
                f"{sorted(map(repr, missing))}; its root-join snapshots are "
                "not timestamp-prefix states, so checkpoint recovery would "
                "be unsound for this plan (choose a plan whose root tags "
                "depend on every tag)"
            )


@dataclass
class CrashRestart:
    """The exactly-once bookkeeping for one restore-and-replay step,
    shared between the recovery and reconfiguration drivers."""

    committed_delta: List[Any]
    pending: List[InputStream]
    initial: Any
    last_ckpt: Checkpoint
    step: RecoveryStep


def restart_from_crash(
    attempt: int,
    out: AttemptOutcome,
    pending: Sequence[InputStream],
    initial: Any,
    last_ckpt: Optional[Checkpoint],
    *,
    no_checkpoint_hint: str,
) -> CrashRestart:
    """Plan the restart after a crashed attempt: pick the attempt's
    newest snapshot, commit the sequential prefix of its output log
    (everything at or below the snapshot key — all later outputs are
    discarded and regenerated by the replay: exactly-once delivery),
    and compute the input suffix to replay.  A crash with no snapshot
    at all — neither in this attempt nor restored earlier — raises
    :class:`NoCheckpointError`; crashing again before any *new*
    snapshot retries the same suffix from the previous restore point.

    Aborting on crash detection cannot lose a needed snapshot: a
    worker's crash trigger only fires while processing an event, and
    (for sound plans) an event past root join k is released to a
    worker only after that join's fork reached it — by which time the
    root recorded checkpoint k in its synchronous log.
    """
    ckpt = max(out.checkpoints, key=lambda c: c.key, default=None)
    committed_delta: List[Any] = []
    if ckpt is not None:
        last_ckpt = ckpt
        committed_delta = [v for k, v in out.keyed_outputs if k <= ckpt.key]
        pending = suffix_streams(pending, ckpt.key)
        initial = ckpt.state
    elif last_ckpt is None:
        who = ", ".join(sorted({c.worker for c in out.crashes}))
        raise NoCheckpointError(f"worker(s) {who} {no_checkpoint_hint}")
    return CrashRestart(
        committed_delta=committed_delta,
        pending=list(pending),
        initial=initial,
        last_ckpt=last_ckpt,
        step=RecoveryStep(
            attempt=attempt,
            crashed_workers=tuple(sorted({c.worker for c in out.crashes})),
            resumed_from_ts=last_ckpt.ts,
            replayed_events=sum(len(s.events) for s in pending),
        ),
    )


def _stamp_run_metrics(run: Any) -> None:
    """Merge ``run.attempt_metrics`` into a whole-run
    :class:`~repro.runtime.metrics.RunMetrics` and stamp the
    recovery/elasticity counters onto it; shared by the recovery and
    reconfiguration drivers (the latter additionally carries
    ``reconfigurations``).  No-op when the metrics plane was off."""
    merged = merge_attempt_metrics(run.attempt_metrics)
    if merged is None:
        return
    merged.attempts = run.attempts
    merged.replayed_events = run.replayed_events
    merged.checkpoints_restored = len(run.recoveries)
    steps = getattr(run, "reconfigurations", None)
    if steps:
        merged.reconfigurations = len(steps)
        merged.migration_pause_s = sum(s.pause_s for s in steps)
    run.metrics = merged


def run_with_recovery(
    attempt_fn: AttemptFn,
    program: DGSProgram,
    plan: SyncPlan,
    streams: Sequence[InputStream],
    fault_plan: FaultPlan,
    *,
    max_attempts: Optional[int] = None,
) -> RecoveredRun:
    """Drive attempts until one completes, recovering between crashes."""
    if fault_plan.has_crash_faults():
        assert_recovery_sound(plan, program)
    # Each crash fault fires at most once, so the attempt count is
    # bounded by construction; the cap is a backstop against bugs.
    cap = max_attempts if max_attempts is not None else len(fault_plan.crash_indices()) + 2
    run = RecoveredRun()
    committed: List[Any] = []
    pending: Sequence[InputStream] = list(streams)
    initial: Any = INIT_STATE
    last_ckpt: Optional[Checkpoint] = None
    for attempt in range(1, cap + 1):
        out = attempt_fn(pending, initial)
        run.attempts = attempt
        run.checkpoints_taken += len(out.checkpoints)
        run.events_processed += out.events_processed
        run.joins += out.joins
        run.wall_s += out.wall_s
        if out.metrics is not None:
            run.attempt_metrics.append(out.metrics)
        if attempt == 1:
            run.events_in = out.events_in
        if not out.crashes:
            run.outputs = committed + list(out.outputs)
            _stamp_run_metrics(run)
            return run
        run.crashes.extend(out.crashes)
        for crash in out.crashes:
            fault_plan.mark_fired(crash.fault_index)
        restart = restart_from_crash(
            attempt, out, pending, initial, last_ckpt,
            no_checkpoint_hint=(
                "crashed but no checkpoint exists to recover from; "
                "configure checkpoint_predicate= (e.g. every_root_join()) "
                "to enable crash recovery"
            ),
        )
        committed.extend(restart.committed_delta)
        pending = restart.pending
        initial = restart.initial
        last_ckpt = restart.last_ckpt
        run.recoveries.append(restart.step)
    raise RuntimeFault(
        f"recovery did not converge after {cap} attempts "
        "(crash faults should each fire at most once)"
    )
