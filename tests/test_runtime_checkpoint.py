"""Tests for checkpointing (Appendix D.2) and crash recovery."""

import pickle
from collections import Counter

import pytest

from repro.core import Event, ImplTag
from repro.plans import root_and_leaves_plan
from repro.runtime import (
    FluminaRuntime,
    InputStream,
    by_timestamp_interval,
    every_nth_join,
    every_root_join,
    recover,
    run_sequential_reference,
)
from repro.apps import keycounter as kc


def build(checkpoint_predicate, n_values=3, n_events=40):
    prog = kc.make_program(1)
    streams = []
    for s in range(n_values):
        it = ImplTag(kc.inc_tag(0), f"v{s}")
        evs = tuple(
            Event(it.tag, it.stream, t * 1.0 + s * 0.13 + 0.01)
            for t in range(1, n_events + 1)
        )
        streams.append(InputStream(it, evs, heartbeat_interval=2.0))
    rit = ImplTag(kc.reset_tag(0), "b")
    resets = tuple(Event(rit.tag, rit.stream, t * 10.0) for t in range(1, 5))
    streams.append(InputStream(rit, resets, heartbeat_interval=2.0))
    leaf = [[s.itag] for s in streams[:-1]]
    plan = root_and_leaves_plan(prog, [rit], leaf)
    rt = FluminaRuntime(prog, plan, checkpoint_predicate=checkpoint_predicate)
    return prog, rt, streams


class TestCheckpointPolicies:
    def test_every_root_join_snapshots_each_barrier(self):
        prog, rt, streams = build(every_root_join())
        res = rt.run(streams)
        assert len(res.checkpoints) == len(streams[-1].events)

    def test_every_nth_join(self):
        prog, rt, streams = build(every_nth_join(2))
        res = rt.run(streams)
        assert len(res.checkpoints) == len(streams[-1].events) // 2

    def test_by_timestamp_interval(self):
        prog, rt, streams = build(by_timestamp_interval(20.0))
        res = rt.run(streams)
        # Barriers at 10,20,30,40 with >=20ms spacing -> 2 snapshots.
        assert len(res.checkpoints) == 2

    def test_no_predicate_no_checkpoints(self):
        prog, rt, streams = build(None)
        res = rt.run(streams)
        assert res.checkpoints == []

    def test_snapshot_keys_increase(self):
        prog, rt, streams = build(every_root_join())
        res = rt.run(streams)
        keys = [c.key for c in res.checkpoints]
        assert keys == sorted(keys)
        ts = [c.ts for c in res.checkpoints]
        assert ts == sorted(ts)

    def test_every_nth_rejects_bad_n(self):
        with pytest.raises(ValueError):
            every_nth_join(0)

    def test_interval_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            by_timestamp_interval(0.0)


class TestSnapshotConsistency:
    def test_snapshot_equals_sequential_state_at_barrier(self):
        """The joined root state at barrier k must equal the sequential
        state after processing everything up to that barrier."""
        prog, rt, streams = build(every_root_join())
        res = rt.run(streams)
        all_events = sorted(
            (e for s in streams for e in s.events), key=lambda e: e.order_key
        )
        barrier_ts = [e.ts for e in streams[-1].events]
        st = prog.state_type(prog.initial_type)
        for ckpt, bts in zip(res.checkpoints, barrier_ts):
            assert ckpt.ts == bts
            state = prog.init()
            for e in all_events:
                if e.ts > bts:
                    break
                state, _ = st.update(state, e)
            assert kc.state_eq(ckpt.state, state), (bts, ckpt.state, state)


class TestRecovery:
    def test_recover_replays_suffix(self):
        prog, rt, streams = build(every_root_join())
        res = rt.run(streams)
        ckpt = res.checkpoints[1]  # after barrier @20
        assert ckpt.ts == 20.0
        suffix = [e for s in streams for e in s.events if e.order_key > ckpt.key]
        final_state, replay_out = recover(prog, ckpt.state, suffix)
        # Full sequential run for comparison.
        full_out = run_sequential_reference(prog, streams)
        # Outputs after the checkpoint must match the tail of full run.
        assert Counter(replay_out) == Counter(full_out[2:])

    def test_recover_empty_suffix(self):
        prog = kc.make_program(1)
        state, outs = recover(prog, {0: 7}, [])
        assert state == {0: 7} and outs == []


class TestPredicatePicklability:
    """The standard policies are callable classes, not closures: their
    state must cross the process-runtime boundary via pickle."""

    def test_every_root_join_picklable(self):
        p = every_root_join()
        q = pickle.loads(pickle.dumps(p))
        assert q(Event("b", "s", 1.0), 0) is True

    def test_every_nth_join_pickles_with_state(self):
        p = every_nth_join(3)
        assert [p(Event("b", "s", float(t)), 0) for t in (1, 2)] == [False, False]
        q = pickle.loads(pickle.dumps(p))
        # The counter survived: the third call (on the copy) fires.
        assert q(Event("b", "s", 3.0), 0) is True
        assert q(Event("b", "s", 4.0), 0) is False

    def test_by_timestamp_interval_pickles_with_state(self):
        p = by_timestamp_interval(10.0)
        assert p(Event("b", "s", 5.0), 0) is True  # first snapshot
        q = pickle.loads(pickle.dumps(p))
        assert q(Event("b", "s", 7.0), 1) is False  # only 2 units passed
        assert q(Event("b", "s", 15.0), 1) is True

    def test_checkpoint_record_picklable(self):
        from repro.runtime import Checkpoint

        c = Checkpoint((3.0, ("str", "b"), ("str", "s")), 3.0, {0: 4})
        assert pickle.loads(pickle.dumps(c)) == c
