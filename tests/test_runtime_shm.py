"""The shared-memory data plane (repro.runtime.transport's shm
section): ring mechanics and, above all, segment lifecycle.

Shared memory is the one transport whose failure mode outlives the
process: a leaked ``/dev/shm`` segment survives until reboot, and a
forgotten ``unlink`` surfaces as resource-tracker noise at interpreter
exit.  The lifecycle tests therefore check the filesystem itself
(``/dev/shm`` before vs after) across the three exit paths — normal
completion, crash-fault recovery, and KeyboardInterrupt delivered to
the whole process group like a terminal ``^C`` — and assert the
resource tracker stays silent in subprocess stderr.

The unit tests cover the ring protocol the end-to-end suites can't
isolate: the last-chunk frame marker, slot-exhaustion capacity, the
torn-frame fault on a writer death mid-frame, and the ``rx_closed``
escape that keeps senders from spinning on a dead reader.
"""

import multiprocessing as mp
import os
from multiprocessing import shared_memory
import signal
import subprocess
import sys
import time

import pytest

from repro.apps import value_barrier as vb
from repro.core import Event
from repro.core.errors import RuntimeFault
from repro.core.semantics import output_multiset
from repro.runtime import (
    CrashFault,
    FaultPlan,
    RunOptions,
    every_root_join,
    run_on_backend,
    run_sequential_reference,
)
from repro.runtime.messages import EventMsg
from repro.runtime.transport import (
    STOP,
    SharedMemoryTransport,
    _ShmReceiver,
    _ShmSender,
    make_transport,
)
from repro.runtime.wire import pack_frame, unpack_frame

CTX = mp.get_context("fork")


def vb_case(n_value_streams=2, values_per_barrier=40, n_barriers=3):
    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=n_value_streams,
        values_per_barrier=values_per_barrier,
        n_barriers=n_barriers,
    )
    return prog, vb.make_streams(wl), vb.make_plan(prog, wl)


def dev_shm():
    """Current shared-memory segment names (empty off-Linux)."""
    try:
        return set(os.listdir("/dev/shm"))
    except (FileNotFoundError, NotADirectoryError):  # pragma: no cover
        return set()


@pytest.fixture
def edge():
    """One tiny coordinator->worker ring plus its transport."""
    t = SharedMemoryTransport(CTX, {"w": ["c"]}, slots=4, slot_bytes=128)
    yield t, t._rings[("c", "w")]
    t.close()


class TestRingProtocol:
    def test_push_pop_preserves_order_and_last_marker(self, edge):
        _, ring = edge
        assert ring.drained()
        assert ring.push(b"aa", False)
        assert ring.push(b"bb", True)
        assert ring.pop_chunk() == (b"aa", False)
        assert not ring.drained()
        assert ring.pop_chunk() == (b"bb", True)
        assert ring.pop_chunk() is None

    def test_full_ring_rejects_then_recovers(self, edge):
        _, ring = edge
        for i in range(4):
            assert ring.push(b"x", True), f"slot {i} should fit"
        assert not ring.push(b"x", True), "5th push into 4 slots"
        assert ring.pop_chunk() == (b"x", True)
        assert ring.push(b"y", True), "freed slot must be reusable"

    def test_multi_chunk_frame_round_trips(self):
        """A frame far wider than one slot arrives as one decoded
        batch: the last-chunk marker replaces the length prefix.  (Own
        ring: the frame spans ~8 chunks, and a single-threaded test
        would deadlock in the sender's backpressure loop if the whole
        frame didn't fit the ring.)"""
        t = SharedMemoryTransport(CTX, {"w": ["c"]}, slots=16, slot_bytes=128)
        try:
            ring = t._rings[("c", "w")]
            batch = [
                EventMsg(Event("value", "v", float(i), payload="x" * 300))
                for i in range(3)
            ]
            frame = pack_frame(batch)
            assert len(frame) > 4 * ring.slot_bytes, "want a many-chunk frame"
            sender = _ShmSender({"w": ring}, None)
            receiver = _ShmReceiver([ring])
            sender.send_batch("w", batch)
            assert receiver.recv() == unpack_frame(frame, runs=True)
        finally:
            t.close()

    def test_empty_frame_is_stop_sentinel(self, edge):
        _, ring = edge
        assert ring.push(b"", True)
        assert _ShmReceiver([ring]).recv() is STOP

    def test_writer_death_mid_frame_raises_torn_frame(self, edge):
        _, ring = edge
        ring.push(b"half a frame", False)  # no final chunk ever comes
        ring.set_tx_closed()
        receiver = _ShmReceiver([ring])
        with pytest.raises(RuntimeFault, match="torn shm ring"):
            receiver.poll()

    def test_clean_writer_close_is_eof_not_fault(self, edge):
        _, ring = edge
        sender = _ShmSender({"w": ring}, None)
        batch = [EventMsg(Event("value", "v", 1.0, payload=1))]
        sender.send_batch("w", batch)
        ring.set_tx_closed()
        receiver = _ShmReceiver([ring])
        assert receiver.recv() == unpack_frame(pack_frame(batch), runs=True)
        assert receiver.recv() is STOP

    def test_dead_reader_unblocks_sender(self, edge):
        """rx_closed is the EPIPE analogue: a full ring with a dead
        reader must return, not spin forever."""
        _, ring = edge
        while ring.push(b"fill", True):
            pass
        ring.set_rx_closed()
        _ShmSender({"w": ring}, None).send_raw("w", b"z" * 64)  # returns

    def test_unknown_destination_is_a_fault(self, edge):
        _, ring = edge
        with pytest.raises(RuntimeFault, match="no edge"):
            _ShmSender({"w": ring}, None).send_raw("elsewhere", b"z")

    def test_degenerate_geometry_rejected(self):
        with pytest.raises(RuntimeFault, match="too small"):
            SharedMemoryTransport(CTX, {"w": ["c"]}, slots=1)
        with pytest.raises(RuntimeFault, match="too small"):
            SharedMemoryTransport(CTX, {"w": ["c"]}, slot_bytes=8)

    def test_stream_transports_reject_shm_options(self):
        with pytest.raises(RuntimeFault, match="takes no options"):
            make_transport("pipe", CTX, {"w": ["c"]}, slots=8)


class TestSegmentLifecycle:
    def test_close_unlinks_every_segment_and_is_idempotent(self):
        before = dev_shm()
        t = SharedMemoryTransport(CTX, {"w": ["c", "x"], "x": ["c"]})
        names = [ring.shm.name for ring in t._rings.values()]
        assert len(names) == 3
        t.close()
        t.close()  # second close must be a no-op, not a double-unlink
        assert dev_shm() - before == set()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_normal_run_leaves_no_segments(self):
        prog, streams, plan = vb_case()
        before = dev_shm()
        run = run_on_backend(
            "process", prog, plan, streams,
            options=RunOptions(transport="shm"),
        )
        assert dev_shm() - before == set()
        assert run.raw.transport == "shm"
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )

    def test_crash_fault_run_leaves_no_segments(self):
        """Every recovery attempt builds (and must unlink) its own
        rings; a crashed worker's exit path may not leak its edges."""
        prog, streams, plan = vb_case(values_per_barrier=30, n_barriers=4)
        leaf = plan.leaves()[0].id
        before = dev_shm()
        run = run_on_backend(
            "process", prog, plan, streams,
            options=RunOptions(
                transport="shm",
                batch_size=8,
                fault_plan=FaultPlan(CrashFault(leaf, after_events=37)),
                checkpoint_predicate=every_root_join(),
            ),
        )
        assert dev_shm() - before == set()
        assert run.recovery is not None and run.recovery.attempts == 2
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )

    def test_tiny_rings_via_transport_options_still_exact(self):
        """RunOptions.extra plumbs ring geometry end to end; a ring
        smaller than any batch backpressures instead of corrupting."""
        prog, streams, plan = vb_case(values_per_barrier=25)
        run = run_on_backend(
            "process", prog, plan, streams,
            options=RunOptions(
                transport="shm",
                extra={"transport_options": {"slots": 8, "slot_bytes": 128}},
            ),
        )
        assert output_multiset(run.outputs) == output_multiset(
            run_sequential_reference(prog, streams)
        )


def _run_child(script, after_start=None, timeout=60):
    """Run a python snippet with src importable; returns the completed
    process plus the /dev/shm delta it left behind."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src, env.get("PYTHONPATH")])
    )
    before = dev_shm()
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        start_new_session=True,
    )
    try:
        if after_start is not None:
            after_start(proc)
        out, err = proc.communicate(timeout=timeout)
    except BaseException:
        proc.kill()
        proc.wait()
        raise
    return proc.returncode, out, err, dev_shm() - before


class TestResourceTracker:
    """The resource tracker prints ``leaked shared_memory objects`` to
    a dying interpreter's stderr; these tests run whole interpreters so
    that exit-time complaint (invisible in-process) becomes assertable.
    """

    def test_normal_run_exits_silently(self):
        code, out, err, leaked = _run_child(
            """
import repro.apps.value_barrier as vb
from repro.runtime import RunOptions, run_on_backend
prog = vb.make_program()
wl = vb.make_workload(n_value_streams=2, values_per_barrier=40, n_barriers=2)
run = run_on_backend(
    "process", prog, vb.make_plan(prog, wl), vb.make_streams(wl),
    options=RunOptions(transport="shm"),
)
print("OUTPUTS", len(run.outputs))
"""
        )
        assert code == 0, err
        assert "OUTPUTS" in out
        assert leaked == set(), f"leaked segments: {leaked}"
        assert "leaked" not in err and "resource_tracker" not in err, err

    def test_keyboard_interrupt_unlinks_segments(self):
        """SIGINT to the whole process group mid-run (a terminal ^C):
        the runtime's ``finally`` must still unlink every segment and
        keep the resource tracker quiet.  The child paces its replay at
        one timestamp-unit per second so the interrupt reliably lands
        mid-run, workers forked and rings live."""
        script = """
import sys
import repro.apps.value_barrier as vb
from repro.runtime import RunOptions, run_on_backend
prog = vb.make_program()
wl = vb.make_workload(n_value_streams=2, values_per_barrier=50, n_barriers=3)
print("READY", flush=True)
run_on_backend(
    "process", prog, vb.make_plan(prog, wl), vb.make_streams(wl),
    options=RunOptions(transport="shm", pace=1.0),
)
print("FINISHED-WITHOUT-INTERRUPT", flush=True)
"""

        def interrupt(proc):
            assert proc.stdout.readline().strip() == "READY"
            time.sleep(1.5)  # let the workers fork and the rings fill
            os.killpg(proc.pid, signal.SIGINT)

        code, out, err, leaked = _run_child(script, after_start=interrupt)
        assert code != 0, "child was supposed to die by SIGINT"
        assert "FINISHED-WITHOUT-INTERRUPT" not in out
        assert leaked == set(), f"leaked segments after ^C: {leaked}"
        assert "leaked" not in err and "resource_tracker" not in err, err
