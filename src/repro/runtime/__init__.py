"""The Flumina-style DGS runtime (paper §3.4) plus checkpointing and a
sequential reference oracle."""

from .checkpoint import (
    by_timestamp_interval,
    every_nth_join,
    every_root_join,
    recover,
)
from .mailbox import Buffered, Mailbox
from .messages import (
    EventMsg,
    ForkStateMsg,
    HeartbeatMsg,
    JoinRequest,
    JoinResponse,
)
from .runtime import (
    FluminaRuntime,
    InputStream,
    RunResult,
    run_sequential_reference,
)
from .worker import RunCollector, WorkerActor, default_state_size

__all__ = [
    "Buffered",
    "EventMsg",
    "FluminaRuntime",
    "ForkStateMsg",
    "HeartbeatMsg",
    "InputStream",
    "JoinRequest",
    "JoinResponse",
    "Mailbox",
    "RunCollector",
    "RunResult",
    "WorkerActor",
    "by_timestamp_interval",
    "default_state_size",
    "every_nth_join",
    "every_root_join",
    "recover",
    "run_sequential_reference",
]
