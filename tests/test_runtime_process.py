"""Tests for the process-based runtime: the same protocol across OS
processes with batched channels must match the sequential spec, for
every batch size and for arbitrary P-valid plans."""

import random
from collections import Counter

import pytest

from repro.apps import keycounter as kc, value_barrier as vb
from repro.core import Event, ImplTag
from repro.core.errors import RuntimeFault
from repro.plans import random_valid_plan, sequential_plan
from repro.runtime import (
    InputStream,
    available_backends,
    get_backend,
    run_on_backend,
    run_sequential_reference,
)
from repro.runtime.messages import (
    EventMsg,
    ForkStateMsg,
    HeartbeatMsg,
    JoinRequest,
    JoinResponse,
)
from repro.runtime.process import ProcessRuntime
from repro.runtime.wire import decode_batch, decode_msg, encode_batch, encode_msg


def spec_multiset(prog, streams):
    return Counter(map(repr, run_sequential_reference(prog, streams)))


class TestWireCodec:
    MSGS = [
        EventMsg(Event("v", 0, 3, payload=(1, {"a": 2}))),
        EventMsg(Event(("compound", 1), "s9", 7)),
        HeartbeatMsg(ImplTag("b", "s"), (5.0, ("str", "b"), ("str", "s"))),
        JoinRequest(("root", 3), ImplTag("b", "s"), (2.0,), "root", "left"),
        JoinResponse(("root", 3), "right", {"k": 1}, 1.0),
        ForkStateMsg(("root", 3), (0, 7), 1.0),
    ]

    @pytest.mark.parametrize("msg", MSGS, ids=lambda m: type(m).__name__)
    def test_roundtrip(self, msg):
        assert decode_msg(encode_msg(msg)) == msg

    def test_batch_roundtrip(self):
        assert decode_batch(encode_batch(self.MSGS)) == self.MSGS

    def test_unknown_rejected(self):
        with pytest.raises(RuntimeFault):
            encode_msg(object())
        with pytest.raises(RuntimeFault):
            decode_msg((99, "?"))

    def test_events_pickle_compactly(self):
        # __reduce__ keeps frozen slots dataclasses picklable on every
        # supported Python and drops the per-instance attribute names.
        import pickle

        e = Event("v", 0, 5, payload=(1, 2))
        assert pickle.loads(pickle.dumps(e)) == e
        assert len(pickle.dumps(e)) < 70


class TestProcessValueBarrier:
    def test_matches_spec(self):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=4, values_per_barrier=40, n_barriers=4)
        streams = vb.make_streams(wl)
        res = ProcessRuntime(prog, vb.make_plan(prog, wl)).run(streams)
        assert res.output_multiset() == spec_multiset(prog, streams)
        assert res.events_in == sum(len(s.events) for s in streams)
        assert res.wall_s > 0

    def test_join_counting(self):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=4, values_per_barrier=20, n_barriers=3)
        plan = vb.make_plan(prog, wl)
        res = ProcessRuntime(prog, plan).run(vb.make_streams(wl))
        assert res.joins == len(plan.internal()) * len(wl.barrier_stream)

    @pytest.mark.parametrize("batch_size", [1, 7, 256])
    def test_batch_sizes_agree(self, batch_size):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=3, values_per_barrier=25, n_barriers=3)
        streams = vb.make_streams(wl)
        res = ProcessRuntime(
            prog, vb.make_plan(prog, wl), batch_size=batch_size
        ).run(streams)
        assert res.output_multiset() == spec_multiset(prog, streams)

    def test_sequential_plan_single_process(self):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=2, values_per_barrier=20, n_barriers=3)
        streams = vb.make_streams(wl)
        itags = [it for it, _ in wl.all_streams()]
        res = ProcessRuntime(prog, sequential_plan(prog, itags)).run(streams)
        assert res.output_multiset() == spec_multiset(prog, streams)
        assert res.joins == 0

    def test_empty_streams(self):
        prog = kc.make_program(1)
        it = ImplTag(kc.inc_tag(0), 0)
        res = ProcessRuntime(prog, sequential_plan(prog, [it])).run(
            [InputStream(it, (), heartbeat_interval=None)]
        )
        assert res.outputs == [] and res.events_processed == 0

    def test_worker_crash_is_surfaced(self):
        def bad_update(state, event):
            raise ValueError("injected fault")

        from repro.core.dependence import DependenceRelation
        from repro.core.program import single_state_program

        prog = single_state_program(
            name="faulty",
            tags=("a",),
            depends=DependenceRelation.from_function(("a",), lambda x, y: True),
            init=lambda: 0,
            update=bad_update,
            fork=lambda s, p1, p2: (s, 0),
            join=lambda a, b: a + b,
        )
        it = ImplTag("a", 0)
        streams = [
            InputStream(it, (Event("a", 0, 1.0),), heartbeat_interval=None)
        ]
        with pytest.raises(RuntimeFault, match="crashed|drain"):
            ProcessRuntime(prog, sequential_plan(prog, [it])).run(
                streams, timeout_s=15.0
            )


class TestProcessRandomPlans:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_plan_matches_spec(self, seed):
        rng = random.Random(seed)
        nkeys = rng.choice([1, 2])
        prog = kc.make_program(nkeys)
        itags = []
        for k in range(nkeys):
            itags.append(ImplTag(kc.inc_tag(k), f"i{k}"))
            itags.append(ImplTag(kc.reset_tag(k), f"r{k}"))
        events = {it: [] for it in itags}
        for t in range(1, 70):
            it = itags[rng.randrange(len(itags))]
            events[it].append(Event(it.tag, it.stream, float(t)))
        streams = [
            InputStream(it, tuple(events[it]), heartbeat_interval=5.0)
            for it in itags
        ]
        plan = random_valid_plan(prog, itags, rng)
        res = ProcessRuntime(prog, plan, batch_size=8).run(streams)
        assert res.output_multiset() == spec_multiset(prog, streams), plan.pretty()


class TestBackendRegistry:
    def test_available(self):
        assert available_backends() == ("process", "sim", "threaded")

    def test_unknown_rejected(self):
        with pytest.raises(RuntimeFault, match="unknown runtime backend"):
            get_backend("gpu")

    @pytest.mark.parametrize("name", ["sim", "threaded", "process"])
    def test_uniform_run(self, name):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=2, values_per_barrier=20, n_barriers=2)
        streams = vb.make_streams(wl)
        run = run_on_backend(name, prog, vb.make_plan(prog, wl), streams)
        assert run.backend == name
        assert run.output_multiset() == spec_multiset(prog, streams)
        assert run.events_in == sum(len(s.events) for s in streams)
        assert run.raw is not None
