"""The paper's applications (§4.1) and case studies (Appendix A).

Every module follows the same layout:

* a DGS program (``make_program``) — sequential update + dependence
  relation + fork/join,
* a synthetic workload generator matching the paper's input shape,
* ``make_streams`` converting a workload into runtime input streams,
* ``make_plan`` building the synchronization plan the paper describes
  for the application (the optimizer reproduces the same shapes; see
  the tests).

Modules: :mod:`keycounter` (the Figure-1 running example),
:mod:`value_barrier` (event-based windowing), :mod:`pageview`
(page-view join), :mod:`fraud` (fraud detection), :mod:`outlier`
(Reloaded outlier detection, A.1), :mod:`smarthome` (DEBS'14 power
prediction, A.2), :mod:`sessionize` (per-key sessionization with
timeout-triggered flushes — beyond the paper's six, exercising
time-gap state machines under the same verification matrix).
"""

from . import (
    fraud,
    keycounter,
    outlier,
    pageview,
    sessionize,
    smarthome,
    value_barrier,
)

__all__ = [
    "fraud",
    "keycounter",
    "outlier",
    "pageview",
    "sessionize",
    "smarthome",
    "value_barrier",
]
