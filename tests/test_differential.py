"""Tests for the differential-testing utility (repro.testing) and its
use across the simulated runtime, the threaded runtime, and the
baseline engines."""

import random

import pytest

from repro.apps import keycounter as kc, value_barrier as vb
from repro.core import Event, ImplTag
from repro.plans import sequential_plan
from repro.runtime import InputStream
from repro.runtime.threaded import ThreadedRuntime
from repro.testing import compare_outputs, diff_plans, diff_against_spec, fuzz_plans


def kc_streams(nkeys=2, n=80, seed=0):
    rng = random.Random(seed)
    prog = kc.make_program(nkeys)
    itags = []
    for k in range(nkeys):
        itags.append(ImplTag(kc.inc_tag(k), f"i{k}"))
        itags.append(ImplTag(kc.reset_tag(k), f"r{k}"))
    events = {it: [] for it in itags}
    for t in range(1, n):
        it = itags[rng.randrange(len(itags))]
        events[it].append(Event(it.tag, it.stream, float(t)))
    streams = [
        InputStream(it, tuple(events[it]), heartbeat_interval=5.0) for it in itags
    ]
    return prog, streams


class TestCompareOutputs:
    def test_equivalent_up_to_reordering(self):
        assert compare_outputs([1, 2, 3], [3, 1, 2]) is None

    def test_detects_missing_and_extra(self):
        m = compare_outputs([1, 2], [2, 9], "x")
        assert m is not None
        assert m.missing == {1: 1}
        assert m.extra == {9: 1}
        assert m.implementation == "x"

    def test_multiset_not_set(self):
        assert compare_outputs([1, 1], [1]) is not None

    def test_unhashable_outputs_normalized(self):
        assert compare_outputs([{"a": 1}], [{"a": 1}]) is None


class TestDiffPlans:
    def test_fuzz_plans_all_match(self):
        prog, streams = kc_streams(seed=3)
        report = fuzz_plans(prog, streams, n_plans=4, seed=1)
        assert report.ok, [str(m) for m in report.mismatches]
        assert report.implementations_checked == 4

    def test_sequential_and_tree_agree(self):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=3, values_per_barrier=30, n_barriers=3)
        streams = vb.make_streams(wl)
        plans = {
            "sequential": sequential_plan(prog, [s.itag for s in streams]),
            "tree": vb.make_plan(prog, wl),
        }
        report = diff_plans(prog, streams, plans)
        assert report.ok

    def test_broken_implementation_flagged(self):
        prog, streams = kc_streams(seed=5)
        report = diff_against_spec(
            prog,
            streams,
            {"liar": lambda: [("nonsense", 0)]},
        )
        assert not report.ok
        assert report.mismatches[0].implementation == "liar"


class TestCrossRuntimeDifferential:
    def test_simulated_threaded_and_spec_agree(self):
        prog, streams = kc_streams(nkeys=2, seed=11)
        from repro.plans import random_valid_plan

        plan = random_valid_plan(
            prog, [s.itag for s in streams], random.Random(2)
        )
        report = diff_against_spec(
            prog,
            streams,
            {
                "threaded": lambda: ThreadedRuntime(prog, plan).run(streams).outputs,
            },
        )
        assert report.ok, [str(m) for m in report.mismatches]
