"""Case study A.2: DEBS'14 smart-home power prediction.

Paper results (one server + NS3 network simulation): latency 44/51/75 ms
(p10/p50/p90), throughput ~104 events/ms, and — thanks to the
optimizer's edge processing — only 362 MB crossing the network out of
29 GB of processed data (~1.2%).

We reproduce the *structure*: predictions at plug/household/house
granularity, end-of-timeslice synchronization, leaves co-located with
their house's data source, and the network-bytes:total-bytes ratio
staying small.
"""

from conftest import quick

from repro.apps import smarthome as sh
from repro.bench import publish, render_table
from repro.runtime import FluminaRuntime
from repro.sim import Topology

QUICK = quick()
N_HOUSES = 8 if QUICK else 20
MEAS_PER_SLICE = 200 if QUICK else 400
N_SLICES = 4
RATE = 50.0


def _run():
    prog = sh.make_program(N_HOUSES)
    houses, ticks, tit = sh.synthetic_plug_load(
        n_houses=N_HOUSES,
        measurements_per_slice=MEAS_PER_SLICE,
        n_slices=N_SLICES,
        rate_per_ms=RATE,
    )
    plan = sh.make_plan(prog, houses, tit)
    topo = Topology.cluster(N_HOUSES)
    # Edge processing: each house's producer is co-located with its
    # leaf worker (the optimizer's placement).
    rt = FluminaRuntime(prog, plan, topology=topo, track_event_latency=True)
    placed = rt.plan
    hosts = {
        itag: placed.owner_of(itag).host for itag in houses
    }
    res = rt.run(
        sh.make_streams(
            houses, ticks, tit, heartbeat_interval=0.5, house_hosts=hosts
        )
    )
    total_bytes = res.events_in * rt.params.bytes_per_event
    return res, total_bytes


def test_smarthome_latency_throughput_network(benchmark):
    res, total_bytes = benchmark.pedantic(_run, rounds=1, iterations=1)
    p10, p50, p90 = res.event_latency_percentiles((10, 50, 90))
    net_frac = res.network.remote_bytes / max(total_bytes, 1)
    text = render_table(
        "Case study A.2 - DEBS'14 power prediction",
        "metric",
        [
            "latency p10 ms",
            "latency p50 ms",
            "latency p90 ms",
            "throughput ev/ms",
            "network/total bytes",
        ],
        {
            "measured": [
                p10,
                p50,
                p90,
                res.throughput_events_per_ms,
                net_frac,
            ],
        },
        note="paper: 44/51/75 ms, 104 ev/ms, 362MB/29GB (~1.2%) over network",
    )
    publish("casestudy_smarthome", text)

    # Shape assertions: stable latency distribution (p90 < 4x p10),
    # sustained throughput, and edge processing keeping the wire share
    # far below the total data volume.
    assert p90 < 6.0 * max(p10, 1e-9)
    assert res.throughput_events_per_ms > 0.5 * RATE * N_HOUSES * 0.5
    assert net_frac < 0.35, net_frac
    # Predictions exist at every granularity.
    kinds = {v[1][0] for v, _, _ in res.outputs if v[0] == "prediction"}
    assert kinds == {"house", "household", "plug"}


def test_smarthome_prediction_quality(benchmark):
    """The historic-average predictor must beat a zero predictor on the
    diurnal synthetic load (sanity that the query logic is real)."""
    res, _ = benchmark.pedantic(_run, rounds=1, iterations=1)
    house_preds = [
        v[2] for v, _, _ in res.outputs if v[0] == "prediction" and v[1][0] == "house"
    ]
    assert house_preds
    # Mean plug base load is ~50-80; predictions must land in range.
    assert 20.0 < sum(house_preds) / len(house_preds) < 120.0
