"""Tests for the synthetic workload generators (§4.1): timestamp
uniqueness/monotonicity (the total order O), ratio preservation, and
the valid-input-instance properties of Definition 3.3 — plus the
adversarial families (repro.data.adversarial): hypothesis-driven
collision-freedom and monotonicity across parameter space, seed
determinism, Zipf head concentration, and the clean rejection of
degenerate parameters."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import fraud, pageview as pv, value_barrier as vb
from repro.core import check_valid_input_instance, stream_is_monotone
from repro.data.adversarial import (
    assert_collision_free,
    flash_crowd_stream,
    late_stream,
    straggler_stream,
    zipf_rank_sequence,
    zipf_streams,
    zipf_weights,
)
from repro.data.generators import uniform_stream
from repro.core.events import ImplTag


class TestUniformStream:
    def test_rate_and_count(self):
        evs = uniform_stream(ImplTag("t", 0), rate_per_ms=10.0, n_events=50)
        assert len(evs) == 50
        gaps = [b.ts - a.ts for a, b in zip(evs, evs[1:])]
        assert all(abs(g - 0.1) < 1e-12 for g in gaps)

    def test_offset_and_payload(self):
        evs = uniform_stream(
            ImplTag("t", 0),
            rate_per_ms=1.0,
            n_events=3,
            offset=0.25,
            payload_fn=lambda i: i * i,
        )
        assert evs[0].ts == pytest.approx(1.25)
        assert [e.payload for e in evs] == [0, 1, 4]

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            uniform_stream(ImplTag("t", 0), rate_per_ms=0.0, n_events=1)

    @pytest.mark.parametrize("n", [0, -3])
    def test_empty_stream_rejected(self, n):
        # Regression: n_events=0 used to return a silently empty
        # stream, hiding workload-construction bugs upstream.
        with pytest.raises(ValueError, match="n_events"):
            uniform_stream(ImplTag("t", 0), rate_per_ms=1.0, n_events=n)


def _all_ts(workload):
    return [e.ts for _, evs in workload.all_streams() for e in evs]


class TestValueBarrierWorkload:
    @pytest.mark.parametrize("rate", [10.0, 50.0, 200.0, 333.0])
    def test_no_timestamp_collisions_at_any_rate(self, rate):
        wl = vb.make_workload(
            n_value_streams=8, values_per_barrier=50, n_barriers=3,
            value_rate_per_ms=rate,
        )
        ts = _all_ts(wl)
        assert len(ts) == len(set(ts)), "timestamp collision breaks the total order O"

    def test_ratio_preserved(self):
        wl = vb.make_workload(
            n_value_streams=3, values_per_barrier=70, n_barriers=4
        )
        for evs in wl.value_streams.values():
            assert len(evs) == 70 * 4
        assert len(wl.barrier_stream) == 4

    def test_values_per_window(self):
        # Exactly values_per_barrier values per stream land in each
        # inter-barrier window.
        wl = vb.make_workload(
            n_value_streams=2, values_per_barrier=25, n_barriers=3,
            value_rate_per_ms=10.0,
        )
        barriers = [b.ts for b in wl.barrier_stream]
        for evs in wl.value_streams.values():
            prev = 0.0
            for bts in barriers:
                n = sum(1 for e in evs if prev < e.ts <= bts)
                assert n == 25
                prev = bts

    def test_streams_monotone(self):
        wl = vb.make_workload(n_value_streams=4, values_per_barrier=20, n_barriers=2)
        for _, evs in wl.all_streams():
            assert stream_is_monotone(evs)

    def test_valid_input_instance_with_heartbeats(self):
        wl = vb.make_workload(n_value_streams=2, values_per_barrier=20, n_barriers=2)
        streams = vb.make_streams(wl)
        # The runtime appends closing heartbeats; emulate Definition 3.3
        # by appending one per stream here.
        from repro.core import Heartbeat

        record_streams = []
        end = max(_all_ts(wl)) + 1.0
        for s in streams:
            record_streams.append(
                list(s.events) + [Heartbeat(s.itag.tag, s.itag.stream, end)]
            )
        assert check_valid_input_instance(record_streams) == []

    def test_total_events(self):
        wl = vb.make_workload(n_value_streams=3, values_per_barrier=10, n_barriers=2)
        assert wl.total_events == 3 * 20 + 2


class TestPageViewWorkload:
    @pytest.mark.parametrize("rate", [10.0, 100.0, 250.0])
    def test_no_timestamp_collisions(self, rate):
        wl = pv.make_workload(
            n_pages=2, n_view_streams=6, views_per_update=30,
            n_updates_per_page=3, view_rate_per_ms=rate,
        )
        ts = _all_ts(wl)
        assert len(ts) == len(set(ts))

    def test_views_skewed_to_pages_round_robin(self):
        wl = pv.make_workload(
            n_pages=2, n_view_streams=6, views_per_update=10, n_updates_per_page=2
        )
        pages = [itag.tag[1] for itag in wl.view_streams]
        assert pages == [0, 1, 0, 1, 0, 1]

    def test_update_streams_one_per_page(self):
        wl = pv.make_workload(
            n_pages=3, n_view_streams=3, views_per_update=10, n_updates_per_page=2
        )
        assert len(wl.update_streams) == 3
        assert {itag.tag[1] for itag in wl.update_streams} == {0, 1, 2}

    def test_fraud_workload_payloads(self):
        wl = fraud.make_workload(n_txn_streams=2, txns_per_rule=10, n_rules=2)
        vals = [e.payload for evs in wl.value_streams.values() for e in evs]
        assert all(isinstance(v, int) and 0 <= v < 5000 for v in vals)
        rules = [e.payload for e in wl.barrier_stream]
        assert rules == [29, 58]


# -- adversarial families -----------------------------------------------------


def _itags(n):
    return [ImplTag("v", f"s{i}") for i in range(n)]


def _family_offsets(n, quantum):
    return [(s + 1) * quantum / (n + 2) for s in range(n)]


class TestZipfProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_weights_normalized_and_monotone(self, n, alpha):
        w = zipf_weights(n, alpha)
        assert len(w) == n
        assert sum(w) == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(w, w[1:]))  # head-heavy

    @given(
        st.integers(min_value=3, max_value=6),
        st.integers(min_value=20, max_value=200),
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_streams_collision_free_and_monotone(self, n_streams, n_events, alpha, seed):
        streams = zipf_streams(
            _itags(n_streams),
            n_events=max(n_events, n_streams),
            alpha=alpha,
            rate_per_ms=7.0,
            seed=seed,
        )
        assert_collision_free(streams)  # raises on violation
        assert all(len(evs) >= 1 for evs in streams.values())
        assert sum(len(evs) for evs in streams.values()) == max(
            n_events, n_streams
        )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_head_concentration(self, seed):
        """With real skew and enough mass, the head stream carries more
        traffic than the tail stream — the whole point of the shape."""
        streams = zipf_streams(
            _itags(4), n_events=400, alpha=1.5, rate_per_ms=1.0, seed=seed
        )
        counts = [len(evs) for evs in streams.values()]
        assert counts[0] > counts[-1]
        assert counts[0] > 400 // 4  # strictly above the uniform share

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_seed_determinism(self, seed):
        a = zipf_streams(_itags(3), n_events=50, alpha=1.0, rate_per_ms=2.0, seed=seed)
        b = zipf_streams(_itags(3), n_events=50, alpha=1.0, rate_per_ms=2.0, seed=seed)
        assert a == b
        ranks = zipf_rank_sequence(40, 4, alpha=1.0, seed=seed)
        assert ranks == zipf_rank_sequence(40, 4, alpha=1.0, seed=seed)
        assert all(0 <= r < 4 for r in ranks)

    def test_degenerate_parameters_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError, match="alpha"):
            zipf_weights(3, -0.1)
        with pytest.raises(ValueError, match="cover"):
            zipf_streams(_itags(5), n_events=3, alpha=1.0, rate_per_ms=1.0, seed=0)


class TestFlashCrowdProperties:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=10, max_value=80),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_family_collision_free(self, n_streams, n_events, spike_factor, seed):
        import random as _random

        rng = _random.Random(seed)
        period = 1.0 / 4.0
        quantum = period / spike_factor
        span = n_events * period
        spike_start = 1.0 + rng.uniform(0.1, 0.6) * span
        spike_width = rng.uniform(0.05, 0.4) * span
        streams = {
            itag: flash_crowd_stream(
                itag,
                n_events=n_events,
                base_rate_per_ms=4.0,
                spike_factor=spike_factor,
                spike_start_ms=spike_start,
                spike_width_ms=spike_width,
                offset=off,
            )
            for itag, off in zip(
                _itags(n_streams), _family_offsets(n_streams, quantum)
            )
        }
        assert_collision_free(streams)

    def test_spike_compresses_gaps(self):
        evs = flash_crowd_stream(
            ImplTag("v", 0),
            n_events=60,
            base_rate_per_ms=1.0,
            spike_factor=5,
            spike_start_ms=20.0,
            spike_width_ms=10.0,
        )
        gaps_in = [
            b.ts - a.ts
            for a, b in zip(evs, evs[1:])
            if 20.0 <= a.ts < 30.0
        ]
        gaps_out = [
            b.ts - a.ts for a, b in zip(evs, evs[1:]) if a.ts < 20.0
        ]
        assert gaps_in and gaps_out
        assert max(gaps_in) == pytest.approx(0.2)  # period / spike_factor
        assert min(gaps_out) == pytest.approx(1.0)

    def test_zero_width_window_rejected(self):
        with pytest.raises(ValueError, match="zero-width"):
            flash_crowd_stream(
                ImplTag("v", 0),
                n_events=5,
                base_rate_per_ms=1.0,
                spike_factor=3,
                spike_start_ms=2.0,
                spike_width_ms=0.0,
            )
        with pytest.raises(ValueError, match="spike_factor"):
            flash_crowd_stream(
                ImplTag("v", 0),
                n_events=5,
                base_rate_per_ms=1.0,
                spike_factor=0,
                spike_start_ms=2.0,
                spike_width_ms=1.0,
            )


class TestStragglerProperties:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=4, max_value=60),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_family_collision_free_with_uniform_peers(
        self, n_streams, n_events, seed
    ):
        import random as _random

        rng = _random.Random(seed)
        period = 1.0 / 2.0
        offs = _family_offsets(n_streams, period)
        victim = rng.randrange(n_streams)
        streams = {}
        for s, (itag, off) in enumerate(zip(_itags(n_streams), offs)):
            if s == victim:
                streams[itag] = straggler_stream(
                    itag,
                    n_events=n_events,
                    rate_per_ms=2.0,
                    pause_after=rng.randint(1, n_events - 1),
                    lag_ms=rng.uniform(0.01, 0.99) * n_events * period,
                    offset=off,
                )
            else:
                streams[itag] = uniform_stream(
                    itag, rate_per_ms=2.0, n_events=n_events, offset=off
                )
        assert_collision_free(streams)

    def test_pause_creates_the_lag(self):
        evs = straggler_stream(
            ImplTag("v", 0),
            n_events=10,
            rate_per_ms=1.0,
            pause_after=4,
            lag_ms=3.2,
        )
        gaps = [b.ts - a.ts for a, b in zip(evs, evs[1:])]
        # Lag quantizes up to whole periods: ceil(3.2) = 4 extra periods.
        assert gaps[3] == pytest.approx(5.0)
        assert all(g == pytest.approx(1.0) for i, g in enumerate(gaps) if i != 3)

    def test_degenerate_parameters_rejected(self):
        common = dict(n_events=10, rate_per_ms=1.0)
        with pytest.raises(ValueError, match="pause_after"):
            straggler_stream(ImplTag("v", 0), pause_after=0, lag_ms=1.0, **common)
        with pytest.raises(ValueError, match="pause_after"):
            straggler_stream(ImplTag("v", 0), pause_after=10, lag_ms=1.0, **common)
        with pytest.raises(ValueError, match="lag_ms"):
            straggler_stream(ImplTag("v", 0), pause_after=3, lag_ms=0.0, **common)
        # A lag longer than the stream span is a dead source, not a
        # straggler — rejected instead of silently outliving the run.
        with pytest.raises(ValueError, match="exceeds the stream span"):
            straggler_stream(ImplTag("v", 0), pause_after=3, lag_ms=11.0, **common)


class TestLateStreamProperties:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=5, max_value=80),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_family_monotone_collision_free_and_bounded(
        self, n_streams, n_events, max_disorder, seed
    ):
        period = 1.0
        grid = 8
        quantum = period / grid
        streams = {
            itag: late_stream(
                itag,
                n_events=n_events,
                rate_per_ms=1.0,
                max_disorder_ms=max_disorder,
                seed=seed + s,
                grid=grid,
                offset=off,
            )
            for s, (itag, off) in enumerate(
                zip(_itags(n_streams), _family_offsets(n_streams, quantum))
            )
        }
        assert_collision_free(streams)
        # Lateness is bounded: no event time ever trails its uniform
        # delivery slot by more than the disorder bound.
        for s, (itag, off) in enumerate(
            zip(streams, _family_offsets(n_streams, quantum))
        ):
            for i, e in enumerate(streams[itag]):
                slot = 1.0 + i * period + off
                assert slot - e.ts <= max_disorder + 1e-9
                assert e.ts <= slot + 1e-9

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_seed_determinism_and_actual_disorder(self, seed):
        kw = dict(n_events=60, rate_per_ms=1.0, max_disorder_ms=4.0, seed=seed)
        a = late_stream(ImplTag("v", 0), **kw)
        assert a == late_stream(ImplTag("v", 0), **kw)
        # With a generous bound some event is genuinely late (a pure
        # uniform stream would make the family a silent no-op).
        assert any(
            e.ts < 1.0 + i * 1.0 for i, e in enumerate(a)
        ), "no event was ever delivered late"

    def test_degenerate_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_disorder_ms"):
            late_stream(
                ImplTag("v", 0),
                n_events=5,
                rate_per_ms=1.0,
                max_disorder_ms=-1.0,
                seed=0,
            )
        with pytest.raises(ValueError, match="grid"):
            late_stream(
                ImplTag("v", 0),
                n_events=5,
                rate_per_ms=1.0,
                max_disorder_ms=1.0,
                seed=0,
                grid=1,
            )


class TestAssertCollisionFree:
    def test_accepts_disjoint_lattices(self):
        a = uniform_stream(ImplTag("v", 0), rate_per_ms=1.0, n_events=5, offset=0.25)
        b = uniform_stream(ImplTag("v", 1), rate_per_ms=1.0, n_events=5, offset=0.5)
        assert_collision_free({ImplTag("v", 0): a, ImplTag("v", 1): b})

    def test_rejects_cross_stream_collision(self):
        a = uniform_stream(ImplTag("v", 0), rate_per_ms=1.0, n_events=5)
        with pytest.raises(ValueError, match="collision"):
            assert_collision_free({ImplTag("v", 0): a, ImplTag("v", 1): a})

    def test_rejects_non_monotone_stream(self):
        from repro.core import Event

        evs = (
            Event("v", 0, 2.0, None),
            Event("v", 0, 1.0, None),
        )
        with pytest.raises(ValueError, match="strictly increasing"):
            assert_collision_free({ImplTag("v", 0): evs})
