"""Compact wire encoding for runtime messages.

The process runtime ships protocol messages across OS-process
boundaries through ``multiprocessing`` queues, which pickle every
payload.  Pickling the message dataclasses directly works but spends
most of the bytes on class metadata; encoding each message as a small
tuple headed by an integer type code roughly halves the serialized
size and sidesteps dataclass-pickling quirks across Python versions.

Messages travel in *batches* (lists of encoded tuples) so producers
and workers amortize one queue operation — one pickle, one pipe write,
one wakeup — over many messages; see
:class:`repro.runtime.process.ProcessRuntime` for the batching policy.

Event payloads and join/fork states are application data and pass
through unencoded: they must be picklable (every app in
:mod:`repro.apps` uses ints, tuples, and dicts).
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from ..core.errors import RuntimeFault
from ..core.events import Event, ImplTag
from .messages import EventMsg, ForkStateMsg, HeartbeatMsg, JoinRequest, JoinResponse

# Type codes: one small int per message kind.
_EVENT = 0
_HEARTBEAT = 1
_JOIN_REQ = 2
_JOIN_RESP = 3
_FORK = 4

WireMsg = Tuple[Any, ...]


def encode_msg(msg: Any) -> WireMsg:
    """Encode one protocol message as a compact tuple."""
    if isinstance(msg, EventMsg):
        e = msg.event
        return (_EVENT, e.tag, e.stream, e.ts, e.payload)
    if isinstance(msg, HeartbeatMsg):
        return (_HEARTBEAT, msg.itag.tag, msg.itag.stream, msg.key)
    if isinstance(msg, JoinRequest):
        return (
            _JOIN_REQ,
            msg.req_id,
            msg.itag.tag,
            msg.itag.stream,
            msg.key,
            msg.reply_to,
            msg.side,
        )
    if isinstance(msg, JoinResponse):
        return (_JOIN_RESP, msg.req_id, msg.side, msg.state, msg.state_size, msg.backlog)
    if isinstance(msg, ForkStateMsg):
        return (_FORK, msg.req_id, msg.state, msg.state_size)
    raise RuntimeFault(f"cannot wire-encode {msg!r}")


def decode_msg(wire: WireMsg) -> Any:
    """Inverse of :func:`encode_msg`."""
    code = wire[0]
    if code == _EVENT:
        return EventMsg(Event(wire[1], wire[2], wire[3], wire[4]))
    if code == _HEARTBEAT:
        return HeartbeatMsg(ImplTag(wire[1], wire[2]), tuple(wire[3]))
    if code == _JOIN_REQ:
        return JoinRequest(
            tuple(wire[1]), ImplTag(wire[2], wire[3]), tuple(wire[4]), wire[5], wire[6]
        )
    if code == _JOIN_RESP:
        # len guard: tolerate pre-backlog encodings (recorded traces).
        backlog = wire[5] if len(wire) > 5 else 0
        return JoinResponse(tuple(wire[1]), wire[2], wire[3], wire[4], backlog)
    if code == _FORK:
        return ForkStateMsg(tuple(wire[1]), wire[2], wire[3])
    raise RuntimeFault(f"unknown wire type code {code!r}")


def encode_batch(msgs: Sequence[Any]) -> List[WireMsg]:
    return [encode_msg(m) for m in msgs]


def decode_batch(batch: Sequence[WireMsg]) -> List[Any]:
    return [decode_msg(w) for w in batch]
