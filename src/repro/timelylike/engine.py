"""A mini Timely-Dataflow-style engine on the cluster simulator (§4.2).

Faithful to the properties the paper leans on:

* **epoch batching** — "it is inherent to the computational model that
  events are batched by logical timestamp"; our unit of work is a
  *batch* of events per (stage, epoch), so per-message overheads are
  amortized and absolute throughput is much higher than the
  record-at-a-time engines (as in the paper's Figure 4, bottom);
* **workers, not operator shards** — like Timely, each of the W worker
  threads runs *every* stage on its shard of the data; exchanges and
  broadcasts move batches between workers;
* **progress tracking** — each upstream (stage, worker) sends exactly
  one batch per epoch per downstream worker (possibly empty), so a
  stage fires for epoch ``e`` once all its expected channels have
  reported — a specialization of Timely's frontier mechanism to
  epoch-synchronous dataflows;
* **feedback loops** — a stage may route output to an earlier stage at
  ``epoch + 1`` (the ``scope.feedback`` of the paper's Figure 17),
  which is what lets fraud detection scale on Timely but not on Flink.

A stage function receives ``(worker, epoch, inputs_by_channel)`` and
returns routed batches; routing is ``("send", stage, dst_worker,
items)``, ``("broadcast", stage, items)``, ``("output", items)`` or
``("feedback", stage, items)`` (delivered at ``epoch + 1``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import RuntimeFault
from ..sim.actors import Actor, ActorSystem
from ..sim.core import Simulator
from ..sim.network import NetworkStats, Topology
from ..sim.params import DEFAULT_PARAMS, SimParams

StageFn = Callable[["TimelyWorker", int, Dict[str, List[Any]]], List[Tuple]]


@dataclass(frozen=True)
class StageDef:
    """One dataflow stage.

    ``inputs`` maps channel name -> number of batches expected per
    epoch on that channel (e.g. an exchange input expects one batch
    from every worker).  ``fn`` runs once per epoch once all inputs
    arrived.  ``feedback_channels`` are channels fed from a later stage
    at epoch+1; epoch 0 uses ``initial`` for them.
    """

    name: str
    inputs: Dict[str, int]
    fn: StageFn
    feedback_initial: Dict[str, List[Any]] = field(default_factory=dict)


@dataclass(frozen=True)
class _Batch:
    stage: str
    channel: str
    epoch: int
    items: Tuple[Any, ...]
    ts: float  # event-time of the epoch (for latency accounting)


class TimelyWorker(Actor):
    """One Timely worker: runs every stage on its data shard."""

    def __init__(
        self,
        name: str,
        host: str,
        index: int,
        job: "TimelyJob",
    ) -> None:
        super().__init__(name, host)
        self.index = index
        self.job = job
        self.state: Dict[str, Any] = {}  # per-stage user state
        # (stage, epoch) -> {channel: [items...]}, plus arrival counts.
        self._inbox: Dict[Tuple[str, int], Dict[str, List[Any]]] = {}
        self._counts: Dict[Tuple[str, int], int] = {}
        self._epoch_ts: Dict[int, float] = {}

    def service_time(self, msg: Any) -> float:
        p = self.system.params
        if isinstance(msg, _Batch):
            # One deserialization overhead per batch + per-item CPU.
            return p.recv_overhead_ms + len(msg.items) * p.cpu_per_event_ms
        return p.recv_overhead_ms

    def handle(self, msg: Any, sender: Optional[str]) -> None:
        if not isinstance(msg, _Batch):
            raise RuntimeFault(f"timely worker got {msg!r}")
        self._epoch_ts[msg.epoch] = max(
            self._epoch_ts.get(msg.epoch, 0.0), msg.ts
        )
        key = (msg.stage, msg.epoch)
        box = self._inbox.setdefault(key, {})
        box.setdefault(msg.channel, []).extend(msg.items)
        self._counts[key] = self._counts.get(key, 0) + 1
        stage = self.job.stages[msg.stage]
        expected = sum(stage.inputs.values())
        if self._counts[key] >= expected:
            self._fire(stage, msg.epoch, box)
            del self._inbox[key]
            del self._counts[key]

    def _seed_feedback(self, stage: StageDef, epoch: int) -> None:
        if epoch == 0 and stage.feedback_initial:
            key = (stage.name, 0)
            box = self._inbox.setdefault(key, {})
            for channel, items in stage.feedback_initial.items():
                box.setdefault(channel, []).extend(items)
                self._counts[key] = self._counts.get(key, 0) + 1
            stage_expected = sum(stage.inputs.values())
            if self._counts.get(key, 0) >= stage_expected:
                self._fire(stage, 0, box)
                del self._inbox[key]
                self._counts.pop(key, None)

    def _fire(self, stage: StageDef, epoch: int, inputs: Dict[str, List[Any]]) -> None:
        self.job.batches_processed += 1
        for channel in stage.inputs:
            inputs.setdefault(channel, [])
        routes = stage.fn(self, epoch, inputs)
        ts = self._epoch_ts.get(epoch, 0.0)
        for route in routes or []:
            kind = route[0]
            if kind == "send":
                _, dst_stage, dst_worker, items = route
                self._ship(dst_stage, "in", dst_worker, epoch, items, ts)
            elif kind == "send_ch":
                _, dst_stage, channel, dst_worker, items = route
                self._ship(dst_stage, channel, dst_worker, epoch, items, ts)
            elif kind == "broadcast":
                _, dst_stage, channel, items = route
                for w in range(self.job.n_workers):
                    self._ship(dst_stage, channel, w, epoch, items, ts)
            elif kind == "feedback":
                _, dst_stage, channel, items = route
                for w in range(self.job.n_workers):
                    self._ship(dst_stage, channel, w, epoch + 1, items, ts)
            elif kind == "output":
                _, items = route
                for item in items:
                    self.job.outputs.append((item, self.now, self.now - ts))
            else:  # pragma: no cover - defensive
                raise RuntimeFault(f"unknown route {route!r}")

    def _ship(
        self, stage: str, channel: str, dst_worker: int, epoch: int, items, ts: float
    ) -> None:
        self.send(
            self.job.worker_name(dst_worker),
            _Batch(stage, channel, epoch, tuple(items), ts),
            units=max(1, len(items)),
        )


@dataclass
class TimelyResult:
    outputs: List[Tuple[Any, float, float]]
    duration_ms: float
    last_input_ms: float
    events_in: int
    batches_processed: int
    network: NetworkStats
    host_utilization: Dict[str, float]

    def output_values(self) -> List[Any]:
        return [v for v, _, _ in self.outputs]

    def latencies(self) -> List[float]:
        return [lat for _, _, lat in self.outputs]

    def latency_percentiles(self, qs: Sequence[float] = (10, 50, 90)) -> List[float]:
        lats = self.latencies()
        if not lats:
            return [math.nan for _ in qs]
        return [float(p) for p in np.percentile(lats, qs)]

    @property
    def input_span_ms(self) -> float:
        return max(self.last_input_ms, 1e-9)

    @property
    def throughput_events_per_ms(self) -> float:
        return self.events_in / self.duration_ms if self.duration_ms > 0 else 0.0


class TimelyJob:
    """An epoch-synchronous dataflow over ``n_workers`` workers."""

    def __init__(
        self,
        n_workers: int,
        *,
        topology: Optional[Topology] = None,
        params: SimParams = DEFAULT_PARAMS,
    ) -> None:
        self.n_workers = n_workers
        self.topology = topology or Topology.cluster(n_workers, params=params)
        self.sim = Simulator()
        self.system = ActorSystem(self.sim, self.topology)
        self.stages: Dict[str, StageDef] = {}
        self.outputs: List[Tuple[Any, float, float]] = []
        self.batches_processed = 0
        self._events_in = 0
        hosts = self.topology.host_names()
        self.workers = [
            TimelyWorker(self.worker_name(i), hosts[i % len(hosts)], i, self)
            for i in range(n_workers)
        ]
        for w in self.workers:
            self.system.add(w)

    @staticmethod
    def worker_name(i: int) -> str:
        return f"timely[{i}]"

    def add_stage(self, stage: StageDef) -> None:
        if stage.name in self.stages:
            raise RuntimeFault(f"duplicate stage {stage.name!r}")
        self.stages[stage.name] = stage

    def feed(
        self,
        stage: str,
        channel: str,
        *,
        batches: Sequence[Sequence[Sequence[Any]]],
        epoch_times: Sequence[float],
    ) -> None:
        """Inject source batches: ``batches[worker][epoch]`` is the list
        of items worker ``worker`` receives for that epoch; the batch
        departs its producer at ``epoch_times[epoch]`` (the moment the
        epoch closes at the source)."""
        if len(batches) != self.n_workers:
            raise RuntimeFault("need one batch list per worker")
        self._last_input = getattr(self, "_last_input", 0.0)
        if epoch_times:
            self._last_input = max(self._last_input, max(epoch_times))
        for w, per_epoch in enumerate(batches):
            for epoch, items in enumerate(per_epoch):
                self._events_in += len(items)
                self.system.inject(
                    self.worker_name(w),
                    _Batch(stage, channel, epoch, tuple(items), epoch_times[epoch]),
                    at=epoch_times[epoch],
                    units=max(1, len(items)),
                )

    def run(self, *, max_sim_events: int = 50_000_000) -> TimelyResult:
        for w in self.workers:
            for stage in self.stages.values():
                w._seed_feedback(stage, 0)
        self.sim.run(max_events=max_sim_events)
        duration = max(self.sim.now, self.system.last_completion)
        util = {
            name: host.utilization(duration) if duration > 0 else 0.0
            for name, host in self.topology.hosts.items()
        }
        return TimelyResult(
            outputs=list(self.outputs),
            duration_ms=duration,
            last_input_ms=getattr(self, "_last_input", 0.0),
            events_in=self._events_in,
            batches_processed=self.batches_processed,
            network=self.topology.stats,
            host_utilization=util,
        )
