"""Case study A.1: Reloaded-style distributed streaming outlier
detection on a mixed-attribute dataset.

The Reloaded algorithm's structure (Otey et al.): each input stream is
consumed by an independent worker maintaining a *local* statistical
model of the distribution; when an outlier-request event arrives, the
workers' models are merged into a *global* model, against which
candidate points are scored and definitively flagged.  Structurally
this is the fraud-detection synchronization pattern: connection events
are independent across (and within) streams; query events depend on
everything.

Substitutions (DESIGN.md): the KDDCUP'99 trace is replaced by a
synthetic mixed-attribute generator with injected anomalies
(:func:`synthetic_connections`); and candidate pre-filtering uses a
fixed threshold rather than the evolving local model so that updates on
independent events commute exactly (C3) — the paper's candidate set is
a heuristic superset either way, and the *final* decisions still use
the merged global model.

State: mergeable moment sketches per numeric feature (count/sum/sum of
squares — exactly Chan et al.'s parallel variance), categorical value
counts, and the candidate pool keyed by a unique event id.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Tuple

from ..core.dependence import DependenceRelation
from ..core.events import Event, ImplTag
from ..core.predicates import TagPredicate
from ..core.program import DGSProgram, single_state_program
from ..plans.generation import root_and_leaves_plan
from ..plans.plan import SyncPlan
from ..runtime.runtime import InputStream

CONN_TAG = "conn"
QUERY_TAG = "query"
TAGS = (CONN_TAG, QUERY_TAG)

N_NUMERIC = 3  # numeric features per connection record
CANDIDATE_THRESHOLD = 6.0  # pre-filter on the raw feature magnitude
ZSCORE_THRESHOLD = 3.0  # definitive outlier score vs the global model

# State: (count, sums, sumsqs, category_counts, candidates)
OutlierState = Tuple[int, Tuple[float, ...], Tuple[float, ...], Dict[str, int], Dict[int, tuple]]


def depends_fn(t1, t2) -> bool:
    return QUERY_TAG in (t1, t2)


def init_state() -> OutlierState:
    zeros = tuple(0.0 for _ in range(N_NUMERIC))
    return (0, zeros, zeros, {}, {})


def _is_candidate(features: Tuple[float, ...]) -> bool:
    return any(abs(x) > CANDIDATE_THRESHOLD for x in features)


def _update(state: OutlierState, event: Event) -> Tuple[OutlierState, List[Any]]:
    count, sums, sumsqs, cats, cands = state
    if event.tag == CONN_TAG:
        uid, features, proto = event.payload
        new_sums = tuple(s + x for s, x in zip(sums, features))
        new_sumsqs = tuple(q + x * x for q, x in zip(sumsqs, features))
        new_cats = dict(cats)
        new_cats[proto] = new_cats.get(proto, 0) + 1
        new_cands = cands
        if _is_candidate(features):
            new_cands = dict(cands)
            new_cands[uid] = (event.ts, features)
        return (count + 1, new_sums, new_sumsqs, new_cats, new_cands), []
    # Query: score candidates against the (merged) global model.
    outs: List[Any] = []
    if count > 1:
        means = tuple(s / count for s in sums)
        variances = tuple(
            max(q / count - m * m, 1e-12) for q, m in zip(sumsqs, means)
        )
        for uid, (ts, features) in sorted(cands.items()):
            score = max(
                abs(x - m) / math.sqrt(v)
                for x, m, v in zip(features, means, variances)
            )
            if score > ZSCORE_THRESHOLD:
                outs.append(("outlier", uid, round(score, 3)))
    return (count, sums, sumsqs, cats, {}), outs


def _fork(
    state: OutlierState, pred1: TagPredicate, pred2: TagPredicate
) -> Tuple[OutlierState, OutlierState]:
    # The query-processing side keeps the accumulated model and the
    # candidate pool; the other side starts a fresh local model.
    if QUERY_TAG in pred2 and QUERY_TAG not in pred1:
        return init_state(), state
    return state, init_state()


def _join(s1: OutlierState, s2: OutlierState) -> OutlierState:
    c1, sums1, sq1, cats1, cands1 = s1
    c2, sums2, sq2, cats2, cands2 = s2
    cats = dict(cats1)
    for k, v in cats2.items():
        cats[k] = cats.get(k, 0) + v
    cands = dict(cands1)
    cands.update(cands2)
    return (
        c1 + c2,
        tuple(a + b for a, b in zip(sums1, sums2)),
        tuple(a + b for a, b in zip(sq1, sq2)),
        cats,
        cands,
    )


def state_eq(a: OutlierState, b: OutlierState) -> bool:
    return (
        a[0] == b[0]
        and all(abs(x - y) < 1e-9 for x, y in zip(a[1], b[1]))
        and all(abs(x - y) < 1e-9 for x, y in zip(a[2], b[2]))
        and a[3] == b[3]
        and a[4] == b[4]
    )


def make_program() -> DGSProgram:
    return single_state_program(
        name="outlier-detection",
        tags=TAGS,
        depends=DependenceRelation.from_function(TAGS, depends_fn),
        init=init_state,
        update=_update,
        fork=_fork,
        join=_join,
    )


PROTOCOLS = ("tcp", "udp", "icmp")


def synthetic_connections(
    *,
    n_streams: int,
    conns_per_query: int,
    n_queries: int,
    rate_per_ms: float,
    outlier_fraction: float = 0.01,
    seed: int = 0,
) -> Tuple[Dict[ImplTag, Tuple[Event, ...]], Tuple[Event, ...], ImplTag]:
    """KDD-like synthetic workload: normal records ~ N(0,1) features,
    outliers shifted by ~8 sigma, protocol drawn categorically."""
    rng = random.Random(seed)
    period = 1.0 / rate_per_ms
    streams: Dict[ImplTag, Tuple[Event, ...]] = {}
    uid = 0
    n_conns = conns_per_query * n_queries
    for s in range(n_streams):
        itag = ImplTag(CONN_TAG, f"c{s}")
        events = []
        for i in range(n_conns):
            ts = 1.0 + i * period + (s + 1) * 1e-3
            if rng.random() < outlier_fraction:
                features = tuple(rng.gauss(8.0, 1.0) for _ in range(N_NUMERIC))
            else:
                features = tuple(rng.gauss(0.0, 1.0) for _ in range(N_NUMERIC))
            proto = PROTOCOLS[rng.randrange(len(PROTOCOLS))]
            events.append(Event(CONN_TAG, itag.stream, ts, (uid, features, proto)))
            uid += 1
        streams[itag] = tuple(events)
    q_itag = ImplTag(QUERY_TAG, "q")
    gap = conns_per_query * period
    queries = tuple(
        Event(QUERY_TAG, "q", 1.0 + k * gap) for k in range(1, n_queries + 1)
    )
    return streams, queries, q_itag


def make_streams(
    conn_streams: Dict[ImplTag, Tuple[Event, ...]],
    queries: Tuple[Event, ...],
    q_itag: ImplTag,
    *,
    heartbeat_interval: float = 1.0,
) -> List[InputStream]:
    out = [
        InputStream(itag, events, heartbeat_interval=heartbeat_interval)
        for itag, events in conn_streams.items()
    ]
    out.append(InputStream(q_itag, queries, heartbeat_interval=heartbeat_interval))
    return out


def make_plan(
    program: DGSProgram,
    conn_streams: Dict[ImplTag, Tuple[Event, ...]],
    q_itag: ImplTag,
) -> SyncPlan:
    """Queries at the root, one leaf per connection stream — the
    Reloaded deployment (one worker per stream, merge on demand)."""
    return root_and_leaves_plan(
        program, [q_itag], [[itag] for itag in conn_streams]
    )
