"""Smoke tests: every example script runs to completion and reports
that its outputs match the sequential specification."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_and_validates(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    out = proc.stdout
    # Every example prints at least one spec-equivalence check; none
    # may report a mismatch.
    if "match" in out.lower():
        assert "False" not in out, out[-2000:]


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable: at least three examples
