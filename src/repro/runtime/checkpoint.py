"""State checkpointing (paper Appendix D.2).

In Flumina a consistent snapshot of the distributed state is free:
whenever the root has joined its descendants' states, the joined value
*is* the global state as of the triggering event's timestamp.  The
runtime exposes this as a ``checkpoint_predicate`` hook — called at
every root join with the triggering event and the number of snapshots
taken so far — and this module provides the standard policies plus a
restore helper used by the fault-recovery tests.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

from ..core.events import Event
from ..core.program import DGSProgram

CheckpointPredicate = Callable[[Event, int], bool]


def every_root_join() -> CheckpointPredicate:
    """Snapshot at every root join (the paper's default instantiation)."""
    return lambda event, count: True


def every_nth_join(n: int) -> CheckpointPredicate:
    """Snapshot at every n-th root join."""
    if n < 1:
        raise ValueError("n must be >= 1")
    counter = {"seen": 0}

    def pred(event: Event, count: int) -> bool:
        counter["seen"] += 1
        return counter["seen"] % n == 0

    return pred


def by_timestamp_interval(interval: float) -> CheckpointPredicate:
    """Snapshot when at least ``interval`` timestamp units have passed
    since the previous snapshot."""
    if interval <= 0:
        raise ValueError("interval must be positive")
    last = {"ts": float("-inf")}

    def pred(event: Event, count: int) -> bool:
        if event.ts - last["ts"] >= interval:
            last["ts"] = event.ts
            return True
        return False

    return pred


def recover(
    program: DGSProgram,
    checkpoint_state: Any,
    replay_events: Sequence[Event],
) -> Tuple[Any, List[Any]]:
    """Resume computation from a snapshot: apply the sequential update
    to the events after the checkpoint (sorted by the order relation),
    returning the final state and the replayed outputs.

    This models crash recovery: a restarted deployment loads the
    snapshot and replays its input log suffix.
    """
    st = program.state_type(program.initial_type)
    state = checkpoint_state
    outputs: List[Any] = []
    for event in sorted(replay_events, key=lambda e: e.order_key):
        state, outs = st.update(state, event)
        outputs.extend(outs)
    return state, outputs
