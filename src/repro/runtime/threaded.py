"""A real-thread execution of synchronization plans.

The simulated runtime measures performance; this module executes the
*same protocol* (selective-reordering mailboxes, join/fork worker state
machine, heartbeat relay) on actual ``threading`` threads with FIFO
queues — demonstrating that the design runs on a genuinely concurrent
substrate, and giving the test suite a second, independent
implementation to check against the sequential specification.

Python's GIL means this is about concurrency correctness, not speedup
(the paper's throughput claims are reproduced on the simulator; see
DESIGN.md).

Termination: producers enqueue all events plus closing heartbeats; a
global in-flight message counter reaches zero only when every queue has
drained and no handler is running, at which point stop sentinels are
delivered.
"""

from __future__ import annotations

import queue
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import RuntimeFault
from ..core.events import Event, ImplTag
from ..core.program import DGSProgram
from ..plans.plan import PlanNode, SyncPlan
from ..plans.validity import assert_p_valid
from .mailbox import Buffered, Mailbox
from .messages import EventMsg, ForkStateMsg, HeartbeatMsg, JoinRequest, JoinResponse
from .runtime import InputStream

_STOP = object()


@dataclass
class ThreadedResult:
    outputs: List[Any] = field(default_factory=list)
    joins: int = 0
    events_processed: int = 0

    def output_multiset(self) -> Counter:
        return Counter(map(repr, self.outputs))


class _Router:
    """Message fabric: per-worker FIFO queues + in-flight accounting."""

    def __init__(self) -> None:
        self.queues: Dict[str, "queue.Queue[Any]"] = {}
        self._inflight = 0
        self._lock = threading.Lock()
        self.idle = threading.Event()
        self.idle.set()  # vacuously idle until the first post

    def register(self, name: str) -> "queue.Queue[Any]":
        q: "queue.Queue[Any]" = queue.Queue()
        self.queues[name] = q
        return q

    def post(self, dst: str, msg: Any) -> None:
        with self._lock:
            self._inflight += 1
            self.idle.clear()
        self.queues[dst].put(msg)

    def done(self) -> None:
        with self._lock:
            self._inflight -= 1
            if self._inflight == 0:
                self.idle.set()

    def stop_all(self) -> None:
        for q in self.queues.values():
            q.put(_STOP)


class _ThreadedWorker(threading.Thread):
    """One plan worker on its own thread — the WorkerActor state
    machine without the simulator."""

    def __init__(
        self,
        node: PlanNode,
        plan: SyncPlan,
        program: DGSProgram,
        router: _Router,
        result: ThreadedResult,
        result_lock: threading.Lock,
    ) -> None:
        super().__init__(name=f"worker:{node.id}", daemon=True)
        self.node = node
        self.plan = plan
        self.program = program
        self.router = router
        self.result = result
        self.result_lock = result_lock
        self.inbox = router.register(node.id)

        ancestors = plan.ancestors_of(node.id)
        known = set(node.itags)
        for anc in ancestors:
            known |= plan.node(anc).itags
        self.mailbox = Mailbox(known, program.depends)
        self.is_leaf = node.is_leaf
        st = program.state_type(node.state_type)
        self.update = st.update
        if not self.is_leaf:
            left, right = node.children
            self.join_fn = program.join_for(left.state_type, right.state_type, node.state_type)
            self.fork_fn = program.fork_for(node.state_type, left.state_type, right.state_type)
            tags_l = {t.tag for t in plan.subtree_itags(left.id)}
            tags_r = {t.tag for t in plan.subtree_itags(right.id)}
            self.pred_left = program.true_pred().restrict(tags_l)
            self.pred_right = program.true_pred().restrict(tags_r)
            self.children = (left.id, right.id)
        parent = plan.parent_of(node.id)
        self.parent_id = parent.id if parent else None

        self.state: Any = None
        self.has_state = self.is_leaf
        self.pending: List[Buffered] = []
        self.blocked = False
        self._join_seq = 0
        self._current: Optional[Tuple[Tuple[str, int], Any, Dict[str, Any]]] = None
        self._absorb_restore: Optional[Tuple[str, int]] = None
        self._last_relayed: Dict[ImplTag, Any] = {}
        self._inflight_tags: Dict[ImplTag, int] = {}

    # -- thread loop -----------------------------------------------------
    def run(self) -> None:
        while True:
            msg = self.inbox.get()
            if msg is _STOP:
                return
            try:
                self._handle(msg)
            finally:
                self.router.done()

    def _handle(self, msg: Any) -> None:
        if isinstance(msg, EventMsg):
            self._enqueue(self.mailbox.insert(msg.event.itag, msg.event.order_key, msg))
        elif isinstance(msg, HeartbeatMsg):
            self._enqueue(self.mailbox.advance(msg.itag, msg.key))
        elif isinstance(msg, JoinRequest):
            self._enqueue(self.mailbox.insert(msg.itag, msg.key, msg))
        elif isinstance(msg, JoinResponse):
            self._on_join_response(msg)
        elif isinstance(msg, ForkStateMsg):
            self._on_fork_state(msg)
        else:  # pragma: no cover - defensive
            raise RuntimeFault(f"unexpected message {msg!r}")
        self._drain()
        self._relay_frontiers()

    # -- protocol (mirrors WorkerActor) ------------------------------------
    def _enqueue(self, released: List[Buffered]) -> None:
        for b in released:
            self._inflight_tags[b.itag] = self._inflight_tags.get(b.itag, 0) + 1
        self.pending.extend(released)

    def _drain(self) -> None:
        while self.pending and not self.blocked:
            buffered = self.pending.pop(0)
            self._inflight_tags[buffered.itag] -= 1
            item = buffered.item
            if isinstance(item, EventMsg):
                self._process_event(item.event)
            else:
                self._process_join_request(item)

    def _emit(self, outs: Sequence[Any]) -> None:
        if outs:
            with self.result_lock:
                self.result.outputs.extend(outs)

    def _process_event(self, event: Event) -> None:
        with self.result_lock:
            self.result.events_processed += 1
        if self.is_leaf:
            self.state, outs = self.update(self.state, event)
            self._emit(outs)
        else:
            self._start_join(("event", event))

    def _process_join_request(self, req: JoinRequest) -> None:
        if self.is_leaf:
            self.router.post(
                req.reply_to, JoinResponse(req.req_id, req.side, self.state, 1.0)
            )
            self.state = None
            self.has_state = False
            self.blocked = True
        else:
            self._start_join(("parent", req))

    def _start_join(self, ctx: Tuple[str, Any]) -> None:
        self._join_seq += 1
        req_id = (self.node.id, self._join_seq)
        itag = ctx[1].itag
        key = ctx[1].order_key if ctx[0] == "event" else ctx[1].key
        for side, child in zip(("left", "right"), self.children):
            self.router.post(child, JoinRequest(req_id, itag, key, self.node.id, side))
        self.blocked = True
        self._current = (req_id, ctx, {})

    def _on_join_response(self, msg: JoinResponse) -> None:
        assert self._current is not None and self._current[0] == msg.req_id
        req_id, ctx, states = self._current
        states[msg.side] = msg.state
        if len(states) < 2:
            return
        joined = self.join_fn(states["left"], states["right"])
        with self.result_lock:
            self.result.joins += 1
        self._current = None
        if ctx[0] == "event":
            with self.result_lock:
                self.result.events_processed += 1
            joined, outs = self.update(joined, ctx[1])
            self._emit(outs)
            self._fork_down(req_id, joined)
            self.blocked = False
        else:
            req: JoinRequest = ctx[1]
            self.router.post(req.reply_to, JoinResponse(req.req_id, req.side, joined, 1.0))
            self._absorb_restore = req_id

    def _on_fork_state(self, msg: ForkStateMsg) -> None:
        if self.is_leaf:
            self.state = msg.state
            self.has_state = True
        else:
            sub = self._absorb_restore
            self._absorb_restore = None
            self._fork_down(sub, msg.state)  # type: ignore[arg-type]
        self.blocked = False

    def _fork_down(self, req_id: Tuple[str, int], state: Any) -> None:
        s_l, s_r = self.fork_fn(state, self.pred_left, self.pred_right)
        for child, s in zip(self.children, (s_l, s_r)):
            self.router.post(child, ForkStateMsg(req_id, s, 1.0))

    def _relay_frontiers(self) -> None:
        if self.is_leaf:
            return
        for itag in self.mailbox.itags:
            if self._inflight_tags.get(itag, 0) > 0:
                continue
            frontier = self.mailbox.frontier(itag)
            if frontier is None or frontier[0] == float("-inf"):
                continue
            last = self._last_relayed.get(itag)
            if last is not None and last >= frontier:
                continue
            self._last_relayed[itag] = frontier
            for child in self.children:
                self.router.post(child, HeartbeatMsg(itag, frontier))


class ThreadedRuntime:
    """Run a DGS program on real threads (one per plan worker)."""

    def __init__(self, program: DGSProgram, plan: SyncPlan, *, validate: bool = True):
        self.program = program
        if validate:
            assert_p_valid(plan, program)
        self.plan = plan

    def run(self, streams: Sequence[InputStream], *, timeout_s: float = 60.0) -> ThreadedResult:
        router = _Router()
        result = ThreadedResult()
        lock = threading.Lock()
        workers = {
            n.id: _ThreadedWorker(n, self.plan, self.program, router, result, lock)
            for n in self.plan.workers()
        }
        # Distribute the initial state down the tree (C2-consistent).

        def distribute(node_id: str, state: Any) -> None:
            w = workers[node_id]
            if w.is_leaf:
                w.state = state
                w.has_state = True
                return
            s_l, s_r = w.fork_fn(state, w.pred_left, w.pred_right)
            distribute(w.children[0], s_l)
            distribute(w.children[1], s_r)

        distribute(self.plan.root.id, self.program.init())
        for w in workers.values():
            w.start()

        # Producers: enqueue events and heartbeats in timestamp order
        # per stream (one virtual producer thread each is unnecessary —
        # per-itag FIFO into the owner's queue is what matters).
        last_ts = max(
            (e.ts for s in streams for e in s.events), default=0.0
        )
        end_ts = last_ts + 1.0
        for stream in streams:
            owner = self.plan.owner_of(stream.itag).id
            items: List[Tuple[tuple, Any]] = []
            for e in stream.events:
                items.append((e.order_key, EventMsg(e)))
            hb_times: List[float] = []
            if stream.heartbeat_interval:
                t = stream.heartbeat_interval
                while t < end_ts:
                    hb_times.append(t)
                    t += stream.heartbeat_interval
            hb_times.append(end_ts)
            event_ts = {e.ts for e in stream.events}
            from ..core.events import Heartbeat

            for t in hb_times:
                if t in event_ts:
                    continue
                hb = Heartbeat(stream.itag.tag, stream.itag.stream, t)
                items.append((hb.order_key, HeartbeatMsg(stream.itag, hb.order_key)))
            items.sort(key=lambda kv: kv[0])
            for _, msg in items:
                router.post(owner, msg)

        if not router.idle.wait(timeout=timeout_s):
            router.stop_all()
            raise RuntimeFault("threaded runtime did not drain in time")
        router.stop_all()
        for w in workers.values():
            w.join(timeout=5.0)
        for w in workers.values():
            if w.mailbox.buffered_count() or w.pending:
                raise RuntimeFault(
                    f"worker {w.node.id} ended with unprocessed items"
                )
        return result
