"""A multi-process execution of synchronization plans.

The threaded runtime proves the protocol runs on a concurrent
substrate, but the GIL serializes its update functions.  This module
executes the same :class:`~repro.runtime.protocol.WorkerCore` state
machine with **one OS process per plan worker**, so independent events
on different leaves genuinely run in parallel — the paper's central
claim (dependency-guided synchronization lets independent events
proceed concurrently) measured on real cores rather than asserted.

Three design points keep IPC from eating the speedup:

* **A dedicated transport layer** (:mod:`repro.runtime.transport`).
  By default protocol traffic crosses raw per-edge pipes carrying
  length-prefixed frames in the struct-packed wire format — no queue
  locks, no feeder threads, no per-message pickle on the hot path.
  ``transport="queue"`` keeps the original ``multiprocessing.Queue``
  fabric as a measurable baseline.

* **Adaptive batching.**  Every channel operation carries a *batch* of
  messages, so one encode + one pipe write + one consumer wakeup is
  amortized over the whole batch.  The batch policy adapts per
  channel: batches grow while the observed backlog is high and shrink
  when the system keeps up, with a latency deadline bounding how long
  a message can sit buffered; join-critical messages flush
  immediately (the protocol's flush hint).  An explicit ``batch_size``
  pins the old fixed policy instead.

* **Fork start method.**  Workers are forked, so programs — which
  contain closures and are deliberately *not* picklable — are
  inherited by child processes instead of serialized.  Only protocol
  messages (events, order keys, application states) cross process
  boundaries.

Termination mirrors the threaded runtime: a shared in-flight message
counter is incremented when a batch is posted and decremented when it
has been fully handled *and* its consequences flushed; the counter
reaching zero after all producer input is posted means every channel
has drained, at which point stop frames are delivered and each worker
ships its locally-accumulated outputs back once.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from ..core.errors import RuntimeFault
from ..core.program import DGSProgram
from ..plans.plan import SyncPlan
from ..plans.validity import assert_p_valid
from .checkpoint import Checkpoint, CheckpointPredicate
from .faults import CrashRecord, FaultPlan, WorkerCrash, WorkerFaultView
from .metrics import MetricsConfig, MetricsSnapshot, RunMetrics, WorkerMetrics
from .quiesce import QuiesceRecord, QuiesceSignal, RootReconfigView
from .protocol import (
    INIT_STATE,
    OutputSink,
    RunStatsMixin,
    WorkerCore,
    end_timestamp,
    initial_leaf_states,
    paced_producer_schedule,
    paced_schedule_anchor,
    producer_messages,
)
from .runtime import InputStream
from .transport import (
    COORDINATOR,
    DEFAULT_TRANSPORT,
    STOP,
    BatchPolicy,
    ControlPlane,
    make_transport,
    plan_edges,
    resolve_policy,
)
from .wire import batch_message_count, coalesce_event_runs

@dataclass
class ProcessResult(RunStatsMixin):
    """Outputs and counters aggregated from all worker processes."""

    outputs: List[Any] = field(default_factory=list)
    joins: int = 0
    events_processed: int = 0
    events_in: int = 0
    wall_s: float = 0.0
    n_workers: int = 0
    transport: str = DEFAULT_TRANSPORT
    batch: str = ""
    #: Node-agent count when the run was placed across a cluster
    #: (see :mod:`repro.runtime.cluster`); 0 for the one-process-per-
    #: worker single-host runtime.
    nodes: int = 0
    #: (order_key, value) log, populated only when record_keys is set.
    keyed_outputs: List[Any] = field(default_factory=list)
    checkpoints: List[Checkpoint] = field(default_factory=list)
    crashes: List[CrashRecord] = field(default_factory=list)
    #: Set when the root quiesced for elastic reconfiguration.
    quiesce: Optional[QuiesceRecord] = None
    #: Merged per-worker metrics when the metrics plane was enabled.
    metrics: Optional[RunMetrics] = None


@dataclass
class _WorkerReport:
    """One worker's end-of-run shipment to the coordinator (picklable).

    A crashed worker still ships its report — the fail-stop model
    includes synchronous output/checkpoint logging, so everything the
    worker fully processed before the crash travels back (what a real
    deployment would have written to durable storage)."""

    node_id: str
    outputs: List[Any]
    keyed_outputs: List[Any]
    checkpoints: List[Checkpoint]
    events_processed: int
    joins: int
    leftover: int
    crash: Optional[CrashRecord] = None
    quiesce: Optional[QuiesceRecord] = None
    #: The worker's final MetricsSnapshot (metrics plane on), else None.
    metrics: Optional[MetricsSnapshot] = None


def _drive_worker(
    node_id: str,
    plan: SyncPlan,
    program: DGSProgram,
    receiver,
    batcher,
    control: ControlPlane,
    init_state: Optional[tuple],
    checkpoint_predicate: Optional[CheckpointPredicate],
    fault_view: Optional[WorkerFaultView],
    record_keys: bool,
    reconfig_view: Optional[RootReconfigView],
    metrics_cfg: Optional[MetricsConfig] = None,
) -> None:
    """Drive one WorkerCore from its inbox until the stop frame, then
    ship its report — the substrate-independent worker loop shared by
    the one-process-per-worker runtime (each worker its own forked
    process) and the cluster's node agents (several workers as threads
    of one agent process, channels over TCP).

    Outputs accumulate in a worker-local sink and travel back to the
    coordinator exactly once, on shutdown — results never compete with
    protocol traffic for the channels.

    An injected :class:`WorkerCrash` makes the worker fail-stop: the
    consequences of fully-processed events are flushed (they already
    left the failure domain in the model), the crash is announced on
    the dedicated queue, and from then on incoming batches are absorbed
    unprocessed until the stop frame, when the report ships.
    """
    sink = OutputSink(record_keys=record_keys)
    wm = WorkerMetrics(node_id, metrics_cfg) if metrics_cfg is not None else None
    if wm is not None:
        # Transport endpoints count batches/frames into the same
        # per-worker metrics object (settable post-construction so the
        # transport signatures stay metrics-agnostic).
        receiver.metrics = wm
        batcher.metrics = wm
    core = WorkerCore(
        plan.node(node_id),
        plan,
        program,
        batcher.post,
        sink,
        checkpoint_predicate=checkpoint_predicate,
        faults=fault_view,
        reconfig=reconfig_view,
        flush_hint=batcher.flush,
        metrics=wm,
    )
    if init_state is not None:
        core.state = init_state[0]
        core.has_state = True
    crash: Optional[CrashRecord] = None
    quiesce: Optional[QuiesceRecord] = None
    last_push = time.monotonic()
    while True:
        msgs = receiver.recv()
        if msgs is STOP:
            break
        if crash is not None or quiesce is not None:
            control.mark_done(batch_message_count(msgs))
            continue
        try:
            for msg in msgs:
                core.handle(msg)
        except WorkerCrash as wc:
            crash = wc.record
            # Ship consequences of the events processed *before*
            # the crash, then announce it; the triggering event and
            # the rest of the batch die with the worker.
            batcher.flush()
            control.crashes.put(crash)
        except QuiesceSignal as sig:
            quiesce = sig.record
            # Planned stop at a consistent snapshot: the triggering
            # event is fully processed, only its fork-down was
            # withheld.  Ship consequences, announce, go silent —
            # the reconfiguration driver restarts on a new plan.
            # The announcement is a lightweight sentinel: the full
            # record (carrying the snapshot state) travels once, in
            # the end-of-run report.
            batcher.flush()
            control.quiesces.put(node_id)
        # Flush consequences *before* declaring the batch done, so
        # the in-flight counter can never dip to zero while this
        # worker still owes messages to others.
        batcher.flush()
        # Event-level: a columnar run of n events repays the n its
        # sender charged the in-flight counter.
        control.mark_done(batch_message_count(msgs))
        if wm is not None:
            # Low-rate live feed for the coordinator's Prometheus
            # exporter; best-effort (a full queue is never worth
            # stalling the data plane for).
            now = time.monotonic()
            if now - last_push >= 0.25:
                last_push = now
                try:
                    control.metrics.put_nowait((node_id, wm.wire_snapshot()))
                except Exception:  # pragma: no cover - full queue
                    pass
    control.results.put(
        _WorkerReport(
            node_id,
            sink.outputs,
            sink.keyed_outputs,
            sink.checkpoints,
            sink.events_processed,
            sink.joins,
            core.unprocessed(),
            crash,
            quiesce,
            wm.snapshot() if wm is not None else None,
        )
    )


def _worker_main(
    node_id: str,
    plan: SyncPlan,
    program: DGSProgram,
    transport,
    control: ControlPlane,
    policy: BatchPolicy,
    init_state: Optional[tuple],
    checkpoint_predicate: Optional[CheckpointPredicate],
    fault_view: Optional[WorkerFaultView],
    record_keys: bool,
    reconfig_view: Optional[RootReconfigView] = None,
    metrics_cfg: Optional[MetricsConfig] = None,
) -> None:
    """Child-process entry point of the one-process-per-worker runtime:
    bind this worker's transport endpoints, then run the shared loop."""
    try:
        # Drop inherited channel endpoints this worker does not own,
        # so a dead peer surfaces as EOF/EPIPE instead of silence.
        transport.child_setup(node_id)
        receiver = transport.receiver(node_id)
        # While this worker waits for pipe space it keeps ingesting its
        # own inbox (receiver.poll), so mutual pressure cannot deadlock.
        batcher = transport.sender(node_id, control, policy, on_block=receiver.poll)
        _drive_worker(
            node_id,
            plan,
            program,
            receiver,
            batcher,
            control,
            init_state,
            checkpoint_predicate,
            fault_view,
            record_keys,
            reconfig_view,
            metrics_cfg,
        )
    except BaseException as exc:  # pragma: no cover - exercised via fault tests
        control.errors.put((node_id, f"{exc!r}\n{traceback.format_exc()}"))
        raise
    finally:
        # Announce this worker's exit on transports that cannot observe
        # it through the kernel (shared-memory rings have no EOF/EPIPE;
        # peers watch the closed flags this sets).  Runs on every exit
        # path, including crashes and KeyboardInterrupt.
        transport.child_teardown(node_id)


class ProcessRuntime:
    """Run a DGS program on OS processes (one per plan worker).

    ``transport`` selects the data plane (``"pipe"`` — framed raw
    pipes, the default — or ``"queue"`` — the original
    ``multiprocessing.Queue`` fabric).  ``batch_size=None`` (default)
    enables adaptive batching; an explicit integer pins the fixed
    policy (1 degenerates to per-message IPC, useful as a baseline).
    ``flush_ms`` tunes the adaptive policy's latency deadline.
    """

    def __init__(
        self,
        program: DGSProgram,
        plan: SyncPlan,
        *,
        batch_size: Optional[int] = None,
        transport: str = DEFAULT_TRANSPORT,
        flush_ms: Optional[float] = None,
        validate: bool = True,
        transport_options: Optional[dict] = None,
    ) -> None:
        self.program = program
        if validate:
            assert_p_valid(plan, program)
        self.plan = plan
        self.transport_name = transport
        #: Transport-specific tuning (only the shm transport takes any:
        #: ``slots``, ``slot_bytes``); validated by ``make_transport``.
        self.transport_options = dict(transport_options or {})
        self.policy = resolve_policy(batch_size, flush_ms)
        # fork (not spawn): children must inherit the program's
        # closures; only messages are ever pickled.
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeFault(
                "the process runtime requires the 'fork' start method "
                "(Linux/macOS); use the 'threaded' or 'sim' backend on "
                "this platform"
            )
        self._ctx = mp.get_context("fork")

    def run(
        self,
        streams: Sequence[InputStream],
        *,
        timeout_s: float = 120.0,
        initial_state: Any = INIT_STATE,
        checkpoint_predicate: Optional[CheckpointPredicate] = None,
        faults: Optional[FaultPlan] = None,
        record_keys: bool = False,
        reconfig: Optional[RootReconfigView] = None,
        metrics: Optional[MetricsConfig] = None,
        pace: Optional[float] = None,
    ) -> ProcessResult:
        """Execute one attempt (see :meth:`ThreadedRuntime.run` for the
        fault-injection / reconfiguration parameter contract: a crashed
        or quiesced attempt returns with ``crashes`` non-empty /
        ``quiesce`` set instead of raising)."""
        workers = self.plan.workers()
        transport = make_transport(
            self.transport_name,
            self._ctx,
            plan_edges(self.plan),
            **self.transport_options,
        )
        control = ControlPlane(self._ctx)
        leaf_states = initial_leaf_states(self.plan, self.program, initial_state)
        if metrics is not None and metrics.epoch is None:
            # Stamp the latency origin before forking so every worker
            # process shares the same epoch.
            metrics = metrics.with_epoch(time.time())
        procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(
                    n.id,
                    self.plan,
                    self.program,
                    transport,
                    control,
                    self.policy,
                    (leaf_states[n.id],) if n.id in leaf_states else None,
                    checkpoint_predicate,
                    faults.view_for(n.id) if faults is not None else None,
                    record_keys,
                    reconfig if n.id == self.plan.root.id else None,
                    metrics,
                ),
                daemon=True,
                name=f"worker:{n.id}",
            )
            for n in workers
        ]
        for p in procs:
            p.start()
        # Every worker holds its endpoints now; drop the parent's
        # copies of the fds only workers use, so dead peers surface as
        # EOF/EPIPE on the survivors' pipes.
        transport.parent_setup()

        result = ProcessResult(
            n_workers=len(workers),
            transport=transport.name,
            batch=self.policy.describe(),
        )
        try:
            t0 = time.perf_counter()

            def pump_guard() -> None:
                # Invoked while a producer write waits for pipe space:
                # a dead worker must surface as a fault, not a hang.
                self._raise_worker_faults(control, procs)

            batcher = transport.sender(
                COORDINATOR, control, self.policy, on_block=pump_guard
            )
            end_ts = end_timestamp(streams)
            if pace is not None:
                # Open-loop pump: replay the merged schedule against
                # the wall clock at `pace` timestamp-units per second.
                sched = paced_producer_schedule(
                    streams, lambda s: self.plan.owner_of(s.itag).id, end_ts
                )
                start = time.monotonic()
                # Anchor at the first event timestamp: workloads whose
                # timestamps start at T >> 0 would otherwise stall
                # T/pace seconds (heartbeating dead time) before the
                # first event.
                ts0 = paced_schedule_anchor(sched)
                for ts, owner, msg in sched:
                    delay = start + (ts - ts0) / pace - time.monotonic()
                    if delay > 0:
                        batcher.flush()
                        time.sleep(delay)
                    batcher.post(owner, msg)
                result.events_in += sum(len(s.events) for s in streams)
            else:
                for stream in streams:
                    owner = self.plan.owner_of(stream.itag).id
                    # Closed-loop pump: coalesce same-route stretches
                    # into columnar runs so the whole data plane moves
                    # packed arrays (the paced pump stays per-event —
                    # it releases messages against the wall clock).
                    for msg in coalesce_event_runs(
                        producer_messages(stream, end_ts)
                    ):
                        batcher.post(owner, msg)
                    result.events_in += len(stream.events)
            batcher.flush()
            aborted = self._await_idle(control, procs, timeout_s)
            result.wall_s = time.perf_counter() - t0

            transport.stop_all()
            self._collect(control, result, timeout_s, metrics)
            if aborted:
                transport.drain()
        finally:
            for p in procs:
                p.join(timeout=5.0)
            for p in procs:
                if p.is_alive():  # pragma: no cover - defensive cleanup
                    p.terminate()
                    p.join(timeout=1.0)
            transport.close()
        return result

    # -- coordination helpers -------------------------------------------
    @staticmethod
    def _aborted(control: ControlPlane) -> bool:
        """True when a crash or a reconfiguration quiesce was announced
        (either one ends the attempt early)."""
        for q in (control.crashes, control.quiesces):
            try:
                q.get_nowait()
            except queue_mod.Empty:
                continue
            return True
        return False

    @staticmethod
    def _raise_worker_faults(control: ControlPlane, procs) -> None:
        try:
            node_id, err = control.errors.get_nowait()
        except queue_mod.Empty:
            pass
        else:
            raise RuntimeFault(f"worker {node_id} crashed:\n{err}")
        if any(not p.is_alive() and p.exitcode not in (0, None) for p in procs):
            raise RuntimeFault(
                "a worker process died before the run drained "
                f"(exitcodes: {[p.exitcode for p in procs]})"
            )

    @classmethod
    def _await_idle(cls, control: ControlPlane, procs, timeout_s: float) -> bool:
        """Wait for drain, an injected crash, or a reconfiguration
        quiesce (returns True for an aborted attempt), surfacing worker
        faults promptly."""
        deadline = time.monotonic() + timeout_s
        while True:
            if cls._aborted(control):
                return True
            if control.idle.wait(timeout=0.05):
                # Drain and an abort can race: a crashed/quiesced
                # worker absorbs its backlog, so the counter may reach
                # zero right as the announcement lands.  Abort wins.
                return cls._aborted(control)
            cls._raise_worker_faults(control, procs)
            if time.monotonic() > deadline:
                raise RuntimeFault("process runtime did not drain in time")

    @staticmethod
    def _collect(
        control: ControlPlane,
        result: ProcessResult,
        timeout_s: float,
        metrics_cfg: Optional[MetricsConfig] = None,
    ) -> None:
        deadline = time.monotonic() + timeout_s
        reports: List[_WorkerReport] = []
        for _ in range(result.n_workers):
            # Poll results and errors together: a fault after quiescence
            # (e.g. an unpicklable output killing the result put) must
            # surface with its traceback, not as a bare timeout.
            while True:
                try:
                    reports.append(control.results.get(timeout=0.05))
                    break
                except queue_mod.Empty:
                    try:
                        err_node, err = control.errors.get_nowait()
                    except queue_mod.Empty:
                        pass
                    else:
                        raise RuntimeFault(
                            f"worker {err_node} crashed after drain:\n{err}"
                        ) from None
                    if time.monotonic() > deadline:
                        raise RuntimeFault(
                            "worker results missing after drain; a worker "
                            "likely crashed or produced unpicklable outputs"
                        ) from None
        result.crashes = [r.crash for r in reports if r.crash is not None]
        for report in reports:
            if report.quiesce is not None:
                result.quiesce = report.quiesce
        for report in reports:
            if report.leftover and not result.crashes and result.quiesce is None:
                raise RuntimeFault(
                    f"worker {report.node_id} ended with {report.leftover} "
                    "unprocessed items; check heartbeats / dependence relation"
                )
            result.outputs.extend(report.outputs)
            result.keyed_outputs.extend(report.keyed_outputs)
            result.checkpoints.extend(report.checkpoints)
            result.events_processed += report.events_processed
            result.joins += report.joins
        result.checkpoints.sort(key=lambda c: c.key)
        if metrics_cfg is not None:
            rm = RunMetrics(latency_buckets=metrics_cfg.latency_buckets)
            for report in reports:
                if report.metrics is not None:
                    rm.absorb(report.metrics)
            # Drain the live feed too: workers that only ever answered
            # joins piggybacked snapshots there (absorb keeps the
            # richest copy per worker).
            try:
                while True:
                    node_id, wire = control.metrics.get_nowait()
                    rm.absorb(
                        MetricsSnapshot.from_wire(wire, metrics_cfg.latency_buckets)
                    )
            except queue_mod.Empty:
                pass
            result.metrics = rm
