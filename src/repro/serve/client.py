"""The service client: blocking sockets, no asyncio required.

:func:`connect` opens one connection in either role:

* ``mode="ingest"`` — :meth:`ServiceClient.send_events` streams event
  batches and returns the server's admission ack (admitted count,
  rejections by reason, backpressure state), so producers see exactly
  which events entered the run.  :meth:`~ServiceClient.flush` forces
  an epoch; :meth:`~ServiceClient.finish` closes the service.
* ``mode="subscribe"`` — :meth:`ServiceClient.outputs` iterates the
  committed output log as ``(seq, value)`` pairs from ``from_seq``
  until the service finishes.  The iterator enforces the exactly-once
  contract on the client side: duplicate sequence numbers (possible
  across reconnects) are dropped, and a gap — which would mean a lost
  committed output — raises instead of being papered over.

Frames are reassembled with the data plane's
:class:`~repro.runtime.wire.FrameAssembler`, so a recv boundary can
land anywhere (mid-prefix, mid-frame, many frames at once) without the
client caring.
"""

from __future__ import annotations

import socket
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import RuntimeFault
from ..core.events import Event
from ..runtime.wire import FRAME_LEN, FrameAssembler
from .protocol import (
    PROTOCOL_VERSION,
    control_frame,
    decode_outputs,
    ingest_events_frame,
    parse_frame,
)

_RECV_CHUNK = 1 << 16


@dataclass
class IngestAck:
    """The server's admission verdict for one :meth:`send_events`
    call (summed across the call's wire batches)."""

    admitted: int = 0
    rejected: int = 0
    reasons: Dict[str, int] = field(default_factory=dict)
    #: Whether admission was paused (backpressure) after the batch.
    paused: bool = False

    def merge(self, blob: dict) -> None:
        self.admitted += int(blob.get("admitted", 0))
        self.rejected += int(blob.get("rejected", 0))
        for reason, count in dict(blob.get("reasons", {})).items():
            self.reasons[reason] = self.reasons.get(reason, 0) + int(count)
        self.paused = bool(blob.get("paused", False))


class ServiceClient:
    """One authenticated service connection; use :func:`connect`."""

    def __init__(self, sock: socket.socket, mode: str, welcome: dict) -> None:
        self._sock = sock
        self.mode = mode
        #: The committed-log length at connect time.
        self.server_seq = int(welcome.get("next_seq", 0))
        self._assembler = FrameAssembler()
        self._frames: deque = deque()
        self._closed = False

    # -- plumbing --------------------------------------------------------
    def _read_frame(self) -> Optional[bytes]:
        while not self._frames:
            data = self._sock.recv(_RECV_CHUNK)
            if not data:
                self._assembler.close()  # raises on a torn frame
                return None
            self._frames.extend(self._assembler.feed(data))
        body = self._frames.popleft()
        return None if body == b"" else body

    def _read_control(self, expect: str) -> dict:
        body = self._read_frame()
        if body is None:
            raise RuntimeFault(
                f"service connection closed while waiting for {expect!r}"
            )
        kind, payload = parse_frame(body)
        if kind != "control" or payload.get("type") != expect:
            raise RuntimeFault(
                f"service protocol: expected {expect!r}, got {kind}:{payload!r}"
            )
        return payload

    def _require_mode(self, mode: str, what: str) -> None:
        if self.mode != mode:
            raise RuntimeFault(f"{what} needs a mode={mode!r} connection")

    # -- ingest ----------------------------------------------------------
    def send_events(
        self, events: Sequence[Event], *, batch: int = 1024
    ) -> IngestAck:
        """Stream events (in the order given) and return the summed
        admission ack.  Rejected events are *not* retried — the reasons
        map tells the producer what to do (back off on
        ``backpressure``, fix its clock on ``late``/``out-of-order``)."""
        self._require_mode("ingest", "send_events")
        ack = IngestAck()
        for i in range(0, len(events), batch):
            self._sock.sendall(ingest_events_frame(events[i : i + batch]))
            ack.merge(self._read_control("ack"))
        return ack

    def flush(self) -> int:
        """Force the service to seal and run an epoch now; returns the
        committed-log length afterwards."""
        self._require_mode("ingest", "flush")
        self._sock.sendall(control_frame({"type": "flush"}))
        return int(self._read_control("flushed")["committed_total"])

    def finish(self) -> int:
        """Close the service: a final epoch commits everything that
        was ever admitted; returns the final committed-log length."""
        self._require_mode("ingest", "finish")
        self._sock.sendall(control_frame({"type": "finish"}))
        return int(self._read_control("finished")["committed_total"])

    # -- egress ----------------------------------------------------------
    def outputs(self, *, dedup_from: Optional[int] = None) -> Iterator[Tuple[int, Any]]:
        """Iterate committed outputs as ``(seq, value)`` until the
        service finishes (the server's ``eof``).  Sequence numbers
        below the cursor are duplicates and are dropped; a gap raises
        :class:`RuntimeFault` (a committed output must never be lost)."""
        self._require_mode("subscribe", "outputs")
        expected = dedup_from
        while True:
            body = self._read_frame()
            if body is None:
                return
            kind, payload = parse_frame(body)
            if kind == "control":
                if payload.get("type") == "eof":
                    return
                continue  # other control traffic is not for us
            for seq, value in decode_outputs(payload):
                if expected is None:
                    expected = seq
                if seq < expected:
                    continue  # redelivery (reconnect overlap): drop
                if seq > expected:
                    raise RuntimeFault(
                        f"egress gap: expected seq {expected}, got {seq} "
                        "(committed output lost in transit)"
                    )
                expected = seq + 1
                yield (seq, value)

    def output_values(self) -> List[Any]:
        """Drain :meth:`outputs` to completion, values only."""
        return [value for _seq, value in self.outputs()]

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.sendall(FRAME_LEN.pack(0))  # polite stop sentinel
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(
    port: int,
    cookie: str,
    *,
    host: str = "127.0.0.1",
    mode: str = "ingest",
    from_seq: int = 0,
    timeout: float = 60.0,
) -> ServiceClient:
    """Open, authenticate, and return a :class:`ServiceClient`.

    ``mode`` is ``"ingest"`` (stream events in) or ``"subscribe"``
    (stream committed outputs from ``from_seq`` out).  The cookie is
    the service's shared secret (``handle.cookie``, or the value the
    operator passed in :class:`~repro.runtime.options.ServeOptions`)."""
    if mode not in ("ingest", "subscribe"):
        raise ValueError(f"mode must be 'ingest' or 'subscribe', not {mode!r}")
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        sock.sendall(
            control_frame(
                {
                    "type": "hello",
                    "v": PROTOCOL_VERSION,
                    "cookie": cookie,
                    "mode": mode,
                    "from_seq": from_seq,
                }
            )
        )
        client = ServiceClient(sock, mode, {})
        welcome = client._read_control("welcome")
        client.server_seq = int(welcome.get("next_seq", 0))
        return client
    except BaseException:
        sock.close()
        raise
