"""Plan morphing: derive a wider or narrower synchronization plan from
a running one, for elastic reconfiguration.

A reconfiguration migrates the root's joined state — a consistent
snapshot — into a *different* P-valid plan over the **same** streams.
That constrains the target plan to cover exactly the same
implementation tags (the input does not change, only how it is
partitioned across workers), which is what these builders guarantee by
construction:

* :func:`repartition_plan` — the canonical elastic shape: every
  globally-synchronizing itag (one whose tag depends on the whole tag
  universe) stays at the root, and the remaining itags are regrouped
  into ``n_leaves`` leaves along the connected components of the itag
  dependence graph (tags that depend on each other can never be split
  across unrelated workers — V2);
* :func:`widen_plan` / :func:`narrow_plan` — scale the current leaf
  width by a factor, clamped to ``[1, max_width]``.

``max_width`` — the number of dependence components below the root —
is the ceiling on useful parallelism for a program: beyond it there is
no independent work left to spread.  Narrowing to one leaf collapses
the plan to a single worker; note that a single-worker plan has no
root joins, so it cannot quiesce *again* — a schedule that narrows to
width 1 is a terminal step (see :mod:`repro.runtime.reconfigure`).

Morphing is deterministic: components are sorted by repr and dealt
round-robin, so the same (program, plan, n_leaves) always yields the
same target — seeded reconfiguration schedules reproduce exactly.
"""

from __future__ import annotations

from typing import FrozenSet, List

import networkx as nx

from ..core.errors import PlanError
from ..core.events import ImplTag
from ..core.program import DGSProgram
from .generation import root_and_leaves_plan
from .plan import SyncPlan


def synchronizing_itags(
    program: DGSProgram, itags: FrozenSet[ImplTag]
) -> List[ImplTag]:
    """The itags whose tag depends on the *entire* tag universe — the
    ones that must sit at the root for root-join snapshots to be
    timestamp-prefix states (the same condition
    :func:`~repro.runtime.recovery.assert_recovery_sound` checks)."""
    universe = program.depends.universe
    return sorted(
        (
            it
            for it in itags
            if not (universe - program.depends.dependents_of(it.tag))
        ),
        key=repr,
    )


def plan_width(plan: SyncPlan) -> int:
    """The plan's leaf count — its degree of parallelism."""
    return len(plan.leaves())


def max_width(program: DGSProgram, plan: SyncPlan) -> int:
    """The widest this plan's itags can be spread: the number of
    connected components of the dependence graph over the
    non-synchronizing itags (at least 1)."""
    rest = _leaf_itags(program, plan)
    if not rest:
        return 1
    return max(1, nx.number_connected_components(program.depends.itag_graph(rest)))


def _leaf_itags(program: DGSProgram, plan: SyncPlan) -> List[ImplTag]:
    all_itags = plan.all_itags()
    root_itags = set(synchronizing_itags(program, all_itags))
    return sorted((it for it in all_itags if it not in root_itags), key=repr)


def repartition_plan(
    program: DGSProgram,
    plan: SyncPlan,
    n_leaves: int,
    *,
    shape: str = "balanced",
    state_type: str | None = None,
) -> SyncPlan:
    """A plan over the same itags with ``n_leaves`` leaf groups.

    Synchronizing itags go to the root; the rest are grouped by
    dependence component and dealt round-robin into the leaves.
    ``n_leaves`` is clamped to ``[1, number of components]``; with one
    leaf the plan degenerates to a single worker (see
    :func:`~repro.plans.generation.root_and_leaves_plan`)."""
    if n_leaves < 1:
        raise PlanError(f"cannot repartition to {n_leaves} leaves")
    all_itags = plan.all_itags()
    root_itags = synchronizing_itags(program, all_itags)
    if not root_itags:
        raise PlanError(
            "cannot morph a plan with no globally-synchronizing itag: "
            "its root joins are not consistent prefix snapshots, so "
            "there is no sound migration point (see "
            "repro.runtime.recovery.assert_recovery_sound)"
        )
    rest = _leaf_itags(program, plan)
    if not rest:
        return root_and_leaves_plan(
            program, root_itags, [], state_type=state_type, shape=shape
        )
    components = sorted(
        (sorted(c, key=repr) for c in nx.connected_components(
            program.depends.itag_graph(rest)
        )),
        key=repr,
    )
    n = max(1, min(n_leaves, len(components)))
    buckets: List[List[ImplTag]] = [[] for _ in range(n)]
    for i, comp in enumerate(components):
        buckets[i % n].extend(comp)
    return root_and_leaves_plan(
        program, root_itags, buckets, state_type=state_type, shape=shape
    )


def widen_plan(
    program: DGSProgram,
    plan: SyncPlan,
    *,
    factor: int = 2,
    shape: str = "balanced",
) -> SyncPlan:
    """Scale out: multiply the leaf width by ``factor`` (clamped to the
    program's maximum useful width)."""
    if factor < 1:
        raise PlanError("widen factor must be >= 1")
    return repartition_plan(
        program, plan, plan_width(plan) * factor, shape=shape
    )


def narrow_plan(
    program: DGSProgram,
    plan: SyncPlan,
    *,
    factor: int = 2,
    shape: str = "balanced",
) -> SyncPlan:
    """Scale in: divide the leaf width by ``factor`` (floored at 1)."""
    if factor < 1:
        raise PlanError("narrow factor must be >= 1")
    return repartition_plan(
        program, plan, max(1, plan_width(plan) // factor), shape=shape
    )
