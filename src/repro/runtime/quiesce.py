"""Worker-side quiesce primitives for elastic reconfiguration.

The fork/join state hierarchy of a synchronization plan makes every
root join a free consistent snapshot (paper Appendix D.2) — the same
mechanism checkpointing exploits.  *Quiescing* is the planned use of
that snapshot: the root, immediately after completing a join (state
updated, outputs emitted, checkpoint optionally taken), raises
:class:`QuiesceSignal` instead of forking the state back down.  The
substrate stops the attempt exactly as it would for an injected crash,
and the reconfiguration driver (:mod:`repro.runtime.reconfigure`)
commits the sequential prefix, migrates the captured root state into a
new plan, and replays the input suffix there.

This module is deliberately a *leaf* of the runtime import graph —
plain picklable data plus trigger logic, no runtime imports — so the
substrate-independent :class:`~repro.runtime.protocol.WorkerCore`, the
simulated :class:`~repro.runtime.worker.WorkerActor`, and both real
substrates can all use it without cycles (mirroring how
:mod:`repro.runtime.faults` sits below :mod:`repro.runtime.recovery`).

Triggers come in two flavors:

* **planned points** — fire at the first root join whose triggering
  event has ``ts >= at_ts``, or at the attempt's ``after_joins``-th
  root join (mirroring :class:`~repro.runtime.faults.CrashFault`'s two
  keys).  Timestamp triggers are stable across crash-recovery replays:
  replayed events keep their original timestamps, so a point that was
  interrupted by a crash fires again at the same place.
* **load-driven** — fire when the cluster-wide *queue depth* observed
  at a root join crosses a watermark.  Leaves report their backlog
  (buffered + pending mailbox items) on every
  :class:`~repro.runtime.messages.JoinResponse`; internal nodes sum
  their children's, so the root sees the total number of queued events
  at the instant of the snapshot.  The auto-scaler policy in
  :mod:`repro.runtime.reconfigure` turns these firings into
  widen/narrow decisions.

Everything here is plain picklable data so a view can cross the
process-runtime boundary (into a forked root worker) and the quiesce
record — which carries the snapshot state — can travel back in the
worker's report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

OrderKey = Tuple

#: Reasons a quiesce fired (QuiesceRecord.reason).
PLANNED = "planned"
SCALE_OUT = "scale-out"
SCALE_IN = "scale-in"


@dataclass(frozen=True)
class QuiesceRecord:
    """What actually fired at the root: the consistent snapshot plus
    the trigger bookkeeping the driver needs to pick a target plan.

    ``point_index`` is the schedule index of a planned point, or -1 for
    a load-driven (auto-scaler) firing; ``reason`` is one of
    ``planned`` / ``scale-out`` / ``scale-in``.  ``state`` is the joined
    root state *after* applying the triggering event — the sequential
    state over every event with order key ``<= key`` (exactly a
    :class:`~repro.runtime.checkpoint.Checkpoint`'s contract).
    """

    worker: str
    point_index: int
    reason: str
    key: OrderKey
    ts: float
    state: Any
    joins_seen: int
    queue_depth: int


class QuiesceSignal(Exception):
    """Control-flow signal raised at the root when a reconfiguration
    trigger fires.  Like :class:`~repro.runtime.faults.WorkerCrash`,
    deliberately *not* a :class:`~repro.core.errors.ReproError`:
    library-error handlers must never swallow a quiesce — only the
    substrates' lifecycle handlers catch it.
    """

    def __init__(self, record: QuiesceRecord) -> None:
        super().__init__(
            f"quiesce at root {record.worker!r} "
            f"({record.reason}, join #{record.joins_seen}, ts={record.ts}, "
            f"queue_depth={record.queue_depth})"
        )
        self.record = record


@dataclass(frozen=True)
class PointTrigger:
    """One planned reconfiguration point's worker-side trigger.

    Exactly one of ``at_ts`` / ``after_joins`` is set (validated by
    :class:`~repro.runtime.reconfigure.ReconfigPoint`, which this is
    derived from)."""

    index: int
    at_ts: Optional[float] = None
    after_joins: Optional[int] = None

    def due(self, joins_seen: int, ts: float) -> bool:
        if self.after_joins is not None:
            return joins_seen >= self.after_joins
        return ts >= self.at_ts  # type: ignore[operator]


@dataclass(frozen=True)
class WatermarkTrigger:
    """The auto-scaler's worker-side trigger: fire when the queue depth
    observed at a root join crosses a watermark.  ``cooldown_joins``
    root joins must complete in the current attempt before it can fire
    (so a freshly migrated plan processes something before the next
    decision)."""

    high_watermark: Optional[int] = None
    low_watermark: Optional[int] = None
    cooldown_joins: int = 1

    def reason_for(
        self, queue_depth: int, joins_seen: int, backlog_hw: int = 0
    ) -> Optional[str]:
        """``queue_depth`` is the instantaneous cluster-wide depth at
        the join; ``backlog_hw`` is the metrics-plane backlog
        high-water since the previous decision (0 when the plane is
        off).  Scale-out fires when *either* crosses the high
        watermark — a burst that drained before the join still counts
        as load; scale-in needs *both* at or below the low watermark,
        so a bursty-but-currently-empty queue does not shed width it
        is about to need."""
        if joins_seen < self.cooldown_joins:
            return None
        load = max(queue_depth, backlog_hw)
        if self.high_watermark is not None and load >= self.high_watermark:
            return SCALE_OUT
        if self.low_watermark is not None and load <= self.low_watermark:
            return SCALE_IN
        return None


class RootReconfigView:
    """The root worker's per-attempt view of a reconfiguration
    schedule: the not-yet-fired planned triggers plus the (optional)
    load watermarks, and a local root-join counter.

    ``maybe_quiesce`` is the single hook the worker state machines call
    — at a root join, after the update/checkpoint but before forking
    the state back down.  It raises :class:`QuiesceSignal` when a
    trigger is due (planned points win over the auto-scaler, earliest
    schedule index first)."""

    def __init__(
        self,
        worker: str,
        points: List[PointTrigger],
        watermarks: Optional[WatermarkTrigger] = None,
    ) -> None:
        self.worker = worker
        self._points = list(points)
        self._watermarks = watermarks
        self.joins_seen = 0

    def maybe_quiesce(
        self, event: Any, queue_depth: int, state: Any, backlog_hw: int = 0
    ) -> None:
        """Called by the root at every completed event-join; raises
        :class:`QuiesceSignal` when a reconfiguration trigger is due.
        ``backlog_hw`` is the metrics-plane backlog high-water since
        the last join (see :meth:`WatermarkTrigger.reason_for`);
        substrates without the plane leave it 0 and the watermarks
        fall back to the instantaneous depth alone."""
        self.joins_seen += 1
        for trig in self._points:
            if trig.due(self.joins_seen, event.ts):
                raise QuiesceSignal(
                    QuiesceRecord(
                        worker=self.worker,
                        point_index=trig.index,
                        reason=PLANNED,
                        key=event.order_key,
                        ts=event.ts,
                        state=state,
                        joins_seen=self.joins_seen,
                        queue_depth=queue_depth,
                    )
                )
        if self._watermarks is not None:
            reason = self._watermarks.reason_for(
                queue_depth, self.joins_seen, backlog_hw
            )
            if reason is not None:
                raise QuiesceSignal(
                    QuiesceRecord(
                        worker=self.worker,
                        point_index=-1,
                        reason=reason,
                        key=event.order_key,
                        ts=event.ts,
                        state=state,
                        joins_seen=self.joins_seen,
                        queue_depth=queue_depth,
                    )
                )
