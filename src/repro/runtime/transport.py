"""IPC transports for the process runtime (data plane + batching).

The process runtime originally shipped every batch through
``multiprocessing.Queue``: one lock acquisition, one pickle in the
feeder thread, one pipe write and one consumer wakeup per hop — queue
machinery that ends up measured as "synchronization cost" in every
benchmark.  This module separates the *transport* concern from the
protocol so the hot path can do better:

* :class:`PipeTransport` (default) — one raw ``os.pipe`` per directed
  communication edge (coordinator → worker, parent ↔ child), carrying
  length-prefixed frames in the :mod:`repro.runtime.wire` frame format
  (struct-packed fast path, pickle fallback).  Single writer per pipe,
  so frames never interleave; readers ``select`` across their inbound
  pipes.  Writes are non-blocking with an ``on_block`` hook so a
  worker waiting for pipe space keeps ingesting its own inbox —
  full-duplex pressure can never deadlock the tree.

* :class:`QueueTransport` — the original ``multiprocessing.Queue``
  fabric, kept as a baseline (``transport="queue"``) so benchmarks can
  measure exactly what the fast path buys.

* :class:`SocketTransport` (``transport="tcp"``) — the same
  length-prefixed frames carried over TCP stream sockets
  (``TCP_NODELAY``, widened kernel buffers, non-blocking sends with
  the same ``on_block`` ingest hook).  Edges are loopback connections
  established before forking, so the fail-stop model is identical to
  the pipe backend: a dead peer surfaces as EOF/``ECONNRESET``, never
  as a reconnect.  :mod:`repro.runtime.cluster` carries the identical
  frame protocol over *dialed* connections between node agents — that
  is what crosses real machine boundaries; this transport is the
  single-host data plane and the benchmark baseline for it.

Both transports move *batches*.  :class:`BatchingSender` owns the
policy: a :class:`BatchPolicy` either flushes at a fixed size (the old
``batch_size`` behaviour) or adapts per channel — batches grow toward
``max_batch`` while the observed global backlog is high (receivers are
busy; amortize harder) and shrink toward ``min_batch`` when the system
is keeping up, with a latency deadline bounding how long any message
can sit buffered.

The control plane (end-of-run reports, worker faults, crash/quiesce
announcements, and the global in-flight accounting that detects
quiescence) stays on ``multiprocessing`` primitives in
:class:`ControlPlane` — it is low-rate and needs blocking semantics,
not throughput.
"""

from __future__ import annotations

import os
import queue as queue_mod
import select
import socket
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.errors import RuntimeFault
from .wire import (
    FRAME_LEN,
    FrameAssembler,
    decode_batch,
    encode_batch,
    pack_frame,
    unpack_frame,
)

#: Destination/sender id of the run coordinator (the parent process
#: pumping producer messages and collecting reports).
COORDINATOR = "__coordinator__"

#: Returned by ``Receiver.recv()`` when the coordinator shut the
#: channel down; workers exit their loop on it.
STOP = object()

#: Queue-transport stop sentinel: a plain string so it crosses the
#: wire untouched (kept from the original channel fabric).
_QUEUE_STOP = "__stop__"

_LEN = FRAME_LEN

#: Transport names accepted by ``RunOptions.transport`` /
#: ``ProcessRuntime(transport=)``.
TRANSPORTS = ("pipe", "queue", "tcp")
DEFAULT_TRANSPORT = "pipe"


def _widen_pipe(fd: int, size: int = 1 << 20) -> None:
    """Best-effort bump of the kernel pipe buffer (Linux): a 64 KiB
    default pipe forces a writer wait every ~3k packed events; 1 MiB
    keeps bursts off the slow path.  Silently keeps the default where
    unsupported or capped (``/proc/sys/fs/pipe-max-size``)."""
    try:
        import fcntl

        fcntl.fcntl(fd, getattr(fcntl, "F_SETPIPE_SZ", 1031), size)
    except (ImportError, AttributeError, OSError, ValueError):  # pragma: no cover
        pass


def configure_stream_socket(sock: socket.socket, *, nonblocking: bool) -> None:
    """Tune one TCP endpoint for the framed data plane: ``TCP_NODELAY``
    (frames are already batched — Nagle would only add latency to the
    join critical path), best-effort 1 MiB kernel buffers (mirroring
    ``_widen_pipe``), and the blocking mode the framing code expects
    (write sides are non-blocking with an ingest hook; read sides stay
    blocking — reads happen only after ``poll`` reports data)."""
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    for opt in (socket.SO_SNDBUF, socket.SO_RCVBUF):
        try:
            sock.setsockopt(socket.SOL_SOCKET, opt, 1 << 20)
        except OSError:  # pragma: no cover - platform cap, keep default
            pass
    sock.setblocking(not nonblocking)


# ---------------------------------------------------------------------------
# Batch policy: fixed size vs adaptive (size OR deadline, backlog-driven)
# ---------------------------------------------------------------------------

class BatchPolicy:
    """When to flush a per-destination outgoing buffer.

    ``fixed(n)`` reproduces the original behaviour: flush at ``n``
    buffered messages, never on time.  ``adaptive()`` starts from
    ``start_batch`` and moves each channel's target within
    ``[min_batch, max_batch]``: observed backlog above
    ``grow_watermark`` × target doubles it (receivers are saturated —
    amortize harder), backlog below ``shrink_watermark`` × target
    halves it (system keeping up — favour latency).  ``deadline_ms``
    additionally flushes any buffer whose oldest message has waited
    that long, so a slow stretch cannot strand messages.
    """

    __slots__ = (
        "adaptive",
        "start_batch",
        "min_batch",
        "max_batch",
        "deadline_s",
        "grow_watermark",
        "shrink_watermark",
    )

    def __init__(
        self,
        *,
        adaptive: bool,
        start_batch: int,
        min_batch: int,
        max_batch: int,
        deadline_ms: Optional[float],
        grow_watermark: float = 4.0,
        shrink_watermark: float = 0.5,
    ) -> None:
        if not 1 <= min_batch <= start_batch <= max_batch:
            raise RuntimeFault(
                f"invalid batch policy: need 1 <= min ({min_batch}) <= "
                f"start ({start_batch}) <= max ({max_batch})"
            )
        self.adaptive = adaptive
        self.start_batch = start_batch
        self.min_batch = min_batch
        self.max_batch = max_batch
        # `is not None`: deadline_ms=0 means "flush immediately", the
        # tightest latency bound — not "no deadline".
        self.deadline_s = deadline_ms / 1000.0 if deadline_ms is not None else None
        self.grow_watermark = grow_watermark
        self.shrink_watermark = shrink_watermark

    @classmethod
    def fixed(cls, batch_size: int) -> "BatchPolicy":
        n = max(1, batch_size)
        return cls(
            adaptive=False, start_batch=n, min_batch=n, max_batch=n, deadline_ms=None
        )

    @classmethod
    def adaptive_policy(
        cls,
        *,
        start_batch: int = 64,
        min_batch: int = 16,
        max_batch: int = 1024,
        deadline_ms: float = 1.0,
    ) -> "BatchPolicy":
        return cls(
            adaptive=True,
            start_batch=start_batch,
            min_batch=min_batch,
            max_batch=max_batch,
            deadline_ms=deadline_ms,
        )

    def describe(self) -> str:
        if not self.adaptive:
            return f"fixed({self.start_batch})"
        dl = self.deadline_s * 1000.0 if self.deadline_s is not None else None
        return (
            f"adaptive({self.min_batch}..{self.max_batch}, "
            f"deadline={dl}ms)"
        )


def resolve_policy(batch_size: Optional[int], flush_ms: Optional[float]) -> BatchPolicy:
    """Map the user-facing knobs onto a policy: an explicit
    ``batch_size`` selects the fixed policy (the pre-transport
    behaviour, still useful as a baseline and in tests); ``None``
    selects adaptive batching, optionally overriding the flush
    deadline."""
    if batch_size is not None:
        return BatchPolicy.fixed(batch_size)
    if flush_ms is not None:
        return BatchPolicy.adaptive_policy(deadline_ms=flush_ms)
    return BatchPolicy.adaptive_policy()


# ---------------------------------------------------------------------------
# Control plane: reports, faults, and quiescence accounting
# ---------------------------------------------------------------------------

class ControlPlane:
    """Low-rate cross-process coordination shared by all transports.

    The in-flight counter is incremented when a batch is posted and
    decremented when the receiver has fully handled it *and* flushed
    its consequences; zero (after all producer input is posted) means
    every channel and every buffer has drained."""

    def __init__(self, ctx) -> None:
        self.results = ctx.Queue()
        self.errors = ctx.Queue()
        self.crashes = ctx.Queue()
        self.quiesces = ctx.Queue()
        #: Live metrics feed: workers push (node_id, wire snapshot)
        #: tuples at a low rate when the metrics plane is on; the
        #: coordinator (cluster mode) drains it into the Prometheus
        #: exporter.  Unused — never even written — when metrics are
        #: off.
        self.metrics = ctx.Queue()
        self.inflight = ctx.Value("q", 0, lock=True)
        # Raw ctypes view: reading `inflight.value` acquires the shared
        # lock; the adaptive policy's backlog heuristic must not add a
        # second cross-process lock round per flush.
        self._inflight_raw = self.inflight.get_obj()
        self.idle = ctx.Event()
        self.idle.set()  # vacuously idle until the first post

    def add_inflight(self, n: int) -> None:
        with self.inflight.get_lock():
            self.inflight.value += n
            self.idle.clear()

    def mark_done(self, n: int) -> None:
        with self.inflight.get_lock():
            self.inflight.value -= n
            if self.inflight.value == 0:
                self.idle.set()

    def backlog(self) -> int:
        """Racy, lock-free read of the global in-flight count — a
        heuristic load signal for the adaptive batch policy, not a
        synchronization point."""
        return self._inflight_raw.value


# ---------------------------------------------------------------------------
# Batching sender (transport-independent policy layer)
# ---------------------------------------------------------------------------

class BatchingSender:
    """Per-destination outgoing buffers over a raw transport sender.

    In-flight accounting happens at flush granularity — increment just
    before the batch hits the wire, decrement when the receiver
    finishes it — so quiescence implies empty channels *and* empty
    buffers."""

    __slots__ = (
        "_send",
        "control",
        "policy",
        "_buffers",
        "_first_ts",
        "_targets",
        "metrics",
    )

    def __init__(
        self,
        send_batch: Callable[[str, List[Any]], None],
        control: ControlPlane,
        policy: BatchPolicy,
    ) -> None:
        self._send = send_batch
        self.control = control
        self.policy = policy
        self._buffers: Dict[str, List[Any]] = {}
        self._first_ts: Dict[str, float] = {}
        self._targets: Dict[str, int] = {}
        #: Optional WorkerMetrics assigned by the worker loop after
        #: construction (metrics plane on); counts flushed batches.
        self.metrics = None

    def post(self, dst: str, msg: Any) -> None:
        buf = self._buffers.get(dst)
        if buf is None:
            buf = self._buffers[dst] = []
            if self.policy.deadline_s is not None:
                self._first_ts[dst] = time.monotonic()
        buf.append(msg)
        target = self._targets.get(dst, self.policy.start_batch)
        if len(buf) >= target:
            self._flush_one(dst, target)
        elif (
            self.policy.deadline_s is not None
            and time.monotonic() - self._first_ts[dst] >= self.policy.deadline_s
        ):
            self._flush_one(dst, target)

    def _flush_one(self, dst: str, target: int) -> None:
        batch = self._buffers.pop(dst, None)
        if not batch:
            return
        self._first_ts.pop(dst, None)
        self.control.add_inflight(len(batch))
        m = self.metrics
        if m is not None:
            m.batches_sent += 1
            m.messages_sent += len(batch)
        self._send(dst, batch)
        if self.policy.adaptive:
            # Per-channel target tracking the observed global backlog:
            # saturated receivers -> bigger batches, idle system ->
            # smaller ones.
            backlog = self.control.backlog()
            if backlog > self.policy.grow_watermark * target:
                self._targets[dst] = min(target * 2, self.policy.max_batch)
            elif backlog < self.policy.shrink_watermark * target:
                self._targets[dst] = max(target // 2, self.policy.min_batch)

    def flush(self) -> None:
        for dst in list(self._buffers):
            self._flush_one(dst, self._targets.get(dst, self.policy.start_batch))

    def pending(self) -> int:
        return sum(len(b) for b in self._buffers.values())


# ---------------------------------------------------------------------------
# Queue transport (the original fabric, kept as a measurable baseline)
# ---------------------------------------------------------------------------

class _QueueReceiver:
    __slots__ = ("_q", "metrics")

    def __init__(self, q) -> None:
        self._q = q
        self.metrics = None

    def recv(self) -> Any:
        batch = self._q.get()
        if batch == _QUEUE_STOP:
            return STOP
        if self.metrics is not None:
            self.metrics.frames_received += 1
        return decode_batch(batch)

    def poll(self) -> None:  # pragma: no cover - queue puts never block
        pass


class QueueTransport:
    """``multiprocessing.Queue`` per worker — the legacy data plane."""

    name = "queue"

    def __init__(self, ctx, edges: Dict[str, Sequence[str]]) -> None:
        self.queues = {wid: ctx.Queue() for wid in edges}

    def sender(
        self,
        src: str,
        control: ControlPlane,
        policy: BatchPolicy,
        on_block: Optional[Callable[[], None]] = None,
    ) -> BatchingSender:
        def send_batch(dst: str, batch: List[Any]) -> None:
            self.queues[dst].put(encode_batch(batch))

        return BatchingSender(send_batch, control, policy)

    def receiver(self, wid: str) -> _QueueReceiver:
        return _QueueReceiver(self.queues[wid])

    def child_setup(self, wid: str) -> None:
        pass

    def parent_setup(self) -> None:
        pass

    def stop_all(self) -> None:
        for q in self.queues.values():
            q.put(_QUEUE_STOP)

    def drain(self) -> None:
        """Discard whatever is still sitting in worker inboxes after an
        aborted attempt, so no queue feeder thread stays blocked on a
        full pipe when the queues are torn down."""
        for q in self.queues.values():
            try:
                while True:
                    q.get_nowait()
            except queue_mod.Empty:
                pass
            q.cancel_join_thread()

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Pipe transport (raw os.pipe per directed edge, framed)
# ---------------------------------------------------------------------------

class FrameReceiver:
    """Merges framed traffic from every inbound stream fd of one worker
    (raw pipes or TCP sockets — both deliver arbitrarily fragmented
    bytes; :class:`FrameAssembler` owns the reassembly).

    Frames are delivered in per-sender order (each stream is FIFO and
    has a single writer); cross-sender arrival order is whatever the
    poller observes, exactly like the queue fabric's interleaved
    puts.  ``poll()`` ingests opportunistically without blocking — the
    sender calls it while waiting for channel space, which is what
    makes the mesh deadlock-free.  ``select.poll`` (not
    ``select.select``) because fd numbers above FD_SETSIZE (1024) must
    keep working — the coordinator opens every edge's channels before
    forking.

    A stream that ends cleanly (EOF at a frame boundary) means the
    writer exited; the fd is dropped and the coordinator's liveness
    checks surface the actual fault.  A stream that ends *mid-frame*
    (torn write, ``ECONNRESET`` under buffered bytes) raises
    :class:`RuntimeFault` immediately — a half-delivered batch must
    never decode as a shorter one."""

    __slots__ = ("_poller", "_n_live", "_asm", "_ready", "metrics")

    def __init__(self, rfds: List[int]) -> None:
        self._poller = select.poll()
        self._asm: Dict[int, FrameAssembler] = {}
        for fd in rfds:
            self._poller.register(fd, select.POLLIN)
            self._asm[fd] = FrameAssembler()
        self._n_live = len(rfds)
        self._ready: Deque[Any] = deque()
        #: Optional WorkerMetrics assigned by the worker loop after
        #: construction (metrics plane on); counts completed frames.
        self.metrics = None

    def recv(self) -> Any:
        while not self._ready:
            for fd, _events in self._poller.poll():
                self._ingest(fd)
        return self._ready.popleft()

    def poll(self) -> None:
        while True:
            events = self._poller.poll(0)
            if not events:
                return
            for fd, _events in events:
                self._ingest(fd)

    def _ingest(self, fd: int) -> None:
        try:
            data = os.read(fd, 1 << 16)
        except BlockingIOError:  # pragma: no cover - spurious wakeup
            return
        except OSError:
            # ECONNRESET and friends: the peer vanished abruptly.
            # Treated as end-of-stream; the assembler decides whether
            # it was torn mid-frame.
            data = b""
        if not data:
            # End of stream: drop the fd so the poller stops reporting
            # it; a mid-frame close raises out of the assembler.
            self._poller.unregister(fd)
            self._n_live -= 1
            self._asm.pop(fd).close()
            if self._n_live == 0:
                self._ready.append(STOP)
            return
        m = self.metrics
        for frame in self._asm[fd].feed(data):
            if not frame:
                self._ready.append(STOP)
            else:
                if m is not None:
                    m.frames_received += 1
                self._ready.append(unpack_frame(frame))


class FrameSender:
    """Write side of one process's outbound framed edges — stream fds
    (pipes or TCP sockets), single writer per edge, non-blocking with
    an ingest hook while the channel is full."""

    __slots__ = ("_wfds", "_on_block")

    def __init__(self, wfds: Dict[str, int], on_block: Optional[Callable[[], None]]):
        self._wfds = wfds
        self._on_block = on_block

    def send_batch(self, dst: str, batch: List[Any]) -> None:
        data = pack_frame(batch)
        self.send_raw(dst, _LEN.pack(len(data)) + data)

    def send_raw(self, dst: str, record: bytes) -> None:
        try:
            fd = self._wfds[dst]
        except KeyError:
            raise RuntimeFault(
                f"framed transport has no edge to {dst!r} from this sender"
            ) from None
        view = memoryview(record)
        while view:
            try:
                n = os.write(fd, view)
            except BlockingIOError:
                n = 0
            except (BrokenPipeError, OSError):
                # Peer already exited: only legal after an aborted
                # attempt (crash/quiesce) or once the run is being torn
                # down; the control plane carries the real outcome.
                return
            if n:
                view = view[n:]
                continue
            if self._on_block is not None:
                self._on_block()
            # poll, not select: fd numbers above FD_SETSIZE must work.
            waiter = select.poll()
            waiter.register(fd, select.POLLOUT)
            waiter.poll(2)


class PipeTransport:
    """Raw-pipe data plane: one framed, single-writer pipe per directed
    edge of the communication graph."""

    name = "pipe"

    def __init__(self, ctx, edges: Dict[str, Sequence[str]]) -> None:
        # edges: receiver id -> sender ids allowed to reach it.
        self._edges = {wid: tuple(srcs) for wid, srcs in edges.items()}
        self._pipes: Dict[tuple, tuple] = {}
        for wid, srcs in self._edges.items():
            for src in srcs:
                self._pipes[(src, wid)] = self._open_edge()
        #: Parent-side fds not yet closed.  Tracked explicitly so
        #: ``parent_setup`` + ``close`` never double-close an fd number
        #: the OS may have reused for something else.
        self._parent_open = {fd for pair in self._pipes.values() for fd in pair}

    def _open_edge(self) -> Tuple[int, int]:
        """One directed channel as a (read fd, write fd) pair; the
        write side non-blocking (:class:`SocketTransport` overrides
        this with a TCP connection, everything else is shared)."""
        r, w = os.pipe()
        os.set_blocking(w, False)
        _widen_pipe(w)
        return r, w

    def sender(
        self,
        src: str,
        control: ControlPlane,
        policy: BatchPolicy,
        on_block: Optional[Callable[[], None]] = None,
    ) -> BatchingSender:
        wfds = {
            wid: w
            for (s, wid), (_, w) in self._pipes.items()
            if s == src
        }
        raw = FrameSender(wfds, on_block)
        return BatchingSender(raw.send_batch, control, policy)

    def receiver(self, wid: str) -> FrameReceiver:
        rfds = [r for (_, d), (r, _) in self._pipes.items() if d == wid]
        return FrameReceiver(rfds)

    def child_setup(self, wid: str) -> None:
        """Called in a forked worker before it opens its endpoints:
        close every inherited fd this worker does not own (it keeps
        read ends of inbound edges and write ends of outbound ones).
        Without this, every pipe end lives in every process and a dead
        peer can never be observed as EOF/EPIPE — only the
        coordinator's exitcode polling would catch it, seconds later."""
        for (src, dst), (r, w) in self._pipes.items():
            if dst != wid:
                os.close(r)
            if src != wid:
                os.close(w)

    def parent_setup(self) -> None:
        """Called in the coordinator once every worker has forked:
        drop the parent's copies of the fds it never uses (all read
        ends, and write ends of worker-to-worker edges), completing
        the ownership picture ``child_setup`` starts — after this,
        each pipe end lives only in the process that uses it."""
        for (src, _), (r, w) in self._pipes.items():
            self._parent_close(r)
            if src != COORDINATOR:
                self._parent_close(w)

    def _parent_close(self, fd: int) -> None:
        if fd in self._parent_open:
            self._parent_open.discard(fd)
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - defensive
                pass

    def stop_all(self) -> None:
        """Coordinator-side shutdown: a zero-length frame on every
        coordinator edge."""
        stop = _LEN.pack(0)
        sender = FrameSender(
            {
                wid: w
                for (s, wid), (_, w) in self._pipes.items()
                if s == COORDINATOR
            },
            None,
        )
        for wid in list(self._edges):
            sender.send_raw(wid, stop)

    def drain(self) -> None:
        pass  # kernel buffers vanish with the fds

    def close(self) -> None:
        for fd in list(self._parent_open):
            self._parent_close(fd)


# ---------------------------------------------------------------------------
# Socket transport (the same frames over TCP stream sockets)
# ---------------------------------------------------------------------------

class SocketTransport(PipeTransport):
    """TCP data plane: one framed, single-writer stream socket per
    directed edge of the communication graph.

    Each edge is a real TCP connection (listen/connect/accept on
    loopback, established before forking so fd ownership works exactly
    like pipes): ``TCP_NODELAY`` on both ends, non-blocking writes
    with the deadlock-free ``on_block`` ingest hook, and fail-stop
    fault surfacing — a dead peer is EOF (or ``ECONNRESET``, raised as
    :class:`RuntimeFault` when it tears a frame), never a reconnect.
    The frame protocol on the wire is byte-identical to what
    :mod:`repro.runtime.cluster` speaks between node agents on
    different hosts, which makes this transport the single-host
    reference point for the distributed deployment."""

    name = "tcp"

    def _open_edge(self) -> Tuple[int, int]:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as lst:
            lst.bind(("127.0.0.1", 0))
            lst.listen(8)
            lst.settimeout(5.0)
            w_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                # Loopback connect completes against the backlog; no
                # accept has to be sitting there first.
                w_sock.connect(lst.getsockname())
                local = w_sock.getsockname()
                # Accept until the peer is our own just-dialed socket:
                # an ephemeral loopback port is visible to every local
                # user, and a stray connect racing ours must never be
                # paired into the mesh (its frames would later be
                # trusted, including the codec's pickle fallback).
                while True:
                    r_sock, peer = lst.accept()
                    if peer == local:
                        break
                    r_sock.close()
            except BaseException:  # pragma: no cover - defensive
                w_sock.close()
                raise
        configure_stream_socket(r_sock, nonblocking=False)
        configure_stream_socket(w_sock, nonblocking=True)
        # detach(): from here on the endpoints are plain fds managed by
        # the shared pipe-ownership machinery (child_setup/parent_setup
        # close the ends each process does not own).
        return r_sock.detach(), w_sock.detach()


def make_transport(name: str, ctx, edges: Dict[str, Sequence[str]]):
    if name == "pipe":
        return PipeTransport(ctx, edges)
    if name == "queue":
        return QueueTransport(ctx, edges)
    if name == "tcp":
        return SocketTransport(ctx, edges)
    raise RuntimeFault(
        f"unknown transport {name!r}; available: {TRANSPORTS}"
    )


def plan_edges(plan) -> Dict[str, List[str]]:
    """The directed communication graph of a synchronization plan:
    every worker hears from the coordinator (producer input + stop),
    its parent (join requests, forked states, relayed heartbeats) and
    its children (join responses)."""
    edges: Dict[str, List[str]] = {}
    for node in plan.workers():
        srcs = [COORDINATOR]
        parent = plan.parent_of(node.id)
        if parent is not None:
            srcs.append(parent.id)
        if not node.is_leaf:
            srcs.extend(c.id for c in node.children)
        edges[node.id] = srcs
    return edges
