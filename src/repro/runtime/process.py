"""A multi-process execution of synchronization plans.

The threaded runtime proves the protocol runs on a concurrent
substrate, but the GIL serializes its update functions.  This module
executes the same :class:`~repro.runtime.protocol.WorkerCore` state
machine with **one OS process per plan worker**, so independent events
on different leaves genuinely run in parallel — the paper's central
claim (dependency-guided synchronization lets independent events
proceed concurrently) measured on real cores rather than asserted.

Two design points keep IPC from eating the speedup:

* **Batched channels.**  Every queue operation carries a *list* of
  wire-encoded messages (see :mod:`repro.runtime.wire`), so one
  pickle + pipe write + consumer wakeup is amortized over
  ``batch_size`` messages.  Producers batch aggressively; workers
  buffer their outgoing messages while handling an incoming batch and
  flush when done, which bounds the latency a batch can add to the
  join/fork critical path.
* **Fork start method.**  Workers are forked, so programs — which
  contain closures and are deliberately *not* picklable — are
  inherited by child processes instead of serialized.  Only protocol
  messages (events, order keys, application states) cross process
  boundaries.

Termination mirrors the threaded runtime: a shared in-flight message
counter is incremented when a batch is posted and decremented when it
has been fully handled *and* its consequences flushed; the counter
reaching zero after all producer input is posted means every channel
has drained, at which point stop sentinels are delivered and each
worker ships its locally-accumulated outputs back once.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.errors import RuntimeFault
from ..core.program import DGSProgram
from ..plans.plan import SyncPlan
from ..plans.validity import assert_p_valid
from .checkpoint import Checkpoint, CheckpointPredicate
from .faults import CrashRecord, FaultPlan, WorkerCrash, WorkerFaultView
from .quiesce import QuiesceRecord, QuiesceSignal, RootReconfigView
from .protocol import (
    INIT_STATE,
    OutputSink,
    RunStatsMixin,
    WorkerCore,
    end_timestamp,
    initial_leaf_states,
    producer_messages,
)
from .runtime import InputStream
from .wire import decode_batch, encode_msg

#: Stop sentinel; a plain string so it crosses the wire untouched.
_STOP = "__stop__"

DEFAULT_BATCH_SIZE = 64


@dataclass
class ProcessResult(RunStatsMixin):
    """Outputs and counters aggregated from all worker processes."""

    outputs: List[Any] = field(default_factory=list)
    joins: int = 0
    events_processed: int = 0
    events_in: int = 0
    wall_s: float = 0.0
    n_workers: int = 0
    batch_size: int = DEFAULT_BATCH_SIZE
    #: (order_key, value) log, populated only when record_keys is set.
    keyed_outputs: List[Any] = field(default_factory=list)
    checkpoints: List[Checkpoint] = field(default_factory=list)
    crashes: List[CrashRecord] = field(default_factory=list)
    #: Set when the root quiesced for elastic reconfiguration.
    quiesce: Optional[QuiesceRecord] = None


@dataclass
class _WorkerReport:
    """One worker's end-of-run shipment to the coordinator (picklable).

    A crashed worker still ships its report — the fail-stop model
    includes synchronous output/checkpoint logging, so everything the
    worker fully processed before the crash travels back (what a real
    deployment would have written to durable storage)."""

    node_id: str
    outputs: List[Any]
    keyed_outputs: List[Any]
    checkpoints: List[Checkpoint]
    events_processed: int
    joins: int
    leftover: int
    crash: Optional[CrashRecord] = None
    quiesce: Optional[QuiesceRecord] = None


class _Channels:
    """The shared IPC fabric: one inbox queue per worker plus the
    global in-flight accounting that detects quiescence."""

    def __init__(self, ctx, worker_ids: Sequence[str]) -> None:
        self.queues = {wid: ctx.Queue() for wid in worker_ids}
        self.results = ctx.Queue()
        self.errors = ctx.Queue()
        self.crashes = ctx.Queue()
        self.quiesces = ctx.Queue()
        self.inflight = ctx.Value("q", 0, lock=True)
        self.idle = ctx.Event()
        self.idle.set()  # vacuously idle until the first post

    def stop_all(self) -> None:
        for q in self.queues.values():
            q.put(_STOP)

    def drain_inboxes(self) -> None:
        """Discard whatever is still sitting in worker inboxes after an
        aborted attempt, so no queue feeder thread stays blocked on a
        full pipe when the queues are torn down."""
        for q in self.queues.values():
            try:
                while True:
                    q.get_nowait()
            except queue_mod.Empty:
                pass
            q.cancel_join_thread()


class _Batcher:
    """Per-sender outgoing buffers: wire-encodes and coalesces messages
    into per-destination batches, flushed at ``batch_size`` or on
    demand.  In-flight accounting happens at batch granularity —
    increment on put, decrement when the receiver finishes the batch —
    so quiescence implies empty queues *and* empty buffers."""

    def __init__(self, channels: _Channels, batch_size: int) -> None:
        self.channels = channels
        self.batch_size = max(1, batch_size)
        self._buffers: Dict[str, List[tuple]] = {}

    def post(self, dst: str, msg: Any) -> None:
        buf = self._buffers.setdefault(dst, [])
        buf.append(encode_msg(msg))
        if len(buf) >= self.batch_size:
            self._flush_one(dst)

    def _flush_one(self, dst: str) -> None:
        batch = self._buffers.pop(dst, None)
        if not batch:
            return
        with self.channels.inflight.get_lock():
            self.channels.inflight.value += len(batch)
            self.channels.idle.clear()
        self.channels.queues[dst].put(batch)

    def flush(self) -> None:
        for dst in list(self._buffers):
            self._flush_one(dst)

    def mark_done(self, n: int) -> None:
        with self.channels.inflight.get_lock():
            self.channels.inflight.value -= n
            if self.channels.inflight.value == 0:
                self.channels.idle.set()


def _worker_main(
    node_id: str,
    plan: SyncPlan,
    program: DGSProgram,
    channels: _Channels,
    batch_size: int,
    init_state: Optional[tuple],
    checkpoint_predicate: Optional[CheckpointPredicate],
    fault_view: Optional[WorkerFaultView],
    record_keys: bool,
    reconfig_view: Optional[RootReconfigView] = None,
) -> None:
    """Child-process entry point: drive a WorkerCore from the inbox.

    Outputs accumulate in a process-local sink and travel back to the
    coordinator exactly once, on shutdown — results never compete with
    protocol traffic for the channels.

    An injected :class:`WorkerCrash` makes the worker fail-stop: the
    consequences of fully-processed events are flushed (they already
    left the failure domain in the model), the crash is announced on
    the dedicated queue, and from then on incoming batches are absorbed
    unprocessed until the stop sentinel, when the report ships.
    """
    try:
        batcher = _Batcher(channels, batch_size)
        sink = OutputSink(record_keys=record_keys)
        core = WorkerCore(
            plan.node(node_id),
            plan,
            program,
            batcher.post,
            sink,
            checkpoint_predicate=checkpoint_predicate,
            faults=fault_view,
            reconfig=reconfig_view,
        )
        if init_state is not None:
            core.state = init_state[0]
            core.has_state = True
        inbox = channels.queues[node_id]
        crash: Optional[CrashRecord] = None
        quiesce: Optional[QuiesceRecord] = None
        while True:
            batch = inbox.get()
            if batch == _STOP:
                break
            if crash is not None or quiesce is not None:
                batcher.mark_done(len(batch))
                continue
            msgs = decode_batch(batch)
            try:
                for msg in msgs:
                    core.handle(msg)
            except WorkerCrash as wc:
                crash = wc.record
                # Ship consequences of the events processed *before*
                # the crash, then announce it; the triggering event and
                # the rest of the batch die with the worker.
                batcher.flush()
                channels.crashes.put(crash)
            except QuiesceSignal as sig:
                quiesce = sig.record
                # Planned stop at a consistent snapshot: the triggering
                # event is fully processed, only its fork-down was
                # withheld.  Ship consequences, announce, go silent —
                # the reconfiguration driver restarts on a new plan.
                # The announcement is a lightweight sentinel: the full
                # record (carrying the snapshot state) travels once, in
                # the end-of-run report.
                batcher.flush()
                channels.quiesces.put(node_id)
            # Flush consequences *before* declaring the batch done, so
            # the in-flight counter can never dip to zero while this
            # worker still owes messages to others.
            batcher.flush()
            batcher.mark_done(len(msgs))
        channels.results.put(
            _WorkerReport(
                node_id,
                sink.outputs,
                sink.keyed_outputs,
                sink.checkpoints,
                sink.events_processed,
                sink.joins,
                core.unprocessed(),
                crash,
                quiesce,
            )
        )
    except BaseException as exc:  # pragma: no cover - exercised via fault tests
        channels.errors.put((node_id, f"{exc!r}\n{traceback.format_exc()}"))
        raise


class ProcessRuntime:
    """Run a DGS program on OS processes (one per plan worker).

    ``batch_size`` tunes the channel batching: 1 degenerates to
    per-message IPC (useful as a baseline), larger values amortize
    serialization until batching latency starts delaying joins.
    """

    def __init__(
        self,
        program: DGSProgram,
        plan: SyncPlan,
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        validate: bool = True,
    ) -> None:
        self.program = program
        if validate:
            assert_p_valid(plan, program)
        self.plan = plan
        self.batch_size = max(1, batch_size)
        # fork (not spawn): children must inherit the program's
        # closures; only messages are ever pickled.
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeFault(
                "the process runtime requires the 'fork' start method "
                "(Linux/macOS); use the 'threaded' or 'sim' backend on "
                "this platform"
            )
        self._ctx = mp.get_context("fork")

    def run(
        self,
        streams: Sequence[InputStream],
        *,
        timeout_s: float = 120.0,
        initial_state: Any = INIT_STATE,
        checkpoint_predicate: Optional[CheckpointPredicate] = None,
        faults: Optional[FaultPlan] = None,
        record_keys: bool = False,
        reconfig: Optional[RootReconfigView] = None,
    ) -> ProcessResult:
        """Execute one attempt (see :meth:`ThreadedRuntime.run` for the
        fault-injection / reconfiguration parameter contract: a crashed
        or quiesced attempt returns with ``crashes`` non-empty /
        ``quiesce`` set instead of raising)."""
        workers = self.plan.workers()
        channels = _Channels(self._ctx, [n.id for n in workers])
        leaf_states = initial_leaf_states(self.plan, self.program, initial_state)
        procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(
                    n.id,
                    self.plan,
                    self.program,
                    channels,
                    self.batch_size,
                    (leaf_states[n.id],) if n.id in leaf_states else None,
                    checkpoint_predicate,
                    faults.view_for(n.id) if faults is not None else None,
                    record_keys,
                    reconfig if n.id == self.plan.root.id else None,
                ),
                daemon=True,
                name=f"worker:{n.id}",
            )
            for n in workers
        ]
        for p in procs:
            p.start()

        result = ProcessResult(n_workers=len(workers), batch_size=self.batch_size)
        try:
            t0 = time.perf_counter()
            batcher = _Batcher(channels, self.batch_size)
            end_ts = end_timestamp(streams)
            for stream in streams:
                owner = self.plan.owner_of(stream.itag).id
                for msg in producer_messages(stream, end_ts):
                    batcher.post(owner, msg)
                result.events_in += len(stream.events)
            batcher.flush()
            aborted = self._await_idle(channels, procs, timeout_s)
            result.wall_s = time.perf_counter() - t0

            channels.stop_all()
            self._collect(channels, result, timeout_s)
            if aborted:
                channels.drain_inboxes()
        finally:
            for p in procs:
                p.join(timeout=5.0)
            for p in procs:
                if p.is_alive():  # pragma: no cover - defensive cleanup
                    p.terminate()
                    p.join(timeout=1.0)
        return result

    # -- coordination helpers -------------------------------------------
    @staticmethod
    def _aborted(channels: _Channels) -> bool:
        """True when a crash or a reconfiguration quiesce was announced
        (either one ends the attempt early)."""
        for q in (channels.crashes, channels.quiesces):
            try:
                q.get_nowait()
            except queue_mod.Empty:
                continue
            return True
        return False

    @classmethod
    def _await_idle(cls, channels: _Channels, procs, timeout_s: float) -> bool:
        """Wait for drain, an injected crash, or a reconfiguration
        quiesce (returns True for an aborted attempt), surfacing worker
        faults promptly."""
        deadline = time.monotonic() + timeout_s
        while True:
            if cls._aborted(channels):
                return True
            if channels.idle.wait(timeout=0.05):
                # Drain and an abort can race: a crashed/quiesced
                # worker absorbs its backlog, so the counter may reach
                # zero right as the announcement lands.  Abort wins.
                return cls._aborted(channels)
            try:
                node_id, err = channels.errors.get_nowait()
            except queue_mod.Empty:
                pass
            else:
                raise RuntimeFault(f"worker {node_id} crashed:\n{err}")
            if any(not p.is_alive() and p.exitcode not in (0, None) for p in procs):
                raise RuntimeFault(
                    "a worker process died before the run drained "
                    f"(exitcodes: {[p.exitcode for p in procs]})"
                )
            if time.monotonic() > deadline:
                raise RuntimeFault("process runtime did not drain in time")

    def _collect(
        self, channels: _Channels, result: ProcessResult, timeout_s: float
    ) -> None:
        deadline = time.monotonic() + timeout_s
        reports: List[_WorkerReport] = []
        for _ in range(result.n_workers):
            # Poll results and errors together: a fault after quiescence
            # (e.g. an unpicklable output killing the result put) must
            # surface with its traceback, not as a bare timeout.
            while True:
                try:
                    reports.append(channels.results.get(timeout=0.05))
                    break
                except queue_mod.Empty:
                    try:
                        err_node, err = channels.errors.get_nowait()
                    except queue_mod.Empty:
                        pass
                    else:
                        raise RuntimeFault(
                            f"worker {err_node} crashed after drain:\n{err}"
                        ) from None
                    if time.monotonic() > deadline:
                        raise RuntimeFault(
                            "worker results missing after drain; a worker "
                            "likely crashed or produced unpicklable outputs"
                        ) from None
        result.crashes = [r.crash for r in reports if r.crash is not None]
        for report in reports:
            if report.quiesce is not None:
                result.quiesce = report.quiesce
        for report in reports:
            if report.leftover and not result.crashes and result.quiesce is None:
                raise RuntimeFault(
                    f"worker {report.node_id} ended with {report.leftover} "
                    "unprocessed items; check heartbeats / dependence relation"
                )
            result.outputs.extend(report.outputs)
            result.keyed_outputs.extend(report.keyed_outputs)
            result.checkpoints.extend(report.checkpoints)
            result.events_processed += report.events_processed
            result.joins += report.joins
        result.checkpoints.sort(key=lambda c: c.key)
