"""Unit tests for repro.core.predicates (tag-set predicates)."""

import pytest

from repro.core import (
    DependenceRelation,
    Event,
    PredicateError,
    false_pred,
    pred_of,
    pred_where,
    true_pred,
)

UNI = ["a", "b", "c", "d"]


class TestConstruction:
    def test_true_pred_contains_all(self):
        p = true_pred(UNI)
        assert all(t in p for t in UNI)
        assert len(p) == 4

    def test_false_pred_is_empty(self):
        p = false_pred(UNI)
        assert not p
        assert len(p) == 0

    def test_pred_of_subset(self):
        p = pred_of(UNI, ["a", "c"])
        assert "a" in p and "c" in p and "b" not in p

    def test_pred_where_materializes_function(self):
        p = pred_where(UNI, lambda t: t in ("a", "b"))
        assert set(p) == {"a", "b"}

    def test_rejects_tags_outside_universe(self):
        with pytest.raises(PredicateError):
            pred_of(UNI, ["z"])


class TestEvaluation:
    def test_call_and_contains_agree(self):
        p = pred_of(UNI, ["a"])
        assert p("a") and not p("b")
        assert ("a" in p) and ("b" not in p)

    def test_matches_event(self):
        p = pred_of(UNI, ["a"])
        assert p.matches_event(Event("a", 0, 1))
        assert not p.matches_event(Event("b", 0, 1))


class TestCombinators:
    def test_union_intersect_difference(self):
        p = pred_of(UNI, ["a", "b"])
        q = pred_of(UNI, ["b", "c"])
        assert set(p.union(q)) == {"a", "b", "c"}
        assert set(p.intersect(q)) == {"b"}
        assert set(p.difference(q)) == {"a"}

    def test_complement(self):
        p = pred_of(UNI, ["a"])
        assert set(p.complement()) == {"b", "c", "d"}

    def test_restrict(self):
        p = pred_of(UNI, ["a", "b", "c"])
        assert set(p.restrict(["b", "c", "d"])) == {"b", "c"}

    def test_implies_is_subset(self):
        small = pred_of(UNI, ["a"])
        big = pred_of(UNI, ["a", "b"])
        assert small.implies(big)
        assert not big.implies(small)

    def test_disjoint(self):
        assert pred_of(UNI, ["a"]).is_disjoint(pred_of(UNI, ["b"]))
        assert not pred_of(UNI, ["a"]).is_disjoint(pred_of(UNI, ["a"]))

    def test_mixed_universe_rejected(self):
        p = pred_of(UNI, ["a"])
        q = pred_of(["a", "x"], ["a"])
        with pytest.raises(PredicateError):
            p.union(q)


class TestIndependence:
    def test_independent_of_uses_dependence_relation(self):
        dep = DependenceRelation.from_function(
            UNI, lambda x, y: {x, y} == {"a", "b"}
        )
        pa = pred_of(UNI, ["a"])
        pb = pred_of(UNI, ["b"])
        pc = pred_of(UNI, ["c"])
        assert not pa.independent_of(pb, dep)
        assert pa.independent_of(pc, dep)

    def test_empty_pred_independent_of_everything(self):
        dep = DependenceRelation.all_dependent(UNI)
        assert false_pred(UNI).independent_of(true_pred(UNI), dep)
