"""Tests for the synthetic workload generators (§4.1): timestamp
uniqueness/monotonicity (the total order O), ratio preservation, and
the valid-input-instance properties of Definition 3.3."""


import pytest

from repro.apps import fraud, pageview as pv, value_barrier as vb
from repro.core import check_valid_input_instance, stream_is_monotone
from repro.data.generators import uniform_stream
from repro.core.events import ImplTag


class TestUniformStream:
    def test_rate_and_count(self):
        evs = uniform_stream(ImplTag("t", 0), rate_per_ms=10.0, n_events=50)
        assert len(evs) == 50
        gaps = [b.ts - a.ts for a, b in zip(evs, evs[1:])]
        assert all(abs(g - 0.1) < 1e-12 for g in gaps)

    def test_offset_and_payload(self):
        evs = uniform_stream(
            ImplTag("t", 0),
            rate_per_ms=1.0,
            n_events=3,
            offset=0.25,
            payload_fn=lambda i: i * i,
        )
        assert evs[0].ts == pytest.approx(1.25)
        assert [e.payload for e in evs] == [0, 1, 4]

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            uniform_stream(ImplTag("t", 0), rate_per_ms=0.0, n_events=1)


def _all_ts(workload):
    return [e.ts for _, evs in workload.all_streams() for e in evs]


class TestValueBarrierWorkload:
    @pytest.mark.parametrize("rate", [10.0, 50.0, 200.0, 333.0])
    def test_no_timestamp_collisions_at_any_rate(self, rate):
        wl = vb.make_workload(
            n_value_streams=8, values_per_barrier=50, n_barriers=3,
            value_rate_per_ms=rate,
        )
        ts = _all_ts(wl)
        assert len(ts) == len(set(ts)), "timestamp collision breaks the total order O"

    def test_ratio_preserved(self):
        wl = vb.make_workload(
            n_value_streams=3, values_per_barrier=70, n_barriers=4
        )
        for evs in wl.value_streams.values():
            assert len(evs) == 70 * 4
        assert len(wl.barrier_stream) == 4

    def test_values_per_window(self):
        # Exactly values_per_barrier values per stream land in each
        # inter-barrier window.
        wl = vb.make_workload(
            n_value_streams=2, values_per_barrier=25, n_barriers=3,
            value_rate_per_ms=10.0,
        )
        barriers = [b.ts for b in wl.barrier_stream]
        for evs in wl.value_streams.values():
            prev = 0.0
            for bts in barriers:
                n = sum(1 for e in evs if prev < e.ts <= bts)
                assert n == 25
                prev = bts

    def test_streams_monotone(self):
        wl = vb.make_workload(n_value_streams=4, values_per_barrier=20, n_barriers=2)
        for _, evs in wl.all_streams():
            assert stream_is_monotone(evs)

    def test_valid_input_instance_with_heartbeats(self):
        wl = vb.make_workload(n_value_streams=2, values_per_barrier=20, n_barriers=2)
        streams = vb.make_streams(wl)
        # The runtime appends closing heartbeats; emulate Definition 3.3
        # by appending one per stream here.
        from repro.core import Heartbeat

        record_streams = []
        end = max(_all_ts(wl)) + 1.0
        for s in streams:
            record_streams.append(
                list(s.events) + [Heartbeat(s.itag.tag, s.itag.stream, end)]
            )
        assert check_valid_input_instance(record_streams) == []

    def test_total_events(self):
        wl = vb.make_workload(n_value_streams=3, values_per_barrier=10, n_barriers=2)
        assert wl.total_events == 3 * 20 + 2


class TestPageViewWorkload:
    @pytest.mark.parametrize("rate", [10.0, 100.0, 250.0])
    def test_no_timestamp_collisions(self, rate):
        wl = pv.make_workload(
            n_pages=2, n_view_streams=6, views_per_update=30,
            n_updates_per_page=3, view_rate_per_ms=rate,
        )
        ts = _all_ts(wl)
        assert len(ts) == len(set(ts))

    def test_views_skewed_to_pages_round_robin(self):
        wl = pv.make_workload(
            n_pages=2, n_view_streams=6, views_per_update=10, n_updates_per_page=2
        )
        pages = [itag.tag[1] for itag in wl.view_streams]
        assert pages == [0, 1, 0, 1, 0, 1]

    def test_update_streams_one_per_page(self):
        wl = pv.make_workload(
            n_pages=3, n_view_streams=3, views_per_update=10, n_updates_per_page=2
        )
        assert len(wl.update_streams) == 3
        assert {itag.tag[1] for itag in wl.update_streams} == {0, 1, 2}

    def test_fraud_workload_payloads(self):
        wl = fraud.make_workload(n_txn_streams=2, txns_per_rule=10, n_rules=2)
        vals = [e.payload for evs in wl.value_streams.values() for e in evs]
        assert all(isinstance(v, int) and 0 <= v < 5000 for v in vals)
        rules = [e.payload for e in wl.barrier_stream]
        assert rules == [29, 58]
