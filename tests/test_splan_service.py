"""Tests for the manual fork/join rendezvous service (§4.3, Figure 7)."""

import pytest

from repro.flinklike.splan import (
    ForkJoinService,
    ForkResponse,
    JoinChild,
    JoinParent,
    ParentResult,
)
from repro.sim import ActorSystem, Simulator, Topology


class Probe:
    """Minimal actor capturing everything it receives."""

    def __init__(self, name, host):
        from repro.sim import Actor

        class _P(Actor):
            def __init__(inner):
                super().__init__(name, host)
                inner.received = []

            def handle(inner, msg, sender):
                inner.received.append(msg)

        self.actor = _P()


def make_system():
    topo = Topology.cluster(2)
    return ActorSystem(Simulator(), topo)


def sum_combine(states, payload):
    total = sum(states) + payload
    return total, [0 for _ in states]


class TestForkJoinService:
    def test_completes_when_all_children_and_parent_arrive(self):
        sys = make_system()
        svc = ForkJoinService(
            "svc", "node0", groups={0: 2}, combine=sum_combine
        )
        sys.add(svc)
        p = Probe("parent", "node1").actor
        c1 = Probe("child1", "node1").actor
        c2 = Probe("child2", "node1").actor
        for a in (p, c1, c2):
            sys.add(a)
        sys.inject("svc", JoinChild(0, "child1", 10), at=0.0)
        sys.inject("svc", JoinChild(0, "child2", 20), at=0.1)
        sys.inject("svc", JoinParent(0, "parent", 5, ts=1.0), at=0.2)
        sys.run()
        assert [m for m in p.received if isinstance(m, ParentResult)][0].result == 35
        assert isinstance(c1.received[0], ForkResponse)
        assert isinstance(c2.received[0], ForkResponse)

    def test_parent_first_waits_for_children(self):
        sys = make_system()
        svc = ForkJoinService("svc", "node0", groups={0: 1}, combine=sum_combine)
        sys.add(svc)
        p = Probe("parent", "node1").actor
        c = Probe("child", "node1").actor
        sys.add(p)
        sys.add(c)
        sys.inject("svc", JoinParent(0, "parent", 1, ts=1.0), at=0.0)
        sys.run()
        assert p.received == []  # still waiting
        sys.inject("svc", JoinChild(0, "child", 9), at=5.0)
        sys.run()
        assert p.received[0].result == 10

    def test_independent_groups(self):
        sys = make_system()
        svc = ForkJoinService(
            "svc", "node0", groups={0: 1, 1: 1}, combine=sum_combine
        )
        sys.add(svc)
        p0 = Probe("p0", "node1").actor
        p1 = Probe("p1", "node1").actor
        c0 = Probe("c0", "node1").actor
        c1 = Probe("c1", "node1").actor
        for a in (p0, p1, c0, c1):
            sys.add(a)
        sys.inject("svc", JoinChild(1, "c1", 100), at=0.0)
        sys.inject("svc", JoinParent(1, "p1", 1, ts=1.0), at=0.1)
        sys.inject("svc", JoinChild(0, "c0", 7), at=0.2)
        sys.inject("svc", JoinParent(0, "p0", 2, ts=1.0), at=0.3)
        sys.run()
        assert p1.received[0].result == 101
        assert p0.received[0].result == 9

    def test_childless_group_uses_virtual_state(self):
        sys = make_system()

        def combine(states, payload):
            # states[0] is the service-held virtual state
            return states[0], [payload]

        svc = ForkJoinService(
            "svc", "node0", groups={0: 0}, combine=combine,
            virtual_init=lambda: "initial",
        )
        sys.add(svc)
        p = Probe("parent", "node1").actor
        sys.add(p)
        sys.inject("svc", JoinParent(0, "parent", "v1", ts=1.0), at=0.0)
        sys.run()
        assert p.received[0].result == "initial"
        sys.inject("svc", JoinParent(0, "parent", "v2", ts=2.0), at=5.0)
        sys.run()
        assert p.received[1].result == "v1"  # previous payload stored

    def test_overlapping_parent_joins_rejected(self):
        sys = make_system()
        svc = ForkJoinService("svc", "node0", groups={0: 1}, combine=sum_combine)
        sys.add(svc)
        sys.add(Probe("parent", "node1").actor)
        sys.inject("svc", JoinParent(0, "parent", 1, ts=1.0), at=0.0)
        sys.inject("svc", JoinParent(0, "parent", 2, ts=2.0), at=0.1)
        with pytest.raises(RuntimeError, match="overlapping"):
            sys.run()
