"""Edge cases for the compact wire codec (repro.runtime.wire).

The codec carries every protocol message of the process runtime; these
tests pin the awkward corners — empty batches, unicode tags/streams,
non-finite timestamps — plus a seeded random round-trip property over
nested payloads (both via hypothesis and via plain seeded sweeps whose
failures reproduce from the printed seed).
"""

import math
import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Event, ImplTag
from repro.core.errors import RuntimeFault
from repro.runtime.messages import (
    EventMsg,
    ForkStateMsg,
    HeartbeatMsg,
    JoinRequest,
    JoinResponse,
)
from repro.runtime.wire import decode_batch, decode_msg, encode_batch, encode_msg


class TestBatchEdges:
    def test_empty_batch_round_trips(self):
        assert encode_batch([]) == []
        assert decode_batch([]) == []

    def test_mixed_batch_round_trips(self):
        e = Event("v", 0, 1.5, payload={"a": [1, 2]})
        msgs = [
            EventMsg(e),
            HeartbeatMsg(ImplTag("v", 0), (2.0, ("str", "v"), ("int", 0))),
            JoinRequest(("w1", 3), ImplTag("b", "s"), (2.5,), "w1", "left"),
            JoinResponse(("w1", 3), "left", {"k": 1}, 1.0),
            ForkStateMsg(("w1", 3), 7, 1.0),
        ]
        assert decode_batch(encode_batch(msgs)) == msgs

    def test_unknown_message_rejected(self):
        with pytest.raises(RuntimeFault):
            encode_msg(object())
        with pytest.raises(RuntimeFault):
            decode_msg((99, "nope"))


class TestUnicodeKeys:
    def test_unicode_tags_streams_and_payloads(self):
        e = Event("ключ-☃", "流-💡", 3.25, payload="naïve\n\t\0')")
        msg = EventMsg(e)
        back = decode_msg(encode_msg(msg))
        assert back == msg
        assert back.event.itag == ImplTag("ключ-☃", "流-💡")

    def test_unicode_worker_ids_in_join_request(self):
        req = JoinRequest(("wörker-Ω", 1), ImplTag("τ", "σ"), (1.0,), "wörker-Ω", "right")
        assert decode_msg(encode_msg(req)) == req


class TestNonFiniteTimestamps:
    def test_positive_and_negative_infinity(self):
        for ts in (float("inf"), float("-inf")):
            e = Event("v", 0, ts)
            back = decode_msg(encode_msg(EventMsg(e)))
            assert back.event.ts == ts

    def test_nan_timestamp_survives_encoding(self):
        # NaN != NaN, so compare structurally rather than by equality.
        back = decode_msg(encode_msg(EventMsg(Event("v", 0, float("nan"), 7))))
        assert math.isnan(back.event.ts)
        assert back.event.payload == 7

    def test_heartbeat_with_infinite_frontier(self):
        hb = HeartbeatMsg(ImplTag("v", 0), (float("inf"), ("str", "v"), ("int", 0)))
        assert decode_msg(encode_msg(hb)) == hb


# -- seeded random round-trip properties --------------------------------------

def random_payload(rng: random.Random, depth: int = 0):
    kinds = ["int", "float", "str", "bool", "none"]
    if depth < 3:
        kinds += ["list", "tuple", "dict"]
    kind = rng.choice(kinds)
    if kind == "int":
        return rng.randrange(-(10**9), 10**9)
    if kind == "float":
        return rng.uniform(-1e6, 1e6)
    if kind == "str":
        return "".join(chr(rng.randrange(32, 0x2FFF)) for _ in range(rng.randrange(8)))
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "none":
        return None
    if kind == "list":
        return [random_payload(rng, depth + 1) for _ in range(rng.randrange(4))]
    if kind == "tuple":
        return tuple(random_payload(rng, depth + 1) for _ in range(rng.randrange(4)))
    return {
        f"k{i}": random_payload(rng, depth + 1) for i in range(rng.randrange(4))
    }


def random_msg(rng: random.Random):
    kind = rng.randrange(5)
    itag = ImplTag(rng.choice(["v", "b", ("i", 0)]), rng.choice([0, "s", "流"]))
    key = (rng.uniform(0, 100), ("str", "v"), ("int", 0))
    if kind == 0:
        return EventMsg(Event(itag.tag, itag.stream, rng.uniform(0, 100), random_payload(rng)))
    if kind == 1:
        return HeartbeatMsg(itag, key)
    if kind == 2:
        return JoinRequest((f"w{rng.randrange(9)}", rng.randrange(99)), itag, key,
                           f"w{rng.randrange(9)}", rng.choice(["left", "right"]))
    if kind == 3:
        return JoinResponse((f"w{rng.randrange(9)}", rng.randrange(99)),
                            rng.choice(["left", "right"]), random_payload(rng),
                            rng.uniform(0, 10))
    return ForkStateMsg((f"w{rng.randrange(9)}", rng.randrange(99)),
                        random_payload(rng), rng.uniform(0, 10))


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 20260728])
def test_seeded_random_batches_round_trip(seed):
    rng = random.Random(seed)
    msgs = [random_msg(rng) for _ in range(200)]
    decoded = decode_batch(encode_batch(msgs))
    assert decoded == msgs, f"round-trip diverged for seed {seed}"


@pytest.mark.parametrize("seed", [11, 13])
def test_wire_form_is_picklable_and_smaller_than_message_pickle(seed):
    """The codec's whole point: the wire tuples must pickle (they cross
    mp queues) and batches must beat pickling the dataclasses."""
    rng = random.Random(seed)
    msgs = [random_msg(rng) for _ in range(300)]
    wire = encode_batch(msgs)
    assert decode_batch(pickle.loads(pickle.dumps(wire))) == msgs
    assert len(pickle.dumps(wire)) < len(pickle.dumps(msgs))


payloads = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**60), 2**60)
    | st.floats(allow_nan=False)
    | st.text(max_size=12),
    lambda inner: st.lists(inner, max_size=3)
    | st.dictionaries(st.text(max_size=5), inner, max_size=3),
    max_leaves=10,
)


@given(
    tag=st.text(min_size=1, max_size=8),
    stream=st.integers(0, 5) | st.text(max_size=5),
    ts=st.floats(allow_nan=False),
    payload=payloads,
)
@settings(max_examples=60, deadline=None)
def test_event_round_trip_property(tag, stream, ts, payload):
    msg = EventMsg(Event(tag, stream, ts, payload))
    assert decode_msg(encode_msg(msg)) == msg
