"""Microbenchmarks of the core machinery (wall-clock, pytest-benchmark):
simulation kernel, mailbox selective reordering, plan generation and
validation, the sequential spec executor, the wire codec, and the
threaded-vs-process runtime comparison.

These are not paper artifacts; they track the hot paths of every
simulated experiment in this repository, plus the one genuinely
hardware-dependent claim: that the process runtime escapes the GIL.
"""

import random

from conftest import quick

from repro.apps import keycounter as kc
from repro.bench import available_cores, backend_speedup, publish, render_table
from repro.bench import experiments as ex
from repro.core import DependenceRelation, Event, ImplTag
from repro.plans import is_p_valid, random_valid_plan
from repro.runtime import Mailbox
from repro.runtime.messages import EventMsg
from repro.runtime.wire import decode_batch, encode_batch
from repro.sim import Simulator


def test_sim_kernel_schedule_run(benchmark):
    def run():
        sim = Simulator()
        for i in range(2000):
            sim.schedule_at(float(i % 97), lambda: None)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 2000


def test_mailbox_insert_release(benchmark):
    uni = ["v", "b"]
    dep = DependenceRelation(uni, {"b": ["b", "v"]})
    v0, v1, b = ImplTag("v", 0), ImplTag("v", 1), ImplTag("b", "s")

    def run():
        mb = Mailbox([v0, v1, b], dep)
        released = 0
        for t in range(1, 500):
            released += len(mb.insert(v0, Event("v", 0, float(t)).order_key, t))
            released += len(mb.insert(v1, Event("v", 1, t + 0.5).order_key, t))
            if t % 50 == 0:
                released += len(mb.insert(b, Event("b", "s", t + 0.25).order_key, t))
            if t % 10 == 0:
                released += len(mb.advance(b, Event("b", "s", t + 0.26).order_key))
        return released

    assert benchmark(run) > 0


def test_sequential_spec_throughput(benchmark):
    prog = kc.make_program(4)
    rng = random.Random(0)
    tags = sorted(prog.tags, key=repr)
    events = [
        Event(tags[rng.randrange(len(tags))], 0, float(t)) for t in range(5000)
    ]

    def run():
        return len(prog.spec(events))

    assert benchmark(run) >= 0


def test_random_plan_generation_and_validation(benchmark):
    prog = kc.make_program(4)
    itags = [ImplTag(t, s) for t in sorted(prog.tags, key=repr) for s in range(3)]

    def run():
        plan = random_valid_plan(prog, itags, random.Random(42))
        return is_p_valid(plan, prog)

    assert benchmark(run)


def test_wire_codec_roundtrip(benchmark):
    msgs = [
        EventMsg(Event("v", i % 4, float(i), payload=i * 3))
        for i in range(2000)
    ]

    def run():
        return len(decode_batch(encode_batch(msgs)))

    assert benchmark(run) == 2000


def test_threaded_vs_process_runtime(benchmark):
    """The GIL-escape measurement: same program, same plan, same
    streams on the threaded and the process runtime, wall clock.

    On a multi-core host the full-size run must reach >= 1.5x the
    threaded throughput on the value-barrier workload (the paper's
    parallel-speedup claim on a real substrate).  The ratio is only
    *reported* on a single core (no parallelism to win) and under
    --smoke/quick (the shrunk workload is a few ms of compute, where
    constant IPC overhead makes the ratio noise, not signal).
    """
    QUICK = quick()
    n_workers = 2 if QUICK else 4
    data = benchmark.pedantic(
        lambda: ex.runtime_backend_comparison(
            n_workers=n_workers,
            values_per_barrier=100 if QUICK else 400,
            n_barriers=2 if QUICK else 3,
            spin=150 if QUICK else 600,
            batch_size=64,
            repeats=1 if QUICK else 2,
        ),
        rounds=1,
        iterations=1,
    )
    apps = list(data)
    speedups = {app: backend_speedup(data[app]) for app in apps}
    text = render_table(
        "Threaded vs process runtime: wall-clock throughput (events/s)",
        "app",
        apps,
        {
            "threaded ev/s": [data[a]["threaded"].events_per_s for a in apps],
            "process ev/s": [data[a]["process"].events_per_s for a in apps],
            "speedup": [speedups[a]["process"] for a in apps],
        },
        note=(
            f"cores={available_cores()}, "
            f"workers={n_workers}, batch=64; outputs multiset-verified"
        ),
    )
    publish("runtime_threaded_vs_process", text)

    cores = available_cores()
    if cores >= 2 and not QUICK:
        ratio = speedups["Event Win."]["process"]
        assert ratio >= 1.5, (
            f"process runtime only reached {ratio:.2f}x the threaded "
            f"throughput on {cores} cores (expected >= 1.5x)"
        )


def test_consistency_check_speed(benchmark):
    from repro.core import check_consistency

    prog = kc.make_program(2)
    rng = random.Random(1)
    tags = sorted(prog.tags, key=repr)
    events = [Event(tags[rng.randrange(len(tags))], 0, float(t)) for t in range(20)]

    def run():
        return check_consistency(
            prog, events, state_eq=kc.state_eq, rng=random.Random(5)
        ).ok

    assert benchmark(run)
