"""Transport-layer benchmark: Queue vs pipe data planes x batch
policies on the process runtime.

Not a paper artifact — the paper's speedup claims assume IPC is not
the bottleneck; this table measures exactly the transport choices that
make that true (framed raw pipes vs ``multiprocessing.Queue``, fixed
vs adaptive batching, including the degenerate per-message batch=1
baseline that shows what batching buys in the first place).  Outputs
are multiset-verified across every configuration, so no configuration
can look fast by dropping or corrupting messages.

Writes BENCH_transport_matrix.json (ungated — the gated transport
record comes from bench_micro_core's pipe-vs-queue measurement).
"""

from conftest import quick

from repro.apps import value_barrier as vb
from repro.bench import (
    available_cores,
    bench_record,
    compare_transports,
    publish,
    publish_json,
    render_table,
)


def _workload(QUICK: bool):
    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=2 if QUICK else 4,
        values_per_barrier=250 if QUICK else 2500,
        n_barriers=2 if QUICK else 4,
    )
    return prog, vb.make_streams(wl), vb.make_plan(prog, wl)


def test_transport_batching_matrix(benchmark):
    QUICK = quick()
    prog, streams, plan = _workload(QUICK)
    configs = {
        "queue fixed(1)": {"transport": "queue", "batch_size": 1},
        "queue fixed(64)": {"transport": "queue", "batch_size": 64},
        "pipe fixed(1)": {"transport": "pipe", "batch_size": 1},
        "pipe fixed(64)": {"transport": "pipe", "batch_size": 64},
        "pipe adaptive": {"transport": "pipe", "batch_size": None},
        "pipe adaptive 5ms": {
            "transport": "pipe",
            "batch_size": None,
            "flush_ms": 5.0,
        },
    }
    points = benchmark.pedantic(
        lambda: compare_transports(
            prog, plan, streams, configs=configs, repeats=1 if QUICK else 2
        ),
        rounds=1,
        iterations=1,
    )
    labels = list(points)
    base = points["queue fixed(64)"].events_per_s
    text = render_table(
        "Transport x batch policy: wall-clock throughput (events/s)",
        "config",
        labels,
        {
            "events/s": [points[lb].events_per_s for lb in labels],
            "vs queue64": [
                points[lb].events_per_s / base if base > 0 else 0.0
                for lb in labels
            ],
        },
        note=(
            f"cores={available_cores()}, value-barrier, trivial updates; "
            "outputs multiset-verified across all configs"
        ),
    )
    publish("transport_batching_matrix", text)
    publish_json(
        "transport_matrix",
        bench_record(
            "transport_matrix",
            config={
                "quick": QUICK,
                "events": points["pipe adaptive"].events,
                "configs": {k: str(v) for k, v in configs.items()},
            },
            metrics={
                lb.replace(" ", "_"): round(points[lb].events_per_s)
                for lb in labels
            },
        ),
    )

    # Batching must matter: per-message IPC can never beat batched IPC
    # by more than noise.  This is a sanity floor, not a perf gate.
    assert points["pipe fixed(64)"].events_per_s >= 0.5 * max(
        p.events_per_s for p in points.values()
    ), "batch=64 pipe transport fell implausibly far behind; transport regression"
