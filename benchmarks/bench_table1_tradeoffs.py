"""Table 1: development tradeoffs — PIP1-3 compliance and 12-node
throughput scaling for every (application, system) pair.

Paper values (scaling @12): EW: F 10x, TD 8x, DGS 8x; PV: F 2x, FM 9x,
TD 1x, TDM 2x, DGS 8x; FD: F 1x, FM 9x, TD 6x, DGS 8x.  PIP rows: only
FM sacrifices all three; TDM sacrifices PIP2.
"""

from repro.bench import experiments as ex
from repro.bench import publish, render_matrix

COLUMNS = list(ex.PIP_MATRIX)


def test_table1(benchmark):
    scaling = benchmark.pedantic(lambda: ex.table1_scaling(12), rounds=1, iterations=1)
    cells = {
        "PIP1 paral.indep": {c: ex.PIP_MATRIX[c]["PIP1"] for c in COLUMNS},
        "PIP2 part.indep": {c: ex.PIP_MATRIX[c]["PIP2"] for c in COLUMNS},
        "PIP3 API compl.": {c: ex.PIP_MATRIX[c]["PIP3"] for c in COLUMNS},
        "Scaling @12": {c: f"{scaling[c]:.1f}x" for c in COLUMNS},
    }
    text = render_matrix(
        "Table 1 - Development tradeoffs (EW=event window, PV=page view, "
        "FD=fraud; F=Flink, FM=Flink manual, TD=Timely, TDM=Timely manual, "
        "DGS=Flumina)",
        list(cells),
        COLUMNS,
        cells,
        note="paper: EW 10x/8x/8x; PV 2x/9x/1x/2x/8x; FD 1x/9x/6x/8x",
    )
    publish("table1_tradeoffs", text)

    # The paper's qualitative claims:
    # 1. Only DGS scales everything without sacrificing any PIP.
    dgs_ok = all(
        ex.PIP_MATRIX[c][pip] == "Y"
        for c in ("EW/DGS", "PV/DGS", "FD/DGS")
        for pip in ("PIP1", "PIP2", "PIP3")
    )
    assert dgs_ok
    assert min(scaling["EW/DGS"], scaling["PV/DGS"], scaling["FD/DGS"]) > 4.0
    # 2. Flink fails on fraud and hot-key page views...
    assert scaling["FD/F"] < 2.5
    assert scaling["PV/F"] < 4.0
    # ...unless synchronization is implemented manually (sacrificing PIPs).
    assert scaling["FD/FM"] > 2.0 * scaling["FD/F"]
    assert scaling["PV/FM"] > 1.5 * scaling["PV/F"]
    assert all(v == "N" for v in ex.PIP_MATRIX["FD/FM"].values())
    # 3. Timely's feedback loop handles fraud automatically.
    assert scaling["FD/TD"] > 4.0
    # 4. Timely manual page-view beats automatic at the cost of PIP2.
    assert scaling["PV/TDM"] > scaling["PV/TD"]
    assert ex.PIP_MATRIX["PV/TDM"]["PIP2"] == "N"
