"""Unit tests for repro.core.dependence (dependence relations)."""

import networkx as nx
import pytest

from repro.core import DependenceError, DependenceRelation, ImplTag, pred_of
from repro.apps import keycounter as kc

UNI = ["a", "b", "c"]


class TestConstruction:
    def test_from_function_materializes(self):
        dep = DependenceRelation.from_function(UNI, lambda x, y: x == y)
        assert dep.depends("a", "a")
        assert not dep.depends("a", "b")

    def test_from_function_rejects_asymmetric(self):
        with pytest.raises(DependenceError):
            DependenceRelation.from_function(UNI, lambda x, y: (x, y) == ("a", "b"))

    def test_adjacency_symmetrized(self):
        dep = DependenceRelation(UNI, {"a": ["b"]})
        assert dep.depends("b", "a")

    def test_all_independent(self):
        dep = DependenceRelation.all_independent(UNI)
        assert all(dep.indep(x, y) for x in UNI for y in UNI)

    def test_all_dependent(self):
        dep = DependenceRelation.all_dependent(UNI)
        assert all(dep.depends(x, y) for x in UNI for y in UNI)

    def test_rejects_tags_outside_universe(self):
        with pytest.raises(DependenceError):
            DependenceRelation(UNI, {"z": ["a"]})
        with pytest.raises(DependenceError):
            DependenceRelation(UNI, {"a": ["z"]})


class TestQueries:
    def setup_method(self):
        self.dep = DependenceRelation(UNI, {"a": ["b"], "c": ["c"]})

    def test_depends_and_indep_are_complements(self):
        assert self.dep.depends("a", "b") != self.dep.indep("a", "b")

    def test_dependents_of(self):
        assert self.dep.dependents_of("a") == frozenset({"b"})
        assert self.dep.dependents_of("c") == frozenset({"c"})

    def test_self_dependence(self):
        assert self.dep.is_self_dependent("c")
        assert not self.dep.is_self_dependent("a")

    def test_sets_independent(self):
        assert self.dep.sets_independent({"a"}, {"c"})
        assert not self.dep.sets_independent({"a"}, {"b", "c"})
        assert self.dep.sets_independent(set(), {"a", "b", "c"})

    def test_query_outside_universe_raises(self):
        with pytest.raises(DependenceError):
            self.dep.depends("a", "z")


class TestImplTagLifting:
    def test_itag_depends_ignores_stream(self):
        dep = DependenceRelation(UNI, {"a": ["b"]})
        assert dep.itag_depends(ImplTag("a", 0), ImplTag("b", 99))
        assert not dep.itag_depends(ImplTag("a", 0), ImplTag("c", 0))

    def test_itag_graph_same_tag_different_streams(self):
        # Self-dependent tags connect their own streams; independent
        # tags do not.
        dep = DependenceRelation(UNI, {"c": ["c"]})
        itags = [ImplTag("c", 0), ImplTag("c", 1), ImplTag("a", 0), ImplTag("a", 1)]
        g = dep.itag_graph(itags)
        assert g.has_edge(ImplTag("c", 0), ImplTag("c", 1))
        assert not g.has_edge(ImplTag("a", 0), ImplTag("a", 1))


class TestGraphExport:
    def test_graph_structure(self):
        dep = DependenceRelation(UNI, {"a": ["b"]})
        g = dep.graph()
        assert set(g.nodes) == set(UNI)
        assert g.has_edge("a", "b")
        assert not g.has_edge("a", "c")

    def test_keycounter_graph_components_by_key(self):
        prog = kc.make_program(3)
        g = prog.depends.graph()
        # Remove self-loops for component analysis.
        g.remove_edges_from(nx.selfloop_edges(g))
        comps = list(nx.connected_components(g))
        assert len(comps) == 3  # one component per key

    def test_keycounter_increments_independent(self):
        prog = kc.make_program(2)
        assert prog.depends.indep(kc.inc_tag(0), kc.inc_tag(0))
        assert prog.depends.depends(kc.reset_tag(0), kc.inc_tag(0))
        assert prog.depends.depends(kc.reset_tag(0), kc.reset_tag(0))
        assert prog.depends.indep(kc.reset_tag(0), kc.inc_tag(1))


class TestPredIndependence:
    def test_preds_independent(self):
        prog = kc.make_program(2)
        uni = prog.tags
        p_incs = pred_of(uni, [kc.inc_tag(0)])
        p_key1 = pred_of(uni, [kc.inc_tag(1), kc.reset_tag(1)])
        assert prog.depends.preds_independent(p_incs, p_incs)
        assert prog.depends.preds_independent(p_incs, p_key1)
        p_r0 = pred_of(uni, [kc.reset_tag(0)])
        assert not prog.depends.preds_independent(p_incs, p_r0)
