"""Tests for the thread-based runtime: the same protocol on real
threads must match the sequential spec for arbitrary P-valid plans."""

import random
from collections import Counter

import pytest

from repro.apps import keycounter as kc, value_barrier as vb
from repro.core import Event, ImplTag
from repro.plans import random_valid_plan, sequential_plan
from repro.runtime import InputStream, run_sequential_reference
from repro.runtime.threaded import ThreadedRuntime


class TestThreadedValueBarrier:
    def test_matches_spec(self):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=4, values_per_barrier=40, n_barriers=4)
        streams = vb.make_streams(wl)
        res = ThreadedRuntime(prog, vb.make_plan(prog, wl)).run(streams)
        want = Counter(map(repr, run_sequential_reference(prog, streams)))
        assert res.output_multiset() == want

    def test_join_counting(self):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=4, values_per_barrier=20, n_barriers=3)
        plan = vb.make_plan(prog, wl)
        res = ThreadedRuntime(prog, plan).run(vb.make_streams(wl))
        assert res.joins == len(plan.internal()) * len(wl.barrier_stream)

    def test_sequential_plan(self):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=2, values_per_barrier=20, n_barriers=3)
        streams = vb.make_streams(wl)
        itags = [it for it, _ in wl.all_streams()]
        res = ThreadedRuntime(prog, sequential_plan(prog, itags)).run(streams)
        want = Counter(map(repr, run_sequential_reference(prog, streams)))
        assert res.output_multiset() == want
        assert res.joins == 0


class TestThreadedRandomPlans:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_plan_matches_spec(self, seed):
        rng = random.Random(seed)
        nkeys = rng.choice([1, 2])
        prog = kc.make_program(nkeys)
        itags = []
        for k in range(nkeys):
            itags.append(ImplTag(kc.inc_tag(k), f"i{k}"))
            itags.append(ImplTag(kc.reset_tag(k), f"r{k}"))
        events = {it: [] for it in itags}
        for t in range(1, 90):
            it = itags[rng.randrange(len(itags))]
            events[it].append(Event(it.tag, it.stream, float(t)))
        streams = [
            InputStream(it, tuple(events[it]), heartbeat_interval=5.0)
            for it in itags
        ]
        plan = random_valid_plan(prog, itags, rng)
        res = ThreadedRuntime(prog, plan).run(streams)
        want = Counter(map(repr, run_sequential_reference(prog, streams)))
        assert res.output_multiset() == want, plan.pretty()


class TestThreadedEdgeCases:
    def test_empty_streams(self):
        prog = kc.make_program(1)
        it = ImplTag(kc.inc_tag(0), 0)
        res = ThreadedRuntime(prog, sequential_plan(prog, [it])).run(
            [InputStream(it, (), heartbeat_interval=None)]
        )
        assert res.outputs == [] and res.events_processed == 0

    def test_invalid_plan_rejected(self):
        from repro.core import ValidityError
        from repro.plans import PlanNode, SyncPlan

        prog = kc.make_program(1)
        a = PlanNode("a", "State0", frozenset({ImplTag(kc.inc_tag(0), 0)}))
        b = PlanNode("b", "State0", frozenset({ImplTag(kc.reset_tag(0), 1)}))
        bad = SyncPlan(PlanNode("r", "State0", frozenset(), (a, b)))
        with pytest.raises(ValidityError):
            ThreadedRuntime(prog, bad)
