"""Measurement harness (paper §4 methodology).

The paper measures *maximum throughput* by "increasing the input rate
until throughput stabilizes or the system crashes", and latency as
percentiles at a fixed offered rate.  The harness mirrors that:

* :func:`max_throughput` — geometric rate sweep; a configuration is
  saturated when achieved throughput falls below ``efficiency`` of the
  offered rate; the reported maximum is the best achieved rate.
* :func:`latency_profile` — percentiles of output latency across a
  ramp of offered rates (Figure 6's axes).

``run_at_rate`` callbacks receive an events-per-millisecond *per
input stream* rate and return any object exposing
``throughput_events_per_ms`` and ``latency_percentiles`` (all engine
results in this repository do).
"""

from __future__ import annotations

import math
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple


class ResultLike(Protocol):  # pragma: no cover - structural typing only
    @property
    def throughput_events_per_ms(self) -> float: ...

    def latency_percentiles(self, qs: Sequence[float] = (10, 50, 90)) -> List[float]: ...


@dataclass(frozen=True)
class RatePoint:
    """One measured point on an offered-rate sweep."""

    offered_per_ms: float
    achieved_per_ms: float
    latency_p10: float
    latency_p50: float
    latency_p90: float

    @property
    def efficiency(self) -> float:
        return (
            self.achieved_per_ms / self.offered_per_ms
            if self.offered_per_ms > 0
            else 0.0
        )


@dataclass
class SweepResult:
    points: List[RatePoint] = field(default_factory=list)

    @property
    def max_throughput(self) -> float:
        return max((p.achieved_per_ms for p in self.points), default=0.0)

    def saturation_point(self, efficiency: float = 0.9) -> Optional[RatePoint]:
        for p in self.points:
            if p.efficiency < efficiency:
                return p
        return None


def _measure(run_at_rate: Callable[[float], Any], rate: float) -> RatePoint:
    res = run_at_rate(rate)
    p10, p50, p90 = res.latency_percentiles((10, 50, 90))
    # Offered load = total events over the injection window; results
    # expose input_span_ms precisely so efficiency is scale-free
    # (duration converging to the input span means "keeping up").
    span = getattr(res, "input_span_ms", None)
    events_in = getattr(res, "events_in", None)
    if span and events_in:
        offered = events_in / span
    else:  # pragma: no cover - non-standard result object
        offered = rate
    return RatePoint(
        offered_per_ms=offered,
        achieved_per_ms=res.throughput_events_per_ms,
        latency_p10=p10,
        latency_p50=p50,
        latency_p90=p90,
    )


def max_throughput(
    run_at_rate: Callable[[float], Any],
    *,
    start_rate: float = 50.0,
    growth: float = 2.0,
    max_steps: int = 7,
    efficiency: float = 0.9,
) -> SweepResult:
    """Geometric offered-rate sweep until saturation.

    The sweep stops one step after the first rate whose achieved
    throughput drops below ``efficiency * offered`` (by then the
    system is clearly saturated; pushing further only slows the
    simulation)."""
    sweep = SweepResult()
    rate = start_rate
    saturated_steps = 0
    for _ in range(max_steps):
        point = _measure(run_at_rate, rate)
        sweep.points.append(point)
        if point.efficiency < efficiency:
            saturated_steps += 1
            if saturated_steps >= 2:
                break
        rate *= growth
    return sweep


def latency_profile(
    run_at_rate: Callable[[float], Any],
    rates: Sequence[float],
) -> List[RatePoint]:
    """Latency percentiles across a fixed ramp of offered rates
    (the x/y data of Figure 6)."""
    return [_measure(run_at_rate, r) for r in rates]


@dataclass(frozen=True)
class ScalingPoint:
    parallelism: int
    max_throughput_per_ms: float


# ---------------------------------------------------------------------------
# Wall-clock backend comparison (threaded vs process vs ...)
# ---------------------------------------------------------------------------

def available_cores() -> int:
    """CPU cores this process may use (portable: sched_getaffinity
    where it exists — Linux —, cpu_count elsewhere)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@dataclass(frozen=True)
class WallClockPoint:
    """One backend's wall-clock measurement on a fixed workload."""

    backend: str
    events: int
    wall_s: float

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


# ---------------------------------------------------------------------------
# Machine-readable benchmark records (the repo's perf trajectory)
# ---------------------------------------------------------------------------

#: Schema identifier written into every record; bump on breaking
#: changes so the perf gate can refuse to compare across schemas.
BENCH_SCHEMA = "repro-bench/1"


def bench_record(
    name: str,
    *,
    config: Mapping[str, Any],
    metrics: Mapping[str, Any],
    gate: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Build one ``BENCH_<name>.json`` record (see
    :func:`repro.bench.tables.publish_json`).

    ``metrics`` holds the measured numbers (throughput, latency
    percentiles, speedups — nesting allowed).  ``gate`` names the
    top-level metrics the CI perf gate thresholds against the
    committed baseline, each mapped to its direction: ``"higher"``
    (throughput-like: fail when it *drops* more than the tolerance) or
    ``"lower"`` (latency-like: fail when it *rises* more than the
    tolerance).  Ungated records still land in the artifact trail —
    they chart the trajectory without failing CI on noisy numbers."""
    for metric, direction in (gate or {}).items():
        if direction not in ("higher", "lower"):
            raise ValueError(f"gate direction for {metric!r} must be higher|lower")
        value = metrics.get(metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"gated metric {metric!r} must be a number, got {value!r}")
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "created_unix": round(time.time(), 3),
        "host": {
            "cores": available_cores(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "config": dict(config),
        "metrics": dict(metrics),
        "gate": dict(gate or {}),
    }


def compare_backends(
    program: Any,
    plan: Any,
    streams: Sequence[Any],
    *,
    backends: Sequence[str] = ("threaded", "process"),
    batch_size: Optional[int] = None,
    transport: Optional[str] = None,
    repeats: int = 1,
    timeout_s: float = 120.0,
) -> Dict[str, WallClockPoint]:
    """Run the same program/plan/streams on several runtime backends
    and report each one's best wall-clock throughput.

    Unlike the offered-rate sweeps above (which measure the *simulated*
    clock), this measures real elapsed time — the basis for the
    threaded-vs-process speedup claim.  ``transport`` / ``batch_size``
    tune the process runtime's data plane (defaults: pipe transport,
    adaptive batching); every backend's outputs are cross-checked
    against the others (multiset equality) so a speedup can never come
    from dropping work.
    """
    from ..runtime import get_backend  # runtime does not import bench; no cycle

    points: Dict[str, WallClockPoint] = {}
    reference: Optional[Any] = None
    for name in backends:
        backend = get_backend(name)
        opts: Dict[str, Any] = {}
        if name in ("threaded", "process"):
            opts["timeout_s"] = timeout_s
        if name == "process":
            opts["batch_size"] = batch_size
            if transport is not None:
                opts["transport"] = transport
        best: Optional[WallClockPoint] = None
        for _ in range(max(1, repeats)):
            run = backend.run(program, plan, streams, **opts)
            if reference is None:
                reference = run.output_multiset()
            elif run.output_multiset() != reference:
                raise AssertionError(
                    f"backend {name!r} produced different outputs than "
                    f"{backends[0]!r}; refusing to report throughput"
                )
            point = WallClockPoint(name, run.events_in, run.wall_s)
            if best is None or point.wall_s < best.wall_s:
                best = point
        points[name] = best  # type: ignore[assignment]
    return points


def compare_transports(
    program: Any,
    plan: Any,
    streams: Sequence[Any],
    *,
    configs: Mapping[str, Mapping[str, Any]],
    repeats: int = 1,
    timeout_s: float = 120.0,
) -> Dict[str, WallClockPoint]:
    """Run the same workload on the *process* backend under several
    data-plane configurations (``label -> {transport=, batch_size=,
    flush_ms=, nodes=, placement=}``) and report each one's best
    wall-clock throughput.

    The config axis spans every data plane the backend offers:
    ``transport="queue" | "pipe" | "tcp"`` for the one-process-per-
    worker runtime, and ``nodes=N`` for a cluster deployment across
    local node agents (see :mod:`repro.runtime.cluster`) — which is
    how the queue/pipe/tcp benchmark matrix and the distributed smoke
    lane share one measurement path.  Outputs are multiset-verified
    across configurations — a transport can never look fast by
    corrupting or dropping messages."""
    from ..runtime import get_backend  # runtime does not import bench; no cycle

    backend = get_backend("process")
    points: Dict[str, WallClockPoint] = {}
    reference: Optional[Any] = None
    ref_label: Optional[str] = None
    for label, cfg in configs.items():
        best: Optional[WallClockPoint] = None
        for _ in range(max(1, repeats)):
            run = backend.run(program, plan, streams, timeout_s=timeout_s, **cfg)
            if reference is None:
                reference = run.output_multiset()
                ref_label = label
            elif run.output_multiset() != reference:
                raise AssertionError(
                    f"transport config {label!r} produced different outputs "
                    f"than {ref_label!r}; refusing to report throughput"
                )
            point = WallClockPoint(label, run.events_in, run.wall_s)
            if best is None or point.wall_s < best.wall_s:
                best = point
        points[label] = best  # type: ignore[assignment]
    return points


def backend_speedup(
    points: Dict[str, WallClockPoint], *, base: str = "threaded"
) -> Dict[str, float]:
    """Each backend's throughput relative to ``base``'s."""
    base_eps = points[base].events_per_s
    if base_eps <= 0:
        return {name: math.nan for name in points}
    return {name: p.events_per_s / base_eps for name, p in points.items()}


# ---------------------------------------------------------------------------
# Recovery overhead (fault injection + checkpoint restore + replay)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RecoveryOverheadPoint:
    """Wall-clock cost of surviving injected crashes on one backend.

    ``overhead_ratio`` is faulty/clean wall time: 1.0 means recovery
    was free, 2.0 means the crashes doubled the run.  ``outputs_equal``
    records the differential check — an overhead number for a run that
    dropped or duplicated outputs would be meaningless."""

    backend: str
    clean_wall_s: float
    faulty_wall_s: float
    attempts: int
    crashes: int
    replayed_events: int
    checkpoints_taken: int
    outputs_equal: bool

    @property
    def overhead_ratio(self) -> float:
        return (
            self.faulty_wall_s / self.clean_wall_s
            if self.clean_wall_s > 0
            else math.nan
        )


def measure_recovery_overhead(
    program: Any,
    plan: Any,
    streams: Sequence[Any],
    *,
    backend: str = "threaded",
    fault_plan_factory: Callable[[], Any],
    checkpoint_predicate_factory: Optional[Callable[[], Any]] = None,
    repeats: int = 1,
    timeout_s: float = 120.0,
    **opts: Any,
) -> RecoveryOverheadPoint:
    """Measure the wall-clock cost of checkpoint-based crash recovery.

    Runs the workload fault-free and with the injected fault plan on
    the same backend, best-of-``repeats`` each, and reports the ratio.
    The clean baseline runs with the *same* checkpoint predicate armed,
    so the ratio isolates the crash + restore + replay cost rather than
    folding the snapshotting itself into "overhead" (the paper's claim
    is precisely that the snapshots are free).
    ``fault_plan_factory`` (rather than a plan instance) because fault
    plans record which crashes fired — each repeat needs a fresh one;
    same for stateful checkpoint predicates.
    """
    from ..runtime import get_backend  # runtime does not import bench; no cycle
    from ..runtime.checkpoint import every_root_join

    if checkpoint_predicate_factory is None:
        checkpoint_predicate_factory = every_root_join
    be = get_backend(backend)

    clean_best: Optional[Any] = None
    for _ in range(max(1, repeats)):
        run = be.run(
            program,
            plan,
            streams,
            checkpoint_predicate=checkpoint_predicate_factory(),
            timeout_s=timeout_s,
            **opts,
        )
        if clean_best is None or run.wall_s < clean_best.wall_s:
            clean_best = run

    faulty_best: Optional[Any] = None
    for _ in range(max(1, repeats)):
        run = be.run(
            program,
            plan,
            streams,
            fault_plan=fault_plan_factory(),
            checkpoint_predicate=checkpoint_predicate_factory(),
            timeout_s=timeout_s,
            **opts,
        )
        if faulty_best is None or run.wall_s < faulty_best.wall_s:
            faulty_best = run

    rec = faulty_best.recovery
    return RecoveryOverheadPoint(
        backend=backend,
        clean_wall_s=clean_best.wall_s,
        faulty_wall_s=faulty_best.wall_s,
        attempts=rec.attempts,
        crashes=len(rec.crashes),
        replayed_events=rec.replayed_events,
        checkpoints_taken=rec.checkpoints_taken,
        outputs_equal=faulty_best.output_multiset() == clean_best.output_multiset(),
    )


# ---------------------------------------------------------------------------
# Elastic reconfiguration: pause + post-scale throughput
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReconfigPausePoint:
    """Wall-clock cost of live re-planning on one backend.

    ``migration_pause_s`` is the driver-side stop-the-world slice per
    migration (suffix computation + target-plan construction +
    compatibility checks); ``overhead_ratio`` (elastic/clean wall time)
    additionally folds in worker restart and suffix replay.  The
    per-phase throughputs are events processed over that phase's wall
    time, so scale-out gains are measured, not asserted.
    ``outputs_equal`` records the differential check — a pause number
    for a run that dropped or duplicated outputs would be meaningless.
    """

    backend: str
    clean_wall_s: float
    elastic_wall_s: float
    reconfigs: int
    attempts: int
    migration_pause_s: float
    phase_widths: Tuple[int, ...]
    phase_throughputs_eps: Tuple[float, ...]
    outputs_equal: bool

    @property
    def overhead_ratio(self) -> float:
        return (
            self.elastic_wall_s / self.clean_wall_s
            if self.clean_wall_s > 0
            else math.nan
        )

    @property
    def pre_scale_throughput_eps(self) -> float:
        return self.phase_throughputs_eps[0] if self.phase_throughputs_eps else math.nan

    @property
    def post_scale_throughput_eps(self) -> float:
        return self.phase_throughputs_eps[-1] if self.phase_throughputs_eps else math.nan


def measure_reconfig_pause(
    program: Any,
    plan: Any,
    streams: Sequence[Any],
    *,
    backend: str = "threaded",
    schedule: Any,
    repeats: int = 1,
    timeout_s: float = 120.0,
    **opts: Any,
) -> ReconfigPausePoint:
    """Measure the cost of elastic reconfiguration against a clean run
    of the *initial* plan on the same backend (best-of-``repeats``
    each).

    Schedules are pure data (firing state lives in the driver), so one
    ``schedule`` instance serves every repeat.  The elastic run's
    outputs are multiset-verified against the clean run's, so neither
    the pause nor a throughput gain can come from dropping work."""
    from ..runtime import get_backend  # runtime does not import bench; no cycle

    be = get_backend(backend)

    clean_best: Optional[Any] = None
    for _ in range(max(1, repeats)):
        run = be.run(program, plan, streams, timeout_s=timeout_s, **opts)
        if clean_best is None or run.wall_s < clean_best.wall_s:
            clean_best = run

    elastic_best: Optional[Any] = None
    for _ in range(max(1, repeats)):
        run = be.run(
            program,
            plan,
            streams,
            reconfig_schedule=schedule,
            timeout_s=timeout_s,
            **opts,
        )
        if elastic_best is None or run.wall_s < elastic_best.wall_s:
            elastic_best = run

    rec = elastic_best.reconfig
    return ReconfigPausePoint(
        backend=backend,
        clean_wall_s=clean_best.wall_s,
        elastic_wall_s=elastic_best.wall_s,
        reconfigs=len(rec.reconfigurations),
        attempts=rec.attempts,
        migration_pause_s=sum(s.pause_s for s in rec.reconfigurations),
        phase_widths=tuple(p.leaves for p in rec.phases),
        phase_throughputs_eps=tuple(p.throughput_events_per_s for p in rec.phases),
        outputs_equal=elastic_best.output_multiset() == clean_best.output_multiset(),
    )


def scaling_curve(
    run_factory: Callable[[int], Callable[[float], Any]],
    parallelism_levels: Sequence[int],
    *,
    start_rate: float = 50.0,
    growth: float = 2.0,
    max_steps: int = 7,
    efficiency: float = 0.9,
) -> List[ScalingPoint]:
    """Max throughput as a function of parallelism (Figures 4 and 8).

    ``run_factory(p)`` returns the ``run_at_rate`` callback for
    parallelism ``p``."""
    out: List[ScalingPoint] = []
    for p in parallelism_levels:
        sweep = max_throughput(
            run_factory(p),
            start_rate=start_rate,
            growth=growth,
            max_steps=max_steps,
            efficiency=efficiency,
        )
        out.append(ScalingPoint(p, sweep.max_throughput))
    return out


def speedup(points: Sequence[ScalingPoint]) -> List[Tuple[int, float]]:
    """Normalize a scaling curve by its first point."""
    if not points:
        return []
    base = points[0].max_throughput_per_ms
    if base <= 0 or math.isnan(base):
        return [(p.parallelism, math.nan) for p in points]
    return [(p.parallelism, p.max_throughput_per_ms / base) for p in points]
