"""Elastic reconfiguration: live re-planning at consistent snapshots.

Crash recovery (:mod:`repro.runtime.recovery`) restores a *past* root
snapshot into the *same* plan; this driver uses the same mechanism
forward: quiesce the runtime at the next root join — where the joined
state **is** a consistent snapshot of the whole computation (Appendix
D.2) — commit the sequential prefix of the output log, migrate the
snapshot into a **different** plan by forking it down the new tree
with the program's own declared fork primitives, and replay the input
suffix there.  Output across the transition is exactly-once and
multiset-equal to the sequential specification, by the same Theorem
2.4 argument the recovery driver leans on (the snapshot must be a
timestamp-prefix state: :func:`assert_recovery_sound` on every plan in
the sequence).

A :class:`ReconfigSchedule` mirrors :class:`~repro.runtime.faults
.FaultPlan`: a seeded, declarative list of :class:`ReconfigPoint`\\ s
(trigger + target shape), honored identically by the sim, threaded,
and process substrates because the quiesce trigger lives inside the
worker state machines (:mod:`repro.runtime.quiesce`).  Optionally an
:class:`AutoScaler` adds load-driven elasticity: leaves piggyback
their queue depth on join responses, and the root quiesces when the
cluster-wide backlog crosses a watermark; the policy then widens or
narrows the plan by its scaling factor.

Reconfiguration composes with fault injection: a crash during a
reconfigured execution recovers *into the current plan shape* — the
driver restores the latest checkpoint taken since the last migration
(falling back to the migration boundary snapshot itself, which is a
checkpoint by construction) and replays on the plan that was active
when the crash hit.  A planned point interrupted by a crash is not
marked fired and triggers again during the replay.

Worked end-to-end by ``examples/elastic_scaling.py``; measured by
:func:`repro.bench.harness.measure_reconfig_pause`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.errors import RuntimeFault
from ..core.program import DGSProgram
from ..plans.morph import max_width, plan_width, repartition_plan
from ..plans.plan import SyncPlan
from ..plans.validity import assert_reconfig_compatible
from .checkpoint import Checkpoint
from .faults import CrashRecord, FaultPlan
from .protocol import INIT_STATE, RunStatsMixin
from .quiesce import (
    PointTrigger,
    QuiesceRecord,
    RootReconfigView,
    SCALE_IN,
    SCALE_OUT,
    WatermarkTrigger,
)
from .recovery import (
    AttemptOutcome,
    RecoveryStep,
    _stamp_run_metrics,
    assert_recovery_sound,
    restart_from_crash,
    suffix_streams,
)
from .runtime import InputStream


@dataclass(frozen=True)
class ReconfigPoint:
    """One planned reconfiguration: when to quiesce, what to become.

    Exactly one trigger must be set — ``at_ts`` (fire at the first
    root join whose triggering event has timestamp ``>= at_ts``; stable
    across crash-recovery replays) or ``after_joins`` (fire at the
    attempt's n-th root join, 1-based) — and exactly one target:
    ``to_leaves`` (repartition to that leaf width via
    :func:`~repro.plans.morph.repartition_plan`) or ``to_plan`` (an
    explicit target plan, checked for compatibility at migration
    time).

    Note a plan narrowed to ``to_leaves=1`` is a single worker with no
    root joins — it cannot quiesce again, so later points are inert.
    """

    at_ts: Optional[float] = None
    after_joins: Optional[int] = None
    to_leaves: Optional[int] = None
    to_plan: Optional[SyncPlan] = None
    shape: str = "balanced"

    def __post_init__(self) -> None:
        if (self.at_ts is None) == (self.after_joins is None):
            raise ValueError(
                "ReconfigPoint needs exactly one of at_ts= / after_joins="
            )
        if self.after_joins is not None and self.after_joins < 1:
            raise ValueError("after_joins must be >= 1")
        if (self.to_leaves is None) == (self.to_plan is None):
            raise ValueError(
                "ReconfigPoint needs exactly one of to_leaves= / to_plan="
            )
        if self.to_leaves is not None and self.to_leaves < 1:
            raise ValueError("to_leaves must be >= 1")


@dataclass(frozen=True)
class AutoScaler:
    """Queue-depth-threshold elasticity policy.

    At every root join the root observes the cluster-wide queue depth
    (summed leaf backlogs piggybacked on join responses, see
    :mod:`repro.runtime.quiesce`).  Depth ``>= high_watermark`` scales
    *out* (leaf width × ``factor``); depth ``<= low_watermark`` scales
    *in* (width ÷ ``factor``).  Width is clamped to ``[min_leaves,
    min(max_leaves, program's max useful width)]`` — a decision that
    would not change the width is suppressed (no quiesce, no pause).

    ``cooldown_joins`` root joins must complete after each migration
    before the next decision, and at most ``max_reconfigs`` scaling
    steps fire per execution (both keep a bursty workload from
    thrashing the cluster through plan churn)."""

    high_watermark: Optional[int] = None
    low_watermark: Optional[int] = None
    factor: int = 2
    min_leaves: int = 1
    max_leaves: Optional[int] = None
    cooldown_joins: int = 1
    max_reconfigs: int = 4
    shape: str = "balanced"

    def __post_init__(self) -> None:
        if self.high_watermark is None and self.low_watermark is None:
            raise ValueError("AutoScaler needs high_watermark= or low_watermark=")
        if self.factor < 2:
            raise ValueError("factor must be >= 2")
        if self.min_leaves < 1:
            raise ValueError("min_leaves must be >= 1")
        if self.max_reconfigs < 1:
            raise ValueError("max_reconfigs must be >= 1")

    def target_width(self, reason: str, current: int, ceiling: int) -> int:
        hi = min(self.max_leaves, ceiling) if self.max_leaves else ceiling
        hi = max(hi, self.min_leaves)
        if reason == SCALE_OUT:
            return min(current * self.factor, hi)
        if reason == SCALE_IN:
            return max(current // self.factor, self.min_leaves)
        raise ValueError(f"unknown scaling reason {reason!r}")


class ReconfigSchedule:
    """A schedule of planned reconfiguration points, optionally plus an
    auto-scaler — the elastic analogue of a
    :class:`~repro.runtime.faults.FaultPlan`.

    Pure declarative data: which points have fired (each fires exactly
    once per execution; the auto-scaler up to its ``max_reconfigs``)
    is tracked by the driver, so one schedule can be reused across
    runs and backends."""

    def __init__(
        self, *points: ReconfigPoint, autoscaler: Optional[AutoScaler] = None
    ) -> None:
        self.points: Tuple[ReconfigPoint, ...] = tuple(points)
        self.autoscaler = autoscaler
        if not self.points and autoscaler is None:
            raise ValueError(
                "ReconfigSchedule needs at least one ReconfigPoint or an autoscaler="
            )

    def root_view(
        self,
        worker: str,
        *,
        width: int = 0,
        ceiling: int = 0,
        fired: frozenset = frozenset(),
        autoscale_spent: int = 0,
    ) -> Optional[RootReconfigView]:
        """A fresh per-attempt view for the current plan's root: the
        planned triggers not in ``fired`` plus the watermarks while the
        auto-scaler has budget left after ``autoscale_spent`` firings.
        A watermark whose decision could not move the current ``width``
        in its own direction (already at the ``ceiling``/floor, or a
        clamp inversion) is disarmed, so the run never pauses for a
        no-op or wrong-way migration.  None once everything is spent
        (the final attempt then runs with no quiesce hook at all)."""
        triggers = [
            PointTrigger(i, p.at_ts, p.after_joins)
            for i, p in enumerate(self.points)
            if i not in fired
        ]
        watermarks = None
        auto = self.autoscaler
        if auto is not None and autoscale_spent < auto.max_reconfigs:
            high = auto.high_watermark
            low = auto.low_watermark
            if width:
                # Disarm any decision that would not move the width in
                # its own direction — including clamp inversions (e.g.
                # already above max_leaves: "scale out" must not fire a
                # migration that *shrinks* the plan).
                if high is not None and auto.target_width(SCALE_OUT, width, ceiling) <= width:
                    high = None
                if low is not None and auto.target_width(SCALE_IN, width, ceiling) >= width:
                    low = None
            if high is not None or low is not None:
                watermarks = WatermarkTrigger(high, low, auto.cooldown_joins)
        if not triggers and watermarks is None:
            return None
        return RootReconfigView(worker, triggers, watermarks)

    def target_plan(
        self, record: QuiesceRecord, current: SyncPlan, program: DGSProgram
    ) -> SyncPlan:
        """The plan to migrate into for a quiesce that just fired."""
        if record.point_index >= 0:
            point = self.points[record.point_index]
            if point.to_plan is not None:
                return point.to_plan
            return repartition_plan(
                program,
                current,
                point.to_leaves,
                shape=point.shape,
                # Preserve a custom root state type across the
                # migration (R2: the snapshot is a value of it).
                state_type=current.root.state_type,
            )
        assert self.autoscaler is not None
        width = self.autoscaler.target_width(
            record.reason, plan_width(current), max_width(program, current)
        )
        return repartition_plan(
            program,
            current,
            width,
            shape=self.autoscaler.shape,
            state_type=current.root.state_type,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        auto = f", autoscaler={self.autoscaler!r}" if self.autoscaler else ""
        return f"ReconfigSchedule({len(self.points)} points{auto})"


@dataclass(frozen=True)
class ReconfigStep:
    """One completed migration between plans."""

    attempt: int
    reason: str
    key: tuple
    ts: float
    from_leaves: int
    to_leaves: int
    queue_depth: int
    #: Driver-side migration pause: suffix computation + target-plan
    #: construction + compatibility checks.  Worker restart and suffix
    #: replay are part of the next attempt's wall time — see
    #: measure_reconfig_pause for the end-to-end cost.
    pause_s: float


@dataclass(frozen=True)
class PhaseRecord:
    """One attempt's worth of processing on a fixed plan shape (only
    attempts ending in a quiesce or in completion — crashed attempts
    are recorded as recoveries instead)."""

    attempt: int
    leaves: int
    events_processed: int
    joins: int
    wall_s: float
    #: The phase's RunMetrics when the metrics plane was on — the
    #: per-shape load/latency signal metrics-driven scaling reads
    #: (each phase has its own latency epoch); None otherwise.
    metrics: Any = None

    @property
    def throughput_events_per_s(self) -> float:
        return self.events_processed / self.wall_s if self.wall_s > 0 else 0.0


@dataclass
class ReconfiguredRun(RunStatsMixin):
    """A complete elastic execution: one or more plan phases, possibly
    interleaved with crash recoveries."""

    outputs: List[Any] = field(default_factory=list)
    events_in: int = 0
    events_processed: int = 0
    joins: int = 0
    wall_s: float = 0.0
    attempts: int = 1
    crashes: List[CrashRecord] = field(default_factory=list)
    recoveries: List[RecoveryStep] = field(default_factory=list)
    checkpoints_taken: int = 0
    reconfigurations: List[ReconfigStep] = field(default_factory=list)
    phases: List[PhaseRecord] = field(default_factory=list)
    #: Every plan shape the execution ran through, initial one first.
    plan_history: List[SyncPlan] = field(default_factory=list)
    #: One RunMetrics per attempt that reported metrics — crashed
    #: attempts included (phases cover only clean attempts), in attempt
    #: order; empty when the metrics plane was off.
    attempt_metrics: List[Any] = field(default_factory=list)
    #: Whole-run merge of attempt_metrics with the recovery and
    #: elasticity counters stamped; None when the plane was off.
    metrics: Any = None

    @property
    def recovered(self) -> bool:
        return bool(self.recoveries)

    @property
    def reconfigured(self) -> bool:
        return bool(self.reconfigurations)

    @property
    def replayed_events(self) -> int:
        return sum(r.replayed_events for r in self.recoveries)

    @property
    def final_plan(self) -> SyncPlan:
        return self.plan_history[-1]


def _assert_phase_sound(phase_plan: SyncPlan, program: DGSProgram) -> None:
    """Phase-level soundness: multi-worker plans must have prefix-state
    root snapshots (they quiesce and checkpoint there); a single worker
    takes no snapshots at all, so any program is safe on it."""
    if len(phase_plan.workers()) > 1:
        assert_recovery_sound(phase_plan, program)


#: (plan, streams, initial_state, reconfig_view) -> AttemptOutcome; the
#: fault plan and checkpoint predicate are closed over by the backend
#: adapter.  Unlike recovery's AttemptFn, the *plan* varies per attempt.
ElasticAttemptFn = Callable[
    [SyncPlan, Sequence[InputStream], Any, Optional[RootReconfigView]],
    AttemptOutcome,
]


def run_with_reconfig(
    attempt_fn: ElasticAttemptFn,
    program: DGSProgram,
    plan: SyncPlan,
    streams: Sequence[InputStream],
    schedule: ReconfigSchedule,
    *,
    fault_plan: Optional[FaultPlan] = None,
    max_attempts: Optional[int] = None,
) -> ReconfiguredRun:
    """Drive attempts until one completes, migrating plans at quiesces
    and recovering crashes into the then-current plan shape."""
    # Quiescing (like checkpointing) needs every phase's root snapshots
    # to be timestamp-prefix states; target plans keep the same root
    # tags (R1+R2), but check each migration's target anyway.  A
    # single-worker plan is exempt: it has no root joins, so it can
    # neither quiesce nor checkpoint — a crash there replays its whole
    # phase from the boundary snapshot, which is sound for any program.
    _assert_phase_sound(plan, program)
    budget = len(schedule.points)
    if schedule.autoscaler is not None:
        budget += schedule.autoscaler.max_reconfigs
    if fault_plan is not None:
        budget += len(fault_plan.crash_indices())
    cap = max_attempts if max_attempts is not None else budget + 2

    run = ReconfiguredRun(plan_history=[plan])
    committed: List[Any] = []
    pending: Sequence[InputStream] = list(streams)
    initial: Any = INIT_STATE
    last_ckpt: Optional[Checkpoint] = None
    current = plan
    # Firing bookkeeping is driver-local so the schedule itself stays
    # reusable pure data (one schedule, many runs/backends).
    fired: set = set()
    autoscale_spent = 0
    for attempt in range(1, cap + 1):
        view = schedule.root_view(
            current.root.id,
            width=plan_width(current),
            ceiling=max_width(program, current),
            fired=fired,
            autoscale_spent=autoscale_spent,
        )
        out = attempt_fn(current, pending, initial, view)
        run.attempts = attempt
        run.checkpoints_taken += len(out.checkpoints)
        run.events_processed += out.events_processed
        run.joins += out.joins
        run.wall_s += out.wall_s
        if out.metrics is not None:
            run.attempt_metrics.append(out.metrics)
        if attempt == 1:
            run.events_in = out.events_in

        if out.crashes:
            # Crash wins over a racing quiesce: the interrupted point
            # is not marked fired and triggers again on the replay —
            # recovery restores into the *current* plan shape (the last
            # restore point may be a migration boundary snapshot).
            run.crashes.extend(out.crashes)
            if fault_plan is not None:
                for crash in out.crashes:
                    fault_plan.mark_fired(crash.fault_index)
            restart = restart_from_crash(
                attempt, out, pending, initial, last_ckpt,
                no_checkpoint_hint=(
                    "crashed before any checkpoint or migration snapshot "
                    "existed; configure checkpoint_predicate= (e.g. "
                    "every_root_join()) to make reconfigured runs "
                    "crash-recoverable"
                ),
            )
            committed.extend(restart.committed_delta)
            pending = restart.pending
            initial = restart.initial
            last_ckpt = restart.last_ckpt
            run.recoveries.append(restart.step)
            continue

        run.phases.append(
            PhaseRecord(
                attempt=attempt,
                leaves=plan_width(current),
                events_processed=out.events_processed,
                joins=out.joins,
                wall_s=out.wall_s,
                metrics=out.metrics,
            )
        )
        if out.quiesce is not None:
            q = out.quiesce
            t0 = time.perf_counter()
            if q.point_index >= 0:
                if q.point_index in fired:
                    raise RuntimeFault(
                        f"reconfiguration point #{q.point_index} fired twice"
                    )
                fired.add(q.point_index)
            else:
                autoscale_spent += 1
            committed.extend(v for k, v in out.keyed_outputs if k <= q.key)
            pending = suffix_streams(pending, q.key)
            new_plan = schedule.target_plan(q, current, program)
            assert_reconfig_compatible(current, new_plan, program)
            _assert_phase_sound(new_plan, program)
            pause_s = time.perf_counter() - t0
            run.reconfigurations.append(
                ReconfigStep(
                    attempt=attempt,
                    reason=q.reason,
                    key=q.key,
                    ts=q.ts,
                    from_leaves=plan_width(current),
                    to_leaves=plan_width(new_plan),
                    queue_depth=q.queue_depth,
                    pause_s=pause_s,
                )
            )
            run.plan_history.append(new_plan)
            current = new_plan
            initial = q.state
            # The migration snapshot is a checkpoint by construction:
            # crashes in the next phase before its first own checkpoint
            # restore from here, into the new plan.
            last_ckpt = Checkpoint(q.key, q.ts, q.state)
            continue

        run.outputs = committed + list(out.outputs)
        _stamp_run_metrics(run)
        return run
    raise RuntimeFault(
        f"elastic execution did not converge after {cap} attempts "
        "(each point fires once and the auto-scaler is budgeted, so "
        "this indicates a driver bug)"
    )
