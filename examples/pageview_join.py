#!/usr/bin/env python3
"""Page-view join with the Appendix-B communication optimizer.

Shows the optimizer decomposing the implementation-tag dependence graph
into per-page trees (reproducing the paper's Figure 3/9 structure on
the page-view workload), placing workers next to their input sources,
and the resulting edge-processing effect on network bytes.

Run:  python examples/pageview_join.py
"""

from collections import Counter

from repro.apps import pageview as pv
from repro.plans import StreamInfo, estimate_cost, is_p_valid, optimize
from repro.runtime import FluminaRuntime, InputStream, run_sequential_reference
from repro.sim import Topology

N_VIEW_STREAMS = 6
N_PAGES = 2


def main() -> None:
    program = pv.make_program(N_PAGES)
    workload = pv.make_workload(
        n_pages=N_PAGES,
        n_view_streams=N_VIEW_STREAMS,
        views_per_update=200,
        n_updates_per_page=4,
        view_rate_per_ms=100.0,
    )

    # Describe the streams to the optimizer: view streams are hot and
    # arrive at distinct edge hosts; update streams are rare.
    infos = []
    hosts = {}
    for i, (itag, events) in enumerate(workload.view_streams.items()):
        hosts[itag] = f"node{i}"
        infos.append(StreamInfo(itag, 100.0, f"node{i}"))
    for itag, events in workload.update_streams.items():
        hosts[itag] = "node0"
        infos.append(StreamInfo(itag, 0.5, "node0"))

    plan = optimize(program, infos)
    assert is_p_valid(plan, program)
    print("optimizer-generated synchronization plan (cf. Figure 3/9):")
    print(plan.pretty())

    rates = {i.itag: i.rate for i in infos}
    est = estimate_cost(plan, rates, source_hosts={i.itag: i.host for i in infos})
    print(
        f"\ncost model: throughput bound ~{est.throughput_bound_events_per_ms:.0f} ev/ms, "
        f"sync msgs {est.sync_messages_per_ms:.1f}/ms, "
        f"remote {est.remote_bytes_per_ms / 1000:.1f} KB/ms"
    )

    # Run it: producers co-located with the optimizer's leaf placement.
    topo = Topology.cluster(N_VIEW_STREAMS)
    streams = [
        InputStream(itag, events, source_host=hosts[itag], heartbeat_interval=0.5)
        for itag, events in workload.all_streams()
    ]
    result = FluminaRuntime(program, plan, topology=topo).run(streams)
    got = Counter(map(repr, result.output_values()))
    want = Counter(map(repr, run_sequential_reference(program, streams)))
    ok = got == want
    print(f"\noutputs match sequential spec: {ok}")
    total_bytes = result.events_in * topo.params.bytes_per_event
    print(
        f"edge processing: {result.network.remote_bytes / 1000:.0f} KB crossed "
        f"the network out of {total_bytes / 1000:.0f} KB processed "
        f"({100 * result.network.remote_bytes / total_bytes:.1f}%)"
    )
    if not ok:
        raise SystemExit(1)  # checked, not asserted — and honest to $?


if __name__ == "__main__":
    main()
