"""The Flumina-style DGS runtime (paper §3.4) plus checkpointing, a
sequential reference oracle, and the runtime-backend registry.

Three execution substrates run the same synchronization-plan protocol:

* ``sim`` — the simulated cluster (:class:`FluminaRuntime`), used for
  the paper's figures: models network cost, latency, utilization;
* ``threaded`` — one OS thread per worker (:class:`ThreadedRuntime`):
  real concurrency, GIL-bound throughput;
* ``process`` — one OS process per worker with batched channels
  (:class:`ProcessRuntime`): multi-core parallel speedup.

Benchmarks, examples, and tests select them uniformly through
:func:`get_backend` / :func:`run_on_backend`, which normalize each
substrate's native result into a :class:`BackendRun`.  Execution
options — checkpointing, fault injection, and elastic reconfiguration
(``reconfig_schedule=``, see :mod:`repro.runtime.reconfigure`) —
travel as one :class:`RunOptions` through all three substrates.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from ..core.errors import NoCheckpointError, RecoveryUnsoundError, RuntimeFault
from ..core.program import DGSProgram
from ..plans.plan import SyncPlan
from .options import RunOptions, ServeOptions
from .protocol import INIT_STATE, RunStatsMixin
from .checkpoint import (
    ByTimestampInterval,
    Checkpoint,
    EveryNthJoin,
    EveryRootJoin,
    by_timestamp_interval,
    every_nth_join,
    every_root_join,
    recover,
)
from .faults import (
    CrashFault,
    CrashRecord,
    DropHeartbeats,
    FaultPlan,
    WorkerCrash,
)
from .quiesce import QuiesceRecord, QuiesceSignal, RootReconfigView
from .recovery import (
    AttemptOutcome,
    RecoveredRun,
    RecoveryStep,
    assert_recovery_sound,
    run_with_recovery,
    suffix_streams,
)
from .reconfigure import (
    AutoScaler,
    PhaseRecord,
    ReconfigPoint,
    ReconfigSchedule,
    ReconfigStep,
    ReconfiguredRun,
    run_with_reconfig,
)
from .mailbox import Buffered, Mailbox
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    LatencyHistogram,
    MetricsConfig,
    MetricsExporter,
    MetricsSnapshot,
    RunMetrics,
    WorkerMetrics,
)
from .messages import (
    EventMsg,
    ForkStateMsg,
    HeartbeatMsg,
    JoinRequest,
    JoinResponse,
)
from .cluster import (
    ClusterLauncher,
    NodeSpec,
    local_nodes,
    resolve_placement,
)
from .process import ProcessResult, ProcessRuntime
from .transport import (
    BatchPolicy,
    PipeTransport,
    QueueTransport,
    SocketTransport,
    TRANSPORTS,
)
from .runtime import (
    FluminaRuntime,
    InputStream,
    RunResult,
    run_sequential_reference,
)
from .threaded import ThreadedResult, ThreadedRuntime
from .worker import RunCollector, WorkerActor, default_state_size


# ---------------------------------------------------------------------------
# Runtime backends: uniform selection across sim / threaded / process
# ---------------------------------------------------------------------------

@dataclass
class BackendRun(RunStatsMixin):
    """One execution, normalized across substrates.

    ``outputs`` is the flat list of output values (no timing tuples);
    ``wall_s`` is real wall-clock time for the threaded and process
    backends but *host* wall-clock of the simulation for ``sim`` — only
    compare wall times within the same backend family.  ``raw`` keeps
    the substrate's native result for backend-specific metrics.
    """

    backend: str
    outputs: List[Any] = field(default_factory=list)
    events_in: int = 0
    events_processed: int = 0
    joins: int = 0
    wall_s: float = 0.0
    raw: Any = None
    #: The RecoveredRun / ReconfiguredRun when the execution ran with
    #: fault_plan= (attempt count, crash records, recovery steps);
    #: None for plain runs.
    recovery: Any = None
    #: The ReconfiguredRun when the execution ran with
    #: reconfig_schedule= (migrations, phases, plan history).
    reconfig: Any = None
    #: The RunMetrics when the execution ran with ``metrics=True``.
    #: Plain runs carry the single attempt's metrics; recovering and
    #: elastic runs carry the merge across attempts with the
    #: recovery/elasticity counters stamped (attempts, replayed
    #: events, checkpoints restored, migration pause) — per-attempt
    #: snapshots stay accessible on ``recovery.attempt_metrics`` and
    #: ``reconfig.phases[i].metrics``.  Each attempt has its own
    #: latency epoch, so a replayed event's latency is its true
    #: recovery delay (restart to re-commit), not time-since-original-
    #: release.
    metrics: Any = None


class RuntimeBackend:
    """A named execution substrate for synchronization plans.

    Every backend takes the same :class:`RunOptions` (or the loose
    keywords it collects — ``fault_plan=``, ``checkpoint_predicate=``,
    ``reconfig_schedule=``, ``timeout_s=``, ``transport=``,
    ``batch_size=``, ``flush_ms=``):

    * ``checkpoint_predicate=`` arms Appendix-D.2 snapshots at root
      joins;
    * ``fault_plan=`` injects crashes/drops and drives the
      restore-and-replay recovery loop
      (:mod:`repro.runtime.recovery`);
    * ``reconfig_schedule=`` arms elastic re-planning at consistent
      snapshots (:mod:`repro.runtime.reconfigure`) — composable with
      the other two: crashes recover into the then-current plan shape.
    """

    name: str = "?"
    default_timeout_s: float = 60.0

    def run(
        self,
        program: DGSProgram,
        plan: SyncPlan,
        streams: Sequence[InputStream],
        *,
        options: Any = None,
        **kwargs: Any,
    ) -> BackendRun:
        if kwargs:
            # The PR-6 deprecation grace is over: options= is the API.
            raise TypeError(
                f"backend.run()/run_on_backend() takes no loose keyword "
                f"arguments (got {sorted(kwargs)}); build a "
                f"RunOptions({', '.join(f'{k}=...' for k in sorted(kwargs))}) "
                "and pass options= (RunOptions.collect merges overrides "
                "onto a shared base)"
            )
        opts = options if options is not None else RunOptions()
        if opts.reconfig_schedule is not None:
            return self._run_elastic(program, plan, streams, opts)
        if opts.fault_plan is not None:
            return self._run_recovering(program, plan, streams, opts)
        return self._run_plain(program, plan, streams, opts)

    def attempt(
        self,
        program: DGSProgram,
        plan: SyncPlan,
        streams: Sequence[InputStream],
        *,
        options: Any = None,
        initial_state: Any = INIT_STATE,
        reconfig_view: Any = None,
    ) -> AttemptOutcome:
        """One bounded execution attempt on this substrate.

        This is the public form of the building block the recovery and
        reconfiguration drivers compose: run the given streams from
        ``initial_state`` (default: the program's ``init()``), honoring
        the fault plan / checkpoint predicate in ``options`` and an
        optional per-attempt :class:`RootReconfigView`, and return the
        raw :class:`AttemptOutcome` — checkpoints, keyed outputs,
        crash/quiesce records — without driving any restart loop.
        Callers that sequence attempts themselves (the service tier in
        :mod:`repro.serve` drives one attempt per ingest epoch) own the
        exactly-once bookkeeping; everyone else wants :meth:`run`.

        Output keys are always recorded (the whole point of an attempt
        is committing by order-key prefix), and stateful checkpoint
        predicates are deep-copied per attempt, matching the drivers'
        semantics.
        """
        opts = options if options is not None else RunOptions()
        return self._attempt(
            program, plan, streams, initial_state,
            self._attempt_options(opts), reconfig_view,
        )

    def _attempt_options(self, opts: RunOptions) -> RunOptions:
        # Stateful predicates (EveryNthJoin's counter, ...) restart per
        # attempt on every substrate: the process backend forks a
        # pristine copy anyway, so give threaded/sim the same semantics
        # by deep-copying here.  Attempts always record output keys —
        # the drivers commit by order-key prefix.
        fresh = copy.copy(opts)
        fresh.checkpoint_predicate = copy.deepcopy(opts.checkpoint_predicate)
        fresh.record_keys = True
        return fresh

    def _run_recovering(self, program, plan, streams, opts: RunOptions) -> BackendRun:
        def attempt(attempt_streams, initial_state):
            return self._attempt(
                program, plan, attempt_streams, initial_state,
                self._attempt_options(opts), None,
            )

        rec = run_with_recovery(attempt, program, plan, streams, opts.fault_plan)
        return BackendRun(
            backend=self.name,
            outputs=rec.outputs,
            events_in=rec.events_in,
            events_processed=rec.events_processed,
            joins=rec.joins,
            wall_s=rec.wall_s,
            raw=rec,
            recovery=rec,
            metrics=rec.metrics,
        )

    def _run_elastic(self, program, plan, streams, opts: RunOptions) -> BackendRun:
        def attempt(phase_plan, attempt_streams, initial_state, reconfig_view):
            return self._attempt(
                program, phase_plan, attempt_streams, initial_state,
                self._attempt_options(opts), reconfig_view,
            )

        rec = run_with_reconfig(
            attempt, program, plan, streams, opts.reconfig_schedule,
            fault_plan=opts.fault_plan,
        )
        return BackendRun(
            backend=self.name,
            outputs=rec.outputs,
            events_in=rec.events_in,
            events_processed=rec.events_processed,
            joins=rec.joins,
            wall_s=rec.wall_s,
            raw=rec,
            recovery=rec,
            reconfig=rec,
            metrics=rec.metrics,
        )

    # -- substrate hooks -------------------------------------------------
    def _run_plain(self, program, plan, streams, opts: RunOptions) -> BackendRun:
        raise NotImplementedError

    def _attempt(
        self, program, plan, streams, initial_state, opts: RunOptions, reconfig_view
    ) -> AttemptOutcome:
        raise NotImplementedError


class SimBackend(RuntimeBackend):
    """The simulated cluster: protocol + network/latency model."""

    name = "sim"

    def _run_plain(self, program, plan, streams, opts):
        # Wall timeouts have no simulated analogue: opts.timeout_s is
        # simply not consulted here.
        t0 = time.perf_counter()
        res = FluminaRuntime(
            program, plan,
            checkpoint_predicate=opts.checkpoint_predicate,
            record_keys=opts.record_keys,
            metrics=opts.metrics_config(),
            **opts.extra,
        ).run(streams)
        return BackendRun(
            backend=self.name,
            outputs=res.output_values(),
            events_in=res.events_in,
            events_processed=res.events_processed,
            joins=res.joins,
            wall_s=time.perf_counter() - t0,
            raw=res,
            metrics=res.metrics,
        )

    def _attempt(self, program, plan, streams, initial_state, opts, reconfig_view):
        t0 = time.perf_counter()
        res = FluminaRuntime(
            program,
            plan,
            checkpoint_predicate=opts.checkpoint_predicate,
            faults=opts.fault_plan,
            record_keys=True,
            reconfig=reconfig_view,
            metrics=opts.metrics_config(),
            **opts.extra,
        ).run(streams, initial_state=initial_state)
        return AttemptOutcome(
            outputs=res.output_values(),
            keyed_outputs=res.keyed_outputs,
            checkpoints=res.checkpoints,
            crashes=res.crashes,
            events_in=res.events_in,
            events_processed=res.events_processed,
            joins=res.joins,
            wall_s=time.perf_counter() - t0,
            quiesce=res.quiesce,
            metrics=res.metrics,
        )


class ThreadedBackend(RuntimeBackend):
    """One OS thread per plan worker (GIL-bound)."""

    name = "threaded"
    default_timeout_s = 60.0

    def _run_plain(self, program, plan, streams, opts):
        res = ThreadedRuntime(program, plan, **opts.extra).run(
            streams,
            timeout_s=opts.with_timeout_default(self.default_timeout_s),
            checkpoint_predicate=opts.checkpoint_predicate,
            record_keys=opts.record_keys,
            metrics=opts.metrics_config(),
            pace=opts.pace,
        )
        return BackendRun(
            backend=self.name,
            outputs=res.outputs,
            events_in=res.events_in,
            events_processed=res.events_processed,
            joins=res.joins,
            wall_s=res.wall_s,
            raw=res,
            metrics=res.metrics,
        )

    def _attempt(self, program, plan, streams, initial_state, opts, reconfig_view):
        res = ThreadedRuntime(program, plan, **opts.extra).run(
            streams,
            timeout_s=opts.with_timeout_default(self.default_timeout_s),
            initial_state=initial_state,
            checkpoint_predicate=opts.checkpoint_predicate,
            faults=opts.fault_plan,
            record_keys=True,
            reconfig=reconfig_view,
            metrics=opts.metrics_config(),
        )
        return AttemptOutcome(
            outputs=res.outputs,
            keyed_outputs=res.keyed_outputs,
            checkpoints=res.checkpoints,
            crashes=res.crashes,
            events_in=res.events_in,
            events_processed=res.events_processed,
            joins=res.joins,
            wall_s=res.wall_s,
            quiesce=res.quiesce,
            metrics=res.metrics,
        )


class ProcessBackend(RuntimeBackend):
    """One OS process per plan worker, batched channels (multi-core);
    with ``nodes=`` set, one agent process per named node over the TCP
    data plane (:class:`~repro.runtime.cluster.ClusterLauncher`)."""

    name = "process"
    default_timeout_s = 120.0

    @staticmethod
    def _make_runtime(program, plan, opts: RunOptions):
        if opts.nodes is None:
            if opts.placement is not None:
                raise RuntimeFault(
                    "placement= pins workers to cluster nodes; it needs "
                    "nodes= (a worker-placement with no nodes to place "
                    "on would be silently ignored)"
                )
            return ProcessRuntime(
                program, plan, **opts.transport_kwargs(), **opts.extra
            )
        if opts.transport not in (None, "tcp"):
            raise RuntimeFault(
                f"nodes= deploys over the TCP data plane; it cannot be "
                f"combined with transport={opts.transport!r}"
            )
        if opts.extra:
            # Loud, not silent: the single-host path would forward (or
            # TypeError on) these, and a kwarg that quietly changes
            # meaning between deployments is a debugging trap.
            raise RuntimeFault(
                f"cluster deployments accept no extra substrate kwargs: "
                f"{sorted(opts.extra)}"
            )
        return ClusterLauncher(
            program,
            plan,
            nodes=opts.nodes,
            placement=opts.placement,
            batch_size=opts.batch_size,
            flush_ms=opts.flush_ms,
            metrics_port=opts.metrics_port,
        )

    def _run_plain(self, program, plan, streams, opts):
        rt = self._make_runtime(program, plan, opts)
        res = rt.run(
            streams,
            timeout_s=opts.with_timeout_default(self.default_timeout_s),
            checkpoint_predicate=opts.checkpoint_predicate,
            record_keys=opts.record_keys,
            metrics=opts.metrics_config(),
            pace=opts.pace,
        )
        return BackendRun(
            backend=self.name,
            outputs=res.outputs,
            events_in=res.events_in,
            events_processed=res.events_processed,
            joins=res.joins,
            wall_s=res.wall_s,
            raw=res,
            metrics=res.metrics,
        )

    def _attempt(self, program, plan, streams, initial_state, opts, reconfig_view):
        rt = self._make_runtime(program, plan, opts)
        res = rt.run(
            streams,
            timeout_s=opts.with_timeout_default(self.default_timeout_s),
            initial_state=initial_state,
            checkpoint_predicate=opts.checkpoint_predicate,
            faults=opts.fault_plan,
            record_keys=True,
            reconfig=reconfig_view,
            metrics=opts.metrics_config(),
        )
        return AttemptOutcome(
            outputs=res.outputs,
            keyed_outputs=res.keyed_outputs,
            checkpoints=res.checkpoints,
            crashes=res.crashes,
            events_in=res.events_in,
            events_processed=res.events_processed,
            joins=res.joins,
            wall_s=res.wall_s,
            quiesce=res.quiesce,
            metrics=res.metrics,
        )

    def _shared_exporter(self, opts: RunOptions):
        # Cluster attempts each construct a fresh ClusterLauncher, so a
        # per-run exporter would bind, serve one attempt, and vanish —
        # exactly when a scrape wants to watch a recovery.  Own one
        # exporter here for the whole recovering/elastic run and hand
        # the live instance down through metrics_port; the launcher
        # reuses it, opening a new attempt="N" label group per attempt,
        # and leaves stopping it to us.
        if opts.nodes is None or not opts.metrics or opts.metrics_port is None:
            return None
        return MetricsExporter(port=int(opts.metrics_port)).start()

    def _run_recovering(self, program, plan, streams, opts):
        exporter = self._shared_exporter(opts)
        if exporter is None:
            return super()._run_recovering(program, plan, streams, opts)
        opts = copy.copy(opts)
        opts.metrics_port = exporter
        try:
            return super()._run_recovering(program, plan, streams, opts)
        finally:
            exporter.stop()

    def _run_elastic(self, program, plan, streams, opts):
        exporter = self._shared_exporter(opts)
        if exporter is None:
            return super()._run_elastic(program, plan, streams, opts)
        opts = copy.copy(opts)
        opts.metrics_port = exporter
        try:
            return super()._run_elastic(program, plan, streams, opts)
        finally:
            exporter.stop()


BACKENDS: Dict[str, RuntimeBackend] = {
    b.name: b for b in (SimBackend(), ThreadedBackend(), ProcessBackend())
}


def available_backends() -> Tuple[str, ...]:
    return tuple(sorted(BACKENDS))


def get_backend(name: str) -> RuntimeBackend:
    try:
        return BACKENDS[name]
    except KeyError:
        raise RuntimeFault(
            f"unknown runtime backend {name!r}; available: {available_backends()}"
        ) from None


def run_on_backend(
    name: str,
    program: DGSProgram,
    plan: SyncPlan,
    streams: Sequence[InputStream],
    **opts: Any,
) -> BackendRun:
    """Run a program + plan on the named backend (uniform entry point
    for benchmarks, examples, and tests).

    Run configuration travels as ``options=RunOptions(...)`` — the only
    accepted keyword.  Loose keyword arguments (deprecated in the PR-6
    release) now raise ``TypeError`` with a migration hint; use
    :meth:`RunOptions.collect` to merge per-call overrides onto a
    shared base ``RunOptions``.
    """
    return get_backend(name).run(program, plan, streams, **opts)


__all__ = [
    "BACKENDS",
    "AttemptOutcome",
    "AutoScaler",
    "BackendRun",
    "BatchPolicy",
    "Buffered",
    "ByTimestampInterval",
    "Checkpoint",
    "ClusterLauncher",
    "CrashFault",
    "CrashRecord",
    "DEFAULT_LATENCY_BUCKETS",
    "DropHeartbeats",
    "EventMsg",
    "EveryNthJoin",
    "EveryRootJoin",
    "FaultPlan",
    "FluminaRuntime",
    "ForkStateMsg",
    "HeartbeatMsg",
    "InputStream",
    "JoinRequest",
    "JoinResponse",
    "LatencyHistogram",
    "Mailbox",
    "MetricsConfig",
    "MetricsExporter",
    "MetricsSnapshot",
    "NoCheckpointError",
    "NodeSpec",
    "PhaseRecord",
    "PipeTransport",
    "ProcessBackend",
    "ProcessResult",
    "ProcessRuntime",
    "QueueTransport",
    "QuiesceRecord",
    "QuiesceSignal",
    "ReconfigPoint",
    "ReconfigSchedule",
    "ReconfigStep",
    "ReconfiguredRun",
    "RecoveredRun",
    "RecoveryStep",
    "RecoveryUnsoundError",
    "RootReconfigView",
    "RunCollector",
    "RunMetrics",
    "RunOptions",
    "RunResult",
    "RuntimeBackend",
    "ServeOptions",
    "SimBackend",
    "SocketTransport",
    "TRANSPORTS",
    "ThreadedBackend",
    "ThreadedResult",
    "ThreadedRuntime",
    "WorkerActor",
    "WorkerCrash",
    "WorkerMetrics",
    "assert_recovery_sound",
    "available_backends",
    "by_timestamp_interval",
    "default_state_size",
    "every_nth_join",
    "every_root_join",
    "get_backend",
    "local_nodes",
    "recover",
    "resolve_placement",
    "run_on_backend",
    "run_sequential_reference",
    "run_with_reconfig",
    "run_with_recovery",
    "suffix_streams",
]
