"""Unit tests for hosts, topologies, and the actor layer."""

import pytest

from repro.sim import Actor, ActorSystem, SimParams, Simulator, Topology


def make_system(n_hosts=2, **param_overrides):
    params = SimParams().with_(**param_overrides)
    topo = Topology.cluster(n_hosts, params=params)
    sim = Simulator()
    return ActorSystem(sim, topo)


class Echo(Actor):
    """Replies to every message; records receipt times."""

    def __init__(self, name, host):
        super().__init__(name, host)
        self.received = []

    def handle(self, msg, sender):
        self.received.append((self.now, msg))
        if sender is not None and msg != "ack":
            self.send(sender, "ack")


class TestHost:
    def test_reserve_serializes(self):
        sys = make_system(1)
        host = sys.topology.host("node0")
        assert host.reserve(0.0, 1.0) == 1.0
        assert host.reserve(0.5, 1.0) == 2.0  # queued behind first
        assert host.reserve(5.0, 1.0) == 6.0  # idle gap

    def test_busy_time_accumulates(self):
        sys = make_system(1)
        host = sys.topology.host("node0")
        host.reserve(0.0, 2.0)
        host.reserve(0.0, 3.0)
        assert host.busy_time == 5.0
        assert host.utilization(10.0) == 0.5


class TestTopology:
    def test_local_vs_remote_latency(self):
        topo = Topology.cluster(2)
        assert topo.latency("node0", "node0") == topo.params.local_latency_ms
        assert topo.latency("node0", "node1") == topo.params.remote_latency_ms

    def test_pair_latency_override_symmetric(self):
        topo = Topology.cluster(2)
        topo.set_latency("node0", "node1", 9.0)
        assert topo.latency("node0", "node1") == 9.0
        assert topo.latency("node1", "node0") == 9.0

    def test_stats_accounting(self):
        topo = Topology.cluster(2)
        topo.record_message("node0", "node1", 100)
        topo.record_message("node0", "node0", 10)
        assert topo.stats.remote_messages == 1
        assert topo.stats.local_messages == 1
        assert topo.stats.total_bytes == 110

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            Topology([])


class TestActorDelivery:
    def test_injected_message_arrives_with_latency(self):
        sys = make_system(1)
        a = sys.add(Echo("a", "node0"))
        sys.inject("a", "hello", at=0.0)
        sys.run()
        assert len(a.received) == 1
        t, msg = a.received[0]
        assert msg == "hello"
        # remote latency + service + recv overhead
        p = sys.params
        assert t == pytest.approx(
            p.remote_latency_ms + p.cpu_per_event_ms + p.recv_overhead_ms
        )

    def test_request_response_roundtrip(self):
        sys = make_system(2)
        a = sys.add(Echo("a", "node0"))
        sys.add(Echo("b", "node1"))

        class Caller(Echo):
            def handle(self, msg, sender):
                super().handle(msg, sender)

        sys.inject("a", "ping", at=0.0, from_host="node1")
        sys.run()
        assert [m for _, m in a.received] == ["ping"]

    def test_duplicate_actor_name_rejected(self):
        sys = make_system(1)
        sys.add(Echo("a", "node0"))
        with pytest.raises(ValueError):
            sys.add(Echo("a", "node0"))

    def test_unknown_host_rejected(self):
        sys = make_system(1)
        with pytest.raises(ValueError):
            sys.add(Echo("a", "nope"))

    def test_fifo_per_pair(self):
        sys = make_system(2)
        a = sys.add(Echo("a", "node0"))
        for i in range(10):
            sys.inject("a", i, at=i * 0.01, from_host="node1")
        sys.run()
        assert [m for _, m in a.received] == list(range(10))

    def test_host_serialization_backlogs(self):
        # Two actors on one host: their processing serializes.
        sys = make_system(1, cpu_per_event_ms=1.0, recv_overhead_ms=0.0)
        a = sys.add(Echo("a", "node0"))
        b = sys.add(Echo("b", "node0"))
        sys.inject("a", "x", at=0.0)
        sys.inject("b", "y", at=0.0)
        sys.run()
        ta = a.received[0][0]
        tb = b.received[0][0]
        assert abs(tb - ta) == pytest.approx(1.0)  # second waits for first

    def test_parallel_hosts_do_not_serialize(self):
        sys = make_system(2, cpu_per_event_ms=1.0, recv_overhead_ms=0.0)
        a = sys.add(Echo("a", "node0"))
        b = sys.add(Echo("b", "node1"))
        sys.inject("a", "x", at=0.0)
        sys.inject("b", "y", at=0.0)
        sys.run()
        assert a.received[0][0] == pytest.approx(b.received[0][0])


class TestOutputsAndTimers:
    def test_emit_records_output(self):
        sys = make_system(1)

        class Out(Actor):
            def handle(self, msg, sender):
                self.emit(msg * 2)

        sys.add(Out("o", "node0"))
        sys.inject("o", 21, at=0.0)
        sys.run()
        assert sys.output_values() == [42]
        assert sys.outputs[0].actor == "o"

    def test_timer_fires(self):
        sys = make_system(1)
        fired = []

        class T(Actor):
            def handle(self, msg, sender):
                self.set_timer(5.0, "k")

            def on_timer(self, key):
                fired.append((self.now, key))

        sys.add(T("t", "node0"))
        sys.inject("t", "go", at=0.0)
        sys.run()
        assert len(fired) == 1
        assert fired[0][1] == "k"

    def test_send_overhead_charged(self):
        # Broadcasting to N destinations extends the sender's busy time.
        sys = make_system(2, send_overhead_ms=1.0)

        class Caster(Actor):
            def handle(self, msg, sender):
                for dst in msg:
                    self.send(dst, "hi")

        class Sink(Actor):
            def handle(self, msg, sender):
                pass

        sys.add(Caster("c", "node0"))
        sinks = [sys.add(Sink(f"s{i}", "node1")) for i in range(3)]
        sys.inject("c", [s.name for s in sinks], at=0.0)
        sys.run()
        host = sys.topology.host("node0")
        assert host.busy_time >= 3.0  # three sends at 1 ms each


class TestNetworkAccounting:
    def test_bytes_counted_per_units(self):
        sys = make_system(2)

        class Fwd(Actor):
            def handle(self, msg, sender):
                self.send("sink", msg, units=5)

        class Sink(Actor):
            def handle(self, msg, sender):
                pass

        sys.add(Fwd("f", "node0"))
        sys.add(Sink("sink", "node1"))
        before = sys.topology.stats.remote_bytes
        sys.inject("f", "batch", at=0.0, from_host="node0")
        sys.run()
        gained = sys.topology.stats.remote_bytes - before
        assert gained == 5 * sys.params.bytes_per_event
