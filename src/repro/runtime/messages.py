"""Message types exchanged by the Flumina-style runtime (paper §3.4).

Six message kinds flow between producers and workers:

* :class:`EventMsg` — an application event, producer -> owning worker;
* :class:`EventRun` — a columnar *run* of consecutive events sharing
  one implementation tag and one scalar field shape; producers and the
  frame codec coalesce same-route traffic into runs so the hot path
  moves packed timestamp/payload columns instead of one
  :class:`~repro.core.events.Event` object per message.  A run is
  order-equivalent to the per-event sequence it packs — mailboxes
  release (and may split) runs under exactly the per-event rule, and
  workers fall back to per-event objects at the boundaries that need
  them (fault hooks, synchronizing events at internal nodes);
* :class:`HeartbeatMsg` — progress promise for one implementation tag;
  producers send them to the tag's owner, and workers *relay* them down
  the tree so descendants' mailboxes can release buffered events;
* :class:`JoinRequest` — sent by a worker processing a synchronizing
  event to its children (and relayed recursively); carries the
  triggering event's order key so child mailboxes can sequence it
  against their own events;
* :class:`JoinResponse` — a child's state traveling up;
* :class:`ForkStateMsg` — a forked state traveling back down.

All five kinds are plain picklable dataclasses over picklable fields
(events, order-key tuples, and application states), so they can cross
OS-process boundaries; :mod:`repro.runtime.wire` defines the compact
tuple encoding the process runtime actually puts on its batched
channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..core.events import Event, ImplTag, _stable_key

OrderKey = Tuple


@dataclass(frozen=True)
class EventMsg:
    event: Event


class EventRun:
    """A columnar run of consecutive events with one route and shape.

    ``ts`` holds the timestamp column and ``payloads`` the payload
    column (``None`` when every payload is ``None`` — the codec's FN
    shape).  ``shape`` is the wire codec's shape byte, kept so a run
    re-packs without re-deriving it.  Order keys are materialized
    lazily and cached: every event in a run shares the same
    ``(stable(tag), stable(stream))`` suffix, so a run's keys cost one
    tuple per event instead of two nested ones.

    Runs are *not* wrapped in :class:`EventMsg`: a run is itself a
    protocol message, and its identity on the in-flight accounting
    plane is ``len(run)`` messages (see
    :func:`repro.runtime.wire.batch_message_count`).
    """

    __slots__ = ("tag", "stream", "shape", "ts", "payloads", "_keys")

    def __init__(
        self,
        tag: Any,
        stream: Any,
        shape: int,
        ts: Tuple,
        payloads: Optional[Tuple],
    ) -> None:
        self.tag = tag
        self.stream = stream
        self.shape = shape
        self.ts = ts
        self.payloads = payloads
        self._keys: Optional[List[tuple]] = None

    def __len__(self) -> int:
        return len(self.ts)

    @property
    def itag(self) -> ImplTag:
        return ImplTag(self.tag, self.stream)

    def keys(self) -> List[tuple]:
        ks = self._keys
        if ks is None:
            kt = _stable_key(self.tag)
            ksm = _stable_key(self.stream)
            ks = self._keys = [(t, kt, ksm) for t in self.ts]
        return ks

    @property
    def first_key(self) -> tuple:
        return self.keys()[0]

    @property
    def last_key(self) -> tuple:
        return self.keys()[-1]

    def event(self, i: int) -> Event:
        p = self.payloads[i] if self.payloads is not None else None
        return Event(self.tag, self.stream, self.ts[i], p)

    def events(self) -> List[Event]:
        """Materialize per-event objects (the fallback boundary)."""
        if self.payloads is None:
            return [Event(self.tag, self.stream, t, None) for t in self.ts]
        return [
            Event(self.tag, self.stream, t, p)
            for t, p in zip(self.ts, self.payloads)
        ]

    def split(self, n: int) -> Tuple["EventRun", "EventRun"]:
        """Split into (first ``n`` events, the rest); both share the
        run's route and shape.  Used by the mailbox when only a prefix
        is releasable."""
        pl = self.payloads
        a = EventRun(self.tag, self.stream, self.shape, self.ts[:n],
                     pl[:n] if pl is not None else None)
        b = EventRun(self.tag, self.stream, self.shape, self.ts[n:],
                     pl[n:] if pl is not None else None)
        if self._keys is not None:
            a._keys = self._keys[:n]
            b._keys = self._keys[n:]
        return a, b

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventRun({self.tag!r}@{self.stream!r}, n={len(self.ts)}, "
            f"ts=[{self.ts[0]!r}..{self.ts[-1]!r}])"
        )


@dataclass(frozen=True)
class HeartbeatMsg:
    """Progress for ``itag`` up to (and including) ``key``."""

    itag: ImplTag
    key: OrderKey


@dataclass(frozen=True)
class JoinRequest:
    """Join your subtree state as of ``key`` and reply to ``reply_to``."""

    req_id: Tuple[str, int]
    itag: ImplTag  # implementation tag of the triggering event
    key: OrderKey
    reply_to: str
    side: str  # "left" or "right" slot in the requester's join


@dataclass(frozen=True)
class JoinResponse:
    """A child's state traveling up.

    ``backlog`` piggybacks the subtree's queue depth — the number of
    buffered/pending mailbox items below (and at) the answering worker
    at the instant it surrendered its state.  Summed up the tree, the
    root observes the cluster-wide queue depth at every join, which is
    the load signal the elastic auto-scaler thresholds on
    (:mod:`repro.runtime.reconfigure`).

    ``metrics`` piggybacks worker metrics snapshots the same way when
    the metrics plane is enabled (:mod:`repro.runtime.metrics`): a
    tuple of per-worker wire snapshots from the answering subtree, or
    ``None`` (the default, and always when metrics are off)."""

    req_id: Tuple[str, int]
    side: str
    state: Any
    state_size: float
    backlog: int = 0
    metrics: Any = None


@dataclass(frozen=True)
class ForkStateMsg:
    req_id: Tuple[str, int]
    state: Any
    state_size: float
