#!/usr/bin/env python3
"""Distributed deployment: the value-barrier program placed across
named nodes over the TCP data plane.

Two shapes of the same wire protocol:

* ``--nodes N`` (default 2) — the cluster launcher: one node agent
  process per :class:`NodeSpec`, a registry handshake that exchanges
  listen addresses, and every channel a framed TCP connection.
  Locally all agents bind 127.0.0.1; on a real cluster each NodeSpec
  names a routable host and the identical handshake runs across
  machines (agents are still forked locally today — see
  repro/runtime/cluster.py for the deployment boundary).
* ``--transport tcp`` on the single-host comparison run — the same
  frames over loopback TCP with one process per worker, the
  benchmark baseline the CI perf gate holds within 2x of raw pipes.

Outputs of every run are verified against the sequential
specification, so the distribution story is checked, not asserted.

Run:  python examples/distributed.py
      python examples/distributed.py --nodes 3 --workers 6
      python examples/distributed.py --placement w1=node0
      REPRO_CLUSTER_LOG_DIR=/tmp/cluster-logs python examples/distributed.py
"""

import argparse
from collections import Counter

from repro.apps import value_barrier as vb
from repro.core.semantics import output_multiset
from repro.runtime import (
    RunOptions,
    local_nodes,
    resolve_placement,
    run_on_backend,
    run_sequential_reference,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--nodes", type=int, default=2, help="local node agents (default 2)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="value streams / plan leaves"
    )
    parser.add_argument(
        "--placement",
        default=None,
        help="comma-separated worker=node pins, e.g. 'w1=node0' (w1 is the "
        "root in the default plan); "
        "unpinned workers spread round-robin",
    )
    parser.add_argument(
        "--transport",
        choices=("pipe", "queue", "tcp"),
        default="tcp",
        help="data plane for the single-host comparison run (default tcp)",
    )
    parser.add_argument("--values", type=int, default=200, help="values per barrier")
    parser.add_argument("--barriers", type=int, default=3)
    args = parser.parse_args()

    program = vb.make_program()
    workload = vb.make_workload(
        n_value_streams=args.workers,
        values_per_barrier=args.values,
        n_barriers=args.barriers,
    )
    plan = vb.make_plan(program, workload)
    streams = vb.make_streams(workload, heartbeat_interval=5.0)

    nodes = local_nodes(args.nodes)
    pins = None
    if args.placement:
        pins = dict(pair.split("=", 1) for pair in args.placement.split(","))
    placement = resolve_placement(plan, nodes, pins)
    per_node = Counter(placement.values())

    print(f"plan ({plan.size()} workers):\n{plan.pretty()}\n")
    print("placement:")
    for node in nodes:
        mine = sorted(w for w, n in placement.items() if n == node.name)
        print(f"  {node.name} ({node.host}): {', '.join(mine)}")
    print()

    want = output_multiset(run_sequential_reference(program, streams))
    all_ok = True

    run = run_on_backend(
        "process", program, plan, streams,
        options=RunOptions(nodes=nodes, placement=pins),
    )
    ok = output_multiset(run.outputs) == want
    all_ok = all_ok and ok
    print(
        f"cluster   {run.raw.nodes} node agent(s), "
        f"{max(per_node.values())} worker(s) on the busiest node | "
        f"outputs match spec: {ok}  events={run.events_in}  "
        f"joins={run.joins}  wall={run.wall_s * 1e3:8.1f} ms"
    )

    run = run_on_backend(
        "process", program, plan, streams,
        options=RunOptions(transport=args.transport),
    )
    ok = output_multiset(run.outputs) == want
    all_ok = all_ok and ok
    print(
        f"single-host {run.raw.transport} transport, one process per worker  | "
        f"outputs match spec: {ok}  events={run.events_in}  "
        f"joins={run.joins}  wall={run.wall_s * 1e3:8.1f} ms"
    )
    if not all_ok:
        raise SystemExit(1)  # checked, not asserted — and honest to $?


if __name__ == "__main__":
    main()
