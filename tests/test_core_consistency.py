"""Tests for the consistency checker (Definition 2.3, C1-C3)."""

import random


from repro.core import (
    DependenceRelation,
    Event,
    check_consistency,
    co_reachable_pairs,
    independent_pred_pairs,
    reachable_states,
    single_state_program,
)
from repro.apps import keycounter as kc


def _events(prog, seed=0, n=30):
    rng = random.Random(seed)
    tags = sorted(prog.tags, key=repr)
    return [Event(tags[rng.randrange(len(tags))], 0, ts) for ts in range(n)]


class TestConsistentPrograms:
    def test_keycounter_is_consistent(self):
        prog = kc.make_program(3)
        report = check_consistency(
            prog, _events(prog), state_eq=kc.state_eq, rng=random.Random(7)
        )
        assert report.ok, report.violations[:5]
        assert report.checks > 100

    def test_pure_counting_is_consistent(self):
        uni = ["v"]
        prog = single_state_program(
            name="sum",
            tags=uni,
            depends=DependenceRelation.all_independent(uni),
            init=lambda: 0,
            update=lambda s, e: (s + e.payload, []),
            fork=lambda s, p, q: (s, 0),
            join=lambda a, b: a + b,
        )
        events = [Event("v", 0, t, payload=t) for t in range(10)]
        assert check_consistency(prog, events).ok


class TestInconsistentPrograms:
    def test_noncommutative_update_flagged_by_c3(self):
        # Appending to a list does not commute, yet all events are
        # declared independent: C3 must fire.
        uni = ["a", "b"]
        prog = single_state_program(
            name="bad-c3",
            tags=uni,
            depends=DependenceRelation.all_independent(uni),
            init=tuple,
            update=lambda s, e: (s + (e.tag,), []),
            fork=lambda s, p, q: (s, ()),
            join=lambda a, b: a + b,
        )
        events = [Event("a", 0, 1), Event("b", 0, 2)]
        report = check_consistency(prog, events)
        assert any(v.condition == "C3" for v in report.violations)

    def test_lossy_fork_flagged_by_c2(self):
        uni = ["v"]
        prog = single_state_program(
            name="bad-c2",
            tags=uni,
            depends=DependenceRelation.all_independent(uni),
            init=lambda: 0,
            update=lambda s, e: (s + 1, []),
            fork=lambda s, p, q: (0, 0),  # drops the count
            join=lambda a, b: a + b,
        )
        events = [Event("v", 0, t) for t in range(5)]
        report = check_consistency(prog, events)
        assert any(v.condition == "C2" for v in report.violations)

    def test_bad_join_flagged_by_c1(self):
        # max() as join is wrong for counters being updated in parallel.
        uni = ["v"]
        prog = single_state_program(
            name="bad-c1",
            tags=uni,
            depends=DependenceRelation.all_independent(uni),
            init=lambda: 0,
            update=lambda s, e: (s + 1, []),
            fork=lambda s, p, q: (s, 0),
            join=max,
        )
        events = [Event("v", 0, t) for t in range(6)]
        report = check_consistency(prog, events, rng=random.Random(3))
        assert any(v.condition in ("C1", "C2") for v in report.violations)


class TestSamplers:
    def test_reachable_states_are_reachable(self):
        prog = kc.make_program(2)
        events = _events(prog, seed=5)
        states = reachable_states(prog, events, random.Random(0), n=5)
        assert len(states) == 5
        assert {} in [dict(s) for s in states]  # init is included
        for s in states:
            assert all(isinstance(v, int) for v in s.values())

    def test_independent_pred_pairs_are_independent(self):
        prog = kc.make_program(3)
        pairs = independent_pred_pairs(prog, random.Random(1), n=10)
        assert pairs
        for p1, p2 in pairs:
            assert p1.independent_of(p2, prog.depends)

    def test_co_reachable_pairs_carry_predicates(self):
        prog = kc.make_program(2)
        events = _events(prog, seed=9)
        triples = co_reachable_pairs(prog, events, random.Random(2), n=6)
        assert triples
        for s1, s2, p1 in triples:
            assert isinstance(s1, dict) and isinstance(s2, dict)
            assert p1 is not None

    def test_co_reachable_pairs_empty_without_self_forkjoin(self):
        uni = ["a"]
        dep = DependenceRelation.all_independent(uni)
        from repro.core import DGSProgram, StateType, true_pred

        prog = DGSProgram(
            name="noforks",
            tags=uni,
            depends=dep,
            state_types=[StateType("State0", true_pred(uni), lambda s, e: (s, []))],
            init=lambda: 0,
        )
        assert co_reachable_pairs(prog, [], random.Random(0)) == []
