#!/usr/bin/env python3
"""Case study A.1 on real threads: Reloaded-style outlier detection
executed by the thread-based runtime (one OS thread per plan worker),
cross-checked against both the sequential spec and the simulated
runtime.

Run:  python examples/threaded_outliers.py
"""

from collections import Counter

from repro.apps import outlier as ol
from repro.runtime import FluminaRuntime, run_sequential_reference
from repro.runtime.threaded import ThreadedRuntime

N_STREAMS = 4


def main() -> None:
    program = ol.make_program()
    conns, queries, q_itag = ol.synthetic_connections(
        n_streams=N_STREAMS, conns_per_query=150, n_queries=3, rate_per_ms=20.0,
        outlier_fraction=0.02, seed=7,
    )
    streams = ol.make_streams(conns, queries, q_itag, heartbeat_interval=1.0)
    plan = ol.make_plan(program, conns, q_itag)
    print(plan.pretty())

    spec = run_sequential_reference(program, streams)
    want = Counter(map(repr, spec))

    threaded = ThreadedRuntime(program, plan).run(streams)
    threaded_ok = threaded.output_multiset() == want
    print(f"\nthreaded runtime ({plan.size()} worker threads):")
    print(f"  outputs match spec: {threaded_ok}")
    print(f"  events processed: {threaded.events_processed}, joins: {threaded.joins}")

    simulated = FluminaRuntime(program, plan).run(streams)
    simulated_ok = Counter(map(repr, simulated.output_values())) == want
    print("simulated runtime:")
    print(f"  outputs match spec: {simulated_ok}")

    outliers = sorted(v for v in spec if v[0] == "outlier")
    print(f"\n{len(outliers)} definitive outliers flagged; first five:")
    for v in outliers[:5]:
        print(f"  id={v[1]} z-score={v[2]}")
    if not (threaded_ok and simulated_ok):
        raise SystemExit(1)  # checked, not asserted — and honest to $?


if __name__ == "__main__":
    main()
