"""State checkpointing (paper Appendix D.2).

In Flumina a consistent snapshot of the distributed state is free:
whenever the root has joined its descendants' states, the joined value
*is* the global state as of the triggering event's timestamp.  The
runtime exposes this as a ``checkpoint_predicate`` hook — called at
every root join with the triggering event and the number of snapshots
taken so far — and this module provides the standard policies plus the
:class:`Checkpoint` record and sequential-replay helper used by the
fault-recovery subsystem (:mod:`repro.runtime.recovery`).

The policies are small callable *classes*, not closures: predicate
state (the n-th-join counter, the last snapshot timestamp) must be
picklable so a predicate can cross the process-runtime boundary and be
shipped inside worker reports.  Note that stateful policies keep their
state *per execution attempt* — a recovery attempt restarts the
cadence, which only changes how often snapshots are taken, never their
consistency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Tuple

from ..core.events import Event
from ..core.program import DGSProgram

CheckpointPredicate = Callable[[Event, int], bool]

OrderKey = Tuple


@dataclass(frozen=True)
class Checkpoint:
    """One consistent snapshot, taken at a root join.

    ``key`` is the triggering event's order key (the paper's total
    order ``O``), ``ts`` its timestamp, and ``state`` the joined root
    state *after* applying the triggering event — i.e. the sequential
    state of the whole computation over every event with order key
    ``<= key``.  All fields are picklable (application states already
    cross process boundaries as join/fork payloads).
    """

    key: OrderKey
    ts: float
    state: Any


class EveryRootJoin:
    """Snapshot at every root join (the paper's default instantiation)."""

    def __call__(self, event: Event, count: int) -> bool:
        return True


class EveryNthJoin:
    """Snapshot at every n-th root join."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.seen = 0

    def __call__(self, event: Event, count: int) -> bool:
        self.seen += 1
        return self.seen % self.n == 0


class ByTimestampInterval:
    """Snapshot when at least ``interval`` timestamp units have passed
    since the previous snapshot."""

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.last_ts = float("-inf")

    def __call__(self, event: Event, count: int) -> bool:
        if event.ts - self.last_ts >= self.interval:
            self.last_ts = event.ts
            return True
        return False


def every_root_join() -> CheckpointPredicate:
    return EveryRootJoin()


def every_nth_join(n: int) -> CheckpointPredicate:
    return EveryNthJoin(n)


def by_timestamp_interval(interval: float) -> CheckpointPredicate:
    return ByTimestampInterval(interval)


def recover(
    program: DGSProgram,
    checkpoint_state: Any,
    replay_events: Sequence[Event],
) -> Tuple[Any, List[Any]]:
    """Resume computation from a snapshot: apply the sequential update
    to the events after the checkpoint (sorted by the order relation),
    returning the final state and the replayed outputs.

    This is the sequential model of crash recovery; the distributed
    form — restart the plan's workers from the snapshot and replay the
    input suffix through the full protocol — lives in
    :func:`repro.runtime.recovery.run_with_recovery`.
    """
    st = program.state_type(program.initial_type)
    state = checkpoint_state
    outputs: List[Any] = []
    for event in sorted(replay_events, key=lambda e: e.order_key):
        state, outs = st.update(state, event)
        outputs.extend(outs)
    return state, outputs
