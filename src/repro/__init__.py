"""repro — a Python reproduction of "Stream Processing with
Dependency-Guided Synchronization" (Flumina, PPoPP 2022).

Public API lives in the subpackages:

* :mod:`repro.core`    — the DGS programming model (§2).
* :mod:`repro.plans`   — synchronization plans, validity, optimizer (§3.2-3.3, App. B).
* :mod:`repro.sim`     — deterministic discrete-event cluster simulator.
* :mod:`repro.runtime` — the Flumina-style runtime (§3.4) + sequential/threaded executors.
* :mod:`repro.serve`   — service mode: a long-running TCP ingest/egress tier.
* :mod:`repro.flinklike`  — a mini Flink-style sharded dataflow baseline (§4.2-4.3).
* :mod:`repro.timelylike` — a mini Timely-style epoch dataflow baseline (§4.2).
* :mod:`repro.apps`    — the paper's applications and case studies (§4.1, App. A).
* :mod:`repro.data`    — synthetic workload generators.
* :mod:`repro.bench`   — throughput/latency measurement harness (§4).

The supported entry points are re-exported here.  For a *closed* run
(finite streams in, outputs out): build a :class:`RunOptions`, call
:func:`run_on_backend` (or ``get_backend(name).run(..., options=opts)``),
and read the returned :class:`BackendRun` — including its ``metrics``
field (a :class:`RunMetrics`) when ``RunOptions(metrics=True)``.

For *service* mode (a long-running process ingesting external event
streams over TCP and streaming committed outputs to subscribers with
exactly-once delivery): build a :class:`ServeOptions`, call
:func:`start_service`, and talk to it with :func:`connect` — see
:mod:`repro.serve` and ``examples/service_mode.py``.  Everything else
in the subpackages is stable-but-internal: importable, but not covered
by the deprecation policy that guards the names in ``__all__`` below.
"""

from .runtime import (
    BACKENDS,
    BackendRun,
    RunMetrics,
    RunOptions,
    ServeOptions,
    available_backends,
    get_backend,
    run_on_backend,
)
from .serve import ServiceClient, ServiceHandle, connect, start_service

__version__ = "0.1.0"

__all__ = [
    "BACKENDS",
    "BackendRun",
    "RunMetrics",
    "RunOptions",
    "ServeOptions",
    "ServiceClient",
    "ServiceHandle",
    "available_backends",
    "connect",
    "get_backend",
    "run_on_backend",
    "start_service",
    "__version__",
]
