"""Case study A.2: DEBS 2014 Grand Challenge query 1 — smart-plug power
prediction at plug / household / house granularity.

Prediction method (the challenge's suggested one, which the paper also
uses): the predicted load for the next timeslice is the average of the
current timeslice's mean load and the historic mean load of the same
slice-of-day.  Output at every granularity on each end-of-timeslice
event.

DGS structure (paper Appendix A.2): each house is a tag, dependent on
itself (measurements of one house are processed in order by one
worker) and independent of other houses; the ``end-timeslice`` tag
depends on everything.  ``fork`` splits the state maps by house;
``join`` merges them.

Substitution (DESIGN.md): the 29 GB challenge trace is replaced by
:func:`synthetic_plug_load`, a diurnal-pattern generator with the same
key hierarchy (2125 plugs / 40 houses in the original; sizes are
parameters here).
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Tuple

from ..core.dependence import DependenceRelation
from ..core.events import Event, ImplTag
from ..core.predicates import TagPredicate
from ..core.program import DGSProgram, single_state_program
from ..plans.generation import root_and_leaves_plan
from ..plans.plan import SyncPlan
from ..runtime.runtime import InputStream

TICK_TAG = "tick"

# Key = (house, household, plug); state tracks, per key and per
# granularity, the current-slice accumulator and historic per-slice
# averages.
Key = Tuple[int, int, int]

# state: {granularity_key: {"cur": (sum, n), "hist": {slice: (sum, n)}}}
SmartState = Dict[Any, Dict[str, Any]]


def house_tag(house: int):
    return ("house", house)


def tag_universe(n_houses: int) -> List[Any]:
    return [house_tag(h) for h in range(n_houses)] + [TICK_TAG]


def depends_fn(t1, t2) -> bool:
    if TICK_TAG in (t1, t2):
        return True
    return t1 == t2  # same house: self-dependent (ordered averaging)


def _granularities(key: Key) -> List[Any]:
    house, household, plug = key
    return [
        ("house", house),
        ("household", house, household),
        ("plug", house, household, plug),
    ]


def _update(state: SmartState, event: Event) -> Tuple[SmartState, List[Any]]:
    if event.tag == TICK_TAG:
        slice_idx = event.payload
        outs: List[Any] = []
        new: SmartState = {}
        for gkey in sorted(state, key=repr):
            entry = state[gkey]
            cur_sum, cur_n = entry["cur"]
            hist: Dict[int, Tuple[float, int]] = entry["hist"]
            h_sum, h_n = hist.get(slice_idx, (0.0, 0))
            cur_avg = cur_sum / cur_n if cur_n else 0.0
            hist_avg = h_sum / h_n if h_n else cur_avg
            prediction = (cur_avg + hist_avg) / 2.0
            outs.append(("prediction", gkey, round(prediction, 6)))
            new_hist = dict(hist)
            if cur_n:
                new_hist[slice_idx] = (h_sum + cur_sum, h_n + cur_n)
            new[gkey] = {"cur": (0.0, 0), "hist": new_hist}
        return new, outs
    # Load measurement for one plug.
    _, house = event.tag
    household, plug, load = event.payload
    new = dict(state)
    for gkey in _granularities((house, household, plug)):
        entry = new.get(gkey, {"cur": (0.0, 0), "hist": {}})
        cur_sum, cur_n = entry["cur"]
        new[gkey] = {"cur": (cur_sum + load, cur_n + 1), "hist": entry["hist"]}
    return new, []


def _house_of(gkey: Any) -> int:
    return gkey[1]


def _fork(
    state: SmartState, pred1: TagPredicate, pred2: TagPredicate
) -> Tuple[SmartState, SmartState]:
    s1: SmartState = {}
    s2: SmartState = {}
    for gkey, entry in state.items():
        if house_tag(_house_of(gkey)) in pred1:
            s1[gkey] = entry
        else:
            s2[gkey] = entry
    return s1, s2


def _merge_entry(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    cur = (a["cur"][0] + b["cur"][0], a["cur"][1] + b["cur"][1])
    hist = dict(a["hist"])
    for sl, (s, n) in b["hist"].items():
        hs, hn = hist.get(sl, (0.0, 0))
        hist[sl] = (hs + s, hn + n)
    return {"cur": cur, "hist": hist}


def _join(s1: SmartState, s2: SmartState) -> SmartState:
    out = dict(s1)
    for gkey, entry in s2.items():
        out[gkey] = _merge_entry(out[gkey], entry) if gkey in out else entry
    return out


def state_eq(a: SmartState, b: SmartState) -> bool:
    def norm(s):
        return {
            k: (v["cur"], tuple(sorted(v["hist"].items())))
            for k, v in s.items()
            if v["cur"][1] or v["hist"]
        }

    return norm(a) == norm(b)


def make_program(n_houses: int = 4) -> DGSProgram:
    tags = tag_universe(n_houses)
    return single_state_program(
        name=f"smarthome[{n_houses}]",
        tags=tags,
        depends=DependenceRelation.from_function(tags, depends_fn),
        init=dict,
        update=_update,
        fork=_fork,
        join=_join,
    )


def synthetic_plug_load(
    *,
    n_houses: int,
    households_per_house: int = 2,
    plugs_per_household: int = 3,
    measurements_per_slice: int = 40,
    n_slices: int = 4,
    rate_per_ms: float = 10.0,
    seed: int = 0,
) -> Tuple[Dict[ImplTag, Tuple[Event, ...]], Tuple[Event, ...], ImplTag]:
    """Diurnal synthetic load: base load per plug plus a slice-of-day
    sinusoid plus noise (the structure the historic average exploits)."""
    rng = random.Random(seed)
    period = 1.0 / rate_per_ms
    slice_ms = measurements_per_slice * period
    streams: Dict[ImplTag, Tuple[Event, ...]] = {}
    for h in range(n_houses):
        itag = ImplTag(house_tag(h), f"h{h}")
        events = []
        for i in range(measurements_per_slice * n_slices):
            ts = 1.0 + i * period + (h + 1) * 1e-3
            slice_idx = int(i / measurements_per_slice) % 2  # day/night
            household = rng.randrange(households_per_house)
            plug = rng.randrange(plugs_per_household)
            base = 50.0 + 10.0 * plug
            diurnal = 30.0 * math.sin(math.pi * slice_idx)
            load = max(0.0, base + diurnal + rng.gauss(0, 5))
            events.append(
                Event(itag.tag, itag.stream, ts, (household, plug, load))
            )
        streams[itag] = tuple(events)
    tick_itag = ImplTag(TICK_TAG, "t")
    ticks = tuple(
        Event(TICK_TAG, "t", 1.0 + k * slice_ms, (k - 1) % 2)
        for k in range(1, n_slices + 1)
    )
    return streams, ticks, tick_itag


def make_streams(
    house_streams: Dict[ImplTag, Tuple[Event, ...]],
    ticks: Tuple[Event, ...],
    tick_itag: ImplTag,
    *,
    heartbeat_interval: float = 1.0,
    house_hosts: Dict[ImplTag, str] | None = None,
) -> List[InputStream]:
    out = [
        InputStream(
            itag,
            events,
            heartbeat_interval=heartbeat_interval,
            source_host=(house_hosts or {}).get(itag),
        )
        for itag, events in house_streams.items()
    ]
    out.append(InputStream(tick_itag, ticks, heartbeat_interval=heartbeat_interval))
    return out


def make_plan(
    program: DGSProgram,
    house_streams: Dict[ImplTag, Tuple[Event, ...]],
    tick_itag: ImplTag,
) -> SyncPlan:
    """End-of-timeslice at the root, one leaf per house (edge
    processing: each house's leaf sits next to its data source)."""
    return root_and_leaves_plan(
        program, [tick_itag], [[itag] for itag in house_streams]
    )
