"""Deterministic chaos-testing harness: seeded fault-injection sweeps
differentially verified against the sequential specification.

The DiffStream methodology (the authors' companion work, already used
by :mod:`repro.testing`) says the strongest practical check for a
parallel streaming system is *differential multiset equality*.  This
module extends that check to executions with injected faults: each
:class:`ChaosCase` is derived **entirely from one integer seed** — the
application, the workload, the synchronization plan, and the fault
schedule (worker crashes keyed by event count or timestamp, heartbeat
drops) — so every failure reproduces exactly from its case id.

A case passes when the faulty execution, after checkpoint-based crash
recovery (:mod:`repro.runtime.recovery`), produces an output multiset
equal to ``run_sequential_reference`` on the same input.  Cases are
generated so that crash triggers sit *after* the first synchronizing
event: by then the root has snapshotted at least once (with
``every_root_join``), so every generated crash is recoverable — a
crash that would fire earlier is a different, negative scenario and is
tested separately (``NoCheckpointError``).

Beyond fault schedules, cases come in three *modes* (:data:`MODES`):
``faults`` (crash/drop injection, the PR-2 sweep), ``reconfig``
(seeded elastic reconfiguration schedules: the plan widens/narrows
mid-stream at consistent snapshots, see
:mod:`repro.runtime.reconfigure`), and ``reconfig-crash`` (both armed
— crashes must recover into the then-current plan shape).

Run it three ways:

* ``pytest tests/test_chaos.py`` — the tier-1 sweep (>= 50 fault cases
  plus the reconfiguration matrix);
* ``python -m repro.chaos --cases 50 --seed 0`` — standalone CLI
  (``--modes reconfig,reconfig-crash`` for the elastic families);
* ``python -m repro.chaos --smoke`` — the CI-sized sweep.

Orthogonal to the mode, each case carries a *workload* shape
(:data:`WORKLOADS`): ``uniform`` (the PR-2 traffic), or one of the
adversarial families from :mod:`repro.data.adversarial` — ``zipf``
(hot-stream skew), ``flash`` (a rate spike hitting every source),
``straggler`` (one source pauses and trails its peers), ``late``
(bounded out-of-order delivery).  The workload *is* part of the case
derivation (non-uniform workloads get a case-id suffix); every shape
still preserves the collision-free total-order invariant, so the
sequential reference stays the ground truth.  The extra ``sessionize``
app (``--apps sessionize``) runs per-key sessionization with
timeout-triggered flushes through the same machinery.

The *data plane* is a sweep-level axis, not part of the seed:
``--transport tcp`` runs every process-backend case over TCP stream
sockets, and ``--transport tcp --nodes 2`` deploys each case across
two local node agents (:mod:`repro.runtime.cluster`) — the
``distributed-smoke`` CI lane's configuration.  Case derivations (and
therefore case ids) are transport-independent: the same seed must
produce the same scenario on every data plane.

Reproduce one failure with ``python -m repro.chaos --only <case_id>``
(the case id encodes app, backend, seed, and — when not ``faults`` —
the mode; pass the same ``--seed``/``--cases``/``--modes`` — and the
same ``--transport``/``--nodes`` — as the sweep that produced it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from .apps import keycounter as kc
from .apps import sessionize as sz
from .apps import value_barrier as vb
from .core.dependence import DependenceRelation
from .core.events import Event, ImplTag
from .core.program import DGSProgram, single_state_program
from .data.adversarial import (
    assert_collision_free,
    flash_crowd_stream,
    late_stream,
    straggler_stream,
    zipf_streams,
)
from .data.generators import uniform_stream
from .plans.generation import root_and_leaves_plan
from .plans.morph import max_width, plan_width
from .plans.plan import SyncPlan
from .runtime import (
    CrashFault,
    DropHeartbeats,
    FaultPlan,
    InputStream,
    ReconfigPoint,
    ReconfigSchedule,
    RunOptions,
    every_root_join,
    run_on_backend,
    run_sequential_reference,
)
from .testing import Mismatch, compare_outputs

APPS = ("value-barrier", "keycounter", "value-barrier-echo")

#: Every app the harness can derive, including the sessionize family
#: (kept out of :data:`APPS` so the default sweep's case ids stay
#: byte-stable against PR 2).
CHAOS_APPS = APPS + ("sessionize",)

#: Scenario families: pure fault injection (the PR-2 sweep), pure
#: elastic reconfiguration, and crash-during-reconfiguration (both
#: schedules armed; recovery must restore into the then-current plan).
MODES = ("faults", "reconfig", "reconfig-crash")

#: Traffic shapes a case can carry: the PR-2 uniform workload plus the
#: four adversarial families of :mod:`repro.data.adversarial`.
WORKLOADS = ("uniform", "zipf", "flash", "straggler", "late")


def make_echo_program() -> DGSProgram:
    """Value-barrier variant whose *values also emit* — every leaf
    produces outputs, so the commit-prefix/discard-suffix logic of the
    recovery driver is exercised on leaf-emitted outputs, not only on
    the root's window aggregates."""

    def update(state, event):
        if event.tag == vb.VALUE_TAG:
            return state + int(event.payload), [("v", event.ts, int(event.payload))]
        return 0, [("window_sum", event.ts, state)]

    def fork(state, pred1, pred2):
        if vb.BARRIER_TAG in pred2 and vb.BARRIER_TAG not in pred1:
            return 0, state
        return state, 0

    return single_state_program(
        name="value-barrier-echo",
        tags=vb.TAGS,
        depends=DependenceRelation.from_function(vb.TAGS, vb.depends_fn),
        init=lambda: 0,
        update=update,
        fork=fork,
        join=lambda a, b: a + b,
    )


@dataclass(frozen=True)
class ChaosCase:
    """One seeded scenario; everything else derives from ``seed``.

    ``mode`` selects the scenario family (see :data:`MODES`) and
    ``workload`` the traffic shape (see :data:`WORKLOADS`); the
    defaults keep PR-2 case ids — and their derivations — unchanged."""

    app: str
    backend: str
    seed: int
    mode: str = "faults"
    workload: str = "uniform"

    @property
    def case_id(self) -> str:
        base = f"{self.app}-{self.backend}-s{self.seed}"
        if self.mode != "faults":
            base = f"{base}-{self.mode}"
        if self.workload != "uniform":
            base = f"{base}-{self.workload}"
        return base


@dataclass
class ChaosOutcome:
    case: ChaosCase
    ok: bool
    mismatch: Optional[Mismatch]
    attempts: int
    crashes: int
    drops_scheduled: int
    checkpoints_taken: int
    replayed_events: int
    #: Completed plan migrations and the leaf widths the execution ran
    #: through (reconfig modes only; () / 0 for pure-fault cases).
    reconfigs: int = 0
    plan_widths: tuple = ()
    #: The run's merged RunMetrics when the sweep ran with the metrics
    #: plane on (``--metrics-out``); None otherwise.
    metrics: Any = None

    @property
    def recovered(self) -> bool:
        return self.crashes > 0

    @property
    def reconfigured(self) -> bool:
        return self.reconfigs > 0


# ---------------------------------------------------------------------------
# Seeded workload + plan + fault-schedule derivation
# ---------------------------------------------------------------------------

def _monotone_ts(rng: random.Random, n: int, start: float, mean_gap: float) -> List[float]:
    ts: List[float] = []
    t = start
    for _ in range(n):
        t += rng.uniform(0.4, 1.6) * mean_gap
        ts.append(round(t, 3))
    return ts


def build_workload(case: ChaosCase):
    """(program, streams, plan, sync_ts) for a case — the plan has the
    globally-synchronizing tag at the root (the Appendix D.2 shape
    checkpoint recovery requires) and one leaf per parallel stream.

    ``case.workload`` selects the leaf traffic shape; the uniform path
    is byte-identical to the PR-2 derivation."""
    rng = random.Random(case.seed * 2654435761 % (2**31))
    if case.app == "sessionize":
        return _sessionize_workload(case, rng)
    n_streams = rng.randint(2, 4)
    events_per_stream = rng.randint(8, 30)
    n_sync = rng.randint(3, 5)
    shape = rng.choice(("balanced", "chain"))

    if case.app in ("value-barrier", "value-barrier-echo"):
        prog = vb.make_program() if case.app == "value-barrier" else make_echo_program()
        leaf_itags = [ImplTag(vb.VALUE_TAG, f"v{s}") for s in range(n_streams)]
        sync_itag = ImplTag(vb.BARRIER_TAG, "b")
        payload = lambda: rng.randint(1, 9)  # noqa: E731
    elif case.app == "keycounter":
        # One key: the read-reset depends on every tag, so the rooted
        # plan is recovery-sound.
        prog = kc.make_program(1)
        leaf_itags = [ImplTag(kc.inc_tag(0), f"i{s}") for s in range(n_streams)]
        sync_itag = ImplTag(kc.reset_tag(0), "r")
        payload = lambda: rng.randint(1, 3)  # noqa: E731
    else:
        raise ValueError(f"unknown chaos app {case.app!r}")

    if case.workload == "uniform":
        span = events_per_stream * 1.0
        streams = []
        for itag in leaf_itags:
            ts = _monotone_ts(rng, events_per_stream, rng.uniform(0.0, 0.5), 1.0)
            events = tuple(Event(itag.tag, itag.stream, t, payload()) for t in ts)
            streams.append(
                InputStream(itag, events, heartbeat_interval=rng.choice((1.0, 2.0, 5.0)))
            )
        sync_gap = span / (n_sync + 1)
        sync_ts = _monotone_ts(rng, n_sync, sync_gap * 0.5, sync_gap)
        sync_events = tuple(Event(sync_itag.tag, sync_itag.stream, t) for t in sync_ts)
        streams.append(InputStream(sync_itag, sync_events, heartbeat_interval=2.0))
    else:
        streams, sync_ts = _adversarial_streams(
            case.workload,
            rng,
            leaf_itags,
            sync_itag,
            events_per_stream=events_per_stream,
            n_sync=n_sync,
            payload=payload,
        )

    plan = root_and_leaves_plan(
        prog, [sync_itag], [[t] for t in leaf_itags], shape=shape
    )
    return prog, streams, plan, sync_ts


def _sync_slots(
    n_sync: int, lo: float, hi: float, period: float, phase: float
) -> List[float]:
    """``n_sync`` synchronizing timestamps spread evenly over ``(lo,
    hi)``, snapped to the lattice ``{k * period + phase}`` so they can
    never collide with leaf events whose fractional phases differ."""
    gap = (hi - lo) / (n_sync + 1)
    out: List[float] = []
    for j in range(1, n_sync + 1):
        k = max(1, round((lo + j * gap - phase) / period))
        t = k * period + phase
        if out and t <= out[-1]:
            t = out[-1] + period
        out.append(t)
    return out


def _adversarial_streams(
    workload: str,
    rng: random.Random,
    leaf_itags: Sequence[ImplTag],
    sync_itag: ImplTag,
    *,
    events_per_stream: int,
    n_sync: int,
    payload,
):
    """Leaf + synchronizing streams for one adversarial traffic shape,
    all parameters drawn from the case's seed stream.

    Each family keeps its leaves on a lattice with nonzero fractional
    phases (or, for zipf, on whole periods) and puts the synchronizing
    events on a disjoint phase, so the collision-free total order holds
    by construction — asserted before returning."""
    period = 1.0
    n_streams = len(leaf_itags)
    payload_fn = lambda i: payload()  # noqa: E731
    if workload == "zipf":
        # One arrival process dealt across streams: head streams carry
        # most of the traffic.  Leaves occupy whole-period slots, so
        # the sync stream takes the half-period phase.
        total = events_per_stream * n_streams
        leafs = zipf_streams(
            leaf_itags,
            n_events=total,
            alpha=rng.choice((0.8, 1.1, 1.4)),
            rate_per_ms=1.0 / period,
            seed=rng.randrange(10**6),
            payload_fn=payload_fn,
        )
        sync_phase = period / 2
    elif workload == "flash":
        # The spike hits every source over the same wall-clock window.
        spike_factor = rng.choice((3, 4, 6))
        quantum = period / spike_factor
        span = events_per_stream * period
        spike_start = 1.0 + rng.uniform(0.2, 0.5) * span
        spike_width = rng.uniform(0.1, 0.3) * span
        leafs = {
            itag: flash_crowd_stream(
                itag,
                n_events=events_per_stream,
                base_rate_per_ms=1.0 / period,
                spike_factor=spike_factor,
                spike_start_ms=spike_start,
                spike_width_ms=spike_width,
                offset=(s + 1) * quantum / (n_streams + 2),
                payload_fn=payload_fn,
            )
            for s, itag in enumerate(leaf_itags)
        }
        sync_phase = 0.0
    elif workload == "straggler":
        # One seeded victim pauses mid-stream and trails its peers.
        span = events_per_stream * period
        victim = rng.randrange(n_streams)
        pause_after = rng.randint(1, events_per_stream - 1)
        lag_ms = rng.uniform(0.2, 0.9) * span
        leafs = {}
        for s, itag in enumerate(leaf_itags):
            off = (s + 1) * period / (n_streams + 2)
            if s == victim:
                leafs[itag] = straggler_stream(
                    itag,
                    n_events=events_per_stream,
                    rate_per_ms=1.0 / period,
                    pause_after=pause_after,
                    lag_ms=lag_ms,
                    offset=off,
                    payload_fn=payload_fn,
                )
            else:
                leafs[itag] = uniform_stream(
                    itag,
                    rate_per_ms=1.0 / period,
                    n_events=events_per_stream,
                    offset=off,
                    payload_fn=payload_fn,
                )
        sync_phase = 0.0
    elif workload == "late":
        grid = 8
        quantum = period / grid
        leafs = {
            itag: late_stream(
                itag,
                n_events=events_per_stream,
                rate_per_ms=1.0 / period,
                max_disorder_ms=rng.uniform(1.0, 3.0) * period,
                seed=rng.randrange(10**6),
                grid=grid,
                offset=(s + 1) * quantum / (n_streams + 2),
                payload_fn=payload_fn,
            )
            for s, itag in enumerate(leaf_itags)
        }
        sync_phase = 0.0
    else:
        raise ValueError(
            f"unknown workload {workload!r} (expected one of {WORKLOADS})"
        )
    assert_collision_free(leafs)
    lo = min(e.ts for evs in leafs.values() for e in evs)
    hi = max(e.ts for evs in leafs.values() for e in evs)
    sync_ts = _sync_slots(n_sync, lo, hi, period, sync_phase)
    streams = [
        InputStream(itag, evs, heartbeat_interval=rng.choice((1.0, 2.0, 5.0)))
        for itag, evs in leafs.items()
    ]
    sync_events = tuple(
        Event(sync_itag.tag, sync_itag.stream, t) for t in sync_ts
    )
    streams.append(InputStream(sync_itag, sync_events, heartbeat_interval=2.0))
    return streams, sync_ts


def _sessionize_workload(case: ChaosCase, rng: random.Random):
    """The sessionize app's chaos derivation: a seeded per-key
    activity/flush workload, a rooted plan re-sharded to a seeded
    width.  The flush ticks are the synchronizing events; ``zipf``
    skews the per-key traffic, other adversarial shapes would change
    the app's own semantics (gaps *are* the sessions) and are
    rejected."""
    if case.workload not in ("uniform", "zipf"):
        raise ValueError(
            f"workload {case.workload!r} is not defined for sessionize "
            "(activity gaps are the app's semantics; use uniform or zipf)"
        )
    n_keys = rng.randint(2, 4)
    wl = sz.make_workload(
        n_keys=n_keys,
        events_per_key=rng.randint(8, 24),
        timeout_units=rng.randint(2, 5),
        n_flushes=rng.randint(3, 5),
        seed=rng.randrange(10**6),
        skew_alpha=1.2 if case.workload == "zipf" else None,
    )
    prog = sz.make_program(n_keys, timeout_ms=wl.timeout_ms)
    plan = sz.make_plan(
        prog,
        wl,
        n_shards=rng.randint(2, n_keys),
        shape=rng.choice(("balanced", "chain")),
    )
    streams = sz.make_streams(wl)
    sync_ts = [e.ts for e in wl.flush_stream]
    return prog, streams, plan, sync_ts


def build_fault_schedule(
    case: ChaosCase, streams: Sequence[InputStream], plan: SyncPlan, sync_ts: List[float]
) -> FaultPlan:
    """Derive the case's fault schedule from its seed.

    Crash triggers are placed strictly after the first synchronizing
    event, which guarantees (see module docstring) a checkpoint exists
    whenever the crash fires; drop windows stay below the last event
    timestamp so the closing heartbeat always gets through.
    """
    rng = random.Random(case.seed * 1103515245 % (2**31) + 12345)
    first_sync = sync_ts[0]
    last_ts = max(e.ts for s in streams for e in s.events)
    owners = {s.itag: plan.owner_of(s.itag).id for s in streams}
    leaf_streams = [s for s in streams[:-1]]
    faults: List[Any] = []

    n_crashes = rng.choice((1, 1, 1, 2))
    for _ in range(n_crashes):
        kind = rng.random()
        if kind < 0.4:
            # Timestamp-keyed crash at a random leaf.
            s = rng.choice(leaf_streams)
            t = rng.uniform(first_sync + 0.05, last_ts)
            faults.append(CrashFault(owners[s.itag], at_ts=round(t, 3)))
        elif kind < 0.7:
            # Count-keyed crash at a leaf: fire on one of its events
            # that lies after the first synchronizing event.
            s = rng.choice(leaf_streams)
            late = [i for i, e in enumerate(s.events) if e.ts > first_sync]
            if not late:
                continue
            nth = rng.choice(late) + 1
            faults.append(CrashFault(owners[s.itag], after_events=nth))
        else:
            # Root crash on a synchronizing event after the first.
            nth = rng.randint(2, len(sync_ts))
            faults.append(CrashFault(plan.root.id, after_events=nth))

    n_drops = rng.choice((0, 1, 1, 2))
    workers = [n.id for n in plan.workers()]
    for _ in range(n_drops):
        faults.append(
            DropHeartbeats(
                rng.choice(workers),
                before_ts=round(rng.uniform(0.3, 0.95) * last_ts, 3),
                count=rng.choice((None, 1, 3, 8)),
            )
        )
    return FaultPlan(*faults)


def build_reconfig_schedule(
    case: ChaosCase, streams: Sequence[InputStream], plan: SyncPlan,
    sync_ts: List[float], prog: DGSProgram,
) -> ReconfigSchedule:
    """Derive the case's reconfiguration schedule from its seed.

    One or two planned points; triggers sit on root joins between the
    first and last synchronizing events (timestamp- or join-count
    keyed, mirroring the crash triggers), and each target repartitions
    to a seeded leaf width in ``[1, max useful width]``.  A point that
    narrows to width 1 leaves any later point inert (a single worker
    never joins) — the sweep keeps such schedules: the execution must
    still be spec-identical."""
    rng = random.Random(case.seed * 69069 % (2**31) + 7)
    n_points = rng.choice((1, 1, 2))
    ceiling = max_width(prog, plan)
    points = []
    # Trigger anchors are strictly increasing so two points cannot aim
    # at the same root join.
    joins_used = 0
    for p in range(n_points):
        widths = [w for w in range(1, ceiling + 1) if w != plan_width(plan)] or [1]
        to_leaves = rng.choice(widths)
        shape = rng.choice(("balanced", "chain"))
        if rng.random() < 0.5 and len(sync_ts) >= 2:
            lo = sync_ts[0] if p == 0 else sync_ts[len(sync_ts) // 2]
            t = rng.uniform(lo + 0.01, sync_ts[-1])
            points.append(
                ReconfigPoint(at_ts=round(t, 3), to_leaves=to_leaves, shape=shape)
            )
        else:
            joins_used = rng.randint(joins_used + 1, joins_used + 2)
            points.append(
                ReconfigPoint(
                    after_joins=joins_used, to_leaves=to_leaves, shape=shape
                )
            )
    return ReconfigSchedule(*points)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def run_chaos_case(
    case: ChaosCase,
    *,
    timeout_s: float = 60.0,
    transport: Optional[str] = None,
    nodes: Optional[int] = None,
    metrics: bool = False,
) -> ChaosOutcome:
    """Run one case; ``transport``/``nodes`` select the process
    backend's data plane (ignored by the threaded backend) without
    entering the case derivation — see the module docstring.
    ``metrics=True`` arms the per-worker metrics plane: the outcome
    then carries the run's merged per-attempt :class:`RunMetrics`."""
    prog, streams, plan, sync_ts = build_workload(case)
    fault_plan = None
    reconfig_schedule = None
    if case.mode in ("faults", "reconfig-crash"):
        fault_plan = build_fault_schedule(case, streams, plan, sync_ts)
    if case.mode in ("reconfig", "reconfig-crash"):
        reconfig_schedule = build_reconfig_schedule(
            case, streams, plan, sync_ts, prog
        )
    n_drops = sum(
        1
        for f in (fault_plan.faults if fault_plan is not None else ())
        if isinstance(f, DropHeartbeats)
    )
    run = run_on_backend(
        case.backend,
        prog,
        plan,
        streams,
        options=RunOptions(
            fault_plan=fault_plan,
            reconfig_schedule=reconfig_schedule,
            checkpoint_predicate=every_root_join(),
            timeout_s=timeout_s,
            transport=transport,
            nodes=nodes,
            metrics=metrics,
        ),
    )
    reference = run_sequential_reference(prog, streams)
    mismatch = compare_outputs(reference, run.outputs, case.case_id)
    rec = run.reconfig if run.reconfig is not None else run.recovery
    widths = ()
    if run.reconfig is not None:
        widths = tuple(plan_width(p) for p in run.reconfig.plan_history)
    return ChaosOutcome(
        case=case,
        ok=mismatch is None,
        mismatch=mismatch,
        attempts=rec.attempts,
        crashes=len(rec.crashes),
        drops_scheduled=n_drops,
        checkpoints_taken=rec.checkpoints_taken,
        replayed_events=rec.replayed_events,
        reconfigs=(
            len(run.reconfig.reconfigurations) if run.reconfig is not None else 0
        ),
        plan_widths=widths,
        metrics=run.metrics,
    )


def generate_cases(
    *,
    seed: int = 0,
    n_cases: int = 50,
    backends: Sequence[str] = ("threaded", "process"),
    apps: Sequence[str] = APPS,
    modes: Sequence[str] = ("faults",),
    workloads: Sequence[str] = ("uniform",),
) -> List[ChaosCase]:
    """``n_cases`` seeded scenarios, spread round-robin over backends,
    apps, modes, and workloads; the per-case seed stream is itself
    derived from ``seed`` so the whole sweep reproduces from one
    integer.  The default single-mode uniform sweep generates exactly
    the PR-2 case ids."""
    rng = random.Random(seed)
    cases = []
    stride = len(apps) * len(backends)
    for i in range(n_cases):
        cases.append(
            ChaosCase(
                app=apps[i % len(apps)],
                backend=backends[(i // len(apps)) % len(backends)],
                seed=rng.randrange(10**6),
                mode=modes[(i // stride) % len(modes)],
                workload=workloads[(i // (stride * len(modes))) % len(workloads)],
            )
        )
    return cases


@dataclass
class ChaosSummary:
    outcomes: List[ChaosOutcome]
    #: The sweep-level data plane ("pipe"/"queue"/"tcp"; None = the
    #: backend default) and node-agent count (None = per-worker
    #: processes) the process-backend cases ran on.
    transport: Optional[str] = None
    nodes: Optional[int] = None

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> List[ChaosOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def describe(self) -> str:
        n = len(self.outcomes)
        plane = ""
        if self.transport is not None or self.nodes is not None:
            plane = (
                f", data plane: transport={self.transport or 'default'}"
                + (f" x {self.nodes} node agent(s)" if self.nodes else "")
            )
        recovered = sum(1 for o in self.outcomes if o.recovered)
        crashes = sum(o.crashes for o in self.outcomes)
        replayed = sum(o.replayed_events for o in self.outcomes)
        reconfigured = sum(1 for o in self.outcomes if o.reconfigured)
        migrations = sum(o.reconfigs for o in self.outcomes)
        by_backend: Dict[str, int] = {}
        for o in self.outcomes:
            by_backend[o.case.backend] = by_backend.get(o.case.backend, 0) + 1
        lines = [
            f"chaos sweep: {n} cases "
            f"({', '.join(f'{b}: {c}' for b, c in sorted(by_backend.items()))})"
            f"{plane}",
            f"  crashed+recovered: {recovered} cases, {crashes} injected crashes, "
            f"{replayed} events replayed",
            f"  reconfigured: {reconfigured} cases, {migrations} plan migrations",
            f"  checkpoints taken: {sum(o.checkpoints_taken for o in self.outcomes)}",
            f"  result: {'OK' if self.ok else f'{len(self.failures)} FAILURES'}",
        ]
        for o in self.failures:
            lines.append(f"  FAIL {o.case.case_id}: {o.mismatch}")
        return "\n".join(lines)

    def metrics_record(self) -> Dict[str, Any]:
        """Machine-readable sweep metrics, one snapshot per case plus
        sweep-level totals — what the nightly CI job uploads as an
        artifact so fault/recovery behaviour is trendable over time.

        Each case's entry pairs the recovery/reconfig ledger with the
        run's merged per-attempt :class:`RunMetrics` (``"metrics"``,
        via ``to_json()``) when the sweep ran with the metrics plane
        armed — ``--metrics-out`` arms it — so latency/backlog under
        injected faults and migrations is trendable, not just the
        attempt counts."""
        return {
            "schema": 1,
            "kind": "chaos_metrics",
            "transport": self.transport,
            "nodes": self.nodes,
            "totals": {
                "cases": len(self.outcomes),
                "failures": len(self.failures),
                "crashes": sum(o.crashes for o in self.outcomes),
                "replayed_events": sum(
                    o.replayed_events for o in self.outcomes
                ),
                "checkpoints_taken": sum(
                    o.checkpoints_taken for o in self.outcomes
                ),
                "reconfigs": sum(o.reconfigs for o in self.outcomes),
            },
            "cases": [
                {
                    "case_id": o.case.case_id,
                    "backend": o.case.backend,
                    "app": o.case.app,
                    "mode": o.case.mode,
                    "workload": o.case.workload,
                    "ok": o.ok,
                    "attempts": o.attempts,
                    "crashes": o.crashes,
                    "drops_scheduled": o.drops_scheduled,
                    "checkpoints_taken": o.checkpoints_taken,
                    "replayed_events": o.replayed_events,
                    "reconfigs": o.reconfigs,
                    "plan_widths": list(o.plan_widths),
                    "metrics": (
                        o.metrics.to_json() if o.metrics is not None else None
                    ),
                }
                for o in self.outcomes
            ],
        }

    def write_metrics(self, directory: str) -> str:
        """Write :meth:`metrics_record` as JSON under ``directory``;
        returns the written path."""
        import json
        import os

        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "chaos_metrics.json")
        with open(path, "w") as f:
            json.dump(self.metrics_record(), f, indent=2, sort_keys=True)
            f.write("\n")
        return path


def run_chaos_suite(
    *,
    seed: int = 0,
    n_cases: int = 50,
    backends: Sequence[str] = ("threaded", "process"),
    apps: Sequence[str] = APPS,
    modes: Sequence[str] = ("faults",),
    workloads: Sequence[str] = ("uniform",),
    only: Optional[str] = None,
    timeout_s: float = 60.0,
    transport: Optional[str] = None,
    nodes: Optional[int] = None,
    metrics: bool = False,
) -> ChaosSummary:
    cases = generate_cases(
        seed=seed,
        n_cases=n_cases,
        backends=backends,
        apps=apps,
        modes=modes,
        workloads=workloads,
    )
    if only is not None:
        cases = [c for c in cases if c.case_id == only]
        if not cases:
            raise SystemExit(f"no case {only!r} in this sweep (seed={seed})")
    return ChaosSummary(
        [
            run_chaos_case(
                c,
                timeout_s=timeout_s,
                transport=transport,
                nodes=nodes,
                metrics=metrics,
            )
            for c in cases
        ],
        transport=transport,
        nodes=nodes,
    )


def _main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="seeded fault-injection sweep, verified against the sequential spec",
    )
    ap.add_argument("--seed", type=int, default=0, help="sweep seed (default 0)")
    ap.add_argument(
        "--cases", type=int, default=None,
        help="number of cases (default 50, or 12 under --smoke)",
    )
    ap.add_argument(
        "--backends",
        default="threaded,process",
        help="comma-separated runtime backends (default threaded,process)",
    )
    ap.add_argument(
        "--apps",
        default=",".join(APPS),
        help=(
            "comma-separated applications from "
            f"{','.join(CHAOS_APPS)} (default {','.join(APPS)})"
        ),
    )
    ap.add_argument(
        "--modes",
        default="faults",
        help=(
            "comma-separated scenario families from "
            f"{','.join(MODES)} (default faults)"
        ),
    )
    ap.add_argument(
        "--workloads",
        "--workload",
        default="uniform",
        help=(
            "comma-separated traffic shapes from "
            f"{','.join(WORKLOADS)} (default uniform)"
        ),
    )
    ap.add_argument(
        "--only", default=None, metavar="CASE_ID",
        help="re-run a single case id from the sweep (reproduces a failure)",
    )
    ap.add_argument(
        "--transport", default=None, choices=("pipe", "queue", "tcp", "shm"),
        help="process-backend data plane (default: the backend default, pipe)",
    )
    ap.add_argument(
        "--nodes", type=int, default=None, metavar="N",
        help="deploy process-backend cases across N local node agents "
        "over TCP (implies --transport tcp semantics; see "
        "repro.runtime.cluster)",
    )
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI-sized sweep (12 cases) unless --cases is given explicitly",
    )
    ap.add_argument(
        "--metrics-out", default=None, metavar="DIR",
        help="arm the per-worker metrics plane and write a "
        "machine-readable chaos_metrics.json snapshot of the sweep "
        "(per-case recovery/reconfig counters plus each case's merged "
        "per-attempt RunMetrics) under DIR — uploaded as an artifact "
        "by the nightly CI job",
    )
    args = ap.parse_args(argv)
    n_cases = args.cases
    if n_cases is None:
        n_cases = 12 if args.smoke else 50
    if args.nodes is not None and args.transport not in (None, "tcp"):
        ap.error("--nodes deploys over TCP; drop --transport or use tcp")
    summary = run_chaos_suite(
        seed=args.seed,
        n_cases=n_cases,
        backends=tuple(args.backends.split(",")),
        apps=tuple(args.apps.split(",")),
        modes=tuple(args.modes.split(",")),
        workloads=tuple(args.workloads.split(",")),
        only=args.only,
        transport=args.transport,
        nodes=args.nodes,
        metrics=args.metrics_out is not None,
    )
    print(summary.describe())
    if args.metrics_out is not None:
        print(f"metrics snapshot: {summary.write_metrics(args.metrics_out)}")
    return 0 if summary.ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(_main())
