"""Experiment drivers for every figure and table in the paper's
evaluation (§4, Appendix D).  Each function returns plain data that the
benchmark scripts render with :mod:`repro.bench.tables`.

Workload sizing: the paper uses 10K values per barrier; simulating that
many events per window is unnecessary for shape reproduction, so the
drivers default to a few hundred values per window while *keeping the
value:barrier ratio fixed across rates* (the property the paper's
generator maintains).  All sizes are parameters, so the full-size
experiment is one argument away.

The throughput metric is the paper's: offered rate is swept
geometrically and the maximum *achieved* rate is reported (at
super-saturation the makespan measurement converges to system
capacity).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps import fraud as fraud_app
from ..apps import pageview as pv_app
from ..apps import value_barrier as vb_app
from ..flinklike import (
    build_event_window_job,
    build_fraud_job,
    build_fraud_splan_job,
    build_pageview_job,
    build_pageview_splan_job,
)
from ..runtime import FluminaRuntime
from ..sim.network import Topology
from ..sim.params import DEFAULT_PARAMS, SimParams
from ..timelylike import (
    build_event_window_job as tl_event_window,
    build_fraud_job as tl_fraud,
    build_pageview_job as tl_pageview,
)
from .harness import (
    BenchConfig,
    BenchResult,
    RatePoint,
    ScalingPoint,
    compare_backends,
    latency_profile,
    max_throughput,
    scaling_curve,
)

RunAtRate = Callable[[float], object]

#: Default parallelism axis of Figures 4 and 8.
PARALLELISM_LEVELS = (1, 4, 8, 12, 16, 20)

#: Reduced workload knobs (paper: 10_000 values per barrier; we keep a
#: large value:barrier ratio — the property that makes synchronization
#: amortizable — while holding simulation sizes tractable).
VALUES_PER_BARRIER = 500
N_BARRIERS = 3
HEARTBEATS_PER_BARRIER = 10
MIN_HEARTBEAT_MS = 0.05


def _hb(rate: float, per_barrier: int = VALUES_PER_BARRIER) -> float:
    """Heartbeat interval: ~10 heartbeats per synchronization window
    (inside the paper's stable 10-1000x range, Appendix D.1), floored
    so saturated sweeps don't drown in heartbeat traffic."""
    return max((per_barrier / rate) / HEARTBEATS_PER_BARRIER, MIN_HEARTBEAT_MS)


# ---------------------------------------------------------------------------
# Runner factories: (system, app, parallelism) -> run_at_rate
# ---------------------------------------------------------------------------

def flumina_event_window(p: int, *, params: SimParams = DEFAULT_PARAMS,
                         vpb: int = VALUES_PER_BARRIER, nb: int = N_BARRIERS) -> RunAtRate:
    prog = vb_app.make_program()

    def run(rate: float):
        wl = vb_app.make_workload(
            n_value_streams=p, values_per_barrier=vpb, n_barriers=nb,
            value_rate_per_ms=rate,
        )
        plan = vb_app.make_plan(prog, wl)
        topo = Topology.cluster(max(1, p), params=params)
        rt = FluminaRuntime(prog, plan, topology=topo)
        return rt.run(vb_app.make_streams(wl, heartbeat_interval=_hb(rate, vpb)))

    return run


def flumina_fraud(p: int, *, params: SimParams = DEFAULT_PARAMS,
                  vpb: int = VALUES_PER_BARRIER, nb: int = N_BARRIERS) -> RunAtRate:
    prog = fraud_app.make_program()

    def run(rate: float):
        wl = fraud_app.make_workload(
            n_txn_streams=p, txns_per_rule=vpb, n_rules=nb, txn_rate_per_ms=rate
        )
        plan = fraud_app.make_plan(prog, wl)
        topo = Topology.cluster(max(1, p), params=params)
        rt = FluminaRuntime(prog, plan, topology=topo)
        return rt.run(fraud_app.make_streams(wl, heartbeat_interval=_hb(rate, vpb)))

    return run


def flumina_pageview(p: int, *, params: SimParams = DEFAULT_PARAMS,
                     vpu: int = VALUES_PER_BARRIER, nu: int = N_BARRIERS,
                     n_pages: int = 2) -> RunAtRate:
    prog = pv_app.make_program(n_pages)

    def run(rate: float):
        wl = pv_app.make_workload(
            n_pages=n_pages, n_view_streams=p, views_per_update=vpu,
            n_updates_per_page=nu, view_rate_per_ms=rate,
        )
        plan = pv_app.make_plan(prog, wl)
        topo = Topology.cluster(max(1, p), params=params)
        rt = FluminaRuntime(prog, plan, topology=topo)
        return rt.run(pv_app.make_streams(wl, heartbeat_interval=_hb(rate, vpu)))

    return run


def flink_event_window(p: int, *, mode: str = "parallel",
                       params: SimParams = DEFAULT_PARAMS,
                       vpb: int = VALUES_PER_BARRIER, nb: int = N_BARRIERS) -> RunAtRate:
    def run(rate: float):
        wl = vb_app.make_workload(
            n_value_streams=p, values_per_barrier=vpb, n_barriers=nb,
            value_rate_per_ms=rate,
        )
        job = build_event_window_job(
            wl, parallelism=p, params=params, mode=mode,
            heartbeat_interval=_hb(rate, vpb),
        )
        return job.run()

    return run


def flink_fraud(p: int, *, params: SimParams = DEFAULT_PARAMS,
                vpb: int = VALUES_PER_BARRIER, nb: int = N_BARRIERS) -> RunAtRate:
    def run(rate: float):
        wl = fraud_app.make_workload(
            n_txn_streams=p, txns_per_rule=vpb, n_rules=nb, txn_rate_per_ms=rate
        )
        job = build_fraud_job(
            wl, parallelism=p, params=params, heartbeat_interval=_hb(rate, vpb)
        )
        return job.run()

    return run


def flink_fraud_splan(p: int, *, params: SimParams = DEFAULT_PARAMS,
                      vpb: int = VALUES_PER_BARRIER, nb: int = N_BARRIERS) -> RunAtRate:
    def run(rate: float):
        wl = fraud_app.make_workload(
            n_txn_streams=p, txns_per_rule=vpb, n_rules=nb, txn_rate_per_ms=rate
        )
        job = build_fraud_splan_job(
            wl, parallelism=p, params=params, heartbeat_interval=_hb(rate, vpb)
        )
        return job.run()

    return run


def flink_pageview(p: int, *, params: SimParams = DEFAULT_PARAMS,
                   vpu: int = VALUES_PER_BARRIER, nu: int = N_BARRIERS,
                   n_pages: int = 2) -> RunAtRate:
    def run(rate: float):
        wl = pv_app.make_workload(
            n_pages=n_pages, n_view_streams=p, views_per_update=vpu,
            n_updates_per_page=nu, view_rate_per_ms=rate,
        )
        job = build_pageview_job(
            wl, parallelism=p, params=params, heartbeat_interval=_hb(rate, vpu)
        )
        return job.run()

    return run


def flink_pageview_splan(p: int, *, params: SimParams = DEFAULT_PARAMS,
                         vpu: int = VALUES_PER_BARRIER, nu: int = N_BARRIERS,
                         n_pages: int = 2) -> RunAtRate:
    def run(rate: float):
        wl = pv_app.make_workload(
            n_pages=n_pages, n_view_streams=p, views_per_update=vpu,
            n_updates_per_page=nu, view_rate_per_ms=rate,
        )
        job = build_pageview_splan_job(
            wl, params=params, heartbeat_interval=_hb(rate, vpu)
        )
        return job.run()

    return run


def timely_event_window(p: int, *, params: SimParams = DEFAULT_PARAMS,
                        vpb: int = VALUES_PER_BARRIER, nb: int = N_BARRIERS) -> RunAtRate:
    def run(rate: float):
        wl = vb_app.make_workload(
            n_value_streams=p, values_per_barrier=vpb, n_barriers=nb,
            value_rate_per_ms=rate,
        )
        return tl_event_window(wl, n_workers=p, params=params).run()

    return run


def timely_fraud(p: int, *, params: SimParams = DEFAULT_PARAMS,
                 vpb: int = VALUES_PER_BARRIER, nb: int = N_BARRIERS) -> RunAtRate:
    def run(rate: float):
        wl = fraud_app.make_workload(
            n_txn_streams=p, txns_per_rule=vpb, n_rules=nb, txn_rate_per_ms=rate
        )
        return tl_fraud(wl, n_workers=p, params=params).run()

    return run


def timely_pageview(p: int, *, manual: bool = False,
                    params: SimParams = DEFAULT_PARAMS,
                    vpu: int = VALUES_PER_BARRIER, nu: int = N_BARRIERS,
                    n_pages: int = 2) -> RunAtRate:
    def run(rate: float):
        wl = pv_app.make_workload(
            n_pages=n_pages, n_view_streams=p, views_per_update=vpu,
            n_updates_per_page=nu, view_rate_per_ms=rate,
        )
        return tl_pageview(wl, n_workers=p, manual=manual, params=params).run()

    return run


# ---------------------------------------------------------------------------
# Figure-level drivers
# ---------------------------------------------------------------------------

SWEEP = dict(start_rate=30.0, growth=2.0, max_steps=6, efficiency=0.75)


def figure4_flink(
    levels: Sequence[int] = PARALLELISM_LEVELS,
) -> Dict[str, List[ScalingPoint]]:
    """Figure 4 (top): Flink max throughput vs parallelism."""
    return {
        "Event Win.": scaling_curve(lambda p: flink_event_window(p), levels, **SWEEP),
        "Page View": scaling_curve(lambda p: flink_pageview(p), levels, **SWEEP),
        "Fraud Dec.": scaling_curve(lambda p: flink_fraud(p), levels, **SWEEP),
    }


def figure4_timely(
    levels: Sequence[int] = PARALLELISM_LEVELS,
) -> Dict[str, List[ScalingPoint]]:
    """Figure 4 (bottom): Timely max throughput vs parallelism,
    including the manual page-view variant."""
    return {
        "Event Win.": scaling_curve(lambda p: timely_event_window(p), levels, **SWEEP),
        "Page View": scaling_curve(lambda p: timely_pageview(p), levels, **SWEEP),
        "Fraud Dec.": scaling_curve(lambda p: timely_fraud(p), levels, **SWEEP),
        "Page View (M)": scaling_curve(
            lambda p: timely_pageview(p, manual=True), levels, **SWEEP
        ),
    }


def figure8_flumina(
    levels: Sequence[int] = PARALLELISM_LEVELS,
) -> Dict[str, List[ScalingPoint]]:
    """Figure 8: Flumina (DGS) max throughput vs parallelism."""
    return {
        "Event Win.": scaling_curve(lambda p: flumina_event_window(p), levels, **SWEEP),
        "Page View": scaling_curve(lambda p: flumina_pageview(p), levels, **SWEEP),
        "Fraud Dec.": scaling_curve(lambda p: flumina_fraud(p), levels, **SWEEP),
    }


FIG6_RATES = (10.0, 20.0, 40.0, 80.0, 160.0)


def figure6(
    parallelism: int = 12, rates: Sequence[float] = FIG6_RATES
) -> Dict[str, List[RatePoint]]:
    """Figure 6: throughput vs latency percentiles at 12 nodes for the
    automatic Flink implementations vs the manual synchronization-plan
    ones (page-view join and fraud detection)."""
    return {
        "pageview/Flink": latency_profile(flink_pageview(parallelism), rates),
        "pageview/Flink S-Plan": latency_profile(
            flink_pageview_splan(parallelism), rates
        ),
        "fraud/Flink": latency_profile(flink_fraud(parallelism), rates),
        "fraud/Flink S-Plan": latency_profile(
            flink_fraud_splan(parallelism), rates
        ),
    }


def figure10a(
    worker_counts: Sequence[int] = (5, 10, 20, 30, 40),
    vb_ratios: Sequence[int] = (100, 1000),
    *,
    rate: float = 100.0,
    n_barriers: int = 4,
) -> Dict[int, List[Tuple[int, float, float, float]]]:
    """Figure 10 (a): Flumina *per-event* latency percentiles vs worker
    count for several value:barrier ratios.  As in the paper, the
    heartbeat rate is tied to the ratio (vb_ratio/100 heartbeats per
    barrier), so low ratios both synchronize more often and release
    buffered events more coarsely."""
    out: Dict[int, List[Tuple[int, float, float, float]]] = {}
    for ratio in vb_ratios:
        series = []
        for w in worker_counts:
            prog = vb_app.make_program()
            wl = vb_app.make_workload(
                n_value_streams=w,
                values_per_barrier=ratio,
                n_barriers=n_barriers,
                value_rate_per_ms=rate,
            )
            plan = vb_app.make_plan(prog, wl)
            topo = Topology.cluster(w)
            hb = (ratio / rate) / max(1, ratio // 100)
            res = FluminaRuntime(
                prog, plan, topology=topo, track_event_latency=True
            ).run(vb_app.make_streams(wl, heartbeat_interval=hb))
            p10, p50, p90 = res.event_latency_percentiles((10, 50, 90))
            series.append((w, p10, p50, p90))
        out[ratio] = series
    return out


def figure10b(
    heartbeat_rates: Sequence[float] = (1, 5, 10, 50, 100, 500, 1000),
    vb_ratios: Sequence[int] = (1000,),
    *,
    n_workers: int = 5,
    rate: float = 50.0,
    n_barriers: int = 4,
) -> Dict[int, List[Tuple[float, float, float, float]]]:
    """Figure 10 (b): per-event latency vs heartbeat rate (heartbeats
    per barrier event) at a fixed number of workers.  Value events wait
    for proof that no earlier barrier remains; between barriers, only
    heartbeats provide it — so sparse heartbeats force mailboxes to
    release values in coarse bursts (the paper's mechanism)."""
    out: Dict[int, List[Tuple[float, float, float, float]]] = {}
    for ratio in vb_ratios:
        series = []
        for hb_per_barrier in heartbeat_rates:
            prog = vb_app.make_program()
            wl = vb_app.make_workload(
                n_value_streams=n_workers,
                values_per_barrier=ratio,
                n_barriers=n_barriers,
                value_rate_per_ms=rate,
            )
            plan = vb_app.make_plan(prog, wl)
            topo = Topology.cluster(n_workers)
            barrier_period = ratio / rate
            hb = barrier_period / hb_per_barrier
            res = FluminaRuntime(
                prog, plan, topology=topo, track_event_latency=True
            ).run(vb_app.make_streams(wl, heartbeat_interval=hb))
            p10, p50, p90 = res.event_latency_percentiles((10, 50, 90))
            series.append((hb_per_barrier, p10, p50, p90))
        out[ratio] = series
    return out


# ---------------------------------------------------------------------------
# Threaded-vs-process wall-clock comparison (the GIL-escape experiment)
# ---------------------------------------------------------------------------

def runtime_backend_comparison(
    *,
    apps: Sequence[str] = ("Event Win.", "Fraud Dec."),
    n_workers: int = 4,
    values_per_barrier: int = 200,
    n_barriers: int = 3,
    spin: int = 300,
    backends: Sequence[str] = ("threaded", "process"),
    config: Optional[BenchConfig] = None,
) -> Dict[str, BenchResult]:
    """Wall-clock throughput of the threaded vs the process runtime on
    the value-barrier and fraud apps (real elapsed time, not simulated).

    ``spin`` sets per-event CPU work (see ``make_cpu_program``): with a
    trivial update the experiment measures message passing, with
    realistic per-event cost it measures how much of the hardware the
    substrate can actually use.  Run configuration (``transport=``,
    ``batch_size=``, ``timeout_s=``, ``metrics=``) rides on
    ``config.options``.  Outputs are multiset-compared across backends
    inside :func:`compare_backends`, so reported speedups are for
    verified-equivalent executions.
    """
    builders = {
        "Event Win.": (vb_app.make_cpu_program, vb_app),
        "Fraud Dec.": (fraud_app.make_cpu_program, fraud_app),
    }
    out: Dict[str, BenchResult] = {}
    for app in apps:
        make_cpu, module = builders[app]
        prog = make_cpu(spin)
        wl = module.make_workload(
            n_value_streams=n_workers,
            values_per_barrier=values_per_barrier,
            n_barriers=n_barriers,
            value_rate_per_ms=10.0,
        ) if app == "Event Win." else module.make_workload(
            n_txn_streams=n_workers,
            txns_per_rule=values_per_barrier,
            n_rules=n_barriers,
            txn_rate_per_ms=10.0,
        )
        plan = module.make_plan(prog, wl)
        # Coarse heartbeats: ~10 per synchronization window, so the
        # wall-clock measurement is dominated by events, not heartbeats.
        streams = module.make_streams(
            wl, heartbeat_interval=_hb(10.0, values_per_barrier)
        )
        out[app] = compare_backends(
            prog, plan, streams, backends=backends, config=config
        )
    return out


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

#: Static development-tradeoff facts (✓/✗ per PIP), from §4.5.
PIP_MATRIX: Dict[str, Dict[str, str]] = {
    # column -> {PIP1, PIP2, PIP3}
    "EW/F": {"PIP1": "Y", "PIP2": "Y", "PIP3": "Y"},
    "EW/TD": {"PIP1": "Y", "PIP2": "Y", "PIP3": "Y"},
    "EW/DGS": {"PIP1": "Y", "PIP2": "Y", "PIP3": "Y"},
    "PV/F": {"PIP1": "Y", "PIP2": "Y", "PIP3": "Y"},
    "PV/FM": {"PIP1": "N", "PIP2": "N", "PIP3": "N"},
    "PV/TD": {"PIP1": "Y", "PIP2": "Y", "PIP3": "Y"},
    "PV/TDM": {"PIP1": "Y", "PIP2": "N", "PIP3": "Y"},
    "PV/DGS": {"PIP1": "Y", "PIP2": "Y", "PIP3": "Y"},
    "FD/F": {"PIP1": "Y", "PIP2": "Y", "PIP3": "Y"},
    "FD/FM": {"PIP1": "N", "PIP2": "N", "PIP3": "N"},
    "FD/TD": {"PIP1": "Y", "PIP2": "Y", "PIP3": "Y"},
    "FD/DGS": {"PIP1": "Y", "PIP2": "Y", "PIP3": "Y"},
}


def table1_scaling(parallelism: int = 12) -> Dict[str, float]:
    """The 12-node throughput-scaling row of Table 1: speedup of each
    (app, system) pair relative to its own 1-node throughput."""

    def ratio(factory: Callable[[int], RunAtRate]) -> float:
        base = max_throughput(factory(1), **SWEEP).max_throughput
        top = max_throughput(factory(parallelism), **SWEEP).max_throughput
        return top / base if base > 0 else float("nan")

    return {
        "EW/F": ratio(lambda p: flink_event_window(p)),
        "EW/TD": ratio(lambda p: timely_event_window(p)),
        "EW/DGS": ratio(lambda p: flumina_event_window(p)),
        "PV/F": ratio(lambda p: flink_pageview(p)),
        "PV/FM": ratio(lambda p: flink_pageview_splan(p)),
        "PV/TD": ratio(lambda p: timely_pageview(p)),
        "PV/TDM": ratio(lambda p: timely_pageview(p, manual=True)),
        "PV/DGS": ratio(lambda p: flumina_pageview(p)),
        "FD/F": ratio(lambda p: flink_fraud(p)),
        "FD/FM": ratio(lambda p: flink_fraud_splan(p)),
        "FD/TD": ratio(lambda p: timely_fraud(p)),
        "FD/DGS": ratio(lambda p: flumina_fraud(p)),
    }
