#!/usr/bin/env python3
"""Fraud detection (§4.1): the paper's headline synchronization-bound
application, compared across all three systems.

The model retrained at each rule must reach every transaction
processor: sharded dataflow (Flink-like) cannot express it and runs
sequentially; an iterative dataflow (Timely-like) threads it through a
feedback loop; DGS declares the dependence and lets the plan do it.

Run:  python examples/fraud_detection.py
"""

from collections import Counter

from repro.apps import fraud
from repro.flinklike import build_fraud_job, build_fraud_splan_job
from repro.runtime import FluminaRuntime, run_sequential_reference
from repro.sim import Topology
from repro.timelylike import build_fraud_job as timely_fraud, strip_ts

PARALLELISM = 8


def main() -> None:
    program = fraud.make_program()
    workload = fraud.make_workload(
        n_txn_streams=PARALLELISM, txns_per_rule=300, n_rules=4, txn_rate_per_ms=200.0
    )
    streams = fraud.make_streams(workload, heartbeat_interval=0.2)
    spec = run_sequential_reference(program, streams)
    want = Counter(map(repr, spec))
    want_projected = Counter(map(repr, map(strip_ts, spec)))
    frauds = sum(1 for v in spec if v[0] == "fraud")
    print(f"workload: {workload.total_events} events, {frauds} fraudulent (per spec)")
    print(f"{'system':<22}{'correct':>9}{'throughput ev/ms':>19}")

    all_ok = True

    # DGS / Flumina: rules at the plan root, transactions at leaves.
    plan = fraud.make_plan(program, workload)
    res = FluminaRuntime(program, plan, topology=Topology.cluster(PARALLELISM)).run(streams)
    ok = Counter(map(repr, res.output_values())) == want
    all_ok = all_ok and ok
    print(f"{'DGS (Flumina)':<22}{str(ok):>9}{res.throughput_events_per_ms:>19.1f}")

    # Flink-like: sequential is the only API-compliant option.
    res = build_fraud_job(workload, parallelism=PARALLELISM).run()
    ok = Counter(map(repr, res.output_values())) == want
    all_ok = all_ok and ok
    print(f"{'Flink (sequential)':<22}{str(ok):>9}{res.throughput_events_per_ms:>19.1f}")

    # Flink-like with a manual synchronization plan (violates PIP1-3).
    res = build_fraud_splan_job(workload, parallelism=PARALLELISM).run()
    ok = Counter(map(repr, res.output_values())) == want
    all_ok = all_ok and ok
    print(f"{'Flink S-Plan (manual)':<22}{str(ok):>9}{res.throughput_events_per_ms:>19.1f}")

    # Timely-like: feedback loop; epoch batching shifts timestamps, so
    # correctness is checked modulo timestamps (see strip_ts docs).
    res = timely_fraud(workload, n_workers=PARALLELISM).run()
    ok = Counter(map(repr, map(strip_ts, res.output_values()))) == want_projected
    all_ok = all_ok and ok
    print(f"{'Timely (feedback)':<22}{str(ok):>9}{res.throughput_events_per_ms:>19.1f}")

    if not all_ok:
        raise SystemExit(1)  # checked, not asserted — and honest to $?


if __name__ == "__main__":
    main()
