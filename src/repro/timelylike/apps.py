"""The paper's applications on the Timely-like engine (§4.2, App. F).

* event windowing — broadcast barriers define epochs; per-worker
  partial sums reduced on worker 0 (Figure 14's broadcast + reclock +
  exchange(0) pipeline);
* page-view join, automatic — views exchanged by page key, so at most
  ``n_pages`` workers do the join work (Figure 15): does not scale for
  hot keys;
* page-view join, manual — updates broadcast and filtered per worker
  against a hard-coded partition function, views processed where they
  arrive (Figure 16 / Figure 5): scales, but sacrifices PIP2;
* fraud detection — a feedback loop carries the model to the next
  epoch (Figure 17): scales, Timely's headline advantage over Flink.

Epochs coincide with barrier/rule/update windows, mirroring the
paper's data generators which batch events by logical timestamp.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..apps import fraud as fraud_app
from ..apps import pageview as pv_app
from ..data.generators import PageViewWorkload, ValueBarrierWorkload
from ..sim.params import DEFAULT_PARAMS, SimParams
from .engine import StageDef, TimelyJob, TimelyWorker


def strip_ts(value: Tuple) -> Tuple:
    """Project an output tuple down to its timestamp-free content.

    The epoch-batched engine reports outputs at epoch (window)
    timestamps rather than per-event timestamps — the inherent
    semantic difference of Timely-style batching the paper calls out
    in §4 ("not comparable ... due to the batching differences").
    Correctness comparisons against the sequential spec therefore
    project timestamps out: ("fraud", ts, v) -> ("fraud", v), etc.
    """
    kind = value[0]
    return (kind,) + tuple(value[2:])


def _window_batches(
    workload: ValueBarrierWorkload, n_workers: int
) -> Tuple[List[List[List[Any]]], List[float]]:
    """Split each value stream into per-barrier-window batches."""
    barrier_ts = [b.ts for b in workload.barrier_stream]
    streams = list(workload.value_streams.values())
    if len(streams) != n_workers:
        raise ValueError("one value stream per worker expected")
    batches: List[List[List[Any]]] = []
    for evs in streams:
        per_epoch: List[List[Any]] = [[] for _ in barrier_ts]
        i = 0
        for e in evs:
            while i < len(barrier_ts) and e.ts > barrier_ts[i]:
                i += 1
            if i >= len(barrier_ts):
                break  # values after the last barrier: no window
            per_epoch[i].append(e.payload)
        batches.append(per_epoch)
    return batches, barrier_ts


# -- Event-based windowing --------------------------------------------------


def build_event_window_job(
    workload: ValueBarrierWorkload,
    *,
    n_workers: int,
    params: SimParams = DEFAULT_PARAMS,
) -> TimelyJob:
    job = TimelyJob(n_workers, params=params)
    batches, barrier_ts = _window_batches(workload, n_workers)

    def agg(worker: TimelyWorker, epoch: int, inputs: Dict[str, List[Any]]):
        partial = sum(int(v) for v in inputs["vals"])
        return [("send_ch", "reduce", "parts", 0, [partial])]

    def reduce(worker: TimelyWorker, epoch: int, inputs: Dict[str, List[Any]]):
        total = sum(inputs["parts"])
        return [("output", [("window_sum", barrier_ts[epoch], total)])]

    job.add_stage(StageDef("agg", {"vals": 1}, agg))
    job.add_stage(StageDef("reduce", {"parts": n_workers}, reduce))
    job.feed("agg", "vals", batches=batches, epoch_times=barrier_ts)
    return job


# -- Fraud detection -----------------------------------------------------------


def build_fraud_job(
    workload: ValueBarrierWorkload,
    *,
    n_workers: int,
    params: SimParams = DEFAULT_PARAMS,
) -> TimelyJob:
    """Feedback-loop fraud detection (Figure 17): the model computed at
    epoch ``e`` is broadcast back as input to epoch ``e+1``."""
    job = TimelyJob(n_workers, params=params)
    batches, rule_ts = _window_batches(workload, n_workers)
    rule_values = [int(b.payload) for b in workload.barrier_stream]

    def label(worker: TimelyWorker, epoch: int, inputs: Dict[str, List[Any]]):
        model = inputs["model"][0]
        outs = []
        total = 0
        for v in inputs["txns"]:
            value = int(v)
            if value % fraud_app.MODULO == model:
                outs.append(("fraud", rule_ts[epoch], value))
            total += value
        routes: List[Tuple] = [("send_ch", "global", "parts", 0, [total])]
        if outs:
            routes.append(("output", outs))
        return routes

    def global_stage(worker: TimelyWorker, epoch: int, inputs: Dict[str, List[Any]]):
        total = sum(inputs["parts"])
        new_model = (total + rule_values[epoch]) % fraud_app.MODULO
        return [
            ("output", [("window_sum", rule_ts[epoch], total)]),
            ("feedback", "label", "model", [new_model]),
        ]

    job.add_stage(
        StageDef(
            "label",
            {"txns": 1, "model": 1},
            label,
            feedback_initial={"model": [0]},
        )
    )
    job.add_stage(StageDef("global", {"parts": n_workers}, global_stage))
    job.feed("label", "txns", batches=batches, epoch_times=rule_ts)
    return job


# -- Page-view join --------------------------------------------------------------


def _pageview_batches(
    workload: PageViewWorkload, n_workers: int
) -> Tuple[List[List[List[Any]]], List[List[List[Any]]], List[float]]:
    """Views and updates grouped into update-window epochs.

    View streams are distributed round-robin across workers (a worker
    may host several streams when there are more streams than workers).
    """
    first_updates = next(iter(workload.update_streams.values()))
    update_ts = [u.ts for u in first_updates]
    n_epochs = len(update_ts)
    views: List[List[List[Any]]] = [
        [[] for _ in range(n_epochs)] for _ in range(n_workers)
    ]
    for idx, (itag, evs) in enumerate(workload.view_streams.items()):
        w = idx % n_workers
        page = itag.tag[1]
        for e in evs:
            # Find the first update timestamp at or after the view.
            for i, uts in enumerate(update_ts):
                if e.ts <= uts:
                    epoch = i
                    break
            else:
                continue  # views after the final update: dropped
            views[w][epoch].append((page, None))
    updates: List[List[List[Any]]] = [
        [[] for _ in range(n_epochs)] for _ in range(n_workers)
    ]
    for itag, evs in workload.update_streams.items():
        page = itag.tag[1]
        for i, e in enumerate(evs):
            updates[0][i].append((page, e.payload))
    return views, updates, update_ts


def build_pageview_job(
    workload: PageViewWorkload,
    *,
    n_workers: int,
    manual: bool = False,
    params: SimParams = DEFAULT_PARAMS,
) -> TimelyJob:
    job = TimelyJob(n_workers, params=params)
    views, updates, update_ts = _pageview_batches(workload, n_workers)
    n_pages = len(workload.pages)

    if not manual:
        # Automatic: exchange both inputs by page key; only
        # ``n_pages`` workers ever receive join work.
        def exchange(worker: TimelyWorker, epoch: int, inputs: Dict[str, List[Any]]):
            by_worker: List[List[Any]] = [[] for _ in range(job.n_workers)]
            for item in inputs["raw"]:
                page = item[0]
                by_worker[page % job.n_workers].append(item)
            return [
                ("send_ch", "join", "views_ex", w, items)
                for w, items in enumerate(by_worker)
            ]

        def exchange_up(worker: TimelyWorker, epoch: int, inputs: Dict[str, List[Any]]):
            by_worker: List[List[Any]] = [[] for _ in range(job.n_workers)]
            for item in inputs["raw"]:
                by_worker[item[0] % job.n_workers].append(item)
            return [
                ("send_ch", "join", "updates_ex", w, items)
                for w, items in enumerate(by_worker)
            ]

        def join(worker: TimelyWorker, epoch: int, inputs: Dict[str, List[Any]]):
            zips = worker.state.setdefault("zips", {})
            outs = []
            for page, payload in inputs["updates_ex"]:
                old = zips.get(page, pv_app.DEFAULT_ZIP)
                zips[page] = int(payload)
                outs.append(("old_info", update_ts[epoch], page, old))
            for page, _ in inputs["views_ex"]:
                _ = zips.get(page, pv_app.DEFAULT_ZIP)
            return [("output", outs)] if outs else []

        job.add_stage(StageDef("exchange", {"raw": 1}, exchange))
        job.add_stage(StageDef("exchange_up", {"raw": 1}, exchange_up))
        job.add_stage(
            StageDef(
                "join",
                {"views_ex": n_workers, "updates_ex": n_workers},
                join,
            )
        )
        job.feed("exchange", "raw", batches=views, epoch_times=update_ts)
        job.feed("exchange_up", "raw", batches=updates, epoch_times=update_ts)
    else:
        # Manual (Figure 5/16): broadcast updates; each worker filters
        # by a hard-coded partition function and keeps views local.
        def bcast(worker: TimelyWorker, epoch: int, inputs: Dict[str, List[Any]]):
            return [("broadcast", "join", "updates_bc", inputs["raw"])]

        def join(worker: TimelyWorker, epoch: int, inputs: Dict[str, List[Any]]):
            zips = worker.state.setdefault("zips", {})
            outs = []
            for page, payload in inputs["updates_bc"]:
                relevant = worker.index % n_pages == page % n_pages
                if not relevant:
                    continue
                old = zips.get(page, pv_app.DEFAULT_ZIP)
                zips[page] = int(payload)
                # Only the page's first worker emits, to avoid
                # duplicate outputs from replicated metadata.
                if worker.index == page % n_pages:
                    outs.append(("old_info", update_ts[epoch], page, old))
            for page, _ in inputs["views"]:
                _ = zips.get(page, pv_app.DEFAULT_ZIP)
            return [("output", outs)] if outs else []

        job.add_stage(StageDef("bcast", {"raw": 1}, bcast))
        job.add_stage(StageDef("join", {"views": 1, "updates_bc": n_workers}, join))
        job.feed("join", "views", batches=views, epoch_times=update_ts)
        job.feed("bcast", "raw", batches=updates, epoch_times=update_ts)
    return job
