"""Tests for P-validity (Definition 3.2) and plan generation."""

import random

import pytest

from repro.core import ImplTag, ValidityError
from repro.plans import (
    PlanNode,
    SyncPlan,
    assert_p_valid,
    assign_hosts_round_robin,
    chain_plan,
    forest_plan,
    is_p_valid,
    map_hosts,
    random_valid_plan,
    root_and_leaves_plan,
    sequential_plan,
    validity_violations,
)
from repro.apps import keycounter as kc


def it(tag, stream=0):
    return ImplTag(tag, stream)


@pytest.fixture
def prog():
    return kc.make_program(2)


class TestValidity:
    def test_sequential_plan_is_valid(self, prog):
        itags = [it(t, 0) for t in prog.tags]
        plan = sequential_plan(prog, itags)
        assert is_p_valid(plan, prog)

    def test_v2_shared_itags_flagged(self, prog):
        shared = frozenset({it(kc.inc_tag(0), 0)})
        a = PlanNode("a", "State0", shared)
        b = PlanNode("b", "State0", shared)
        plan = SyncPlan(PlanNode("r", "State0", frozenset(), (a, b)))
        vs = validity_violations(plan, prog)
        assert any(v.rule == "V2" and "share" in v.detail for v in vs)

    def test_v2_dependent_siblings_flagged(self, prog):
        a = PlanNode("a", "State0", frozenset({it(kc.inc_tag(0), 0)}))
        b = PlanNode("b", "State0", frozenset({it(kc.reset_tag(0), 1)}))
        plan = SyncPlan(PlanNode("r", "State0", frozenset(), (a, b)))
        vs = validity_violations(plan, prog)
        assert any(v.rule == "V2" and "dependent" in v.detail for v in vs)

    def test_v2_parent_child_dependence_allowed(self, prog):
        # The Figure 3 pattern: r(k) at the parent, i(k) at children.
        a = PlanNode("a", "State0", frozenset({it(kc.inc_tag(0), 0)}))
        b = PlanNode("b", "State0", frozenset({it(kc.inc_tag(0), 1)}))
        root = PlanNode("r", "State0", frozenset({it(kc.reset_tag(0), 2)}), (a, b))
        assert is_p_valid(SyncPlan(root), prog)

    def test_v1_unknown_state_type_flagged(self, prog):
        plan = SyncPlan(PlanNode("r", "Bogus", frozenset()))
        vs = validity_violations(plan, prog)
        assert any(v.rule == "V1" and "unknown state type" in v.detail for v in vs)

    def test_v1_tag_outside_universe_flagged(self, prog):
        plan = SyncPlan(PlanNode("r", "State0", frozenset({it(("zz", 7), 0)})))
        vs = validity_violations(plan, prog)
        assert any(v.rule == "V1" and "universe" in v.detail for v in vs)

    def test_assert_p_valid_raises(self, prog):
        plan = SyncPlan(PlanNode("r", "Bogus", frozenset()))
        with pytest.raises(ValidityError):
            assert_p_valid(plan, prog)

    def test_v1_missing_fork_join_flagged(self):
        # A program without fork/join cannot have internal workers.
        from repro.core import DGSProgram, DependenceRelation, StateType, true_pred

        uni = ["a", "b"]
        prog2 = DGSProgram(
            name="nofj",
            tags=uni,
            depends=DependenceRelation.all_independent(uni),
            state_types=[StateType("State0", true_pred(uni), lambda s, e: (s, []))],
            init=lambda: 0,
        )
        a = PlanNode("a", "State0", frozenset({it("a", 0)}))
        b = PlanNode("b", "State0", frozenset({it("b", 0)}))
        plan = SyncPlan(PlanNode("r", "State0", frozenset(), (a, b)))
        vs = validity_violations(plan, prog2)
        assert any("no fork" in v.detail for v in vs)
        assert any("no join" in v.detail for v in vs)


class TestGenerators:
    def test_root_and_leaves_balanced(self, prog):
        root_tags = [it(kc.reset_tag(0), "r")]
        groups = [[it(kc.inc_tag(0), s)] for s in range(6)]
        plan = root_and_leaves_plan(prog, root_tags, groups)
        assert is_p_valid(plan, prog)
        assert len(plan.leaves()) == 6
        assert plan.root.itags == frozenset(root_tags)
        # Balanced: depth is logarithmic.
        assert plan.depth() <= 5

    def test_chain_plan_is_deep(self, prog):
        root_tags = [it(kc.reset_tag(0), "r")]
        groups = [[it(kc.inc_tag(0), s)] for s in range(6)]
        plan = chain_plan(prog, root_tags, groups)
        assert is_p_valid(plan, prog)
        assert plan.depth() == 6

    def test_single_group_degenerates_to_sequential(self, prog):
        plan = root_and_leaves_plan(
            prog, [it(kc.reset_tag(0), "r")], [[it(kc.inc_tag(0), 0)]]
        )
        assert plan.size() == 1
        assert len(plan.root.itags) == 2

    def test_forest_plan_per_key(self, prog):
        subtrees = [
            (
                [it(kc.reset_tag(k), "u")],
                [[it(kc.inc_tag(k), s)] for s in range(3)],
            )
            for k in range(2)
        ]
        plan = forest_plan(prog, subtrees)
        assert is_p_valid(plan, prog)
        assert plan.root.itags == frozenset()
        assert len(plan.leaves()) == 6

    @pytest.mark.parametrize("seed", range(15))
    def test_random_valid_plans_are_valid(self, prog, seed):
        itags = [it(t, s) for t in sorted(prog.tags, key=repr) for s in range(2)]
        plan = random_valid_plan(prog, itags, random.Random(seed))
        assert is_p_valid(plan, prog), validity_violations(plan, prog)[:3]
        # Every itag assigned exactly once.
        seen = [t for n in plan.workers() for t in n.itags]
        assert sorted(seen, key=repr) == sorted(itags, key=repr)


class TestHostAssignment:
    def test_round_robin_assigns_all(self, prog):
        groups = [[it(kc.inc_tag(0), s)] for s in range(4)]
        plan = root_and_leaves_plan(prog, [it(kc.reset_tag(0), "r")], groups)
        placed = assign_hosts_round_robin(plan, ["h0", "h1"])
        hosts = {n.id: n.host for n in placed.workers()}
        assert all(h in ("h0", "h1") for h in hosts.values())
        leaf_hosts = [n.host for n in placed.leaves()]
        assert leaf_hosts.count("h0") == 2 and leaf_hosts.count("h1") == 2

    def test_internal_nodes_follow_first_child(self, prog):
        groups = [[it(kc.inc_tag(0), s)] for s in range(2)]
        plan = root_and_leaves_plan(prog, [it(kc.reset_tag(0), "r")], groups)
        placed = assign_hosts_round_robin(plan, ["h0", "h1"])
        assert placed.root.host == placed.root.children[0].host

    def test_map_hosts_override(self, prog):
        plan = sequential_plan(prog, [it(kc.inc_tag(0), 0)])
        placed = map_hosts(plan, {"w1": "big-node"})
        assert placed.root.host == "big-node"

    def test_round_robin_empty_hosts_rejected(self, prog):
        plan = sequential_plan(prog, [it(kc.inc_tag(0), 0)])
        from repro.core import PlanError

        with pytest.raises(PlanError):
            assign_hosts_round_robin(plan, [])
