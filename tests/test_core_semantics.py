"""Tests for the wire-diagram reference semantics (Definition 2.2) and
the determinism theorem (Theorem 2.4) via random legal diagrams."""

import random

import pytest

from repro.core import (
    Event,
    Parallel,
    ProgramError,
    evaluate,
    output_multiset,
    pred_of,
    random_diagram,
    seq,
    updates,
)
from repro.apps import keycounter as kc


def _events(prog, seed=0, n=40, streams=2):
    rng = random.Random(seed)
    tags = sorted(prog.tags, key=repr)
    return [
        Event(tags[rng.randrange(len(tags))], rng.randrange(streams), ts)
        for ts in range(n)
    ]


class TestSequentialDiagrams:
    def test_updates_equal_spec(self):
        prog = kc.make_program(2)
        events = _events(prog, seed=1)
        res = evaluate(prog, updates(events))
        assert res.outputs == prog.spec(events)

    def test_nested_sequence_associativity(self):
        prog = kc.make_program(2)
        events = _events(prog, seed=2, n=12)
        flat = evaluate(prog, updates(events))
        nested = evaluate(
            prog,
            seq(updates(events[:4]), seq(updates(events[4:8]), updates(events[8:]))),
        )
        assert flat.outputs == nested.outputs
        assert kc.state_eq(flat.state, nested.state)

    def test_empty_diagram(self):
        prog = kc.make_program(1)
        res = evaluate(prog, updates([]))
        assert res.outputs == [] and res.state == {}


class TestParallelDiagrams:
    def test_explicit_parallel_by_key(self):
        prog = kc.make_program(2)
        uni = prog.tags
        p0 = pred_of(uni, [kc.inc_tag(0), kc.reset_tag(0)])
        p1 = pred_of(uni, [kc.inc_tag(1), kc.reset_tag(1)])
        ev0 = [Event(kc.inc_tag(0), 0, 1), Event(kc.reset_tag(0), 0, 2)]
        ev1 = [Event(kc.inc_tag(1), 1, 1), Event(kc.inc_tag(1), 1, 2)]
        d = Parallel("State0", "State0", p0, p1, updates(ev0), updates(ev1))
        res = evaluate(prog, d)
        assert output_multiset(res.outputs) == output_multiset([(0, 1)])
        assert res.state.get(1, 0) == 2

    def test_parallel_increments_same_key(self):
        # The non-disjoint-predicate case from §2.1: both branches
        # process i(k); neither may process r(k).
        prog = kc.make_program(1)
        uni = prog.tags
        pi = pred_of(uni, [kc.inc_tag(0)])
        left = updates([Event(kc.inc_tag(0), 0, t) for t in (1, 3)])
        right = updates([Event(kc.inc_tag(0), 1, t) for t in (2, 4)])
        d = Parallel("State0", "State0", pi, pi, left, right)
        res = evaluate(prog, d)
        assert res.state[0] == 4

    def test_dependent_predicates_rejected(self):
        prog = kc.make_program(1)
        uni = prog.tags
        pi = pred_of(uni, [kc.inc_tag(0)])
        pr = pred_of(uni, [kc.reset_tag(0)])
        d = Parallel("State0", "State0", pi, pr, updates([]), updates([]))
        with pytest.raises(ProgramError, match="independent"):
            evaluate(prog, d)

    def test_event_outside_wire_predicate_rejected(self):
        prog = kc.make_program(1)
        uni = prog.tags
        pi = pred_of(uni, [kc.inc_tag(0)])
        d = Parallel(
            "State0",
            "State0",
            pi,
            pi,
            updates([Event(kc.reset_tag(0), 0, 1)]),
            updates([]),
        )
        with pytest.raises(ProgramError, match="predicate"):
            evaluate(prog, d)

    def test_forked_pred_must_imply_wire_pred(self):
        prog = kc.make_program(2)
        uni = prog.tags
        outer = pred_of(uni, [kc.inc_tag(0)])
        inner = pred_of(uni, [kc.inc_tag(1)])
        d = Parallel("State0", "State0", inner, inner, updates([]), updates([]))
        with pytest.raises(ProgramError, match="imply"):
            evaluate(prog, d, pred=outer)


class TestTheorem24:
    """Consistency implies determinism up to output reordering: every
    random legal diagram's output multiset matches the sequential spec
    of the diagram's event order."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_diagrams_match_spec(self, seed):
        prog = kc.make_program(3)
        events = _events(prog, seed=seed, n=50, streams=3)
        rng = random.Random(seed + 1000)
        d = random_diagram(prog, events, rng)
        res = evaluate(prog, d)
        assert output_multiset(res.outputs) == output_multiset(
            prog.spec(d.events())
        )

    def test_random_diagrams_do_fork(self):
        # Sanity: the generator actually produces parallelism.
        prog = kc.make_program(3)
        events = _events(prog, seed=7, n=60, streams=3)
        total_forks = 0
        for seed in range(10):
            d = random_diagram(prog, events, random.Random(seed))
            total_forks += d.n_forks()
        assert total_forks > 0

    def test_final_state_matches_spec_state(self):
        prog = kc.make_program(2)
        events = _events(prog, seed=3, n=40)
        for seed in range(8):
            d = random_diagram(prog, events, random.Random(seed))
            res = evaluate(prog, d)
            seq_res = evaluate(prog, updates(d.events()))
            assert kc.state_eq(res.state, seq_res.state)
