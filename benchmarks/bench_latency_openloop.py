"""Open-loop latency micro: end-to-end event latency under offered
load, fixed-rate and bursty arrival processes, on the process runtime.

Not a paper artifact in shape (the paper reports latency from its Erlang
runtime), but it measures the same thing the paper's Figure 6 axes do:
latency percentiles at a fixed offered rate.  Closed-loop throughput
benches cannot see queueing delay — their producer slows down with the
system — so this bench fixes arrival timestamps in advance
(:func:`repro.bench.fixed_rate_arrivals` / :func:`bursty_arrivals`) and
replays them on the wall clock with ``RunOptions(pace=1000.0)``.  The
metrics plane (``RunOptions(metrics=True)``) measures latency from the
source timestamp to the committed output at the worker that emitted it.

Writes ``BENCH_latency_openloop.json``; the CI perf gate thresholds
``fixed_p99_latency_s`` (direction *lower*) against the committed
baseline, so latency regressions in the join/fork hot path or the
transport flush policy fail CI like throughput regressions do.
"""

from conftest import quick

from repro import RunOptions, run_on_backend
from repro.apps import value_barrier as vb
from repro.bench import (
    available_cores,
    bench_record,
    bursty_arrivals,
    fixed_rate_arrivals,
    publish,
    publish_json,
    render_table,
)
from repro.core.events import Event, ImplTag
from repro.data.generators import ValueBarrierWorkload


def _openloop_workload(arrivals_ms, n_streams: int, n_barriers: int):
    """A value-barrier workload whose value events arrive at the given
    open-loop schedule (same schedule per stream, distinct fractional
    phase offsets so timestamps never collide across streams or with
    the barriers)."""
    denom = n_streams + 2
    span = arrivals_ms[-1] if arrivals_ms else 1.0
    values = {}
    for s in range(n_streams):
        offset = (s + 1) * 0.0137 / denom
        itag = ImplTag(vb.VALUE_TAG, f"v{s}")
        values[itag] = tuple(
            Event(vb.VALUE_TAG, f"v{s}", 1.0 + t + offset, 1 + (i % 7))
            for i, t in enumerate(arrivals_ms)
        )
    gap = (span + 1.0) / n_barriers
    barriers = tuple(
        Event(vb.BARRIER_TAG, "b", 1.5 + k * gap, k) for k in range(n_barriers)
    )
    wl = ValueBarrierWorkload(values, barriers, ImplTag(vb.BARRIER_TAG, "b"))
    prog = vb.make_program()
    return prog, vb.make_plan(prog, wl), vb.make_streams(wl)


def _best_latency(prog, plan, streams, *, repeats: int, timeout_s: float):
    """Best-of-``repeats`` p99 (the machine's capability, not one
    unlucky scheduler slice); the paired p50/mean come from the same
    winning run."""
    best = None
    for _ in range(max(1, repeats)):
        run = run_on_backend(
            "process",
            prog,
            plan,
            streams,
            options=RunOptions(
                metrics=True,
                pace=1000.0,  # replay timestamps (ms) in real time
                transport="pipe",
                timeout_s=timeout_s,
            ),
        )
        m = run.metrics
        assert m is not None
        cand = {
            "p50_latency_s": m.latency_percentile(50),
            "p99_latency_s": m.latency_percentile(99),
            "events": run.events_in,
            "outputs": len(run.outputs),
        }
        if best is None or cand["p99_latency_s"] < best["p99_latency_s"]:
            best = cand
    return best


def test_openloop_latency(benchmark):
    QUICK = quick()
    n_streams = 2 if QUICK else 4
    n_events = 250 if QUICK else 1500
    rate_per_s = 2000.0  # per stream; comfortably below saturation
    n_barriers = 3 if QUICK else 5

    fixed = _openloop_workload(
        fixed_rate_arrivals(n_events, rate_per_s), n_streams, n_barriers
    )
    bursty = _openloop_workload(
        bursty_arrivals(n_events, rate_per_s, burst=16, compression=7.3),
        n_streams,
        n_barriers,
    )

    def run():
        repeats = 1 if QUICK else 2
        timeout_s = 60.0
        return {
            "fixed": _best_latency(*fixed, repeats=repeats, timeout_s=timeout_s),
            "bursty": _best_latency(*bursty, repeats=repeats, timeout_s=timeout_s),
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    shapes = list(data)
    text = render_table(
        "Open-loop end-to-end latency (process backend, paced replay)",
        "arrivals",
        shapes,
        {
            "p50 ms": [data[s]["p50_latency_s"] * 1e3 for s in shapes],
            "p99 ms": [data[s]["p99_latency_s"] * 1e3 for s in shapes],
        },
        note=(
            f"cores={available_cores()}, value-barrier, "
            f"{n_streams}x{rate_per_s:.0f} events/s offered, pace=1000"
        ),
    )
    publish("latency_openloop", text)
    publish_json(
        "latency_openloop",
        bench_record(
            "latency_openloop",
            config={
                "quick": QUICK,
                "streams": n_streams,
                "events_per_stream": n_events,
                "rate_per_s_per_stream": rate_per_s,
                "burst": 16,
                "pace": 1000.0,
            },
            metrics={
                "fixed_p50_latency_s": round(data["fixed"]["p50_latency_s"], 5),
                "fixed_p99_latency_s": round(data["fixed"]["p99_latency_s"], 5),
                "bursty_p50_latency_s": round(data["bursty"]["p50_latency_s"], 5),
                "bursty_p99_latency_s": round(data["bursty"]["p99_latency_s"], 5),
            },
            gate={"fixed_p99_latency_s": "lower"},
        ),
    )

    for s in shapes:
        assert data[s]["outputs"] == n_barriers
        assert 0.0 <= data[s]["p50_latency_s"] <= data[s]["p99_latency_s"]
    # An offered rate far below saturation must not queue unboundedly:
    # p99 staying under a second is a sanity floor, not a perf claim
    # (the perf gate thresholds the committed baseline much tighter).
    assert data["fixed"]["p99_latency_s"] < 1.0
