"""Synthetic workload generators (paper §4.1).

The paper's inputs are synthetic; these builders produce the same
shapes with strictly increasing, collision-free timestamps (required by
the total order ``O``):

* value/barrier streams: ``values_per_barrier`` values per stream
  between consecutive barriers (the paper uses 10K; benchmarks default
  lower to keep simulations fast — the ratio is what matters);
* page-view streams with views concentrated on a small set of hot
  pages (the paper routes all views to two pages);
* transaction/rule streams for fraud detection (same shape as
  value/barrier).

Rates are in events per millisecond of simulated time.  Stream ``k``
offsets its timestamps by a distinct fraction of the event period so
no two events in dependent streams ever collide at any rate (barrier
and update timestamps land on whole period multiples; value and view
timestamps never do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


from ..core.events import Event, ImplTag

EPS = 1e-3


def uniform_stream(
    itag: ImplTag,
    *,
    rate_per_ms: float,
    n_events: int,
    offset: float = 0.0,
    payload_fn=None,
    start_ms: float = 1.0,
) -> Tuple[Event, ...]:
    """Events at a constant rate with a per-stream phase offset."""
    if rate_per_ms <= 0:
        raise ValueError("rate must be positive")
    if n_events <= 0:
        raise ValueError(
            f"n_events must be positive, got {n_events} — a silently "
            "empty stream hides workload-construction bugs"
        )
    period = 1.0 / rate_per_ms
    out = []
    for i in range(n_events):
        ts = start_ms + i * period + offset
        payload = payload_fn(i) if payload_fn else 1
        out.append(Event(itag.tag, itag.stream, ts, payload))
    return tuple(out)


@dataclass(frozen=True)
class ValueBarrierWorkload:
    """Input shape of event-based windowing and fraud detection."""

    value_streams: Dict[ImplTag, Tuple[Event, ...]]
    barrier_stream: Tuple[Event, ...]
    barrier_itag: ImplTag

    @property
    def total_events(self) -> int:
        return sum(len(v) for v in self.value_streams.values()) + len(
            self.barrier_stream
        )

    def all_streams(self) -> List[Tuple[ImplTag, Tuple[Event, ...]]]:
        pairs = list(self.value_streams.items())
        pairs.append((self.barrier_itag, self.barrier_stream))
        return pairs


def value_barrier_workload(
    *,
    value_tag,
    barrier_tag,
    n_value_streams: int,
    values_per_barrier: int,
    n_barriers: int,
    value_rate_per_ms: float,
    value_payload_fn=None,
    barrier_payload_fn=None,
) -> ValueBarrierWorkload:
    """The §4.1 generator: each value stream carries
    ``values_per_barrier`` events between consecutive barriers."""
    period = 1.0 / value_rate_per_ms
    barrier_gap_ms = values_per_barrier * period
    values: Dict[ImplTag, Tuple[Event, ...]] = {}
    n_values = values_per_barrier * n_barriers
    # Fractional-period phase offsets: strictly inside (0, period), all
    # distinct, so values never collide with each other or with the
    # barriers (which sit on whole multiples of the period).
    denom = n_value_streams + 2
    for s in range(n_value_streams):
        itag = ImplTag(value_tag, f"v{s}")
        values[itag] = uniform_stream(
            itag,
            rate_per_ms=value_rate_per_ms,
            n_events=n_values,
            offset=(s + 1) * period / denom,
            payload_fn=value_payload_fn or (lambda i: 1),
        )
    bitag = ImplTag(barrier_tag, "b")
    barriers = tuple(
        Event(
            barrier_tag,
            "b",
            1.0 + k * barrier_gap_ms,
            (barrier_payload_fn or (lambda i: i))(k),
        )
        for k in range(1, n_barriers + 1)
    )
    return ValueBarrierWorkload(values, barriers, bitag)


@dataclass(frozen=True)
class PageViewWorkload:
    """Views (parallel streams, skewed to hot pages) + per-page updates."""

    view_streams: Dict[ImplTag, Tuple[Event, ...]]  # itag -> events
    update_streams: Dict[ImplTag, Tuple[Event, ...]]
    pages: Tuple[int, ...]

    @property
    def total_events(self) -> int:
        return sum(len(v) for v in self.view_streams.values()) + sum(
            len(v) for v in self.update_streams.values()
        )

    def all_streams(self) -> List[Tuple[ImplTag, Tuple[Event, ...]]]:
        return list(self.view_streams.items()) + list(self.update_streams.items())


def pageview_workload(
    *,
    view_tag_fn,
    update_tag_fn,
    n_pages: int,
    n_view_streams: int,
    views_per_update: int,
    n_updates_per_page: int,
    view_rate_per_ms: float,
) -> PageViewWorkload:
    """Views distributed over ``n_pages`` hot pages round-robin across
    ``n_view_streams`` parallel sources (paper: two hot pages get all
    the views), plus one update stream per page."""
    period = 1.0 / view_rate_per_ms
    views: Dict[ImplTag, Tuple[Event, ...]] = {}
    n_views = views_per_update * n_updates_per_page
    denom = n_view_streams + n_pages + 2
    for s in range(n_view_streams):
        page = s % n_pages
        itag = ImplTag(view_tag_fn(page), f"pv{s}")
        views[itag] = uniform_stream(
            itag,
            rate_per_ms=view_rate_per_ms,
            n_events=n_views,
            offset=(s + 1) * period / denom,
            payload_fn=lambda i: None,
        )
    update_gap = views_per_update * period
    updates: Dict[ImplTag, Tuple[Event, ...]] = {}
    for page in range(n_pages):
        itag = ImplTag(update_tag_fn(page), f"up{page}")
        updates[itag] = tuple(
            Event(
                itag.tag,
                itag.stream,
                1.0 + k * update_gap
                + (n_view_streams + page + 1) * period / denom,
                10_000 + k,  # new zip code
            )
            for k in range(1, n_updates_per_page + 1)
        )
    return PageViewWorkload(views, updates, tuple(range(n_pages)))
