"""Fault injection and crash recovery across the three runtimes.

The scenarios here are the hand-written counterparts of the randomized
chaos suite (tests/test_chaos.py): one precise crash or drop per test,
with the recovery bookkeeping (attempts, commits, replays) asserted
exactly rather than just the end-to-end output equivalence.
"""

import pickle
import random

import pytest

from repro.apps import keycounter as kc
from repro.apps import value_barrier as vb
from repro.core import Event, ImplTag
from repro.core.errors import NoCheckpointError, RecoveryUnsoundError
from repro.core.semantics import output_multiset
from repro.plans import root_and_leaves_plan
from repro.runtime import (
    CrashFault,
    DropHeartbeats,
    FaultPlan,
    InputStream,
    RunOptions,
    assert_recovery_sound,
    every_root_join,
    run_on_backend,
    run_sequential_reference,
)
from repro.runtime.faults import WorkerCrash


def vb_case(n_value_streams=3, values_per_barrier=20, n_barriers=4):
    """A value-barrier workload with the natural plan: barriers at the
    root, one leaf per value stream."""
    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=n_value_streams,
        values_per_barrier=values_per_barrier,
        n_barriers=n_barriers,
    )
    streams = vb.make_streams(wl)
    plan = vb.make_plan(prog, wl)
    return prog, streams, plan


class TestFaultPlan:
    def test_crash_fault_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            CrashFault("w1")
        with pytest.raises(ValueError):
            CrashFault("w1", after_events=3, at_ts=4.0)
        with pytest.raises(ValueError):
            CrashFault("w1", after_events=0)

    def test_view_raises_worker_crash_at_count(self):
        plan = FaultPlan(CrashFault("w2", after_events=3))
        view = plan.view_for("w2")
        view.note_event(1.0)
        view.note_event(2.0)
        with pytest.raises(WorkerCrash) as exc:
            view.note_event(3.0)
        assert exc.value.record.worker == "w2"
        assert exc.value.record.fault_index == 0
        assert exc.value.record.events_seen == 3

    def test_view_raises_worker_crash_at_ts(self):
        plan = FaultPlan(CrashFault("w2", at_ts=10.0))
        view = plan.view_for("w2")
        view.note_event(9.9)
        with pytest.raises(WorkerCrash):
            view.note_event(10.0)

    def test_fired_faults_excluded_from_views(self):
        plan = FaultPlan(CrashFault("w2", after_events=1))
        plan.mark_fired(0)
        assert plan.view_for("w2") is None

    def test_other_workers_get_no_view(self):
        plan = FaultPlan(CrashFault("w2", after_events=1))
        assert plan.view_for("w1") is None

    def test_drop_windows_respect_before_ts_and_count(self):
        plan = FaultPlan(DropHeartbeats("w1", before_ts=50.0, count=2))
        view = plan.view_for("w1")
        assert view.should_drop_heartbeat((10.0,))
        assert not view.should_drop_heartbeat((60.0,))  # past before_ts
        assert view.should_drop_heartbeat((20.0,))
        assert not view.should_drop_heartbeat((30.0,))  # budget exhausted

    def test_plan_and_views_picklable(self):
        plan = FaultPlan(
            CrashFault("w2", after_events=3), DropHeartbeats("w1", before_ts=9.0)
        )
        plan.mark_fired(0)
        copy = pickle.loads(pickle.dumps(plan))
        assert copy.fired == {0}
        assert copy.view_for("w2") is None
        assert pickle.loads(pickle.dumps(plan.view_for("w1"))) is not None


@pytest.mark.parametrize("backend", ["sim", "threaded", "process"])
class TestCrashRecoveryAcrossBackends:
    def test_leaf_crash_recovers_and_matches_spec(self, backend):
        prog, streams, plan = vb_case()
        leaf = plan.leaves()[0].id
        # Fires on the leaf's first value event after the second
        # barrier; by then the root has snapshotted at least twice.
        crash_ts = streams[-1].events[1].ts + 0.01
        faults = FaultPlan(CrashFault(leaf, at_ts=crash_ts))
        run = run_on_backend(
            backend,
            prog,
            plan,
            streams,
            options=RunOptions(
                fault_plan=faults,
                checkpoint_predicate=every_root_join(),
            ),
        )
        ref = run_sequential_reference(prog, streams)
        assert output_multiset(run.outputs) == output_multiset(ref)
        rec = run.recovery
        assert rec.attempts == 2
        assert [c.worker for c in rec.crashes] == [leaf]
        assert rec.recovered
        assert rec.recoveries[0].resumed_from_ts >= streams[-1].events[0].ts
        assert 0 < rec.recoveries[0].replayed_events < sum(
            len(s.events) for s in streams
        )

    def test_root_crash_recovers(self, backend):
        prog, streams, plan = vb_case()
        # The root only processes barrier events; crash on its third.
        faults = FaultPlan(CrashFault(plan.root.id, after_events=3))
        run = run_on_backend(
            backend,
            prog,
            plan,
            streams,
            options=RunOptions(
                fault_plan=faults,
                checkpoint_predicate=every_root_join(),
            ),
        )
        ref = run_sequential_reference(prog, streams)
        assert output_multiset(run.outputs) == output_multiset(ref)
        assert run.recovery.attempts == 2

    def test_two_crashes_two_recoveries(self, backend):
        prog, streams, plan = vb_case(n_barriers=5)
        leaves = [n.id for n in plan.leaves()]
        barrier_ts = [e.ts for e in streams[-1].events]
        faults = FaultPlan(
            CrashFault(leaves[0], at_ts=barrier_ts[1] + 0.01),
            CrashFault(leaves[1], at_ts=barrier_ts[3] + 0.01),
        )
        run = run_on_backend(
            backend,
            prog,
            plan,
            streams,
            options=RunOptions(
                fault_plan=faults,
                checkpoint_predicate=every_root_join(),
            ),
        )
        ref = run_sequential_reference(prog, streams)
        assert output_multiset(run.outputs) == output_multiset(ref)
        assert run.recovery.attempts == 3
        assert len(run.recovery.crashes) == 2

    def test_crash_without_checkpoint_is_clean_error(self, backend):
        """A crash with no snapshot to restore must surface as
        NoCheckpointError — promptly, never as a hang."""
        prog, streams, plan = vb_case()
        leaf = plan.leaves()[0].id
        faults = FaultPlan(CrashFault(leaf, after_events=2))
        with pytest.raises(NoCheckpointError, match="no checkpoint"):
            run_on_backend(
                backend,
                prog,
                plan,
                streams,
                options=RunOptions(
                    fault_plan=faults,
                    timeout_s=30.0,
                ),
            )

    def test_crash_before_first_snapshot_is_clean_error(self, backend):
        prog, streams, plan = vb_case()
        leaf = plan.leaves()[0].id
        # Fires before the first barrier: the predicate is armed but
        # nothing has been snapshotted yet.
        faults = FaultPlan(CrashFault(leaf, after_events=1))
        with pytest.raises(NoCheckpointError):
            run_on_backend(
                backend,
                prog,
                plan,
                streams,
                options=RunOptions(
                    fault_plan=faults,
                    checkpoint_predicate=every_root_join(),
                    timeout_s=30.0,
                ),
            )

    def test_heartbeat_drops_are_masked(self, backend):
        """Lossy progress signaling: dropped heartbeats delay releases
        but later (and closing) heartbeats mask them completely."""
        prog, streams, plan = vb_case()
        last_ts = max(e.ts for s in streams for e in s.events)
        faults = FaultPlan(
            DropHeartbeats(plan.root.id, before_ts=last_ts * 0.8),
            DropHeartbeats(plan.leaves()[0].id, before_ts=last_ts * 0.5, count=3),
        )
        run = run_on_backend(
            backend, prog, plan, streams, options=RunOptions(fault_plan=faults)
        )
        ref = run_sequential_reference(prog, streams)
        assert output_multiset(run.outputs) == output_multiset(ref)
        assert run.recovery.attempts == 1
        assert not run.recovery.recovered

    def test_crash_plus_drops_together(self, backend):
        prog, streams, plan = vb_case()
        leaf0, leaf1 = plan.leaves()[0].id, plan.leaves()[1].id
        barrier_ts = [e.ts for e in streams[-1].events]
        last_ts = max(e.ts for s in streams for e in s.events)
        faults = FaultPlan(
            CrashFault(leaf0, at_ts=barrier_ts[1] + 0.01),
            DropHeartbeats(leaf1, before_ts=last_ts * 0.7, count=4),
        )
        run = run_on_backend(
            backend,
            prog,
            plan,
            streams,
            options=RunOptions(
                fault_plan=faults,
                checkpoint_predicate=every_root_join(),
            ),
        )
        ref = run_sequential_reference(prog, streams)
        assert output_multiset(run.outputs) == output_multiset(ref)
        assert run.recovery.attempts == 2


class TestStatefulPredicates:
    def test_caller_predicate_not_mutated_by_fault_runs(self):
        """Backends deep-copy the checkpoint predicate per attempt, so
        stateful policies restart their cadence on every attempt (same
        semantics as the process backend's fork) and the caller's
        instance stays pristine."""
        from repro.runtime import every_nth_join

        pred = every_nth_join(2)
        prog, streams, plan = vb_case(n_barriers=5)
        faults = FaultPlan(CrashFault(plan.root.id, after_events=4))
        run = run_on_backend(
            "threaded",
            prog,
            plan,
            streams,
            options=RunOptions(
                fault_plan=faults,
                checkpoint_predicate=pred,
            ),
        )
        ref = run_sequential_reference(prog, streams)
        assert output_multiset(run.outputs) == output_multiset(ref)
        assert run.recovery.attempts == 2
        assert run.recovery.checkpoints_taken > 0
        assert pred.seen == 0  # never called directly, only copies


class TestRecoverySoundness:
    def test_sound_plan_accepted(self):
        prog, streams, plan = vb_case()
        assert_recovery_sound(plan, prog)  # barriers depend on everything

    def test_unsound_root_rejected(self):
        """keycounter with 2 keys: reset(0) is independent of key 1's
        tags, so a plan with reset(0) at the root must be rejected."""
        prog = kc.make_program(2)
        itags = [
            ImplTag(kc.inc_tag(0), "i0"),
            ImplTag(kc.inc_tag(1), "i1"),
            ImplTag(kc.reset_tag(1), "r1"),
        ]
        plan = root_and_leaves_plan(
            prog, [ImplTag(kc.reset_tag(0), "r0")], [[t] for t in itags]
        )
        with pytest.raises(RecoveryUnsoundError, match="independent"):
            assert_recovery_sound(plan, prog)

    def test_unsound_plan_rejected_before_running(self):
        prog = kc.make_program(2)
        itags = [
            ImplTag(kc.inc_tag(0), "i0"),
            ImplTag(kc.inc_tag(1), "i1"),
            ImplTag(kc.reset_tag(1), "r1"),
        ]
        rit = ImplTag(kc.reset_tag(0), "r0")
        plan = root_and_leaves_plan(prog, [rit], [[t] for t in itags])
        streams = [
            InputStream(t, (Event(t.tag, t.stream, float(i + 1)),))
            for i, t in enumerate(itags + [rit])
        ]
        faults = FaultPlan(CrashFault(plan.leaves()[0].id, after_events=1))
        with pytest.raises(RecoveryUnsoundError):
            run_on_backend(
                "threaded",
                prog,
                plan,
                streams,
                options=RunOptions(
                    fault_plan=faults,
                    checkpoint_predicate=every_root_join(),
                ),
            )


class TestDeterminism:
    def test_sim_fault_runs_are_reproducible(self):
        """The simulated substrate is deterministic even under faults:
        two identical runs produce identical output *sequences* and
        identical recovery traces."""

        def once():
            prog, streams, plan = vb_case()
            barrier_ts = [e.ts for e in streams[-1].events]
            faults = FaultPlan(
                CrashFault(plan.leaves()[1].id, at_ts=barrier_ts[1] + 0.01)
            )
            run = run_on_backend(
                "sim",
                prog,
                plan,
                streams,
                options=RunOptions(
                    fault_plan=faults,
                    checkpoint_predicate=every_root_join(),
                ),
            )
            rec = run.recovery
            return run.outputs, rec.attempts, [
                (c.worker, c.fault_index, c.events_seen, c.ts) for c in rec.crashes
            ]

        assert once() == once()

    def test_keycounter_single_key_recovery(self):
        """Single-key keycounter: reset depends on every tag, so a
        random-ish plan rooted at the reset is recoverable."""
        rng = random.Random(7)
        prog = kc.make_program(1)
        itags = [ImplTag(kc.inc_tag(0), f"i{s}") for s in range(3)]
        rit = ImplTag(kc.reset_tag(0), "r")
        plan = root_and_leaves_plan(prog, [rit], [[t] for t in itags])
        events = {t: [] for t in itags}
        for t in range(1, 60):
            it = itags[rng.randrange(len(itags))]
            events[it].append(Event(it.tag, it.stream, float(t) + 0.1))
        streams = [
            InputStream(t, tuple(events[t]), heartbeat_interval=5.0) for t in itags
        ]
        resets = tuple(Event(rit.tag, rit.stream, ts) for ts in (15.0, 30.0, 45.0))
        streams.append(InputStream(rit, resets, heartbeat_interval=5.0))
        faults = FaultPlan(CrashFault(plan.leaves()[0].id, at_ts=31.0))
        run = run_on_backend(
            "threaded",
            prog,
            plan,
            streams,
            options=RunOptions(
                fault_plan=faults,
                checkpoint_predicate=every_root_join(),
            ),
        )
        ref = run_sequential_reference(prog, streams)
        assert output_multiset(run.outputs) == output_multiset(ref)
        assert run.recovery.attempts == 2
