"""Run a service from the command line::

    python -m repro.serve --app keycounter --shards 4 --metrics-port 0

prints one JSON line with the listener port, the auth cookie, and the
metrics port, then serves until a client sends ``finish`` or the
process is interrupted.  Drive it with
:func:`repro.serve.connect` (see ``examples/service_mode.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..runtime.options import RunOptions, ServeOptions
from .apps import SERVICE_APPS
from .server import start_service


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__
    )
    parser.add_argument(
        "--app", choices=sorted(SERVICE_APPS), default="keycounter"
    )
    parser.add_argument("--shards", type=int, default=2, help="leaf stream count")
    parser.add_argument("--backend", default="threaded")
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="deploy each epoch across this many cluster nodes "
        "(process backend, TCP data plane)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--cookie", default=None)
    parser.add_argument("--epoch-events", type=int, default=512)
    parser.add_argument("--epoch-idle-ms", type=float, default=50.0)
    parser.add_argument("--ingest-high-watermark", type=int, default=4096)
    parser.add_argument(
        "--metrics-port", type=int, default=None,
        help="serve Prometheus text incl. repro_serve_* gauges (0 = pick)",
    )
    args = parser.parse_args(argv)

    builder = SERVICE_APPS[args.app]
    if args.app == "keycounter":
        app = builder(shards=args.shards)
    else:
        app = builder(n_value_streams=args.shards)

    run = RunOptions(nodes=args.nodes, metrics=args.metrics_port is not None)
    options = ServeOptions(
        backend=args.backend,
        run=run,
        host=args.host,
        port=args.port,
        cookie=args.cookie,
        epoch_events=args.epoch_events,
        epoch_idle_ms=args.epoch_idle_ms,
        ingest_high_watermark=args.ingest_high_watermark,
        metrics_port=args.metrics_port,
    )
    handle = start_service(app.program, app.plan, options=options)
    print(
        json.dumps(
            {
                "app": app.name,
                "host": args.host,
                "port": handle.port,
                "cookie": handle.cookie,
                "metrics_port": handle.metrics_port,
            }
        ),
        flush=True,
    )
    try:
        while not handle.runtime.finished:
            time.sleep(0.2)
        counters = handle.runtime.counters
        print(
            f"service finished: {counters.admitted} admitted, "
            f"{counters.rejected_total} rejected, "
            f"{counters.committed} committed over {counters.epochs} epochs",
            file=sys.stderr,
        )
    except KeyboardInterrupt:
        pass
    finally:
        handle.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
