"""Figure 6: throughput vs latency percentiles at 12 nodes — automatic
Flink vs manually implemented synchronization plans (Flink S-Plan).

Paper shape: automatic Flink saturates early (throughput stalls, latency
explodes), while the S-Plan implementation sustains 4-8x higher rates
at low latency for both page-view join and fraud detection.
"""

from repro.bench import experiments as ex
from repro.bench import publish, render_table


def test_fig6_splan(benchmark):
    data = benchmark.pedantic(lambda: ex.figure6(12), rounds=1, iterations=1)
    for app in ("pageview", "fraud"):
        series = {}
        for system in ("Flink", "Flink S-Plan"):
            pts = data[f"{app}/{system}"]
            series[f"{system} thpt"] = [p.achieved_per_ms for p in pts]
            series[f"{system} p50"] = [p.latency_p50 for p in pts]
            series[f"{system} p90"] = [p.latency_p90 for p in pts]
        text = render_table(
            f"Figure 6 ({'a' if app == 'pageview' else 'b'}) - {app} @12 nodes: "
            "achieved throughput (events/ms) and latency (ms) vs offered rate",
            "offered/ms",
            [round(p.offered_per_ms, 1) for p in data[f"{app}/Flink"]],
            series,
            note="paper shape: S-Plan sustains 4-8x higher throughput at low latency",
        )
        publish(f"fig6_{app}", text)

    for app in ("pageview", "fraud"):
        auto_max = max(p.achieved_per_ms for p in data[f"{app}/Flink"])
        splan_max = max(p.achieved_per_ms for p in data[f"{app}/Flink S-Plan"])
        assert splan_max > 2.0 * auto_max, (app, auto_max, splan_max)
        # At the highest offered rate the automatic implementation's
        # median latency is far above the S-Plan's.
        auto_tail = data[f"{app}/Flink"][-1].latency_p50
        splan_tail = data[f"{app}/Flink S-Plan"][-1].latency_p50
        assert auto_tail > splan_tail, (app, auto_tail, splan_tail)
