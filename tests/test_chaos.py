"""The seeded chaos sweep (repro.chaos) as a tier-1 suite.

Acceptance shape: >= 50 seeded (app, plan, fault-schedule) cases across
the threaded and process runtimes, each recovering from its injected
faults and producing outputs multiset-equal to the sequential
reference, plus a reconfiguration matrix — seeded mid-stream plan
migrations, half of them with crash schedules armed at the same time
(recovery must restore into the then-current plan shape).  Every case
id encodes its full derivation seed, so a failure here reproduces
standalone with

    python -m repro.chaos --seed 20260728 --cases 54 --only <case_id>

for the fault sweep, or

    python -m repro.chaos --seed 20260729 --cases 24 \\
        --modes reconfig,reconfig-crash --only <case_id>

for the reconfiguration matrix, or

    python -m repro.chaos --seed 20260806 --cases 16 --apps value-barrier \\
        --modes faults,reconfig --workloads zipf,flash,straggler \\
        --only <case_id>

for the adversarial-workload matrix (see TESTING.md; the late-arrival
and sessionize families below carry their own seeds the same way).
"""

import pytest

from repro.chaos import (
    APPS,
    ChaosCase,
    build_fault_schedule,
    build_reconfig_schedule,
    build_workload,
    generate_cases,
    run_chaos_case,
)
from repro.runtime import CrashFault, DropHeartbeats

SWEEP_SEED = 20260728
N_CASES = 54  # acceptance floor is 50; a few extra for slack

CASES = generate_cases(
    seed=SWEEP_SEED, n_cases=N_CASES, backends=("threaded", "process")
)

RECONFIG_SEED = 20260729
N_RECONFIG_CASES = 24

RECONFIG_CASES = generate_cases(
    seed=RECONFIG_SEED,
    n_cases=N_RECONFIG_CASES,
    backends=("threaded", "process"),
    modes=("reconfig", "reconfig-crash"),
)

# The adversarial-workload matrix: {zipf, flash, straggler} x {faults,
# reconfig} x {threaded, process} on a single app keeps the stride
# small enough that 16 cases cover every triple (the satellite floor).
ADVERSARIAL_SEED = 20260806
N_ADVERSARIAL_CASES = 16

ADVERSARIAL_CASES = generate_cases(
    seed=ADVERSARIAL_SEED,
    n_cases=N_ADVERSARIAL_CASES,
    backends=("threaded", "process"),
    apps=("value-barrier",),
    modes=("faults", "reconfig"),
    workloads=("zipf", "flash", "straggler"),
)

# Bounded out-of-order delivery gets its own slice (on the app whose
# read-resets are order-sensitive), and the sessionize family runs
# uniform + zipf traffic through both chaos modes.
LATE_CASES = generate_cases(
    seed=ADVERSARIAL_SEED + 1,
    n_cases=4,
    backends=("threaded", "process"),
    apps=("keycounter",),
    modes=("faults", "reconfig"),
    workloads=("late",),
)

SESSIONIZE_CASES = generate_cases(
    seed=ADVERSARIAL_SEED + 2,
    n_cases=8,
    backends=("threaded", "process"),
    apps=("sessionize",),
    modes=("faults", "reconfig"),
    workloads=("uniform", "zipf"),
)

_OUTCOMES = {}


def _outcomes_or_sample(cases, stride):
    """Outcomes for an aggregate assertion: free when the parametrized
    cases all ran in this process (the serial full-suite case), else a
    deterministic every-``stride``-th sample recomputed locally — so
    under pytest-xdist (which scatters the parametrized cases across
    workers) these tests stay cheap instead of re-running whole
    sweeps."""
    if all(c.case_id in _OUTCOMES for c in cases):
        return [_OUTCOMES[c.case_id] for c in cases]
    return [run_chaos_case(c, timeout_s=60.0) for c in cases[::stride]]


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.case_id)
def test_chaos_case_recovers_and_matches_spec(case):
    outcome = run_chaos_case(case, timeout_s=60.0)
    _OUTCOMES[case.case_id] = outcome
    assert outcome.ok, (
        f"{case.case_id}: outputs diverged from the sequential reference "
        f"after fault injection: {outcome.mismatch}"
    )


def test_sweep_composition():
    """The generated sweep actually covers what it claims: both real
    runtimes, every chaos app, and schedules containing crashes."""
    backends = {c.backend for c in CASES}
    assert backends == {"threaded", "process"}
    assert {c.app for c in CASES} == set(APPS)
    assert len(CASES) >= 50
    assert len({c.case_id for c in CASES}) == len(CASES)
    n_crashes = 0
    n_drops = 0
    for case in CASES:
        prog, streams, plan, sync_ts = build_workload(case)
        fp = build_fault_schedule(case, streams, plan, sync_ts)
        n_crashes += sum(1 for f in fp.faults if isinstance(f, CrashFault))
        n_drops += sum(1 for f in fp.faults if isinstance(f, DropHeartbeats))
    assert n_crashes >= len(CASES)  # every case schedules at least one crash
    assert n_drops > 0


def test_sweep_exercised_recovery():
    """Most schedules must have actually fired (crash observed +
    recovery replayed events) — a sweep where faults never trigger
    would be vacuous.  Outcomes are taken from the parametrized cases
    when they all ran in this process (the serial full-suite case:
    free); under xdist or selective runs a bounded deterministic
    sample is recomputed instead."""
    outcomes = _outcomes_or_sample(CASES, stride=5)
    recovered = [o for o in outcomes if o.recovered]
    assert len(recovered) >= len(outcomes) * 0.6
    assert sum(o.replayed_events for o in recovered) > 0
    assert all(o.attempts >= 2 for o in recovered)
    assert sum(o.checkpoints_taken for o in outcomes) > 0


@pytest.mark.parametrize("case", RECONFIG_CASES, ids=lambda c: c.case_id)
def test_reconfig_case_matches_spec(case):
    outcome = run_chaos_case(case, timeout_s=60.0)
    _OUTCOMES[case.case_id] = outcome
    assert outcome.ok, (
        f"{case.case_id}: outputs diverged from the sequential reference "
        f"under mid-stream reconfiguration: {outcome.mismatch}"
    )


def test_reconfig_sweep_composition():
    """The reconfiguration matrix covers what it claims: both real
    runtimes, both elastic modes, every chaos app, and every crash-mode
    case also schedules at least one crash."""
    assert {c.backend for c in RECONFIG_CASES} == {"threaded", "process"}
    assert {c.mode for c in RECONFIG_CASES} == {"reconfig", "reconfig-crash"}
    assert {c.app for c in RECONFIG_CASES} == set(APPS)
    assert len({c.case_id for c in RECONFIG_CASES}) == len(RECONFIG_CASES)
    for case in RECONFIG_CASES:
        prog, streams, plan, sync_ts = build_workload(case)
        sched = build_reconfig_schedule(case, streams, plan, sync_ts, prog)
        assert len(sched.points) >= 1
        if case.mode == "reconfig-crash":
            fp = build_fault_schedule(case, streams, plan, sync_ts)
            assert any(isinstance(f, CrashFault) for f in fp.faults)


def test_reconfig_sweep_exercised_migrations():
    """Most elastic schedules actually migrated (widths changed), and
    the crash-mode cases that crashed recovered into the then-current
    plan — their runs still end on the final migrated width.  Outcomes
    come from the parametrized cases when they all ran in this process;
    under xdist or selective runs a bounded deterministic sample is
    recomputed instead."""
    outcomes = _outcomes_or_sample(RECONFIG_CASES, stride=2)
    migrated = [o for o in outcomes if o.reconfigured]
    assert len(migrated) >= len(outcomes) * 0.6
    assert all(len(o.plan_widths) == o.reconfigs + 1 for o in outcomes)
    assert any(
        o.plan_widths[-1] != o.plan_widths[0] for o in migrated
    ), "every migration was a no-op width change"
    crashed = [o for o in outcomes if o.case.mode == "reconfig-crash" and o.recovered]
    assert crashed, "no crash ever fired during a reconfigured execution"
    assert all(o.attempts >= 2 for o in crashed)


@pytest.mark.parametrize(
    "case",
    ADVERSARIAL_CASES + LATE_CASES + SESSIONIZE_CASES,
    ids=lambda c: c.case_id,
)
def test_adversarial_case_matches_spec(case):
    outcome = run_chaos_case(case, timeout_s=60.0)
    _OUTCOMES[case.case_id] = outcome
    assert outcome.ok, (
        f"{case.case_id}: outputs diverged from the sequential reference "
        f"under the {case.workload} workload: {outcome.mismatch}"
    )


def test_adversarial_sweep_composition():
    """The adversarial matrix covers what it claims: every (workload,
    mode, backend) triple for the skew/burst/straggler shapes, the late
    and sessionize slices likewise, and ids stay unique with the
    workload encoded."""
    triples = {
        (c.workload, c.mode, c.backend) for c in ADVERSARIAL_CASES
    }
    assert triples == {
        (w, m, b)
        for w in ("zipf", "flash", "straggler")
        for m in ("faults", "reconfig")
        for b in ("threaded", "process")
    }
    assert len(ADVERSARIAL_CASES) >= 16
    assert {(c.mode, c.backend) for c in LATE_CASES} == {
        (m, b)
        for m in ("faults", "reconfig")
        for b in ("threaded", "process")
    }
    assert {(c.workload, c.mode, c.backend) for c in SESSIONIZE_CASES} == {
        (w, m, b)
        for w in ("uniform", "zipf")
        for m in ("faults", "reconfig")
        for b in ("threaded", "process")
    }
    all_cases = ADVERSARIAL_CASES + LATE_CASES + SESSIONIZE_CASES
    assert len({c.case_id for c in all_cases}) == len(all_cases)
    for c in all_cases:
        if c.workload != "uniform":
            assert c.case_id.endswith(f"-{c.workload}")


def test_adversarial_sweep_exercised_faults_and_migrations():
    """The adversarial schedules are not vacuous: crashes fired and
    recovered in fault mode, migrations happened in reconfig mode, on
    every workload family."""
    cases = ADVERSARIAL_CASES + LATE_CASES + SESSIONIZE_CASES
    outcomes = _outcomes_or_sample(cases, stride=3)
    recovered = [o for o in outcomes if o.case.mode == "faults" and o.recovered]
    assert recovered, "no adversarial fault schedule ever fired"
    assert sum(o.replayed_events for o in recovered) > 0
    migrated = [
        o for o in outcomes if o.case.mode == "reconfig" and o.reconfigured
    ]
    assert migrated, "no adversarial reconfiguration ever fired"


def test_adversarial_derivations_are_seeded():
    """Same case -> byte-identical streams and schedules, for every
    adversarial family and for sessionize."""
    for workload, app in (
        ("zipf", "value-barrier"),
        ("flash", "value-barrier-echo"),
        ("straggler", "keycounter"),
        ("late", "value-barrier"),
        ("uniform", "sessionize"),
        ("zipf", "sessionize"),
    ):
        case = ChaosCase(
            app=app, backend="threaded", seed=9001, workload=workload
        )
        a = build_workload(case)
        b = build_workload(case)
        assert [s.events for s in a[1]] == [s.events for s in b[1]], (
            f"{workload}/{app} workload derivation is not deterministic"
        )
        assert a[2].pretty() == b[2].pretty()
        fa = build_fault_schedule(case, a[1], a[2], a[3])
        fb = build_fault_schedule(case, b[1], b[2], b[3])
        assert fa.faults == fb.faults


def test_sessionize_rejects_shape_changing_workloads():
    """Flash/straggler/late traffic would change what a 'session' means
    for the sessionize app; the derivation refuses instead of silently
    producing a different program."""
    case = ChaosCase(
        app="sessionize", backend="threaded", seed=1, workload="flash"
    )
    with pytest.raises(ValueError, match="sessionize"):
        build_workload(case)


def test_case_derivation_is_deterministic():
    case = ChaosCase(app="value-barrier", backend="threaded", seed=4242)
    a = build_workload(case)
    b = build_workload(case)
    assert [s.events for s in a[1]] == [s.events for s in b[1]]
    assert a[2].pretty() == b[2].pretty()
    fa = build_fault_schedule(case, a[1], a[2], a[3])
    fb = build_fault_schedule(case, b[1], b[2], b[3])
    assert fa.faults == fb.faults


def test_reconfig_derivation_is_deterministic():
    case = ChaosCase(
        app="keycounter", backend="process", seed=4242, mode="reconfig-crash"
    )
    assert case.case_id.endswith("-reconfig-crash")
    runs = []
    for _ in range(2):
        prog, streams, plan, sync_ts = build_workload(case)
        sched = build_reconfig_schedule(case, streams, plan, sync_ts, prog)
        runs.append(sched.points)
    assert runs[0] == runs[1]


def test_mode_field_keeps_default_case_ids_stable():
    """PR-2 case ids (and their seed streams) must not shift under the
    new mode axis — `--only` repro lines in old failure reports keep
    working."""
    legacy = ChaosCase(app="value-barrier", backend="threaded", seed=7)
    assert legacy.case_id == "value-barrier-threaded-s7"
    assert [c.seed for c in CASES] == [
        c.seed
        for c in generate_cases(
            seed=SWEEP_SEED, n_cases=N_CASES, backends=("threaded", "process")
        )
    ]
