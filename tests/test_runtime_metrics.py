"""The per-worker metrics plane: histogram math, wire round-trips,
cross-worker merging, the piggyback relay, the RunOptions entry points,
and the cluster coordinator's Prometheus endpoint.

The differential class is the plane's most important property: turning
metrics **on changes nothing** — every app produces the same output
multiset with and without instrumentation, on every backend.
"""

import socket
import threading
import time
import urllib.request
import warnings

import pytest

from test_differential import ALL_APPS, _app_case

from repro.apps import value_barrier as vb
from repro.core.semantics import output_multiset
from repro.runtime import (
    DEFAULT_LATENCY_BUCKETS,
    CrashFault,
    FaultPlan,
    LatencyHistogram,
    MetricsConfig,
    MetricsSnapshot,
    RunMetrics,
    RunOptions,
    WorkerMetrics,
    every_root_join,
    get_backend,
    local_nodes,
    run_on_backend,
)

BACKENDS = ("sim", "threaded", "process")


def _small_case(values_per_barrier=40, n_barriers=3, n_value_streams=2):
    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=n_value_streams,
        values_per_barrier=values_per_barrier,
        n_barriers=n_barriers,
    )
    return prog, vb.make_streams(wl), vb.make_plan(prog, wl)


class TestLatencyHistogram:
    def test_bucket_placement_and_overflow(self):
        h = LatencyHistogram((0.001, 0.01, 0.1))
        for v in (0.0005, 0.001):  # inclusive upper edges
            h.observe(v)
        h.observe(0.05)
        h.observe(99.0)  # overflow bucket
        assert h.counts == [2, 0, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(0.0005 + 0.001 + 0.05 + 99.0)

    def test_bounds_must_be_sorted_and_non_empty(self):
        with pytest.raises(ValueError):
            LatencyHistogram(())
        with pytest.raises(ValueError):
            LatencyHistogram((0.1, 0.01))

    def test_percentiles_are_monotone_and_bracketed(self):
        h = LatencyHistogram(DEFAULT_LATENCY_BUCKETS)
        for i in range(1, 1001):
            h.observe(i / 1000.0)  # 1ms .. 1s
        qs = [h.percentile(q) for q in (10, 50, 90, 99, 100)]
        assert qs == sorted(qs)
        assert 0.0 < h.percentile(50) < h.percentile(99)
        # p50 of a uniform 1ms..1s sample sits near .5s, within the
        # coarse-bucket quantization (4 buckets/decade).
        assert 0.2 < h.percentile(50) < 0.9
        assert h.mean == pytest.approx(0.5005, rel=1e-6)

    def test_empty_histogram_is_all_zero(self):
        h = LatencyHistogram()
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0

    def test_merge_requires_same_bounds_and_adds_counts(self):
        a, b = LatencyHistogram((1.0, 2.0)), LatencyHistogram((1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.counts == [1, 1, 1] and a.count == 3
        with pytest.raises(ValueError):
            a.merge(LatencyHistogram((1.0, 3.0)))

    def test_wire_round_trip_is_exact(self):
        h = LatencyHistogram(DEFAULT_LATENCY_BUCKETS)
        for v in (1e-5, 0.003, 0.003, 0.4, 1e4):
            h.observe(v)
        back = LatencyHistogram.from_wire(h.to_wire(), DEFAULT_LATENCY_BUCKETS)
        assert back.counts == h.counts
        assert back.count == h.count
        assert back.sum == pytest.approx(h.sum)
        # The wire form is a sparse scalar tuple (rides the fast frame
        # codec): zero buckets must not appear.
        count, total, sparse = h.to_wire()
        assert len(sparse) == 2 * sum(1 for c in h.counts if c)


class TestSnapshotsAndMerge:
    def _snap(self, worker, events, backlog=0, with_hist=True):
        s = MetricsSnapshot(worker=worker, events_processed=events, max_backlog=backlog)
        if with_hist:
            h = LatencyHistogram(DEFAULT_LATENCY_BUCKETS)
            h.observe(0.01 * (1 + events % 3))
            s.event_latency = h
        return s

    def test_snapshot_wire_round_trip(self):
        s = self._snap("w3", 17, backlog=5)
        s.joins_completed = 4
        back = MetricsSnapshot.from_wire(s.to_wire(), DEFAULT_LATENCY_BUCKETS)
        assert back.worker == "w3"
        assert back.events_processed == 17
        assert back.joins_completed == 4
        assert back.max_backlog == 5
        assert back.event_latency.count == 1
        assert back.join_rtt is None  # None histograms survive as None

    def test_absorb_keeps_the_richer_snapshot(self):
        rm = RunMetrics()
        rm.absorb(self._snap("w1", 100))
        rm.absorb(self._snap("w1", 40))  # stale live piggyback: ignored
        assert rm.per_worker["w1"].events_processed == 100
        rm.absorb(self._snap("w1", 250))  # end-of-run report: wins
        assert rm.per_worker["w1"].events_processed == 250

    def test_merged_totals_counters_and_histograms(self):
        rm = RunMetrics()
        rm.absorb(self._snap("w1", 10, backlog=3))
        rm.absorb(self._snap("w2", 20, backlog=7))
        m = rm.merged()
        assert m.events_processed == 30
        assert m.max_backlog == 7  # high-water, not a sum
        assert m.event_latency.count == 2
        assert rm.p50_latency_s <= rm.p99_latency_s

    def test_prometheus_text_shape(self):
        rm = RunMetrics()
        rm.absorb(self._snap("w1", 10))
        text = rm.prometheus_text()
        assert '# TYPE repro_worker_events_processed gauge' in text
        assert 'repro_worker_events_processed{worker="w1"} 10.0' in text
        assert '# TYPE repro_event_latency_seconds histogram' in text
        assert 'le="+Inf"' in text
        # Cumulative bucket counts end at the total count.
        inf_line = [
            ln for ln in text.splitlines()
            if ln.startswith('repro_event_latency_seconds_bucket{worker="w1",le="+Inf"')
        ]
        assert inf_line and inf_line[0].endswith(" 1")


class TestWorkerMetrics:
    def test_event_latency_needs_an_epoch_and_clamps_negative(self):
        m = WorkerMetrics("w1", MetricsConfig())
        m.observe_event_latency(time.time(), 5.0)  # no epoch: dropped
        assert m.event_latency.count == 0
        cfg = MetricsConfig().with_epoch(100.0)
        m = WorkerMetrics("w1", cfg)
        m.observe_event_latency(100.25, 50.0)  # 0.25s - 0.05s = 0.2s
        m.observe_event_latency(100.0, 900.0)  # arrived "early": clamp to 0
        assert m.event_latency.count == 2
        assert m.event_latency.sum == pytest.approx(0.2)

    def test_maybe_wire_snapshot_is_rate_limited(self):
        m = WorkerMetrics("w1")
        assert m.maybe_wire_snapshot(10.0, interval=0.25) is not None
        assert m.maybe_wire_snapshot(10.1, interval=0.25) is None
        assert m.maybe_wire_snapshot(10.3, interval=0.25) is not None

    def test_subtree_relay_keeps_latest_per_worker(self):
        root = WorkerMetrics("root")
        leaf = WorkerMetrics("w1")
        leaf.events_processed = 5
        root.note_subtree((leaf.wire_snapshot(),))
        leaf.events_processed = 9
        root.note_subtree((leaf.wire_snapshot(),))
        root.note_subtree(None)  # piggyback absent: no-op
        snaps = {s.worker: s for s in root.all_snapshots()}
        assert set(snaps) == {"root", "w1"}
        assert snaps["w1"].events_processed == 9


class TestRunEntryPoints:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_metrics_off_by_default(self, backend):
        prog, streams, plan = _small_case()
        run = run_on_backend(backend, prog, plan, streams)
        assert run.metrics is None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_metrics_on_reports_every_worker(self, backend):
        prog, streams, plan = _small_case()
        run = run_on_backend(
            backend, prog, plan, streams, options=RunOptions(metrics=True)
        )
        m = run.metrics
        assert m is not None
        merged = m.merged()
        assert merged.events_processed > 0
        assert merged.event_latency is not None and merged.event_latency.count > 0
        if backend == "sim":
            assert set(m.per_worker) == {"sim"}
        else:
            # The real substrates report the whole tree (root + leaves),
            # assembled from piggybacked and end-of-run snapshots.
            assert set(m.per_worker) == {n.id for n in plan.workers()}
            assert merged.joins_completed > 0

    def test_recovering_run_merges_per_attempt_metrics(self):
        """A fault run with ``metrics=True`` reports a merged
        RunMetrics with the recovery counters stamped, and keeps one
        snapshot per attempt on ``recovery.attempt_metrics``."""
        prog, streams, plan = _small_case()
        victim = plan.leaves()[0].id
        fp = FaultPlan(CrashFault(victim, at_ts=streams[-1].events[1].ts + 0.01))
        run = run_on_backend(
            "threaded",
            prog,
            plan,
            streams,
            options=RunOptions(
                metrics=True,
                fault_plan=fp,
                checkpoint_predicate=every_root_join(),
            ),
        )
        rec = run.recovery
        assert rec is not None and rec.attempts == 2
        assert run.metrics is not None and run.metrics is rec.metrics
        assert len(rec.attempt_metrics) == rec.attempts
        assert run.metrics.attempts == 2
        assert run.metrics.checkpoints_restored == len(rec.recoveries) == 1
        assert run.metrics.replayed_events == rec.replayed_events > 0
        assert run.metrics.to_json()["recovery"]["attempts"] == 2

    def test_loose_kwargs_raise_and_options_do_not(self):
        prog, streams, plan = _small_case(values_per_barrier=10, n_barriers=2)
        # The PR-6 deprecation grace is over: loose kwargs are a
        # TypeError carrying the migration hint.
        with pytest.raises(TypeError, match=r"RunOptions\(timeout_s=\.\.\.\)"):
            run_on_backend("threaded", prog, plan, streams, timeout_s=60.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_on_backend(
                "threaded", prog, plan, streams, options=RunOptions(timeout_s=60.0)
            )
            get_backend("threaded").run(prog, plan, streams)  # no kwargs: silent


class TestMetricsChangeNothing:
    @pytest.mark.parametrize("app", ALL_APPS)
    def test_outputs_identical_with_metrics_on(self, app):
        prog, streams, plan = _app_case(app)
        plain = run_on_backend("threaded", prog, plan, streams)
        metered = run_on_backend(
            "threaded", prog, plan, streams, options=RunOptions(metrics=True)
        )
        assert output_multiset(metered.outputs) == output_multiset(plain.outputs)
        assert metered.metrics is not None

    def test_process_backend_differential(self):
        prog, streams, plan = _app_case("value_barrier")
        plain = run_on_backend("process", prog, plan, streams)
        metered = run_on_backend(
            "process", prog, plan, streams, options=RunOptions(metrics=True)
        )
        assert output_multiset(metered.outputs) == output_multiset(plain.outputs)


class TestClusterPrometheusEndpoint:
    def test_coordinator_serves_live_scrapes(self):
        """A cluster-mode run with ``metrics_port=`` serves Prometheus
        text from the coordinator *while the run is live*: a background
        poller must see per-worker counters before the run finishes."""
        prog, streams, plan = _small_case(
            values_per_barrier=30, n_barriers=5, n_value_streams=2
        )
        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        port = s.getsockname()[1]
        s.close()

        scrapes = []
        stop = threading.Event()

        def poll():
            while not stop.is_set():
                try:
                    body = urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/metrics", timeout=1
                    ).read().decode()
                    scrapes.append(body)
                except Exception:
                    pass
                time.sleep(0.05)

        t = threading.Thread(target=poll, daemon=True)
        t.start()
        try:
            # pace=20 stretches the ~150ms-of-timestamps input to a few
            # wall seconds so the poller reliably lands mid-run.
            run = run_on_backend(
                "process",
                prog,
                plan,
                streams,
                options=RunOptions(
                    metrics=True,
                    nodes=local_nodes(2),
                    metrics_port=port,
                    pace=20.0,
                    timeout_s=120.0,
                ),
            )
        finally:
            stop.set()
            t.join(timeout=2)

        assert len(run.outputs) == 5
        assert run.metrics is not None
        good = [b for b in scrapes if "repro_worker_events_processed" in b]
        assert good, f"no live scrape carried worker counters ({len(scrapes)} scrapes)"
        assert 'le="+Inf"' in good[-1]  # histograms exported too
