"""Elastic scaling end to end: re-plan a running stream without
stopping it.

The value-barrier application starts on a deliberately narrow plan
(2 leaves).  A queue-depth auto-scaler watches the cluster-wide
backlog the root observes at every join — leaves piggyback their
mailbox depth on join responses — and, when it crosses the high
watermark, quiesces the runtime at the next root join.  The joined
root state at that instant is a *consistent snapshot* (the same
fork/join property crash recovery exploits), so the driver forks it
down a wider plan with the program's own fork primitives and replays
the input suffix there.  Near the drained tail the low watermark
scales back in.

A second, fully deterministic schedule shows planned reconfiguration
points (fire at a chosen root join) — the form the seeded chaos suite
sweeps.  Both runs must be multiset-equal to the sequential
specification: outputs across a migration are exactly-once.
"""

from repro.apps import value_barrier as vb
from repro.core.semantics import output_multiset
from repro.plans import plan_width, repartition_plan
from repro.runtime import (
    AutoScaler,
    ReconfigPoint,
    ReconfigSchedule,
    RunOptions,
    run_on_backend,
    run_sequential_reference,
)


def describe(tag: str, run, reference) -> bool:
    rec = run.reconfig
    print(f"\n[{tag}]")
    for step in rec.reconfigurations:
        print(
            f"  migrated {step.from_leaves} -> {step.to_leaves} leaves "
            f"({step.reason}) at ts={step.ts:.2f}, "
            f"queue depth {step.queue_depth}, "
            f"migration pause {step.pause_s * 1e3:.2f} ms"
        )
    widths = " -> ".join(str(p.leaves) for p in rec.phases)
    print(f"  phases (leaf widths): {widths}")
    match = output_multiset(run.outputs) == output_multiset(reference)
    print(f"  outputs match sequential spec: {match}")
    return match


def main() -> None:
    prog = vb.make_program()
    workload = vb.make_workload(
        n_value_streams=6, values_per_barrier=60, n_barriers=6
    )
    streams = vb.make_streams(workload)
    wide = vb.make_plan(prog, workload)
    narrow = repartition_plan(prog, wide, 2)
    reference = run_sequential_reference(prog, streams)
    print(f"starting plan ({plan_width(narrow)} leaves):")
    print(narrow.pretty())

    # 1) Load-driven: scale out while the backlog is deep, back in
    #    near the tail.
    auto = ReconfigSchedule(
        autoscaler=AutoScaler(
            high_watermark=50, low_watermark=5, factor=2, max_reconfigs=3
        )
    )
    run = run_on_backend(
        "threaded", prog, narrow, streams, options=RunOptions(reconfig_schedule=auto)
    )
    all_ok = describe("auto-scaler (queue-depth watermarks)", run, reference)

    # 2) Planned: narrow at the second barrier, widen back at the
    #    fourth — deterministic, reproducible, seedable.
    planned = ReconfigSchedule(
        ReconfigPoint(after_joins=2, to_leaves=3),
        ReconfigPoint(at_ts=streams[-1].events[3].ts - 0.001, to_leaves=6),
    )
    run2 = run_on_backend(
        "threaded", prog, narrow, streams, options=RunOptions(reconfig_schedule=planned)
    )
    all_ok = describe("planned points (seeded-schedule form)", run2, reference) and all_ok
    if not all_ok:
        raise SystemExit(1)  # checked, not asserted — and honest to $?


if __name__ == "__main__":
    main()
