"""Per-key sessionization with timeout-triggered flushes — the seventh
app family (ROADMAP item 5), stressing a synchronization shape the
paper's six do not: *time-gap* state machines per key, closed either by
the key's own next activity or by a global flush tick.

Input: one *activity* stream per key and one *flush* stream of timer
ticks.  A session is a maximal run of same-key activities in which no
gap between consecutive events strictly exceeds the timeout.  A closed
session is emitted **exactly once** as ``("session", key, start_ts,
end_ts, count)``, in one of two ways:

* *lazily*, when the key's next activity arrives more than ``timeout``
  after the session's last event (the new activity opens a fresh
  session), or
* *eagerly*, when a flush tick arrives and the session has been idle
  strictly longer than the timeout (timeout-triggered flush — the
  reason real sessionizers need timers at all: a key that goes quiet
  forever would otherwise never emit).

The boundary is strict on both paths: a gap of **exactly** ``timeout``
keeps the session open.  Sessions still open when the input ends are
never emitted (there is no end-of-stream hook in the DGS model; the
generator ends with a closing flush past the horizon so finite
workloads drain completely).

Dependence: ``act(k)`` depends on itself (gap logic is order-sensitive
within a key) and on the flush tag; activities of different keys are
independent (the per-key parallelism); the flush tag depends on
everything — it is the globally-synchronizing tag, so rooted plans are
sound for checkpoint recovery and live reconfiguration.  ``fork``
splits open sessions by key ownership; ``join`` merges the disjoint
maps — the re-shardable shape (:func:`make_plan` builds it via
:func:`~repro.plans.generation.rooted_shards_plan`, and
:func:`~repro.plans.morph.repartition_plan` regroups the same per-key
components at any width in ``[1, n_keys]`` mid-run).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..core.dependence import DependenceRelation
from ..core.events import Event, ImplTag
from ..core.predicates import TagPredicate
from ..core.program import DGSProgram, single_state_program
from ..data.adversarial import zipf_weights
from ..plans.generation import rooted_shards_plan
from ..plans.plan import SyncPlan
from ..runtime.runtime import InputStream

FLUSH_TAG = "flush"

#: key -> (start_ts, last_ts, count) of the key's open session.
SessionState = Dict[int, Tuple[float, float, int]]


def act_tag(key: int):
    return ("act", key)


def tag_universe(n_keys: int) -> List[Any]:
    return [act_tag(k) for k in range(n_keys)] + [FLUSH_TAG]


def depends_fn(t1, t2) -> bool:
    if FLUSH_TAG in (t1, t2):
        return True
    return t1 == t2  # same key: self-dependent (gap logic is ordered)


def _closed(key: int, session: Tuple[float, float, int]) -> Tuple:
    start, last, count = session
    return ("session", key, start, last, count)


def make_update(timeout_ms: float):
    """The sequential update for a given timeout (pure; state is never
    mutated in place)."""

    def update(state: SessionState, event: Event) -> Tuple[SessionState, List[Any]]:
        if event.tag == FLUSH_TAG:
            outs: List[Any] = []
            new: SessionState = {}
            for key in sorted(state):
                session = state[key]
                if event.ts - session[1] > timeout_ms:
                    outs.append(_closed(key, session))
                else:
                    new[key] = session
            return new, outs
        _, key = event.tag
        open_session = state.get(key)
        new = dict(state)
        if open_session is None:
            new[key] = (event.ts, event.ts, 1)
            return new, []
        start, last, count = open_session
        if event.ts - last > timeout_ms:
            # Strictly past the timeout: the old session closes once,
            # here; the new activity opens a fresh one.
            new[key] = (event.ts, event.ts, 1)
            return new, [_closed(key, open_session)]
        new[key] = (start, event.ts, count + 1)
        return new, []

    return update


def _fork(
    state: SessionState, pred1: TagPredicate, pred2: TagPredicate
) -> Tuple[SessionState, SessionState]:
    """The side able to process a key's activities takes that key's
    open session; keys owned by neither default right (mirroring the
    paper's Figure-1 pseudocode convention)."""
    s1: SessionState = {}
    s2: SessionState = {}
    for key, session in state.items():
        if act_tag(key) in pred1:
            s1[key] = session
        else:
            s2[key] = session
    return s1, s2


def _join(s1: SessionState, s2: SessionState) -> SessionState:
    # Forks split keys disjointly, so the merge is a disjoint union
    # (left-biased for safety, like pageview's metadata merge).
    out = dict(s2)
    out.update(s1)
    return out


def state_eq(a: SessionState, b: SessionState) -> bool:
    return a == b


def make_program(n_keys: int = 4, *, timeout_ms: float = 5.0) -> DGSProgram:
    tags = tag_universe(n_keys)
    return single_state_program(
        name=f"sessionize[{n_keys},timeout={timeout_ms}]",
        tags=tags,
        depends=DependenceRelation.from_function(tags, depends_fn),
        init=dict,
        update=make_update(timeout_ms),
        fork=_fork,
        join=_join,
    )


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SessionizeWorkload:
    """Per-key activity streams + the flush-tick stream."""

    act_streams: Dict[ImplTag, Tuple[Event, ...]]
    flush_stream: Tuple[Event, ...]
    flush_itag: ImplTag
    timeout_ms: float

    @property
    def total_events(self) -> int:
        return sum(len(v) for v in self.act_streams.values()) + len(
            self.flush_stream
        )

    def all_streams(self) -> List[Tuple[ImplTag, Tuple[Event, ...]]]:
        pairs = list(self.act_streams.items())
        pairs.append((self.flush_itag, self.flush_stream))
        return pairs


def make_workload(
    *,
    n_keys: int = 4,
    events_per_key: int = 30,
    timeout_units: int = 4,
    rate_per_ms: float = 10.0,
    n_flushes: int = 3,
    seed: int = 0,
    skew_alpha: float | None = None,
) -> SessionizeWorkload:
    """A seeded sessionization workload on the collision-free lattice.

    All activity gaps are whole multiples of the event period: a
    within-session gap draws ``1..timeout_units`` periods (a draw of
    exactly ``timeout_units`` lands *on* the boundary — gap == timeout
    keeps the session open, so the boundary path is exercised by
    construction) and a session break draws strictly more.  The timeout
    is ``timeout_units * period`` exactly.  Key ``k``'s timestamps sit
    on ``{m * period + phase_k}`` with distinct fractional phases;
    flush ticks sit on whole multiples of the period — no two events in
    the workload ever collide.  The final flush lands past every
    session's timeout horizon, so a finite workload drains completely
    (every session is emitted exactly once).

    ``skew_alpha`` skews the per-key event counts by a Zipf draw (head
    keys get most of the traffic) while keeping every key non-empty.
    """
    if n_keys < 1:
        raise ValueError(f"need at least one key, got {n_keys}")
    if events_per_key < 1:
        raise ValueError(f"events_per_key must be >= 1, got {events_per_key}")
    if timeout_units < 2:
        raise ValueError(
            f"timeout_units must be >= 2, got {timeout_units} — with 1 the "
            "within-session gap and the boundary coincide"
        )
    rng = random.Random(seed)
    period = 1.0 / rate_per_ms
    timeout_ms = timeout_units * period
    counts = [events_per_key] * n_keys
    if skew_alpha is not None:
        total = events_per_key * n_keys
        weights = zipf_weights(n_keys, skew_alpha)
        counts = [max(1, round(w * total)) for w in weights]
    streams: Dict[ImplTag, Tuple[Event, ...]] = {}
    last_ts = 0.0
    for k in range(n_keys):
        itag = ImplTag(act_tag(k), f"a{k}")
        phase = (k + 1) * period / (n_keys + 2)
        events = []
        units = rng.randint(1, timeout_units)
        for i in range(counts[k]):
            if i > 0:
                if rng.random() < 0.25:
                    units += timeout_units + rng.randint(1, 3)  # break
                else:
                    units += rng.randint(1, timeout_units)  # same session
            ts = 1.0 + units * period + phase
            events.append(Event(itag.tag, itag.stream, ts, None))
        streams[itag] = tuple(events)
        last_ts = max(last_ts, events[-1].ts)
    flush_itag = ImplTag(FLUSH_TAG, "f")
    span_units = int(last_ts / period) + 1
    gap = max(1, span_units // (n_flushes + 1))
    flushes = [
        Event(FLUSH_TAG, "f", (m + 1) * gap * period) for m in range(n_flushes)
    ]
    # The closing flush: strictly past every open session's horizon.
    flushes.append(
        Event(FLUSH_TAG, "f", (span_units + timeout_units + 2) * period)
    )
    return SessionizeWorkload(streams, tuple(flushes), flush_itag, timeout_ms)


def make_streams(
    workload: SessionizeWorkload, *, heartbeat_interval: float | None = 1.0
) -> List[InputStream]:
    return [
        InputStream(itag, events, heartbeat_interval=heartbeat_interval)
        for itag, events in workload.all_streams()
    ]


def make_plan(
    program: DGSProgram,
    workload: SessionizeWorkload,
    *,
    n_shards: int | None = None,
    shape: str = "balanced",
) -> SyncPlan:
    """The rooted re-shardable instance: flush ticks at the root, the
    per-key activity streams dealt across ``n_shards`` leaves (default
    one leaf per key).  Because flushes synchronize globally and each
    key is its own dependence component, the plan checkpoints at root
    joins and re-shards to any width in ``[1, n_keys]`` mid-run."""
    return rooted_shards_plan(
        program,
        [workload.flush_itag],
        [[itag] for itag in workload.act_streams],
        n_shards=n_shards,
        shape=shape,
    )
