"""Ready-made service instances of the paper's applications.

A :class:`ServiceApp` bundles what the service tier needs: a program,
a rooted plan whose root tags synchronize globally (so epochs
checkpoint at root joins — the service's commit points), and a
deterministic generator of globally timestamp-ordered events
(root-synchronizing traffic interleaved at a fixed cadence).  The
bundles feed the CLI (``python -m repro.serve``), the service example,
and the differential tests — which check a served run's committed
outputs against :func:`spec_outputs`, the same sequential-reference
oracle every other execution path in this repo is held to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from ..apps import keycounter, value_barrier
from ..core.events import Event, ImplTag
from ..core.program import DGSProgram
from ..plans.generation import root_and_leaves_plan
from ..plans.plan import SyncPlan
from ..runtime.runtime import InputStream, run_sequential_reference


@dataclass(frozen=True)
class ServiceApp:
    """One servable application instance."""

    name: str
    program: DGSProgram
    plan: SyncPlan
    #: ``make_events(count, start_ts=0.0)`` -> globally ts-ordered
    #: events (one timestamp unit apart, root traffic interleaved).
    make_events: Callable[..., List[Event]]


def keycounter_app(
    num_keys: int = 1, shards: int = 2, reset_every: int = 25
) -> ServiceApp:
    """Figure 1's key counters: increments dealt round-robin across
    ``shards`` leaf streams, read-resets (the root synchronizers and
    output producers) every ``reset_every`` events."""
    program = keycounter.make_program(num_keys)
    plan = root_and_leaves_plan(
        program,
        [ImplTag(keycounter.reset_tag(k), "r") for k in range(num_keys)],
        [
            [ImplTag(keycounter.inc_tag(k), f"i{s}") for k in range(num_keys)]
            for s in range(shards)
        ],
    )

    def make_events(count: int, start_ts: float = 0.0) -> List[Event]:
        events: List[Event] = []
        ts = start_ts
        incs = 0
        for i in range(count):
            ts += 1.0
            if (i + 1) % reset_every == 0:
                key = (i // reset_every) % num_keys
                events.append(Event(keycounter.reset_tag(key), "r", ts, None))
            else:
                events.append(
                    Event(
                        keycounter.inc_tag(incs % num_keys),
                        f"i{(incs // num_keys) % shards}",
                        ts,
                        1,
                    )
                )
                incs += 1
        return events

    return ServiceApp(f"keycounter[{num_keys}x{shards}]", program, plan, make_events)


def value_barrier_app(
    n_value_streams: int = 2, barrier_every: int = 25
) -> ServiceApp:
    """Section 4.1's event-based windowing: per-window sums of values,
    barriers (the root synchronizers) every ``barrier_every`` events."""
    program = value_barrier.make_program()
    plan = root_and_leaves_plan(
        program,
        [ImplTag(value_barrier.BARRIER_TAG, "b")],
        [[ImplTag(value_barrier.VALUE_TAG, f"v{s}")] for s in range(n_value_streams)],
    )

    def make_events(count: int, start_ts: float = 0.0) -> List[Event]:
        events: List[Event] = []
        ts = start_ts
        values = 0
        for i in range(count):
            ts += 1.0
            if (i + 1) % barrier_every == 0:
                events.append(Event(value_barrier.BARRIER_TAG, "b", ts, None))
            else:
                events.append(
                    Event(
                        value_barrier.VALUE_TAG,
                        f"v{values % n_value_streams}",
                        ts,
                        1 + (values % 7),
                    )
                )
                values += 1
        return events

    return ServiceApp(
        f"value-barrier[{n_value_streams}]", program, plan, make_events
    )


#: CLI/test registry: name -> builder (keyword arguments per builder).
SERVICE_APPS: Dict[str, Callable[..., ServiceApp]] = {
    "keycounter": keycounter_app,
    "value-barrier": value_barrier_app,
}


def spec_outputs(program: DGSProgram, events: List[Event]) -> List[Any]:
    """The sequential-reference outputs for an admitted event set: the
    oracle a served run's committed log must match as a multiset."""
    by_itag: Dict[ImplTag, List[Event]] = {}
    for event in events:
        by_itag.setdefault(event.itag, []).append(event)
    streams = [
        InputStream(itag, tuple(evs))
        for itag, evs in sorted(by_itag.items(), key=lambda kv: repr(kv[0]))
    ]
    return run_sequential_reference(program, streams)
