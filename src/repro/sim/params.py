"""Calibrated simulator constants.

All times are in **milliseconds**.  The defaults are calibrated so that
relative throughput/latency shapes match the paper's AWS m6g.medium
(1-core) cluster results; see EXPERIMENTS.md for the calibration notes.
Absolute numbers are *not* the reproduction target (the paper itself
declares cross-system absolute throughput non-comparable).

The parameters are grouped in an immutable dataclass so experiments can
run with explicit, documented variations (e.g. the Timely-like engine
uses a larger batch size, which amortizes ``recv_overhead_ms``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SimParams:
    """Cost model for hosts and links.

    Attributes:
        cpu_per_event_ms: CPU time to run one application ``update``.
            Default 0.002 ms -> a 1-core host caps at 500 events/ms,
            matching the order of magnitude of the paper's per-node
            throughput.
        recv_overhead_ms: CPU time to deserialize/dispatch one incoming
            *remote* message (amortized across a batch if the message
            carries several events).
        send_overhead_ms: CPU time to serialize/enqueue one outgoing
            remote message; charged to the sender after its handler.
        local_latency_ms: delivery delay between actors on one host.
        remote_latency_ms: one-way network delay between hosts
            (calibrated to same-AZ AWS, ~0.2 ms; the paper's m6g
            instances all sit in us-east-2).
        state_transfer_ms_per_unit: extra cost for messages carrying
            state (joins/forks), per unit of state size.
        bytes_per_event: accounting constant for network-load metrics.
        bytes_per_state_unit: accounting constant for state transfers.
    """

    cpu_per_event_ms: float = 0.002
    recv_overhead_ms: float = 0.001
    send_overhead_ms: float = 0.001
    local_latency_ms: float = 0.005
    remote_latency_ms: float = 0.2
    state_transfer_ms_per_unit: float = 0.0002
    bytes_per_event: int = 64
    bytes_per_state_unit: int = 16

    def with_(self, **kwargs) -> "SimParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_PARAMS = SimParams()
