"""Figure 10 (Appendix D.1): Flumina synchronization latency.

(a) Latency grows with the number of workers (deeper trees, more
    messages per barrier) and is worse for lower value:barrier ratios
    (more frequent synchronization).
(b) Latency is high when heartbeats are very sparse (mailboxes release
    events in big batches only at barriers) and flat across the
    ~10-1000 heartbeats-per-barrier range.
"""

from conftest import quick

from repro.bench import experiments as ex
from repro.bench import bench_record, publish, publish_json, render_table

QUICK = quick()

WORKERS = (5, 10, 20) if QUICK else (5, 10, 20, 30, 40)
RATIOS = (100, 1000)
HB_RATES = (1, 10, 100) if QUICK else (1, 5, 10, 50, 100, 500, 1000)


def test_fig10a_latency_vs_workers(benchmark):
    data = benchmark.pedantic(
        lambda: ex.figure10a(WORKERS, RATIOS), rounds=1, iterations=1
    )
    series = {}
    for ratio, pts in data.items():
        series[f"vb={ratio} p50"] = [p50 for _, _, p50, _ in pts]
        series[f"vb={ratio} p90"] = [p90 for _, _, _, p90 in pts]
    text = render_table(
        "Figure 10 (a) - Flumina latency (ms) vs number of workers",
        "#workers",
        list(WORKERS),
        series,
        note="paper shape: latency grows ~linearly with workers; worse for low vb-ratio",
    )
    publish("fig10a_latency_workers", text)
    publish_json(
        "fig10a_latency_workers",
        bench_record(
            "fig10a_latency_workers",
            config={"workers": list(WORKERS), "vb_ratios": list(RATIOS)},
            metrics={
                f"vb_{ratio}": {
                    str(w): {"p50_ms": p50, "p90_ms": p90}
                    for (w, _, p50, p90) in pts
                }
                for ratio, pts in data.items()
            },
        ),
    )

    for ratio, pts in data.items():
        p50s = [p50 for _, _, p50, _ in pts]
        # Monotone-ish growth: the largest tree is slower than the smallest.
        assert p50s[-1] > p50s[0], (ratio, p50s)
    # Lower vb-ratio (more frequent syncs) has the higher latency at
    # the largest worker count (the paper's vb=100 line breaks down
    # first).
    last = {ratio: pts[-1][2] for ratio, pts in data.items()}
    assert last[100] > 1.5 * last[1000]


def test_fig10b_latency_vs_heartbeat_rate(benchmark):
    data = benchmark.pedantic(
        lambda: ex.figure10b(HB_RATES, (1000,)), rounds=1, iterations=1
    )
    pts = data[1000]
    series = {
        "p10": [p10 for _, p10, _, _ in pts],
        "p50": [p50 for _, _, p50, _ in pts],
        "p90": [p90 for _, _, _, p90 in pts],
    }
    text = render_table(
        "Figure 10 (b) - Flumina latency (ms) vs heartbeat rate (per barrier)",
        "hb/barrier",
        [hb for hb, _, _, _ in pts],
        series,
        note="paper shape: high latency at very low heartbeat rates, flat over ~10-1000",
    )
    publish("fig10b_latency_heartbeats", text)

    p50 = {hb: v for hb, _, v, _ in pts}
    rates = sorted(p50)
    # Very sparse heartbeats hurt latency badly (mailboxes only flush
    # at barriers)...
    assert p50[rates[0]] > 3.0 * p50[rates[-1]]
    # ...and latency is monotone non-increasing in the heartbeat rate
    # over the measured range (the paper's stable 10-1000 plateau).
    mids = [p50[r] for r in rates]
    assert all(a >= b * 0.8 for a, b in zip(mids, mids[1:]))
