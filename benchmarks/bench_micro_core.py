"""Microbenchmarks of the core machinery (wall-clock, pytest-benchmark):
simulation kernel, mailbox selective reordering, plan generation and
validation, the sequential spec executor, the wire codec, and the
threaded-vs-process runtime comparison.

These are not paper artifacts; they track the hot paths of every
simulated experiment in this repository, plus the one genuinely
hardware-dependent claim: that the process runtime escapes the GIL.
"""

import random
import time

from conftest import quick

from repro import RunOptions
from repro.apps import keycounter as kc
from repro.apps import value_barrier as vb
from repro.bench import (
    BenchConfig,
    available_cores,
    backend_speedup,
    bench_record,
    compare_transports,
    publish,
    publish_json,
    render_table,
)
from repro.bench import experiments as ex
from repro.core import DependenceRelation, Event, ImplTag
from repro.plans import is_p_valid, random_valid_plan
from repro.runtime import Mailbox
from repro.runtime.messages import EventMsg
from repro.runtime.wire import (
    coalesce_event_runs,
    decode_batch,
    encode_batch,
    pack_frame,
    unpack_frame,
)
from repro.sim import Simulator


def test_sim_kernel_schedule_run(benchmark):
    def run():
        sim = Simulator()
        for i in range(2000):
            sim.schedule_at(float(i % 97), lambda: None)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 2000


def test_mailbox_insert_release(benchmark):
    uni = ["v", "b"]
    dep = DependenceRelation(uni, {"b": ["b", "v"]})
    v0, v1, b = ImplTag("v", 0), ImplTag("v", 1), ImplTag("b", "s")

    def run():
        mb = Mailbox([v0, v1, b], dep)
        released = 0
        for t in range(1, 500):
            released += len(mb.insert(v0, Event("v", 0, float(t)).order_key, t))
            released += len(mb.insert(v1, Event("v", 1, t + 0.5).order_key, t))
            if t % 50 == 0:
                released += len(mb.insert(b, Event("b", "s", t + 0.25).order_key, t))
            if t % 10 == 0:
                released += len(mb.advance(b, Event("b", "s", t + 0.26).order_key))
        return released

    assert benchmark(run) > 0


def test_sequential_spec_throughput(benchmark):
    prog = kc.make_program(4)
    rng = random.Random(0)
    tags = sorted(prog.tags, key=repr)
    events = [
        Event(tags[rng.randrange(len(tags))], 0, float(t)) for t in range(5000)
    ]

    def run():
        return len(prog.spec(events))

    assert benchmark(run) >= 0


def test_random_plan_generation_and_validation(benchmark):
    prog = kc.make_program(4)
    itags = [ImplTag(t, s) for t in sorted(prog.tags, key=repr) for s in range(3)]

    def run():
        plan = random_valid_plan(prog, itags, random.Random(42))
        return is_p_valid(plan, prog)

    assert benchmark(run)


def test_wire_codec_roundtrip(benchmark):
    """Round-trip throughput of the codec layers on producer-shaped
    traffic (string tag/stream, float ts, int payload): the tuple
    codec the queue transport ships, the struct-packed frame codec the
    stream transports ship, and the columnar run path (``runs=True``)
    where consecutive same-route events stay packed arrays end to end
    instead of exploding into per-event objects.  Emits the gated
    BENCH_wire_codec.json record — the frame codec is the process
    runtime's hot path, so a regression here is a transport
    regression.  The run path must hold a >= 5x advantage over
    per-event decode: that multiple is the whole point of carrying
    columnar runs through the data plane."""
    msgs = [
        EventMsg(Event("value", "v%d" % (i // 500), float(i), payload=i * 3))
        for i in range(2000)
    ]
    assert unpack_frame(pack_frame(msgs)) == msgs
    assert (
        sum(len(r) for r in unpack_frame(pack_frame(msgs), runs=True)) == 2000
    )

    def run():
        return len(unpack_frame(pack_frame(msgs)))

    assert benchmark(run) == 2000

    def rate(fn, reps: int = 4, rounds: int = 5) -> float:
        # Best-of-rounds: the gateable number is the machine's capability,
        # not the scheduler's mood during one slice.
        best = 0.0
        for _ in range(rounds):
            t0 = time.perf_counter()
            for _ in range(reps):
                fn()
            best = max(best, len(msgs) * reps / (time.perf_counter() - t0))
        return best

    frame_rate = rate(lambda: unpack_frame(pack_frame(msgs)))
    tuple_rate = rate(lambda: decode_batch(encode_batch(msgs)))
    # The run path ships the same 2000 events as four columnar runs:
    # pack once from coalesced runs, decode without materializing a
    # single Event object.
    runs = coalesce_event_runs(msgs, max_run=512)
    run_rate = rate(lambda: unpack_frame(pack_frame(runs), runs=True))
    run_speedup = run_rate / frame_rate if frame_rate > 0 else float("nan")
    publish_json(
        "wire_codec",
        bench_record(
            "wire_codec",
            config={"messages": len(msgs), "shape": "event str-tag/str-stream f-ts i-payload"},
            metrics={
                "frame_roundtrip_msgs_per_s": round(frame_rate),
                "tuple_roundtrip_msgs_per_s": round(tuple_rate),
                "run_roundtrip_msgs_per_s": round(run_rate),
                "run_vs_per_event": round(run_speedup, 2),
            },
            gate={
                "frame_roundtrip_msgs_per_s": "higher",
                "tuple_roundtrip_msgs_per_s": "higher",
                "run_roundtrip_msgs_per_s": "higher",
            },
        ),
    )
    assert run_speedup >= 5.0, (
        f"columnar run decode reached only {run_speedup:.1f}x the "
        "per-event frame path (floor: 5x); the batch fast path has "
        "regressed into object materialization"
    )


def test_threaded_vs_process_runtime(benchmark):
    """The GIL-escape measurement: same program, same plan, same
    streams on the threaded and the process runtime, wall clock.

    On a multi-core host the full-size run must reach >= 1.5x the
    threaded throughput on the value-barrier workload (the paper's
    parallel-speedup claim on a real substrate).  The ratio is only
    *reported* on a single core (no parallelism to win) and under
    --smoke/quick (the shrunk workload is a few ms of compute, where
    constant IPC overhead makes the ratio noise, not signal).
    """
    QUICK = quick()
    n_workers = 2 if QUICK else 4
    data = benchmark.pedantic(
        lambda: ex.runtime_backend_comparison(
            n_workers=n_workers,
            values_per_barrier=100 if QUICK else 400,
            n_barriers=2 if QUICK else 3,
            spin=150 if QUICK else 600,
            config=BenchConfig(repeats=1 if QUICK else 2),
        ),
        rounds=1,
        iterations=1,
    )
    apps = list(data)
    speedups = {app: backend_speedup(data[app].points) for app in apps}
    text = render_table(
        "Threaded vs process runtime: wall-clock throughput (events/s)",
        "app",
        apps,
        {
            "threaded ev/s": [data[a].events_per_s("threaded") for a in apps],
            "process ev/s": [data[a].events_per_s("process") for a in apps],
            "speedup": [speedups[a]["process"] for a in apps],
        },
        note=(
            f"cores={available_cores()}, "
            f"workers={n_workers}, pipe transport, adaptive batching; "
            "outputs multiset-verified"
        ),
    )
    publish("runtime_threaded_vs_process", text)
    publish_json(
        "runtime_threaded_vs_process",
        bench_record(
            "runtime_threaded_vs_process",
            config={
                "workers": n_workers,
                "quick": QUICK,
                "transport": "pipe",
                "batching": "adaptive",
            },
            metrics={
                app: {
                    "threaded_events_per_s": round(data[app].events_per_s("threaded")),
                    "process_events_per_s": round(data[app].events_per_s("process")),
                    "speedup": round(speedups[app]["process"], 3),
                }
                for app in apps
            },
        ),
    )

    cores = available_cores()
    if cores >= 2 and not QUICK:
        ratio = speedups["Event Win."]["process"]
        assert ratio >= 1.5, (
            f"process runtime only reached {ratio:.2f}x the threaded "
            f"throughput on {cores} cores (expected >= 1.5x)"
        )


def test_pipe_vs_queue_transport(benchmark):
    """The transport claim: the framed-pipe data plane with adaptive
    batching must beat the legacy ``multiprocessing.Queue`` transport
    on a communication-bound workload (trivial per-event compute, so
    wall clock is dominated by message passing).

    On a multi-core host the full-size run must reach >= 1.3x the
    queue transport's throughput.  The ratio is only *reported* on a
    single core and under --smoke/quick (at smoke sizes process
    startup dominates and the ratio is noise, not signal).  Outputs
    are multiset-verified across transports inside
    :func:`compare_transports`."""
    QUICK = quick()
    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=2 if QUICK else 4,
        values_per_barrier=300 if QUICK else 4000,
        n_barriers=2 if QUICK else 4,
    )
    streams = vb.make_streams(wl)
    plan = vb.make_plan(prog, wl)
    configs = {
        "queue fixed(64)": RunOptions(transport="queue", batch_size=64),
        "pipe fixed(64)": RunOptions(transport="pipe", batch_size=64),
        "pipe adaptive": RunOptions(transport="pipe"),
    }
    res = benchmark.pedantic(
        lambda: compare_transports(
            # Best-of-2 even under --smoke: the pipe-adaptive number is
            # CI's gated metric, so one unlucky scheduler slice must
            # not become the recorded capability.
            prog, plan, streams, configs=configs,
            config=BenchConfig(repeats=2 if QUICK else 3),
        ),
        rounds=1,
        iterations=1,
    )
    points = res.points
    labels = list(points)
    queue_eps = points["queue fixed(64)"].events_per_s
    pipe_eps = points["pipe adaptive"].events_per_s
    ratio = pipe_eps / queue_eps if queue_eps > 0 else float("nan")
    text = render_table(
        "Process-backend transports: wall-clock throughput (events/s)",
        "transport",
        labels,
        {
            "events/s": [points[lb].events_per_s for lb in labels],
            "vs queue": [
                points[lb].events_per_s / queue_eps if queue_eps > 0 else 0.0
                for lb in labels
            ],
        },
        note=(
            f"cores={available_cores()}, value-barrier, trivial updates "
            "(communication-bound); outputs multiset-verified"
        ),
    )
    publish("transport_pipe_vs_queue", text)
    publish_json(
        "transport_pipe_vs_queue",
        bench_record(
            "transport_pipe_vs_queue",
            config={
                "quick": QUICK,
                "events": points["pipe adaptive"].events,
                "configs": {
                    k: f"transport={v.transport} batch={v.batch_size}"
                    for k, v in configs.items()
                },
            },
            metrics={
                "queue_events_per_s": round(queue_eps),
                "pipe_adaptive_events_per_s": round(pipe_eps),
                "pipe_fixed_events_per_s": round(points["pipe fixed(64)"].events_per_s),
                "speedup_pipe_vs_queue": round(ratio, 3),
            },
            gate={"pipe_adaptive_events_per_s": "higher"},
        ),
    )

    cores = available_cores()
    if cores >= 2 and not QUICK:
        assert ratio >= 1.3, (
            f"pipe transport only reached {ratio:.2f}x the queue transport's "
            f"throughput on {cores} cores (expected >= 1.3x)"
        )


def test_consistency_check_speed(benchmark):
    from repro.core import check_consistency

    prog = kc.make_program(2)
    rng = random.Random(1)
    tags = sorted(prog.tags, key=repr)
    events = [Event(tags[rng.randrange(len(tags))], 0, float(t)) for t in range(20)]

    def run():
        return check_consistency(
            prog, events, state_eq=kc.state_eq, rng=random.Random(5)
        ).ok

    assert benchmark(run)
