"""Ablations on the design choices DESIGN.md calls out (§6 motivates
the optimizer study; these are our additions).

1. Plan shape: balanced tree vs left-deep chain for the same leaves —
   depth drives synchronization latency.
2. Optimizer placement: leaves at their input sources vs all workers
   crammed onto one host — network bytes and throughput.
3. Heartbeats disabled vs enabled: progress stalls without them.
"""


from repro.apps import value_barrier as vb
from repro.bench import experiments as ex
from repro.bench import publish, render_table
from repro.plans import (
    assign_hosts_round_robin,
    chain_plan,
    map_hosts,
    root_and_leaves_plan,
)
from repro.runtime import FluminaRuntime
from repro.sim import Topology

P = 8
RATE = 60.0


def _place_internal_on_right_child(plan):
    """Pin each internal node to its *right* child's host, making every
    parent-child hop remote — this isolates tree *shape* (depth) from
    placement (round-robin placement co-locates a chain's entire spine
    on one host, hiding its depth)."""

    def host_of(node):
        return node.host if node.is_leaf else host_of(node.children[1])

    mapping = {n.id: host_of(n) for n in plan.workers() if not n.is_leaf}
    return map_hosts(plan, mapping)


def _run_with_plan(plan_builder, hosts_strategy="spread"):
    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=P,
        values_per_barrier=ex.VALUES_PER_BARRIER,
        n_barriers=ex.N_BARRIERS,
        value_rate_per_ms=RATE,
    )
    plan = plan_builder(
        prog, [wl.barrier_itag], [[itag] for itag in wl.value_streams]
    )
    topo = Topology.cluster(P)
    plan = assign_hosts_round_robin(plan, topo.host_names())
    if hosts_strategy == "spread":
        plan = _place_internal_on_right_child(plan)
    elif hosts_strategy == "single":
        plan = map_hosts(plan, {n.id: "node0" for n in plan.workers()})
    rt = FluminaRuntime(prog, plan, topology=topo)
    res = rt.run(vb.make_streams(wl, heartbeat_interval=ex._hb(RATE)))
    return plan, res


def test_ablation_plan_shape(benchmark):
    def run():
        _, balanced = _run_with_plan(root_and_leaves_plan)
        _, chain = _run_with_plan(chain_plan)
        return balanced, chain

    balanced, chain = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "Ablation - plan shape (8 leaves, event windowing)",
        "metric",
        ["p50 latency ms", "p90 latency ms", "remote msgs"],
        {
            "balanced": [
                balanced.latency_percentiles([50])[0],
                balanced.latency_percentiles([90])[0],
                balanced.network.remote_messages,
            ],
            "chain": [
                chain.latency_percentiles([50])[0],
                chain.latency_percentiles([90])[0],
                chain.network.remote_messages,
            ],
        },
        note="deeper chains pay more sequential hops per barrier join",
    )
    publish("ablation_plan_shape", text)
    # A depth-8 chain's barrier latency must exceed the depth-4 tree's.
    assert chain.latency_percentiles([50])[0] > balanced.latency_percentiles([50])[0]


def _run_with_sources(rotate: int):
    """Leaves placed round-robin; producers sit at node i while leaf i
    lives on node (i+rotate) % P — rotate=0 is the optimizer's
    edge-processing placement, rotate=1 forces every ingest remote."""
    from repro.runtime import InputStream

    prog = vb.make_program()
    wl = vb.make_workload(
        n_value_streams=P,
        values_per_barrier=ex.VALUES_PER_BARRIER,
        n_barriers=ex.N_BARRIERS,
        value_rate_per_ms=RATE,
    )
    plan = root_and_leaves_plan(
        prog, [wl.barrier_itag], [[itag] for itag in wl.value_streams]
    )
    topo = Topology.cluster(P)
    plan = assign_hosts_round_robin(plan, topo.host_names())
    leaf_shift = {
        leaf.id: f"node{(i + rotate) % P}"
        for i, leaf in enumerate(plan.leaves())
    }
    plan = map_hosts(plan, leaf_shift)
    streams = []
    hb = ex._hb(RATE)
    for i, (itag, events) in enumerate(wl.value_streams.items()):
        streams.append(
            InputStream(itag, events, source_host=f"node{i}", heartbeat_interval=hb)
        )
    streams.append(
        InputStream(
            wl.barrier_itag, wl.barrier_stream, source_host="node0",
            heartbeat_interval=hb,
        )
    )
    rt = FluminaRuntime(prog, plan, topology=topo)
    return rt.run(streams)


def test_ablation_placement(benchmark):
    def run():
        return _run_with_sources(0), _run_with_sources(1)

    near, far = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "Ablation - worker placement vs input sources (8 leaves)",
        "metric",
        ["throughput ev/ms", "remote MB", "p50 latency ms"],
        {
            "leaves at sources": [
                near.throughput_events_per_ms,
                near.network.remote_bytes / 1e6,
                near.latency_percentiles([50])[0],
            ],
            "leaves one host off": [
                far.throughput_events_per_ms,
                far.network.remote_bytes / 1e6,
                far.latency_percentiles([50])[0],
            ],
        },
        note="the Appendix-B optimizer picks the left column (edge processing)",
    )
    publish("ablation_placement", text)
    assert near.network.remote_bytes < far.network.remote_bytes


def test_ablation_optimizer_matches_handwritten_plan(benchmark):
    """The communication optimizer recovers the same shape a human
    would write for the value-barrier app (barrier at root, leaf per
    stream placed at its source)."""
    from repro.plans import StreamInfo, optimize

    prog = vb.make_program()
    wl = vb.make_workload(n_value_streams=6, value_rate_per_ms=50.0)
    infos = [
        StreamInfo(itag, 50.0, f"node{i}")
        for i, itag in enumerate(wl.value_streams)
    ]
    infos.append(StreamInfo(wl.barrier_itag, 0.5, "node0"))

    plan = benchmark(lambda: optimize(prog, infos))
    owner = plan.owner_of(wl.barrier_itag)
    assert not owner.is_leaf
    assert len(plan.leaves()) == 6
    for info in infos[:-1]:
        assert plan.owner_of(info.itag).host == info.host
