"""The columnar batch plane: :class:`EventRun`, producer-side
coalescing (:func:`coalesce_event_runs`), the mailbox's run-aware
release rules (whole-run, prefix split, cross-tag straddle split), and
``update_batch`` equivalence against the per-event fold.

The invariant under test everywhere: carrying packed columns through
the data plane must be *observationally identical* to shipping one
:class:`EventMsg` per event — same release order, same outputs, same
final state — or the fast path is a semantics change, not an
optimization.
"""

import pytest

from repro.apps import keycounter as kc
from repro.apps import value_barrier as vb
from repro.core import DependenceRelation, Event, ImplTag
from repro.core.errors import InputError
from repro.runtime import Mailbox
from repro.runtime.messages import EventMsg, EventRun, HeartbeatMsg
from repro.runtime.wire import (
    batch_message_count,
    coalesce_event_runs,
    pack_frame,
    unpack_frame,
)


def vmsgs(n, tag="value", stream="v0", start=0, payload=lambda i: i):
    return [
        EventMsg(Event(tag, stream, float(start + i), payload=payload(i)))
        for i in range(n)
    ]


def one_run(msgs):
    """Coalesce and require the result to be a single run."""
    out = coalesce_event_runs(msgs)
    assert len(out) == 1 and type(out[0]) is EventRun
    return out[0]


def expand(batch):
    """Flatten runs back to per-event messages (the fallback boundary)."""
    out = []
    for m in batch:
        if type(m) is EventRun:
            out.extend(EventMsg(e) for e in m.events())
        else:
            out.append(m)
    return out


class TestEventRun:
    def test_keys_match_per_event_order_keys(self):
        msgs = vmsgs(5)
        run = one_run(msgs)
        assert run.keys() == [m.event.order_key for m in msgs]
        assert run.first_key == msgs[0].event.order_key
        assert run.last_key == msgs[-1].event.order_key
        assert run.itag == ImplTag("value", "v0")
        assert len(run) == 5

    def test_events_materialize_exactly(self):
        msgs = vmsgs(4)
        run = one_run(msgs)
        assert run.events() == [m.event for m in msgs]
        assert run.event(2) == msgs[2].event

    def test_split_preserves_route_columns_and_cached_keys(self):
        msgs = vmsgs(6)
        run = one_run(msgs)
        keys = run.keys()  # populate the cache before splitting
        a, b = run.split(2)
        assert (len(a), len(b)) == (2, 4)
        assert a.events() + b.events() == [m.event for m in msgs]
        assert a.keys() == keys[:2] and b.keys() == keys[2:]
        assert (a.itag, b.itag, a.shape) == (run.itag, run.itag, run.shape)

    def test_payloadless_run_has_no_payload_column(self):
        run = one_run(vmsgs(3, payload=lambda i: None))
        assert run.payloads is None
        assert [e.payload for e in run.events()] == [None, None, None]


class TestCoalesce:
    def test_homogeneous_stretch_becomes_one_run(self):
        msgs = vmsgs(8)
        assert expand(coalesce_event_runs(msgs)) == msgs

    def test_max_run_bounds_length(self):
        out = coalesce_event_runs(vmsgs(10), max_run=4)
        assert [len(r) for r in out] == [4, 4, 2]
        assert all(type(r) is EventRun for r in out)

    def test_route_change_breaks_the_run(self):
        msgs = vmsgs(3, stream="v0") + vmsgs(3, stream="v1", start=10)
        out = coalesce_event_runs(msgs)
        assert [type(m) for m in out] == [EventRun, EventRun]
        assert expand(out) == msgs

    def test_non_events_pass_through_in_order(self):
        hb = HeartbeatMsg(ImplTag("value", "v0"), (2.5,))
        msgs = vmsgs(3) + [hb] + vmsgs(3, start=10)
        out = coalesce_event_runs(msgs)
        assert [type(m) for m in out] == [EventRun, HeartbeatMsg, EventRun]
        assert expand(out) == msgs

    def test_exotic_shapes_stay_per_event(self):
        stringy = vmsgs(3, payload=lambda i: f"s{i}")
        assert coalesce_event_runs(stringy) == stringy
        huge = vmsgs(3, payload=lambda i: 2**70 + i)  # overflows i64 columns
        assert coalesce_event_runs(huge) == huge

    def test_single_event_is_not_wrapped(self):
        msgs = vmsgs(1)
        assert coalesce_event_runs(msgs) == msgs

    def test_wire_roundtrip_and_message_accounting(self):
        """A coalesced batch frames, counts, and decodes as its events."""
        msgs = vmsgs(7) + [HeartbeatMsg(ImplTag("value", "v0"), (99.0,))]
        batch = coalesce_event_runs(msgs)
        assert batch_message_count(batch) == 8
        assert expand(unpack_frame(pack_frame(batch), runs=True)) == msgs


class TestMailboxRuns:
    """Run-aware selective reordering: value events gated by a barrier
    tag (the paper's canonical dependence pattern)."""

    V = ImplTag("value", "v0")
    B = ImplTag("barrier", "s")
    DEP = DependenceRelation(
        ("value", "barrier"), {"barrier": ("barrier", "value")}
    )

    def mailbox(self):
        return Mailbox([self.V, self.B], self.DEP)

    @staticmethod
    def bkey(ts):
        return Event("barrier", "s", ts).order_key

    def test_heartbeat_releases_the_whole_run(self):
        mb = self.mailbox()
        run = one_run(vmsgs(5, start=1))
        assert mb.insert_run(run) == []  # barrier timer still at -inf
        assert mb.buffered_count(self.V) == 5
        (rel,) = mb.advance(self.B, self.bkey(50.0))
        assert rel.item is run and rel.key == run.first_key
        assert mb.buffered_count() == 0
        assert mb.timer(self.V) == run.last_key

    def test_partial_release_splits_at_the_dependence_bound(self):
        mb = self.mailbox()
        run = one_run(vmsgs(10, start=1))  # ts 1..10
        mb.insert_run(run)
        released = mb.advance(self.B, self.bkey(5.5))
        (prefix,) = released
        assert [e.ts for e in prefix.item.events()] == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert mb.buffered_count(self.V) == 5
        (rest,) = mb.advance(self.B, self.bkey(50.0))
        assert [e.ts for e in rest.item.events()] == [6.0, 7.0, 8.0, 9.0, 10.0]
        assert mb.buffered_count() == 0

    def test_run_equivalent_to_per_event_inserts(self):
        """Same arrivals, run vs per-event: identical release schedule
        event by event."""
        msgs = vmsgs(10, start=1)
        schedules = []
        for columnar in (True, False):
            mb = self.mailbox()
            timeline = []

            def note(released):
                for b in released:
                    if type(b.item) is EventRun:
                        timeline.extend(e.ts for e in b.item.events())
                    elif type(b.item) is EventMsg:
                        timeline.append(b.item.event.ts)
                    else:
                        timeline.append(b.item)

            if columnar:
                note(mb.insert_run(one_run(msgs)))
            else:
                for m in msgs:
                    note(mb.insert(self.V, m.event.order_key, m))
            note(mb.advance(self.B, self.bkey(4.5)))
            note(mb.insert(self.B, self.bkey(7.5), "BARRIER"))
            note(mb.advance(self.B, self.bkey(50.0)))
            schedules.append(timeline)
        assert schedules[0] == schedules[1]

    def test_non_monotone_run_is_rejected(self):
        mb = self.mailbox()
        mb.insert_run(one_run(vmsgs(3, start=5)))
        with pytest.raises(InputError, match="non-monotone"):
            mb.insert_run(one_run(vmsgs(3, start=1)))

    def test_straddle_split_restores_global_order(self):
        """Asymmetric dependence: a released run may span another tag's
        released item; the mailbox must split it so the batch reads in
        global key order, exactly as per-event release would."""
        A, C, B = ImplTag("a", 0), ImplTag("c", 0), ImplTag("b", 0)
        dep = DependenceRelation(("a", "b", "c"), {"b": ("a", "c")})
        mb = Mailbox([A, C, B], dep)
        a_run = one_run(
            [EventMsg(Event("a", 0, float(t), payload=t)) for t in range(1, 11)]
        )
        assert mb.insert_run(a_run) == []
        c_ev = Event("c", 0, 5.5, payload="c")
        assert mb.insert(C, c_ev.order_key, EventMsg(c_ev)) == []
        released = mb.advance(B, Event("b", 0, 50.0).order_key)
        flat = []
        for b in released:
            if type(b.item) is EventRun:
                flat.extend((e.ts, e.tag) for e in b.item.events())
            else:
                flat.append((b.item.event.ts, b.item.event.tag))
        assert flat == sorted(flat), "release order must be global key order"
        assert (5.5, "c") in flat
        assert [b.key for b in released] == sorted(b.key for b in released)


def fold_per_event(update, state, run):
    outs = []
    for e in run.events():
        state, emitted = update(state, e)
        outs.extend(emitted)
    return state, outs


class TestUpdateBatchEquivalence:
    def test_value_barrier_value_run(self):
        run = one_run(vmsgs(9, payload=lambda i: i * 3))
        s_batch, indexed = vb._update_batch(7, run)
        s_fold, outs = fold_per_event(vb._update, 7, run)
        assert s_batch == s_fold
        assert [o for _, o in indexed] == outs == []

    def test_value_barrier_barrier_run(self):
        run = one_run(
            [EventMsg(Event("barrier", "s", float(t))) for t in (1, 2, 3)]
        )
        s_batch, indexed = vb._update_batch(41, run)
        s_fold, outs = fold_per_event(vb._update, 41, run)
        assert s_batch == s_fold == 0
        assert [o for _, o in indexed] == outs
        assert [i for i, _ in indexed] == [0, 1, 2]

    def test_keycounter_increment_run(self):
        run = EventRun(("i", 0), 0, 0, (1.0, 2.0, 3.0), (2, 3, 4))
        s_batch, indexed = kc._update_batch({0: 1}, run)
        s_fold, outs = fold_per_event(kc._update, {0: 1}, run)
        assert kc.state_eq(s_batch, s_fold)
        assert [o for _, o in indexed] == outs == []

    def test_keycounter_payloadless_increment_run_counts_ones(self):
        run = EventRun(("i", 1), 0, 0, (1.0, 2.0, 3.0), None)
        s_batch, _ = kc._update_batch({}, run)
        s_fold, _ = fold_per_event(kc._update, {}, run)
        assert kc.state_eq(s_batch, s_fold)

    def test_keycounter_read_reset_run_keeps_per_event_semantics(self):
        """First read observes the count, later reads in the same run
        observe zero — the batch path may not collapse them."""
        run = EventRun(("r", 0), 0, 0, (1.0, 2.0), None)
        s_batch, indexed = kc._update_batch({0: 9}, run)
        s_fold, outs = fold_per_event(kc._update, {0: 9}, run)
        assert kc.state_eq(s_batch, s_fold)
        assert [o for _, o in indexed] == outs == [(0, 9), (0, 0)]
