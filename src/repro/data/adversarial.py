"""Adversarial workload generators: skewed, bursty, lagging, and late
traffic (ROADMAP item 5).

The paper's synthetic inputs are well-behaved — uniform rates, a fixed
hot-page set.  Production traffic is not, and skew is exactly where
dependency-guided synchronization plans should shine or break.  This
module generates the four canonical adversarial shapes, each **fully
seeded** (same seed → byte-identical streams) and each preserving the
documented collision-free total-order invariant: within every stream
timestamps are strictly increasing, and across the streams of one
family no two events ever share a timestamp.

The four shapes:

* :func:`zipf_streams` — one logical arrival process dealt across
  streams by a Zipf draw, so head streams carry most of the mass (a
  hot-key distribution over sources);
* :func:`flash_crowd_stream` — a rate spike: inter-arrival gaps shrink
  by ``spike_factor`` inside a window (a flash crowd hitting every
  source at once when the family shares spike parameters);
* :func:`straggler_stream` — a pause/resume lag: the stream stops for
  ``lag_ms`` after ``pause_after`` events, then resumes at its old
  cadence (its suffix arrives far behind its peers);
* :func:`late_stream` — bounded out-of-order arrivals.  Per-stream
  timestamp order cannot be violated (``InputStream`` requires strict
  monotonicity), so lateness is modeled as delayed *delivery*: each
  event occupies a uniform delivery slot but carries an event time up
  to ``max_disorder_ms`` older, following a bounded seeded random walk.
  Relative to the global timestamp order, such a stream's events arrive
  up to the disorder bound after events with newer timestamps on other
  streams — which is what exercises the mailbox's reordering machinery.

Collision-freedom is by *construction*, not by rejection sampling:
every generator keeps its timestamps on a per-stream lattice
``{phase + k * quantum}`` with phases strictly inside ``(0, quantum)``
and pairwise distinct across streams (the same trick
:func:`~repro.data.generators.uniform_stream` families use), so two
streams of one family can never collide at any rate or seed.
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.events import Event, ImplTag

PayloadFn = Optional[Callable[[int], Any]]


def _payload(payload_fn: PayloadFn, i: int) -> Any:
    return payload_fn(i) if payload_fn else 1


def _check_common(n_events: int, rate_per_ms: float) -> float:
    if n_events <= 0:
        raise ValueError(f"n_events must be positive, got {n_events}")
    if rate_per_ms <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_ms}")
    return 1.0 / rate_per_ms


# ---------------------------------------------------------------------------
# Zipf-skewed key/stream distributions
# ---------------------------------------------------------------------------

def zipf_weights(n: int, alpha: float) -> Tuple[float, ...]:
    """Normalized Zipf probabilities ``w_r ∝ 1/(r+1)^alpha`` for ranks
    ``0..n-1``; ``alpha=0`` degenerates to uniform."""
    if n <= 0:
        raise ValueError(f"need at least one rank, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    raw = [1.0 / (r + 1) ** alpha for r in range(n)]
    total = sum(raw)
    return tuple(w / total for w in raw)


def zipf_rank_sequence(
    n_events: int, n_ranks: int, *, alpha: float, seed: int
) -> List[int]:
    """A seeded i.i.d. Zipf draw of ``n_events`` ranks — the per-event
    key/stream choices behind :func:`zipf_streams`."""
    if n_events < 0:
        raise ValueError(f"n_events must be >= 0, got {n_events}")
    weights = zipf_weights(n_ranks, alpha)
    rng = random.Random(seed)
    cum = []
    acc = 0.0
    for w in weights:
        acc += w
        cum.append(acc)
    out = []
    for _ in range(n_events):
        u = rng.random()
        # Linear scan: n_ranks is small (streams/keys, not events).
        for r, c in enumerate(cum):
            if u <= c:
                out.append(r)
                break
        else:  # pragma: no cover - float-edge fallback
            out.append(n_ranks - 1)
    return out


def zipf_streams(
    itags: Sequence[ImplTag],
    *,
    n_events: int,
    alpha: float,
    rate_per_ms: float,
    seed: int,
    start_ms: float = 1.0,
    payload_fn: PayloadFn = None,
) -> Dict[ImplTag, Tuple[Event, ...]]:
    """One aggregate arrival process at ``rate_per_ms`` dealt across
    ``itags`` by a seeded Zipf(``alpha``) draw over stream ranks.

    Every event occupies its own slot of the shared lattice
    ``start + i * period``, so timestamps are collision-free across the
    whole family by construction; the first ``len(itags)`` slots are
    dealt round-robin so no stream is ever silently empty.
    """
    period = _check_common(n_events, rate_per_ms)
    n_streams = len(itags)
    if n_streams == 0:
        raise ValueError("need at least one stream")
    if n_events < n_streams:
        raise ValueError(
            f"n_events={n_events} cannot cover {n_streams} streams "
            "(every stream must carry at least one event)"
        )
    ranks = zipf_rank_sequence(
        n_events - n_streams, n_streams, alpha=alpha, seed=seed
    )
    out: Dict[ImplTag, List[Event]] = {it: [] for it in itags}
    for i in range(n_events):
        rank = i if i < n_streams else ranks[i - n_streams]
        itag = itags[rank]
        ts = start_ms + i * period
        out[itag].append(
            Event(itag.tag, itag.stream, ts, _payload(payload_fn, i))
        )
    return {it: tuple(evs) for it, evs in out.items()}


# ---------------------------------------------------------------------------
# Flash crowds
# ---------------------------------------------------------------------------

def flash_crowd_stream(
    itag: ImplTag,
    *,
    n_events: int,
    base_rate_per_ms: float,
    spike_factor: int,
    spike_start_ms: float,
    spike_width_ms: float,
    offset: float = 0.0,
    start_ms: float = 1.0,
    payload_fn: PayloadFn = None,
) -> Tuple[Event, ...]:
    """Events at ``base_rate_per_ms``, except inside the window
    ``[spike_start_ms, spike_start_ms + spike_width_ms)`` where the
    rate multiplies by ``spike_factor`` (inter-arrival gaps shrink to
    ``period / spike_factor``).

    Streams sharing the same rate/spike parameters produce identical
    base schedules, so a family with pairwise-distinct fractional
    ``offset``s — e.g. ``(s + 1) * period / (n_streams + 2)`` — never
    collides across streams: the flash crowd hits every source at the
    same wall-clock window, as a real one does.
    """
    period = _check_common(n_events, base_rate_per_ms)
    if spike_factor < 1:
        raise ValueError(f"spike_factor must be >= 1, got {spike_factor}")
    if spike_width_ms <= 0:
        raise ValueError(
            f"zero-width flash window (spike_width_ms={spike_width_ms}): "
            "a spike that never admits an event is a silent no-op"
        )
    spike_end = spike_start_ms + spike_width_ms
    out: List[Event] = []
    t = start_ms
    for i in range(n_events):
        gap = period / spike_factor if spike_start_ms <= t < spike_end else period
        out.append(
            Event(itag.tag, itag.stream, t + offset, _payload(payload_fn, i))
        )
        t += gap
    return tuple(out)


# ---------------------------------------------------------------------------
# Stragglers
# ---------------------------------------------------------------------------

def straggler_stream(
    itag: ImplTag,
    *,
    n_events: int,
    rate_per_ms: float,
    pause_after: int,
    lag_ms: float,
    offset: float = 0.0,
    start_ms: float = 1.0,
    payload_fn: PayloadFn = None,
) -> Tuple[Event, ...]:
    """A uniform stream that pauses for ``lag_ms`` after its
    ``pause_after``-th event, then resumes at its old cadence — the
    classic straggling source whose suffix trails its peers.

    The lag is quantized *up* to whole periods so the stream stays on
    its ``{start + offset + k * period}`` lattice (collision-freedom
    against same-rate peers with distinct offsets is preserved).  A lag
    longer than the un-paused stream span is rejected: the suffix would
    arrive entirely after every peer finished, which is a different
    scenario (a dead source), not a straggler.
    """
    period = _check_common(n_events, rate_per_ms)
    if not 1 <= pause_after < n_events:
        raise ValueError(
            f"pause_after must be in [1, {n_events - 1}], got {pause_after} "
            "(the pause must split the stream, not precede or follow it)"
        )
    if lag_ms <= 0:
        raise ValueError(f"lag_ms must be positive, got {lag_ms}")
    span = n_events * period
    if lag_ms > span:
        raise ValueError(
            f"straggler lag {lag_ms}ms exceeds the stream span {span}ms: "
            "the suffix would outlive the run (that is a dead source, "
            "not a straggler)"
        )
    lag = math.ceil(lag_ms / period) * period
    out: List[Event] = []
    for i in range(n_events):
        ts = start_ms + i * period + offset
        if i >= pause_after:
            ts += lag
        out.append(Event(itag.tag, itag.stream, ts, _payload(payload_fn, i)))
    return tuple(out)


# ---------------------------------------------------------------------------
# Late / out-of-order arrivals (bounded disorder)
# ---------------------------------------------------------------------------

def late_stream(
    itag: ImplTag,
    *,
    n_events: int,
    rate_per_ms: float,
    max_disorder_ms: float,
    seed: int,
    grid: int = 8,
    offset: float = 0.0,
    start_ms: float = 1.0,
    payload_fn: PayloadFn = None,
) -> Tuple[Event, ...]:
    """Bounded out-of-order arrivals, modeled as delayed delivery.

    Event ``i`` occupies the uniform delivery slot ``start + i *
    period`` but carries an *event time* up to ``max_disorder_ms``
    older: ``ts_i = slot_i - g_i * quantum`` where ``quantum = period /
    grid`` and ``g_i`` follows a seeded random walk on ``[0,
    max_disorder_ms / quantum]`` with steps strictly smaller than one
    period.  Because per-step lateness growth is below one period,
    per-stream timestamps stay strictly increasing (delivery is FIFO
    within a stream — the invariant ``InputStream`` requires); the
    disorder is *cross-stream*: peers that are on time deliver newer
    timestamps while this stream's older ones are still arriving.

    All timestamps live on the lattice ``{offset + k * quantum}``, so
    a family with pairwise-distinct offsets inside ``(0, quantum)``
    never collides.
    """
    period = _check_common(n_events, rate_per_ms)
    if max_disorder_ms < 0:
        raise ValueError(f"max_disorder_ms must be >= 0, got {max_disorder_ms}")
    if grid < 2:
        raise ValueError(f"grid must be >= 2, got {grid}")
    quantum = period / grid
    ceiling = int(max_disorder_ms / quantum)
    rng = random.Random(seed)
    out: List[Event] = []
    g = 0
    for i in range(n_events):
        if ceiling > 0 and i > 0:
            # Steps in (-grid, +grid): lateness can grow by at most one
            # period per event, which is what keeps ts strictly rising.
            g = min(ceiling, max(0, g + rng.randint(-(grid - 1), grid - 1)))
        ts = start_ms + i * period - g * quantum + offset
        out.append(Event(itag.tag, itag.stream, ts, _payload(payload_fn, i)))
    return tuple(out)


# ---------------------------------------------------------------------------
# Family-level checks (used by tests and the chaos harness)
# ---------------------------------------------------------------------------

def assert_collision_free(
    streams: Dict[ImplTag, Tuple[Event, ...]]
) -> None:
    """Raise ``ValueError`` naming the first violation if any stream is
    not strictly increasing or any two events in the family share a
    timestamp — the documented total-order invariant."""
    seen: Dict[float, ImplTag] = {}
    for itag, events in streams.items():
        prev = None
        for e in events:
            if prev is not None and e.ts <= prev:
                raise ValueError(
                    f"stream {itag!r} not strictly increasing at ts={e.ts}"
                )
            prev = e.ts
            if e.ts in seen:
                raise ValueError(
                    f"timestamp collision at ts={e.ts} between "
                    f"{seen[e.ts]!r} and {itag!r}"
                )
            seen[e.ts] = itag
    return None
