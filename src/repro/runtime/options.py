"""Uniform execution options for the runtime-backend registry.

The backend registry grew one keyword at a time — ``fault_plan=``,
``checkpoint_predicate=``, then ``reconfig_schedule=`` — each threaded
separately through every adapter and substrate.  :class:`RunOptions`
collapses that plumbing into one picklable value constructed once (at
:meth:`~repro.runtime.RuntimeBackend.run`) and passed through all
three substrates, so adding the next lifecycle feature means adding a
field here instead of widening five signatures.

Per-*attempt* values (``initial_state``, the root's
:class:`~repro.runtime.quiesce.RootReconfigView`) are deliberately not
fields: they change between recovery/reconfiguration attempts while a
``RunOptions`` describes the whole execution.

:class:`ServeOptions` is the sibling for the long-running service mode
(:mod:`repro.serve`): it wraps a per-epoch ``RunOptions`` and adds the
ingest-tier knobs (listener address, epoch sealing, admission
watermarks, the exporter port).

Fields typed ``Any`` to keep this module a leaf of the import graph
(the registry and the substrates both import it):

* ``fault_plan`` — a :class:`~repro.runtime.faults.FaultPlan`;
* ``checkpoint_predicate`` — a callable ``(event, count) -> bool``
  (see :mod:`repro.runtime.checkpoint`);
* ``reconfig_schedule`` — a
  :class:`~repro.runtime.reconfigure.ReconfigSchedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional


@dataclass
class RunOptions:
    """One execution's cross-substrate configuration.

    ``timeout_s`` of ``None`` means "substrate default" (60 s
    threaded, 120 s process).  The process substrate's transport knobs:

    * ``transport`` — ``"pipe"`` (framed raw pipes, the default),
      ``"queue"`` (the original ``multiprocessing.Queue`` fabric, kept
      as a measurable baseline), ``"tcp"`` (the same frames over TCP
      stream sockets — the single-host form of the distributed data
      plane), or ``"shm"`` (fixed-slot shared-memory rings: zero
      syscalls per message, same-host only; ring geometry is tunable
      via ``transport_options={"slots": ..., "slot_bytes": ...}``
      forwarded through ``extra``);
    * ``batch_size`` — ``None`` (default) selects *adaptive* batching
      (flush on size or latency deadline, per-channel targets driven
      by observed backlog); an explicit integer pins the old
      fixed-size policy;
    * ``flush_ms`` — the adaptive policy's latency deadline;
    * ``nodes`` — deploy across node agents instead of one process
      per worker (see :mod:`repro.runtime.cluster`): an int (that
      many loopback nodes) or a sequence of
      :class:`~repro.runtime.cluster.NodeSpec`; implies the TCP data
      plane;
    * ``placement`` — worker-id -> node-name pins for ``nodes=``
      deployments (unpinned workers are spread round-robin).

    The metrics plane (:mod:`repro.runtime.metrics`):

    * ``metrics`` — enable per-worker counters and latency histograms;
      the run result's ``metrics`` field carries the merged
      :class:`~repro.runtime.metrics.RunMetrics`;
    * ``latency_buckets`` — histogram upper bounds in seconds
      (``None`` selects the default geometric buckets);
    * ``metrics_port`` — in cluster (``nodes=``) mode, serve live
      Prometheus text on ``http://127.0.0.1:<port>/metrics`` from the
      coordinator (``0`` picks a free port);
    * ``pace`` — open-loop producer pacing: timestamp units replayed
      per wall-clock second (timestamps are milliseconds, so
      ``pace=1000.0`` replays in real time; ``None`` keeps the
      closed-loop as-fast-as-possible pump).

    ``extra`` holds substrate-specific passthrough kwargs (e.g. the
    sim's ``track_event_latency=``)."""

    fault_plan: Any = None
    checkpoint_predicate: Any = None
    reconfig_schedule: Any = None
    timeout_s: Optional[float] = None
    batch_size: Optional[int] = None
    transport: Optional[str] = None
    flush_ms: Optional[float] = None
    nodes: Any = None
    placement: Any = None
    record_keys: bool = False
    metrics: bool = False
    latency_buckets: Any = None
    metrics_port: Any = None
    pace: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def collect(cls, options: Optional["RunOptions"] = None, **kwargs: Any) -> "RunOptions":
        """Normalize an ``options=`` object plus loose keyword
        arguments into one ``RunOptions``.

        Non-``None`` keywords override the object's fields (so call
        sites can tweak a shared options value); a ``None`` keyword
        means *inherit* — it cannot clear a field the base object set
        (build a fresh ``RunOptions`` for that).  Unknown keywords land
        in ``extra`` and are forwarded verbatim to the substrate."""
        base = options if options is not None else cls()
        known = {f.name for f in fields(cls)} - {"extra"}
        overrides = {k: v for k, v in kwargs.items() if k in known and v is not None}
        extra = {**base.extra, **{k: v for k, v in kwargs.items() if k not in known}}
        out = replace(base, **overrides)
        out.extra = extra
        return out

    def with_timeout_default(self, default_s: float) -> float:
        return self.timeout_s if self.timeout_s is not None else default_s

    def metrics_config(self) -> Any:
        """The run's :class:`~repro.runtime.metrics.MetricsConfig`, or
        ``None`` when the metrics plane is off.  The substrate stamps
        the epoch just before releasing producers."""
        if not self.metrics:
            return None
        from .metrics import DEFAULT_LATENCY_BUCKETS, MetricsConfig

        buckets = (
            tuple(self.latency_buckets) if self.latency_buckets else DEFAULT_LATENCY_BUCKETS
        )
        return MetricsConfig(latency_buckets=buckets)

    def transport_kwargs(self) -> Dict[str, Any]:
        """The process substrate's transport configuration (compact
        form for ``ProcessRuntime(**...)``)."""
        out: Dict[str, Any] = {"batch_size": self.batch_size}
        if self.transport is not None:
            out["transport"] = self.transport
        if self.flush_ms is not None:
            out["flush_ms"] = self.flush_ms
        return out


@dataclass
class ServeOptions:
    """Configuration for the long-running service mode
    (:mod:`repro.serve`) — the :class:`RunOptions` sibling for
    executions that never end.

    The service tier converts an unbounded ingest into a sequence of
    bounded *epochs*, each run as one backend attempt; ``run`` is the
    per-epoch :class:`RunOptions` (fault plans, reconfig schedules,
    transport/cluster knobs, and the metrics plane all apply per
    epoch).  Fields:

    * ``backend`` — the substrate each epoch runs on (``"threaded"`` /
      ``"process"``; ``nodes=`` on ``run`` deploys epochs cluster-wide);
    * ``host`` / ``port`` — the ingest/egress TCP listener (``0`` picks
      a free port); ``cookie`` — the shared secret every client hello
      must echo (``None`` generates a fresh one per service);
    * ``epoch_events`` — seal and run an epoch once this many events
      are buffered (the idle timer seals smaller epochs);
    * ``epoch_idle_ms`` — how long the server lets a non-empty buffer
      sit before sealing it anyway (latency bound under light load);
    * ``heartbeat_interval`` — per-epoch stream heartbeat cadence in
      timestamp units (forwarded to each epoch's ``InputStream``\\ s);
    * ``ingest_high_watermark`` / ``ingest_resume_watermark`` —
      admission control on the count of admitted-but-uncommitted
      events: admission pauses (events are *rejected, reported to the
      client*) at the high watermark and resumes once the backlog
      drains to the resume watermark (default: half the high);
    * ``runtime_backlog_watermark`` — optional second signal from the
      metrics plane: the previous epoch's cluster-wide mailbox backlog
      high-water (the same number the :class:`AutoScaler` reads from
      join responses).  Crossing it pauses admission until an epoch
      completes below it.  Requires ``run.metrics=True`` (the service
      enables it automatically when this is set);
    * ``metrics_port`` — serve live Prometheus text (including the
      ``repro_serve_*`` gauges) on ``http://host:<port>/metrics``
      (``0`` picks a free port; ``None`` disables the exporter).
    """

    backend: str = "threaded"
    run: RunOptions = field(default_factory=RunOptions)
    host: str = "127.0.0.1"
    port: int = 0
    cookie: Optional[str] = None
    epoch_events: int = 512
    epoch_idle_ms: float = 50.0
    heartbeat_interval: Optional[float] = 10.0
    ingest_high_watermark: int = 4096
    ingest_resume_watermark: Optional[int] = None
    runtime_backlog_watermark: Optional[int] = None
    metrics_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.epoch_events < 1:
            raise ValueError("epoch_events must be >= 1")
        if self.epoch_idle_ms < 0:
            raise ValueError("epoch_idle_ms must be >= 0")
        if self.ingest_high_watermark < 1:
            raise ValueError("ingest_high_watermark must be >= 1")
        resume = self.ingest_resume_watermark
        if resume is not None and not 0 <= resume < self.ingest_high_watermark:
            raise ValueError(
                "ingest_resume_watermark must be in "
                "[0, ingest_high_watermark) — resuming at or above the "
                "pause point would never resume"
            )
        if (
            self.runtime_backlog_watermark is not None
            and self.runtime_backlog_watermark < 1
        ):
            raise ValueError("runtime_backlog_watermark must be >= 1")

    def resume_watermark(self) -> int:
        if self.ingest_resume_watermark is not None:
            return self.ingest_resume_watermark
        return self.ingest_high_watermark // 2
